#!/usr/bin/env bash
# Smoke check for the simulator's performance trajectory: build, run
# the test suite, then short benchmark runs that regenerate
# BENCH_PR1.json (per-app events/sec heap vs wheel, plus the
# queue-depth sweep), BENCH_PR3.json (sharded/fused analysis engine
# vs the sequential reference, campaign + rank sweep — every timed rep
# also differentially checks the reports are bit-identical), and
# BENCH_PR4.json (chunked on-disk store: write MB/s, codec ratio, and
# out-of-core streamed analysis vs in-memory, differentially checked
# per rep). Intended for CI and for a quick local sanity run after
# touching the engine or analysis hot paths.
#
# Knobs are forwarded to both binaries: OSN_SECS (default 5 here —
# short but long enough that per-run timing is meaningful), OSN_REPS.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

OSN_SECS="${OSN_SECS:-5}" OSN_REPS="${OSN_REPS:-2}" \
    cargo run --release -p osn-bench --bin engine_throughput

OSN_SECS="${OSN_SECS:-5}" OSN_REPS="${OSN_REPS:-2}" \
    cargo run --release -p osn-bench --bin analysis_throughput

OSN_SECS="${OSN_SECS:-5}" OSN_REPS="${OSN_REPS:-2}" \
    cargo run --release -p osn-bench --bin store_throughput

echo "bench_smoke: OK (see BENCH_PR1.json, BENCH_PR3.json, BENCH_PR4.json)"
