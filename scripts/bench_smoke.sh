#!/usr/bin/env bash
# Smoke check for the simulator's performance trajectory: build, run
# the test suite, then short benchmark runs that regenerate
# BENCH_PR1.json (per-app events/sec heap vs wheel, plus the
# queue-depth sweep), BENCH_PR3.json (sharded/fused analysis engine
# vs the sequential reference, campaign + rank sweep — every timed rep
# also differentially checks the reports are bit-identical),
# BENCH_PR4.json (chunked on-disk store: write MB/s, codec ratio, and
# out-of-core streamed analysis vs in-memory, differentially checked
# per rep), and BENCH_PR5.json (mechanistic cluster engine: nodes/sec
# vs worker-thread count, byte-identical reports per rep). Intended
# for CI and for a quick local sanity run after touching the engine or
# analysis hot paths.
#
# Each binary's output is scanned for "panicked at": a panic on a
# spawned thread can reach stderr without failing the process, and a
# bench that half-ran must not pass the smoke check.
#
# Knobs are forwarded to all binaries: OSN_SECS (default 5 here —
# short but long enough that per-run timing is meaningful), OSN_REPS.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

run_bench() {
    local bin="$1"
    local log
    log="$(mktemp)"
    OSN_SECS="${OSN_SECS:-5}" OSN_REPS="${OSN_REPS:-2}" \
        cargo run -q --release --offline -p osn-bench --bin "$bin" 2>&1 | tee "$log"
    if grep -q "panicked at" "$log"; then
        rm -f "$log"
        echo "bench_smoke: $bin panicked" >&2
        exit 1
    fi
    rm -f "$log"
}

# Columnar-path smoke (before the published runs, which overwrite the
# BENCH jsons with real numbers): a tiny campaign with 256-event
# chunks drives the mmap'd columnar cursors across many chunk
# boundaries; every rep asserts the streamed report is byte-identical
# to the in-memory one, so a release-profile-only divergence in the
# columnar decode or pairing resumption fails here.
echo "== bench_smoke: columnar store path (small chunks)"
OSN_SECS=1 OSN_REPS=1 OSN_CHUNK_CAP=256 run_bench store_throughput

run_bench engine_throughput
run_bench analysis_throughput
run_bench store_throughput
run_bench cluster_throughput
# Catalog service: queries/s at 1/4/16 concurrent clients over a mixed
# endpoint workload (BENCH_PR9.json); every report response is
# byte-checked against the offline analysis under load.
run_bench catalog_throughput
# Native capture recorder: real host FTQ loop + procfs attribution +
# store write (BENCH_PR10.json). Short reps — the smoke loop checks
# the path runs clean on this host, not the published numbers.
OSN_CAPTURE_SECS=1 run_bench capture_overhead
# Tiered scaling: validation scales + the 10k-rank point only — the
# 100k point is for published BENCH_PR8.json runs, not the smoke loop.
OSN_SCALE_MAX=10000 run_bench cluster_scale

# Fault-injection smoke: a small cluster with one perturbation of
# every class (kernel tier: steal/dvfs/numa; cluster tier: crash/
# straggler/partition/jitter) must run clean, attribute each injected
# class in the report, and produce a byte-identical JSON report on a
# second run — the injection schedules are seed-derived, never clock-
# or scheduler-derived.
echo "== bench_smoke: fault injection determinism"
INJECT='steal:interval=5ms,duration=100us,node=1; dvfs:period=20ms,duty=0.3,factor=2,node=2; numa:split=1,factor=2,node=3; crash:node=1,at=50ms,down=20ms; straggler:node=2,factor=1.2; partition:node=3,at=100ms,dur=100ms,delay=300us; jitter:mean=10us'
inject_dir="$(mktemp -d)"
for rep in 1 2; do
    cargo run -q --release --offline -p osn-cli --bin osnoise -- \
        cluster sphot --nodes 4 --secs 1 --cpus 2 --seed 7 \
        --inject "$INJECT" --json "$inject_dir/report-$rep.json" \
        > "$inject_dir/out-$rep.txt"
done
cmp "$inject_dir/report-1.json" "$inject_dir/report-2.json" || {
    echo "bench_smoke: injected cluster report not deterministic" >&2
    exit 1
}
for class in crash straggler partition jitter; do
    grep -q "$class" "$inject_dir/out-1.txt" || {
        echo "bench_smoke: injected class '$class' not attributed in report" >&2
        exit 1
    }
done
grep -q "barrier paid by injected fault class" "$inject_dir/out-1.txt" || {
    echo "bench_smoke: injected-fault attribution section missing" >&2
    exit 1
}
rm -rf "$inject_dir"
echo "== bench_smoke: fault injection OK"

echo "bench_smoke: OK (see BENCH_PR1.json, BENCH_PR3.json, BENCH_PR4.json, BENCH_PR5.json, BENCH_PR6.json, BENCH_PR8.json, BENCH_PR9.json, BENCH_PR10.json)"
