#!/usr/bin/env bash
# Repo-wide CI gate: formatting, lints, the full test suite, doc
# tests, a doc-warning lint, and end-to-end smokes — each step
# individually timed so CI logs show where the minutes go.
#
#   scripts/ci.sh [lint|test|smoke|all]
#
# The optional mode argument selects one step group so the GitHub
# workflow can fan the groups out as parallel jobs (sharing one cached
# target dir); no argument (or `all`) runs everything, which is what a
# developer runs locally.
#
#   lint   fmt, clippy, feature matrix, doc lint, shellcheck
#   test   unit/integration tests, SIMD feature tests, doc tests
#   smoke  release-profile end-to-end: tiered cluster, serve daemon,
#          native capture (plus the bench gate when OSN_BENCH_GATE=1)
#
# Clippy and the doc lint run over the first-party crates only — the
# vendored dependencies under vendor/ are pinned upstream sources and
# not held to this repo's lint bar.
#
# Set OSN_BENCH_GATE=1 to also run the benchmark regression gate
# (scripts/bench_gate.sh): reruns the bench suite and fails on >15%
# aggregate regression against the committed BENCH_PR*.json baselines.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-all}"

FIRST_PARTY=(
    -p osn-kernel
    -p osn-trace
    -p osn-store
    -p osn-analysis
    -p osn-workloads
    -p osn-core
    -p osn-ftq
    -p osn-paraver
    -p osn-bench
    -p osn-catalog
    -p osn-cli
    -p osnoise
)

STEP_T0=0
step_begin() {
    STEP_T0=$SECONDS
    echo "== ci: $1"
}
step_end() {
    echo "== ci: $1 OK ($((SECONDS - STEP_T0))s)"
}
run_step() {
    local name="$1"
    shift
    step_begin "$name"
    "$@"
    step_end "$name"
}

# Every first-party crate must build under every corner of the
# feature matrix — no default features, defaults, and all features —
# so a cfg-gated module can't silently rot in an untested combination.
features_matrix() {
    local flags
    for flags in --no-default-features "" --all-features; do
        # shellcheck disable=SC2086
        cargo check -q --offline --all-targets $flags "${FIRST_PARTY[@]}"
    done
}

# The shell entry points are code too. Skips (loudly) where the tool
# isn't installed — GitHub's runners ship it, a dev box may not.
shellcheck_scripts() {
    if ! command -v shellcheck > /dev/null 2>&1; then
        echo "== ci: shellcheck SKIPPED — shellcheck not installed on this host"
        return 0
    fi
    shellcheck scripts/*.sh
}

# Fast tiered-cluster smoke: a 512-rank sampled campaign through the
# release CLI must finish quickly, embed self-describing tier metadata
# in --json, and print the tier section in the text report.
tier_smoke() {
    cargo build -q --release --offline -p osn-cli
    local out
    out="$(mktemp -d)"
    target/release/osnoise cluster umt --nodes 512 --secs 1 --cpus 2 --seed 7 \
        --tier sampled:0.125 --json "$out/tier.json" > "$out/report.txt"
    local ok=0
    grep -q '"sample_fraction"' "$out/tier.json" \
        && grep -q '"validation"' "$out/tier.json" \
        && grep -q 'tier' "$out/report.txt" || ok=1
    if [[ $ok -ne 0 ]]; then
        echo "ci: tiered smoke: tier metadata missing from report" >&2
    fi
    rm -rf "$out"
    return $ok
}

# Native-capture smoke, release profile: `osnoise capture` on THIS
# runner must produce a .osn that analyze/info/serve consume
# unchanged, with byte-consistent reports across consumers
# (crates/cli/tests/capture.rs does the serve round-trip with the
# catalog client). Skipped — loudly, never silently — on hosts
# without /proc/schedstat, where attribution runs degraded and a
# classification-bearing capture can't be asserted meaningfully.
# Intermediate files live under target/ci-artifacts/capture so a
# failing CI job can upload them for the post-mortem.
capture_smoke() {
    if [[ ! -r /proc/schedstat ]]; then
        echo "== ci: capture-smoke SKIPPED — /proc/schedstat unavailable on this host;"
        echo "       native attribution is degraded here (capture itself stays covered"
        echo "       by cargo test: crates/cli/tests/capture.rs + osn-ftq fixtures)"
        return 0
    fi
    cargo build -q --release --offline -p osn-cli
    local dir="target/ci-artifacts/capture"
    rm -rf "$dir"
    mkdir -p "$dir"
    target/release/osnoise capture --duration 2s --quantum 1ms \
        --out "$dir/native.osn" --json "$dir/capture.json" > "$dir/capture.txt"
    grep -q '"schedstat_available": *true' "$dir/capture.json" || {
        echo "ci: capture-smoke: capture did not use /proc/schedstat despite it being readable" >&2
        return 1
    }
    target/release/osnoise info "$dir/native.osn" | grep -q '\[native\]' || {
        echo "ci: capture-smoke: info does not tag the run as native" >&2
        return 1
    }
    target/release/osnoise analyze "$dir/native.osn" --json "$dir/a.json" > /dev/null
    target/release/osnoise analyze "$dir/native.osn" --json "$dir/b.json" > /dev/null
    cmp -s "$dir/a.json" "$dir/b.json" || {
        echo "ci: capture-smoke: analyze --json not byte-deterministic on captured store" >&2
        return 1
    }
    cargo test -q --offline --release -p osn-cli --test capture
    # Kept on failure (we never get here) for the artifact upload.
    rm -rf "$dir"
}

lint_steps() {
    run_step fmt cargo fmt --check
    run_step clippy cargo clippy --offline --no-deps --all-targets "${FIRST_PARTY[@]}" -- -D warnings
    run_step features-matrix features_matrix
    run_step doc-lint env RUSTDOCFLAGS="-D warnings" cargo doc -q --offline --no-deps "${FIRST_PARTY[@]}"
    run_step shellcheck shellcheck_scripts
}

test_steps() {
    run_step test cargo test -q --offline
    run_step test-simd cargo test -q --offline -p osn-analysis --features simd
    run_step doc-test cargo test -q --offline --doc
}

smoke_steps() {
    run_step tier-smoke tier_smoke
    # End-to-end daemon smoke, release profile: spawn `osnoise serve`
    # on an ephemeral port, drive every endpoint once from the Rust
    # catalog client, and assert the /runs/{id}/report bytes equal
    # what `osnoise analyze --json` writes (crates/cli/tests/serve.rs).
    run_step serve-smoke cargo test -q --offline --release -p osn-cli --test serve
    run_step capture-smoke capture_smoke
    if [[ "${OSN_BENCH_GATE:-0}" == "1" ]]; then
        run_step bench-gate scripts/bench_gate.sh
    fi
}

case "$MODE" in
    lint) lint_steps ;;
    test) test_steps ;;
    smoke) smoke_steps ;;
    all)
        lint_steps
        test_steps
        smoke_steps
        ;;
    *)
        echo "usage: scripts/ci.sh [lint|test|smoke|all]" >&2
        exit 2
        ;;
esac

echo "ci: $MODE OK (${SECONDS}s total)"
