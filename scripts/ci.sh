#!/usr/bin/env bash
# Repo-wide CI gate: formatting, lints, and the full test suite.
#
# Clippy runs with --no-deps over the first-party crates only — the
# vendored dependencies under vendor/ are pinned upstream sources and
# not held to this repo's lint bar.
set -euo pipefail
cd "$(dirname "$0")/.."

FIRST_PARTY=(
    -p osn-kernel
    -p osn-trace
    -p osn-store
    -p osn-analysis
    -p osn-workloads
    -p osn-core
    -p osn-ftq
    -p osn-paraver
    -p osn-bench
    -p osn-cli
    -p osnoise
)

cargo fmt --check
cargo clippy --offline --no-deps --all-targets "${FIRST_PARTY[@]}" -- -D warnings
cargo test -q

echo "ci: OK"
