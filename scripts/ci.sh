#!/usr/bin/env bash
# Repo-wide CI gate: formatting, lints, the full test suite, doc
# tests, and a doc-warning lint — each step individually timed so CI
# logs show where the minutes go.
#
# Clippy and the doc lint run over the first-party crates only — the
# vendored dependencies under vendor/ are pinned upstream sources and
# not held to this repo's lint bar.
#
# Set OSN_BENCH_GATE=1 to also run the benchmark regression gate
# (scripts/bench_gate.sh): reruns the bench suite and fails on >15%
# aggregate regression against the committed BENCH_PR*.json baselines.
set -euo pipefail
cd "$(dirname "$0")/.."

FIRST_PARTY=(
    -p osn-kernel
    -p osn-trace
    -p osn-store
    -p osn-analysis
    -p osn-workloads
    -p osn-core
    -p osn-ftq
    -p osn-paraver
    -p osn-bench
    -p osn-catalog
    -p osn-cli
    -p osnoise
)

STEP_T0=0
step_begin() {
    STEP_T0=$SECONDS
    echo "== ci: $1"
}
step_end() {
    echo "== ci: $1 OK ($((SECONDS - STEP_T0))s)"
}
run_step() {
    local name="$1"
    shift
    step_begin "$name"
    "$@"
    step_end "$name"
}

# Every first-party crate must build under every corner of the
# feature matrix — no default features, defaults, and all features —
# so a cfg-gated module can't silently rot in an untested combination.
features_matrix() {
    local flags
    for flags in --no-default-features "" --all-features; do
        # shellcheck disable=SC2086
        cargo check -q --offline --all-targets $flags "${FIRST_PARTY[@]}"
    done
}

run_step fmt cargo fmt --check
run_step clippy cargo clippy --offline --no-deps --all-targets "${FIRST_PARTY[@]}" -- -D warnings
run_step features-matrix features_matrix
run_step test cargo test -q --offline
run_step test-simd cargo test -q --offline -p osn-analysis --features simd

# Fast tiered-cluster smoke: a 512-rank sampled campaign through the
# release CLI must finish quickly, embed self-describing tier metadata
# in --json, and print the tier section in the text report.
tier_smoke() {
    cargo build -q --release --offline -p osn-cli
    local out
    out="$(mktemp -d)"
    target/release/osnoise cluster umt --nodes 512 --secs 1 --cpus 2 --seed 7 \
        --tier sampled:0.125 --json "$out/tier.json" > "$out/report.txt"
    local ok=0
    grep -q '"sample_fraction"' "$out/tier.json" \
        && grep -q '"validation"' "$out/tier.json" \
        && grep -q 'tier' "$out/report.txt" || ok=1
    if [[ $ok -ne 0 ]]; then
        echo "ci: tiered smoke: tier metadata missing from report" >&2
    fi
    rm -rf "$out"
    return $ok
}
run_step tier-smoke tier_smoke

# End-to-end daemon smoke, release profile: spawn `osnoise serve` on
# an ephemeral port, drive every endpoint once from the Rust catalog
# client, and assert the /runs/{id}/report bytes equal what
# `osnoise analyze --json` writes (crates/cli/tests/serve.rs).
run_step serve-smoke cargo test -q --offline --release -p osn-cli --test serve
run_step doc-test cargo test -q --offline --doc
run_step doc-lint env RUSTDOCFLAGS="-D warnings" cargo doc -q --offline --no-deps "${FIRST_PARTY[@]}"

if [[ "${OSN_BENCH_GATE:-0}" == "1" ]]; then
    run_step bench-gate scripts/bench_gate.sh
fi

echo "ci: OK (${SECONDS}s total)"
