#!/usr/bin/env bash
# Benchmark regression gate: rerun the bench suite and compare the
# fresh BENCH_PR*.json numbers against the committed baselines with
# the `bench_gate` comparator. Fails (nonzero exit) on >15% aggregate
# regression (geometric mean over every aggregate_* metric, honoring
# each metric's direction) or on any single metric collapsing below
# 70% of its baseline.
#
# The committed baselines are saved before the benches run and
# restored afterwards, so the working tree is left untouched no matter
# how the gate exits.
#
# Knobs: OSN_SECS / OSN_REPS forward to the bench binaries (defaults —
# the binaries' own, matching how the baselines were produced);
# OSN_GATE_THRESHOLD (default 0.85) and OSN_GATE_FLOOR (default 0.70)
# tune the comparator.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="$(mktemp -d)"
restore() {
    cp "$baseline"/BENCH_PR*.json . 2>/dev/null || true
    rm -rf "$baseline"
}
trap restore EXIT
cp BENCH_PR*.json "$baseline"/

cargo build -q --release --offline -p osn-bench

echo "== bench-gate: engine_throughput"
target/release/engine_throughput
echo "== bench-gate: analysis_throughput"
target/release/analysis_throughput
echo "== bench-gate: store_throughput"
target/release/store_throughput
echo "== bench-gate: cluster_throughput"
target/release/cluster_throughput
echo "== bench-gate: cluster_scale"
target/release/cluster_scale
echo "== bench-gate: catalog_throughput"
target/release/catalog_throughput
echo "== bench-gate: capture_overhead"
target/release/capture_overhead

target/release/bench_gate "$baseline" . \
    --threshold "${OSN_GATE_THRESHOLD:-0.85}" \
    --metric-floor "${OSN_GATE_FLOOR:-0.70}"
