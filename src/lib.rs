//! # osnoise — a quantitative analysis of OS noise
//!
//! A full Rust reproduction of *"A Quantitative Analysis of OS Noise"*
//! (Morari, Gioiosa, Wisniewski, Cazorla, Valero — IEEE IPDPS 2011):
//! the LTT NG-NOISE methodology for per-event OS-noise attribution,
//! rebuilt on a discrete-event compute-node simulator.
//!
//! This crate is a façade re-exporting the workspace:
//!
//! * [`kernel`] — the simulated Linux-2.6.33-class compute node
//!   (scheduler, demand paging, softirqs, NFS/rpciod I/O path).
//! * [`trace`] — the LTTng-style tracer: per-CPU lock-free ring
//!   buffers, binary wire format, overhead measurement.
//! * [`analysis`] — nesting-aware reconstruction, runnable-only noise
//!   accounting, per-event statistics, histograms, breakdowns,
//!   synthetic noise charts, disambiguation.
//! * [`store`] — chunked on-disk trace store: spill-to-disk recording,
//!   footer-indexed chunk files, out-of-core streamed analysis.
//! * [`catalog`] — trace catalog + HTTP query service over a
//!   directory of store files (`osnoise serve`).
//! * [`paraver`] — Paraver `.prv`/`.pcf`/`.row` and CSV exports.
//! * [`ftq`] — the FTQ microbenchmark (simulated and native).
//! * [`workloads`] — LLNL Sequoia behavioural models.
//! * [`core`] — campaign driver and paper-report assembly.
//!
//! ## Quick start
//!
//! ```
//! use osnoise::core::{run_app, ExperimentConfig};
//! use osnoise::kernel::time::Nanos;
//! use osnoise::workloads::App;
//!
//! let config = ExperimentConfig::paper(App::Sphot, Nanos::from_millis(200));
//! let run = run_app(config);
//! let noise = run.analysis.tasks[&run.ranks[0]].total_noise();
//! println!("rank 0 experienced {noise} of OS noise");
//! ```

pub use osn_analysis as analysis;
pub use osn_catalog as catalog;
pub use osn_core as core;
pub use osn_ftq as ftq;
pub use osn_kernel as kernel;
pub use osn_paraver as paraver;
pub use osn_store as store;
pub use osn_trace as trace;
pub use osn_workloads as workloads;
