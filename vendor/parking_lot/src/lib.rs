//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the upstream API shape this workspace uses: `lock()` /
//! `read()` / `write()` return guards directly (no poisoning `Result`).
//! A poisoned std lock simply hands back the inner guard — matching
//! parking_lot, which has no poisoning at all.

use std::sync::{self, TryLockError};

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    #[inline]
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    #[inline]
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
