//! Offline stand-in for `serde`.
//!
//! Instead of upstream's visitor-based zero-copy model, types convert
//! to and from a [`Value`] tree — the same data model JSON has. The
//! derive macros (feature `derive`, see `vendor/serde_derive`) emit
//! the externally-tagged encodings upstream serde uses, so documents
//! written by `serde_json` here look like the real thing and existing
//! `#[derive(Serialize, Deserialize)]` code compiles unchanged.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::BuildHasher;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Generic self-describing document tree (JSON data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map; JSON object.
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Deserialization error: a message plus the path-less context the
/// call sites here need (they only `unwrap`/`expect` or log it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }

    pub fn expected(what: &str, ty: &str) -> Self {
        DeError(format!("expected {what} while deserializing {ty}"))
    }

    pub fn unknown_variant(tag: &str, ty: &str) -> Self {
        DeError(format!("unknown variant `{tag}` for {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Support glue used by the generated derive code. Not a public API.
pub mod __private {
    use super::{DeError, Value};

    pub static NULL: Value = Value::Null;

    /// Field lookup: a missing key reads as `Null`, which makes
    /// `Option<T>` fields absent-tolerant (upstream behaviour) while
    /// every other type reports a type mismatch naming itself.
    pub fn field<'a>(map: &'a [(String, Value)], name: &str) -> &'a Value {
        map.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or(&NULL)
    }

    pub fn seq_item(seq: &[Value], idx: usize) -> Result<&Value, DeError> {
        seq.get(idx)
            .ok_or_else(|| DeError::msg(format!("sequence too short: no element {idx}")))
    }
}

// ---- scalar impls ----------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    _ => return Err(DeError::expected("unsigned integer", stringify!($t))),
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::msg(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::expected("signed integer", stringify!($t)))?,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    _ => return Err(DeError::expected("signed integer", stringify!($t))),
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::msg(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    // serde_json writes non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---- containers ------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("sequence", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = v.as_seq().ok_or_else(|| DeError::expected("sequence", "tuple"))?;
                Ok(($($name::from_value(
                    crate::__private::seq_item(s, $idx)?
                )?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Map keys serialize through their `Value` form: strings pass
/// through, integers render in decimal — the same convention
/// serde_json applies to integer-keyed maps.
fn key_to_string(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key type: {other:?}"),
    }
}

fn key_from_string<K: Deserialize>(s: &str) -> Result<K, DeError> {
    if let Ok(k) = K::from_value(&Value::Str(s.to_owned())) {
        return Ok(k);
    }
    if let Ok(n) = s.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::U64(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = s.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::I64(n)) {
            return Ok(k);
        }
    }
    if let Ok(b) = s.parse::<bool>() {
        if let Ok(k) = K::from_value(&Value::Bool(b)) {
            return Ok(k);
        }
    }
    Err(DeError::msg(format!("cannot interpret map key `{s}`")))
}

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k.to_value()), v.to_value()))
            .collect();
        // Hash iteration order is arbitrary; sort for stable output.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::expected("map", "HashMap"))?
            .iter()
            .map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_to_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::expected("map", "BTreeMap"))?
            .iter()
            .map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn option_null_convention() {
        let none: Option<u64> = None;
        assert!(none.to_value().is_null());
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::from_value(&Value::U64(4)).unwrap(), Some(4));
    }

    #[test]
    fn missing_field_reads_as_null() {
        let m = vec![("a".to_string(), Value::U64(1))];
        assert!(crate::__private::field(&m, "b").is_null());
        assert_eq!(
            u64::from_value(crate::__private::field(&m, "a")).unwrap(),
            1
        );
    }

    #[test]
    fn int_keyed_map_roundtrips() {
        let mut m: HashMap<u32, String> = HashMap::new();
        m.insert(3, "x".into());
        m.insert(11, "y".into());
        let v = m.to_value();
        let back: HashMap<u32, String> = HashMap::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tuples_are_seqs() {
        let t = (1u64, 2.5f64, "s".to_string());
        let back = <(u64, f64, String)>::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
    }
}
