//! Offline stand-in for the `bytes` crate.
//!
//! `Bytes` is a cheaply-cloneable immutable byte buffer (an `Arc<[u8]>`
//! plus a window), `BytesMut` a growable builder. Only the little-endian
//! accessor subset used by the trace wire format is provided; methods
//! panic on underflow exactly like upstream.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable shared byte buffer with O(1) `clone` and `slice`.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A sub-window sharing the same backing storage.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

/// Growable byte buffer (builder side).
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    pub fn clear(&mut self) {
        self.inner.clear();
    }

    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Freeze into an immutable `Bytes` (moves the storage; O(1)).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }

    /// Split the written bytes off, leaving this buffer empty but with
    /// equivalent capacity — the reuse primitive batched encoders lean
    /// on. (Upstream shares one allocation between the halves; this
    /// stand-in re-reserves, which preserves the amortization contract
    /// if not the zero-copy one.)
    pub fn split(&mut self) -> BytesMut {
        let cap = self.inner.capacity();
        BytesMut {
            inner: std::mem::replace(&mut self.inner, Vec::with_capacity(cap)),
        }
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// Read cursor over a byte source (subset).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    #[inline]
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "Buf underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    #[inline]
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Write cursor over a growable sink (subset).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    #[inline]
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_accessors() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u64_le(0xDEAD_BEEF_0123_4567);
        w.put_u16_le(0xABCD);
        w.put_u32_le(0x1234_5678);
        w.put_slice(b"xyz");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 8 + 2 + 4 + 3);
        assert_eq!(r.get_u64_le(), 0xDEAD_BEEF_0123_4567);
        assert_eq!(r.get_u16_le(), 0xABCD);
        assert_eq!(r.get_u32_le(), 0x1234_5678);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!r.has_remaining());
    }

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        assert_eq!(s.slice(1..).as_slice(), &[3, 4]);
        assert_eq!(b.len(), 6, "parent window unchanged");
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        let _ = b.get_u32_le();
    }

    #[test]
    fn split_keeps_capacity_for_reuse() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u32_le(7);
        let chunk = w.split();
        assert_eq!(chunk.len(), 4);
        assert_eq!(w.len(), 0);
        assert!(w.capacity() >= 60);
    }
}
