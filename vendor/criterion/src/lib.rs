//! Offline stand-in for `criterion`.
//!
//! Same `criterion_group!`/`criterion_main!`/`benchmark_group` API the
//! workspace's `harness = false` benches use, but measurement is a
//! simple calibrated wall-clock loop: warm up, scale the iteration
//! count to a ~50 ms window, report mean ns/iter (plus derived
//! throughput when `Throughput` was set). No statistics machinery, no
//! HTML reports — numbers print to stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const TARGET_WINDOW: Duration = Duration::from_millis(50);

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", id, None, f);
    }
}

pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sample count is irrelevant to the single-window measurement;
    /// accepted for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, id, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F>(group: &str, id: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // Calibration pass: one iteration to estimate per-iter cost.
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET_WINDOW.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000_000) as u64;
    b.iters = iters;
    f(&mut b);
    let ns = b.elapsed.as_nanos() as f64 / iters as f64;
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 * 1e9 / ns)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 * 1e9 / ns)
        }
        None => String::new(),
    };
    println!("{label:<40} {ns:>14.1} ns/iter{rate}");
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_prints() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10).throughput(Throughput::Elements(1));
        g.bench_function("noop", |b| b.iter(|| 1u64 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
