//! Offline stand-in for `serde_json`: renders and parses the vendored
//! serde's [`Value`] tree as RFC 8259 JSON. Numbers use Rust's
//! shortest round-trip float formatting; non-finite floats become
//! `null` (upstream behaviour).

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---- serialization ---------------------------------------------------

pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

pub fn to_vec_pretty<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

fn emit(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // {:?} keeps a ".0" or exponent so the value reparses
                // as a float; both forms are valid JSON numbers.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => emit_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                emit(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                emit_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(val, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- deserialization -------------------------------------------------

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_root(s.as_bytes())?;
    Ok(T::from_value(&value)?)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let value = parse_value_root(bytes)?;
    Ok(T::from_value(&value)?)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

fn parse_value_root(b: &[u8]) -> Result<Value> {
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(Error::new(format!("trailing bytes at offset {}", p.i)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<()> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                c as char, self.i
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at offset {}", self.i)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected byte at offset {}", self.i))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected , or ] at offset {}", self.i))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected , or }} at offset {}", self.i))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.b.get(self.i) == Some(&b'\\')
                                    && self.b.get(self.i + 1) == Some(&b'u')
                                {
                                    self.i += 2;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error::new("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte slice.
                    let start = self.i - 1;
                    let len = utf8_len(c);
                    let end = start + len;
                    let s = std::str::from_utf8(
                        self.b
                            .get(start..end)
                            .ok_or_else(|| Error::new("truncated utf-8"))?,
                    )
                    .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.i = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let s = self
            .b
            .get(self.i..self.i + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        self.i += 4;
        let s = std::str::from_utf8(s).map_err(|_| Error::new("bad \\u escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(3)),
            ("b".into(), Value::Seq(vec![Value::F64(1.5), Value::Null])),
            ("c".into(), Value::Str("x\"y\n".into())),
            ("d".into(), Value::I64(-9)),
            ("e".into(), Value::Bool(true)),
        ]);
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_parses() {
        let v = Value::Map(vec![("k".into(), Value::Seq(vec![Value::U64(1)]))]);
        let s = String::from_utf8(to_vec_pretty(&v).unwrap()).unwrap();
        assert!(s.contains('\n'));
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_formats_reparse_as_float() {
        let s = to_string(&1.0f64).unwrap();
        assert_eq!(s, "1.0");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 1.0);
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""A😀""#).unwrap();
        assert_eq!(v, Value::Str("A😀".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }
}
