//! Offline stand-in for `crossbeam`: only `utils::CachePadded`, which
//! is what the trace ring buffer uses to keep producer and consumer
//! cursors on separate cache lines.

pub mod utils {
    use core::ops::{Deref, DerefMut};

    /// Pads and aligns a value to (at least) one cache line. 128 bytes
    /// covers the adjacent-line prefetcher on modern x86 and the large
    /// line sizes on some aarch64 parts — same choice as upstream.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        #[inline]
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        #[inline]
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        #[inline]
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        #[inline]
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn padded_is_aligned_and_transparent() {
            let p = CachePadded::new(42u64);
            assert_eq!(*p, 42);
            assert_eq!(core::mem::align_of::<CachePadded<u64>>(), 128);
            assert_eq!(p.into_inner(), 42);
        }
    }
}
