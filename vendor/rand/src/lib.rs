//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: `SmallRng` (here a
//! xoshiro256++ generator, the same family the real 0.8 `SmallRng`
//! uses on 64-bit targets), `SeedableRng::seed_from_u64`, `RngCore`,
//! and the `Rng` convenience methods `gen::<f64>()` / `gen_range`.
//!
//! Determinism is the only contract the simulator relies on (streams
//! are compared run-to-run, never against the upstream crate), so
//! bit-compatibility with upstream `rand` is explicitly *not* a goal.

pub mod rngs {
    /// A small, fast, non-cryptographic PRNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro
            // authors for seeding from a single word.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }

        #[inline]
        pub(crate) fn next(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Core generator interface (subset).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl RngCore for rngs::SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seeding interface (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::SmallRng::from_u64_seed(seed)
    }
}

mod sealed {
    /// Types `Rng::gen` can produce.
    pub trait Sample: Sized {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Sample for f64 {
        #[inline]
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> f64 {
            // 53 random mantissa bits in [0, 1), as upstream does.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Sample for f32 {
        #[inline]
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Sample for u64 {
        #[inline]
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Sample for u32 {
        #[inline]
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Sample for bool {
        #[inline]
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Integer types `Rng::gen_range` supports.
    pub trait RangeSample: Copy + PartialOrd {
        fn range<R: super::RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    }

    macro_rules! impl_range_uint {
        ($($t:ty),*) => {$(
            impl RangeSample for $t {
                #[inline]
                fn range<R: super::RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    assert!(lo < hi, "gen_range: empty range");
                    let span = (hi as u128) - (lo as u128);
                    // Widening-multiply rejection-free mapping (Lemire,
                    // without the rejection pass: bias < 2^-64, far
                    // below anything a simulation can observe).
                    let x = rng.next_u64() as u128;
                    lo + ((x * span) >> 64) as $t
                }
            }
        )*};
    }
    impl_range_uint!(u8, u16, u32, u64, usize);
}

/// Convenience sampling methods (subset).
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: sealed::Sample>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T: sealed::RangeSample>(&mut self, range: std::ops::Range<T>) -> T {
        T::range(self, range.start, range.end)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::SmallRng::seed_from_u64(42);
        let mut b = rngs::SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut r = rngs::SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = rngs::SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = rngs::SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
