//! Offline stand-in for `proptest`.
//!
//! Covers the combinator surface this workspace's property tests use:
//! `proptest!`, `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`,
//! `any::<T>()`, range strategies, tuple strategies, `Just`,
//! `.prop_map`, `prop::collection::vec`, and `prop::sample::Index`.
//!
//! Differences from upstream: cases are generated from a fixed
//! per-test seed (derived from the test's module path and name), so
//! runs are fully deterministic, and failing cases are NOT shrunk —
//! the raw failing assertion fires directly.

use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

// ---- deterministic rng ----------------------------------------------

/// splitmix64 stream; statistically fine for test-case generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Stable per-(test, case) stream: FNV-1a over the test path mixed
    /// with the case index.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::from_seed(h.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)` via Lemire's widening multiply.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---- strategy core ---------------------------------------------------

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        strategy::Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod strategy {
    use super::{BoxedStrategy, Strategy, TestRng};

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice among same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weight bookkeeping")
        }
    }
}

// ---- primitive strategies --------------------------------------------

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as u64) - (self.start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                self.start + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(rng.below(span + 1) as i64) as $t
            }
        }
    )*};
}

impl_signed_ranges!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ---- any / Arbitrary -------------------------------------------------

pub trait Arbitrary: Sized {
    fn arbitrary_with(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_with(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_with(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_with(rng: &mut TestRng) -> Self {
        // Finite values only; upstream's any::<f64>() default also
        // excludes NaN/infinite unless asked for.
        rng.unit_f64() * 2e9 - 1e9
    }
}

pub struct ArbStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_with(rng)
    }
}

pub fn any<T: Arbitrary>() -> ArbStrategy<T> {
    ArbStrategy(PhantomData)
}

// ---- collections & samples ------------------------------------------

pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};

        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_exclusive: n + 1,
                }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec size range");
                SizeRange {
                    lo: r.start,
                    hi_exclusive: r.end,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi_exclusive: *r.end() + 1,
                }
            }
        }

        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi_exclusive - self.size.lo) as u64;
                let len = self.size.lo + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod sample {
        use crate::{Arbitrary, TestRng};

        /// An index into a collection of not-yet-known length.
        #[derive(Clone, Copy, Debug)]
        pub struct Index(u64);

        impl Index {
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary_with(rng: &mut TestRng) -> Self {
                Index(rng.next_u64())
            }
        }
    }
}

// ---- runner ----------------------------------------------------------

#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps opt-level=2 test runs
        // snappy while still exploring a useful cross-section.
        ProptestConfig { cases: 64 }
    }
}

// ---- macros ----------------------------------------------------------

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_fns! { @cfg ($cfg); $($rest)* }
    };
    (@cfg ($cfg:expr);) => {};
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = (3u16..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (0u64..=5).generate(&mut rng);
            assert!(w <= 5);
            let f = (50.0f64..100.0).generate(&mut rng);
            assert!((50.0..100.0).contains(&f));
        }
    }

    #[test]
    fn union_picks_all_arms() {
        let s = prop_oneof![2 => Just(1u8), 1 => Just(2u8)];
        let mut rng = TestRng::from_seed(11);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn vec_strategy_sizes() {
        let s = prop::collection::vec(any::<u8>(), 2..5);
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("x::y", 4);
        let mut b = TestRng::for_case("x::y", 4);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_roundtrip(x in 0u32..100, (a, b) in (any::<bool>(), 1u64..4)) {
            prop_assert!(x < 100);
            prop_assert!(b >= 1 && b < 4);
            let _ = a;
        }
    }
}
