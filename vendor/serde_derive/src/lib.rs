//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored serde's `Serialize`/`Deserialize`
//! (a `Value`-tree model, see `vendor/serde`) for the shapes this
//! workspace actually uses: named-field structs, tuple/newtype structs,
//! and enums with unit/tuple/struct variants. Encoding follows serde's
//! externally-tagged convention so the JSON is what upstream would
//! produce. No syn/quote — the input `TokenStream` is walked by hand,
//! which is enough because only field *names* and arities matter; the
//! generated code lets type inference recover the field types.
//!
//! Unsupported (panics at compile time): generic types, unions. The
//! `#[serde(transparent)]` attribute is accepted and is automatically
//! honoured for newtype structs, the only place the workspace uses it.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn ident_of(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

/// Skip `#[...]` attribute pairs starting at `*i`.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    while *i + 1 < toks.len() && is_punct(&toks[*i], '#') {
        *i += 2;
    }
}

/// Skip `pub` / `pub(crate)` style visibility at `*i`.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if ident_of(&toks[*i]).as_deref() == Some("pub") {
        *i += 1;
        if matches!(
            toks.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

/// Field names of a `{ ... }` body; types are skipped with `<>` depth
/// tracking so commas inside generics don't split fields.
fn parse_named_fields(g: &Group) -> Vec<String> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_vis(&toks, &mut i);
        let name = ident_of(&toks[i]).expect("serde derive: expected field name");
        fields.push(name);
        i += 1;
        assert!(
            is_punct(&toks[i], ':'),
            "serde derive: expected ':' after field"
        );
        i += 1;
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Arity of a `( ... )` tuple body (trailing comma tolerated).
fn count_tuple_fields(g: &Group) -> usize {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    for (idx, t) in toks.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if idx + 1 < toks.len() {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(g: &Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_of(&toks[i]).expect("serde derive: expected variant name");
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(vg))
            }
            Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(vg))
            }
            _ => VariantKind::Unit,
        };
        // Skip any `= discriminant` and the separating comma.
        while i < toks.len() && !is_punct(&toks[i], ',') {
            i += 1;
        }
        i += 1;
        out.push(Variant { name, kind });
    }
    out
}

fn parse_shape(input: TokenStream) -> Shape {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    loop {
        if is_punct(&toks[i], '#') {
            i += 2;
        } else if ident_of(&toks[i]).as_deref() == Some("pub") {
            skip_vis(&toks, &mut i);
        } else {
            break;
        }
    }
    let kw = ident_of(&toks[i]).expect("serde derive: expected struct/enum");
    i += 1;
    let name = ident_of(&toks[i]).expect("serde derive: expected type name");
    i += 1;
    if matches!(toks.get(i), Some(t) if is_punct(t, '<')) {
        panic!("serde derive stub: generic types are not supported (type {name})");
    }
    match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g),
                }
            }
            _ => Shape::UnitStruct { name },
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g),
            },
            _ => panic!("serde derive: malformed enum body"),
        },
        other => panic!("serde derive stub: cannot derive for `{other}` items"),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(vec![{}])\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Map(vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(__f{k})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Map(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    body.parse()
        .expect("serde derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::__private::field(__m, \"{f}\"))?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let __m = __v.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", \"{name}\"))?;\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|k| {
                    format!(
                        "::serde::Deserialize::from_value(::serde::__private::seq_item(__s, {k}usize)?)?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let __s = __v.as_seq().ok_or_else(|| ::serde::DeError::expected(\"sequence\", \"{name}\"))?;\n\
                         ::std::result::Result::Ok({name}({}))\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name})\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!(
                                    "::serde::Deserialize::from_value(::serde::__private::seq_item(__s, {k}usize)?)?"
                                ))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let __s = __inner.as_seq().ok_or_else(|| ::serde::DeError::expected(\"sequence\", \"{name}::{vn}\"))?;\n\
                                     ::std::result::Result::Ok({name}::{vn}({}))\n\
                                 }}",
                                items.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::__private::field(__fm, \"{f}\"))?"
                                ))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let __fm = __inner.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", \"{name}::{vn}\"))?;\n\
                                     ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {}\n\
                                 __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(__other, \"{name}\")),\n\
                             }},\n\
                             ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__entries[0];\n\
                                 match __tag.as_str() {{\n\
                                     {}\n\
                                     __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(__other, \"{name}\")),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::DeError::expected(\"variant tag\", \"{name}\")),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    body.parse()
        .expect("serde derive: generated Deserialize impl must parse")
}
