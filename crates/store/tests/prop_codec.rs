//! Property tests for the varint/delta chunk codec's edge cases:
//! max-length LEB128 encodings, zero-delta timestamp runs, and
//! truncated-varint tails hiding inside checksum-valid payloads (which
//! must surface as typed errors, never panics).

use proptest::prelude::*;

use osn_kernel::ids::{CpuId, Tid};
use osn_kernel::time::Nanos;
use osn_store::chunk::{decode_chunk, decode_chunk_columns, encode_chunk, ChunkMeta};
use osn_store::varint::{get_uvarint, put_uvarint};
use osn_store::StoreError;
use osn_trace::{Event, EventColumns, EventKind};

fn mark(t: u64, value: u64) -> Event {
    Event {
        t: Nanos(t),
        cpu: CpuId(0),
        tid: Tid(1),
        kind: EventKind::AppMark { mark: 1, value },
    }
}

/// Encode `events` compressed and return `(meta, payload)`.
fn compressed_payload(events: &[Event]) -> (ChunkMeta, Vec<u8>) {
    let mut payload = Vec::new();
    let header = encode_chunk(events, 0, true, &mut payload);
    (ChunkMeta::from_header(0, &header), payload)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every u64 round-trips through LEB128, the encoded length is the
    /// minimal ceil(bits/7), and a one-byte truncation of the encoding
    /// is rejected rather than misread.
    #[test]
    fn leb128_roundtrips_at_every_length(v in any::<u64>()) {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, v);
        let expect_len = if v == 0 { 1 } else { (70 - v.leading_zeros() as usize) / 7 };
        prop_assert_eq!(buf.len(), expect_len);
        prop_assert!(buf.len() <= 10, "LEB128 of u64 never exceeds 10 bytes");
        let mut pos = 0;
        prop_assert_eq!(get_uvarint(&buf, &mut pos), Some(v));
        prop_assert_eq!(pos, buf.len());
        let mut pos = 0;
        prop_assert_eq!(get_uvarint(&buf[..buf.len() - 1], &mut pos), None);
    }

    /// Zero-delta runs (bursts of records at the same nanosecond, as a
    /// tracer under overload produces) survive the delta predictor:
    /// each repeat costs exactly one zero byte and decodes losslessly.
    #[test]
    fn zero_delta_runs_roundtrip(
        t0 in any::<u64>(),
        run in 1usize..=64,
        value in any::<u64>(),
    ) {
        let events: Vec<Event> = (0..run).map(|i| mark(t0, value ^ i as u64)).collect();
        let (meta, payload) = compressed_payload(&events);
        let back = decode_chunk(&meta, &payload).expect("decode");
        prop_assert_eq!(&back, &events);
        let mut cols = EventColumns::new(CpuId(0));
        decode_chunk_columns(&meta, &payload, &mut cols).expect("columns");
        prop_assert!(cols.t.iter().all(|&t| t == t0));
        prop_assert_eq!(cols.events().collect::<Vec<_>>(), events);
    }

    /// A payload cut mid-varint — with `payload_len` and the checksum
    /// recomputed so the *chunk framing* is valid — must come back as a
    /// typed corrupt-chunk error from both decoders, never a panic or
    /// a silently short result. This models a recorder that died while
    /// `write(2)` was mid-payload and a footer rebuilt around the torn
    /// tail.
    #[test]
    fn truncated_varint_tail_is_a_typed_error(
        n in 2usize..=32,
        frac in 0.0f64..1.0,
    ) {
        let events: Vec<Event> = (0..n as u64)
            .map(|i| mark(i * 1000, u64::MAX - i))
            .collect();
        let (meta, payload) = compressed_payload(&events);
        // Cut strictly inside the payload (at least one byte lost).
        let cut = 1 + ((payload.len() - 1) as f64 * frac) as usize;
        let truncated = &payload[..cut.min(payload.len() - 1)];
        let mut meta = meta;
        meta.payload_len = truncated.len() as u32;

        match decode_chunk(&meta, truncated) {
            Err(StoreError::CorruptChunk { .. }) => {}
            other => prop_assert!(false, "event decode: want CorruptChunk, got {other:?}"),
        }
        let mut cols = EventColumns::new(CpuId(0));
        match decode_chunk_columns(&meta, truncated, &mut cols) {
            Err(StoreError::CorruptChunk { .. }) => {}
            other => prop_assert!(false, "column decode: want CorruptChunk, got {other:?}"),
        }
    }

    /// Timestamps near `u64::MAX` still round-trip: the delta codec's
    /// overflow check rejects nothing that a legal encoder produced.
    #[test]
    fn max_magnitude_timestamps_roundtrip(
        base in (u64::MAX - 10_000)..=u64::MAX,
        deltas in prop::collection::vec(0u64..=100, 1..=16),
    ) {
        let mut t = base.saturating_sub(deltas.iter().sum());
        let events: Vec<Event> = deltas
            .iter()
            .map(|&d| {
                t += d;
                mark(t, t)
            })
            .collect();
        let (meta, payload) = compressed_payload(&events);
        let back = decode_chunk(&meta, &payload).expect("decode");
        prop_assert_eq!(back, events);
    }
}
