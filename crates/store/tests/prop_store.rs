//! Property tests for the chunked store: lossless round-trips for
//! arbitrary valid traces across chunk sizes and codecs, and recovery
//! equivalence when only the footer is missing.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use osn_kernel::activity::Activity;
use osn_kernel::hooks::SwitchState;
use osn_kernel::ids::{CpuId, Tid};
use osn_kernel::time::Nanos;
use osn_store::writer::write_store;
use osn_store::{StoreOptions, StoreReader, TRAILER_BYTES};
use osn_trace::{Event, EventKind, Trace};

fn scratch_path() -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "osn-prop-store-{}-{}.osn",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn activity_strategy() -> impl Strategy<Value = Activity> {
    (1u16..=22).prop_map(|code| Activity::from_code(code).expect("valid code range"))
}

fn kind_strategy() -> impl Strategy<Value = EventKind> {
    prop_oneof![
        activity_strategy().prop_map(EventKind::KernelEnter),
        activity_strategy().prop_map(EventKind::KernelExit),
        (any::<u32>(), 0u16..=5, any::<u32>()).prop_map(|(p, s, n)| EventKind::SchedSwitch {
            prev: Tid(p),
            prev_state: SwitchState::from_code(s).expect("valid state range"),
            next: Tid(n),
        }),
        (any::<u32>(), any::<u32>()).prop_map(|(t, w)| EventKind::Wakeup {
            tid: Tid(t),
            waker: Tid(w),
        }),
        (any::<u32>(), any::<u64>()).prop_map(|(m, v)| EventKind::AppMark { mark: m, value: v }),
    ]
}

/// One CPU's stream: time-ordered events all carrying that CPU id
/// (stores are per-CPU, so the chunk reassigns the id on decode).
fn stream_strategy(cpu: u16) -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec((0u64..5_000, any::<u32>(), kind_strategy()), 0..300).prop_map(
        move |raw| {
            let mut t = 0u64;
            raw.into_iter()
                .map(|(dt, tid, kind)| {
                    t += dt;
                    let ctx = match kind {
                        EventKind::Wakeup { waker, .. } => waker,
                        EventKind::SchedSwitch { prev, .. } => prev,
                        _ => Tid(tid),
                    };
                    Event {
                        t: Nanos(t),
                        cpu: CpuId(cpu),
                        tid: ctx,
                        kind,
                    }
                })
                .collect()
        },
    )
}

fn trace_strategy() -> impl Strategy<Value = Trace> {
    (
        1usize..=4,
        stream_strategy(0),
        stream_strategy(1),
        stream_strategy(2),
        stream_strategy(3),
        prop::collection::vec(any::<u64>(), 4),
    )
        .prop_map(|(ncpus, s0, s1, s2, s3, mut lost)| {
            let mut streams = vec![s0, s1, s2, s3];
            streams.truncate(ncpus);
            lost.truncate(ncpus);
            Trace::from_streams(streams, lost)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// write → read is lossless for every chunk size and codec: the
    /// materialized trace equals the original, events and loss
    /// counters both.
    #[test]
    fn roundtrip_is_lossless(
        trace in trace_strategy(),
        chunk_capacity in 1usize..=64,
        compress in any::<bool>(),
        meta in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let path = scratch_path();
        let opts = StoreOptions::default()
            .with_chunk_capacity(chunk_capacity)
            .with_compress(compress);
        write_store(&path, &trace, &meta, opts).expect("write");

        let reader = StoreReader::open(&path).expect("open");
        prop_assert_eq!(reader.metadata(), &meta[..]);
        prop_assert_eq!(reader.events(), trace.events.len() as u64);
        let back = reader.read_trace().expect("read");
        prop_assert_eq!(&back.events, &trace.events);
        prop_assert_eq!(&back.lost[..trace.lost.len()], &trace.lost[..]);

        // Streaming the chunks yields the same per-CPU sequences.
        for c in 0..reader.ncpus() {
            let streamed: Vec<Event> = reader.cpu_stream(CpuId(c as u16)).collect();
            let direct: Vec<Event> =
                trace.cpu_events(CpuId(c as u16)).copied().collect();
            prop_assert_eq!(streamed, direct);
        }

        // The columnar cursor decodes to the same records, and every
        // block already carries the right CPU id.
        for c in 0..reader.ncpus() {
            let mut cursor = reader.column_chunks(CpuId(c as u16));
            let mut columnar: Vec<Event> = Vec::new();
            while let Some(block) = cursor.next_chunk() {
                let block = block.expect("valid store");
                prop_assert_eq!(block.cpu, CpuId(c as u16));
                columnar.extend(block.events());
            }
            let direct: Vec<Event> =
                trace.cpu_events(CpuId(c as u16)).copied().collect();
            prop_assert_eq!(columnar, direct);
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Stripping the footer + trailer (a crash before `finish`
    /// completed its final writes) loses only bookkeeping: recovery
    /// rescans the chunks and yields the same events.
    #[test]
    fn recover_rebuilds_index_without_footer(
        trace in trace_strategy(),
        chunk_capacity in 1usize..=64,
        compress in any::<bool>(),
    ) {
        let path = scratch_path();
        let opts = StoreOptions::default()
            .with_chunk_capacity(chunk_capacity)
            .with_compress(compress);
        write_store(&path, &trace, b"meta", opts).expect("write");

        let clean = StoreReader::open(&path).expect("open");
        let chunk_bytes: u64 = clean
            .chunks()
            .iter()
            .map(|m| osn_store::CHUNK_HEADER_BYTES as u64 + m.payload_len as u64)
            .sum();
        let expected_chunks = clean.chunks().len();
        drop(clean);

        // Truncate to exactly the chunk region (header + chunks).
        let bytes = std::fs::read(&path).unwrap();
        let cut = osn_store::FILE_HEADER_BYTES as u64 + chunk_bytes;
        prop_assert!(cut <= bytes.len() as u64 - TRAILER_BYTES as u64);
        std::fs::write(&path, &bytes[..cut as usize]).unwrap();

        prop_assert!(StoreReader::open(&path).is_err(), "strict open must fail");
        let (reader, report) = StoreReader::recover(&path).expect("recover");
        prop_assert!(!report.footer_ok);
        prop_assert_eq!(report.torn_chunks, 0);
        prop_assert_eq!(reader.chunks().len(), expected_chunks);
        let back = reader.read_trace().expect("read");
        prop_assert_eq!(&back.events, &trace.events);
        // The loss counters lived in the footer; without it they are
        // zero, and the metadata blob is gone.
        prop_assert!(reader.lost().iter().all(|&l| l == 0));
        prop_assert!(reader.metadata().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    /// Record → truncate at an arbitrary offset → recover: every byte
    /// of the truncated file is accounted for. The salvaged chunk
    /// region plus the reported dropped tail must tile the file
    /// exactly — no byte silently skipped, none double-counted — and
    /// what salvages is a per-CPU prefix of the original events.
    #[test]
    fn truncation_accounting_is_exact(
        trace in trace_strategy(),
        chunk_capacity in 1usize..=64,
        compress in any::<bool>(),
        cut_frac in 0.0f64..1.0,
    ) {
        let path = scratch_path();
        let opts = StoreOptions::default()
            .with_chunk_capacity(chunk_capacity)
            .with_compress(compress);
        write_store(&path, &trace, b"meta", opts).expect("write");

        let bytes = std::fs::read(&path).unwrap();
        let span = bytes.len() - osn_store::FILE_HEADER_BYTES;
        // Any offset from "just the file header" up to one byte short
        // of the full file — footer and trailer included in the range,
        // so torn-footer shapes are exercised too.
        let cut = osn_store::FILE_HEADER_BYTES + (cut_frac * span as f64) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let (reader, report) = StoreReader::recover(&path).expect("recover");
        let salvaged: u64 = reader
            .chunks()
            .iter()
            .map(|m| osn_store::CHUNK_HEADER_BYTES as u64 + m.payload_len as u64)
            .sum();
        if report.footer_ok {
            // Only a cut that preserved a checksummed trailer can
            // report an intact footer — then nothing was dropped.
            prop_assert!(report.clean(), "intact footer but damage: {:?}", report);
        } else {
            prop_assert_eq!(
                osn_store::FILE_HEADER_BYTES as u64 + salvaged + report.dropped_bytes,
                cut as u64,
                "salvaged + dropped must tile the file: {:?}",
                report
            );
        }

        // Whatever survived is a prefix of each CPU's original stream.
        let back = reader.read_trace().expect("read");
        for c in 0..reader.ncpus() {
            let got: Vec<Event> = back.cpu_events(CpuId(c as u16)).copied().collect();
            let orig: Vec<Event> = trace.cpu_events(CpuId(c as u16)).copied().collect();
            prop_assert!(got.len() <= orig.len());
            prop_assert_eq!(&got[..], &orig[..got.len()]);
        }
        let _ = std::fs::remove_file(&path);
    }
}
