//! Crash-recovery tests: a recorder that dies mid-write leaves a store
//! without a footer and possibly with a torn final chunk. `recover`
//! must salvage every intact chunk and charge the torn one to the
//! per-CPU loss counters — the same channel as ring-buffer drops.

use osn_kernel::activity::Activity;
use osn_kernel::ids::{CpuId, Tid};
use osn_kernel::time::Nanos;
use osn_store::writer::write_store;
use osn_store::{StoreOptions, StoreReader, CHUNK_HEADER_BYTES};
use osn_trace::{Event, EventKind, Trace};

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("osn-recovery-{tag}-{}.osn", std::process::id()))
}

/// `n` alternating kernel enter/exit events on one CPU.
fn synthetic_trace(n: u64) -> Trace {
    let events = (0..n)
        .map(|i| Event {
            t: Nanos(10 * i),
            cpu: CpuId(0),
            tid: Tid(1),
            kind: if i % 2 == 0 {
                EventKind::KernelEnter(Activity::TimerInterrupt)
            } else {
                EventKind::KernelExit(Activity::TimerInterrupt)
            },
        })
        .collect();
    Trace::from_streams(vec![events], vec![3])
}

#[test]
fn clean_file_recovers_clean() {
    let path = scratch("clean");
    let trace = synthetic_trace(100);
    write_store(
        &path,
        &trace,
        b"meta",
        StoreOptions::default().with_chunk_capacity(16),
    )
    .unwrap();

    let (reader, report) = StoreReader::recover(&path).unwrap();
    assert!(report.clean(), "clean store reported damage: {report:?}");
    assert!(report.footer_ok);
    let back = reader.read_trace().unwrap();
    assert_eq!(back.events, trace.events);
    assert_eq!(back.lost, vec![3]);
    assert_eq!(reader.metadata(), b"meta");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn torn_final_chunk_by_truncation() {
    let path = scratch("truncated");
    let trace = synthetic_trace(100);
    write_store(
        &path,
        &trace,
        b"meta",
        StoreOptions::default().with_chunk_capacity(16),
    )
    .unwrap();

    // Cut the file mid-way through the final chunk's payload — the
    // footer and trailer vanish with it (a crash before `finish`).
    let clean = StoreReader::open(&path).unwrap();
    let last = *clean.chunks().last().unwrap();
    let intact_events: u64 = clean.events() - last.count as u64;
    drop(clean);
    let bytes = std::fs::read(&path).unwrap();
    let cut = last.offset as usize + CHUNK_HEADER_BYTES + last.payload_len as usize / 2;
    std::fs::write(&path, &bytes[..cut]).unwrap();

    assert!(StoreReader::open(&path).is_err(), "strict open must fail");
    let (reader, report) = StoreReader::recover(&path).unwrap();
    assert_eq!(report.torn_chunks, 1);
    assert_eq!(report.torn_events, last.count as u64);
    assert!(!report.footer_ok);
    assert!(report.dropped_bytes > 0);

    // Everything before the torn chunk survives; the torn events ride
    // the loss counters into `Trace::lost`.
    assert_eq!(reader.events(), intact_events);
    let back = reader.read_trace().unwrap();
    assert_eq!(back.events, trace.events[..intact_events as usize]);
    assert_eq!(back.lost, vec![last.count as u64]);
    let _ = std::fs::remove_file(&path);
}

/// A file cut inside the footer block still *starts* with
/// `FOOTER_MAGIC` at the end of the chunk region, but its trailer (and
/// with it the footer checksum) is gone. The scan must not accept
/// those four bytes as a clean end: the broken footer is a dropped
/// garbage tail, every chunk still salvages.
#[test]
fn torn_footer_is_dropped_garbage_not_clean_end() {
    let path = scratch("torn-footer");
    let trace = synthetic_trace(100);
    write_store(
        &path,
        &trace,
        b"meta",
        StoreOptions::default().with_chunk_capacity(16),
    )
    .unwrap();

    let clean = StoreReader::open(&path).unwrap();
    let last = *clean.chunks().last().unwrap();
    let chunk_end = last.offset as usize + CHUNK_HEADER_BYTES + last.payload_len as usize;
    let total_events = clean.events();
    drop(clean);
    let bytes = std::fs::read(&path).unwrap();
    // Keep FOOTER_MAGIC plus a little footer debris, lose the rest.
    let cut = chunk_end + 12;
    assert!(cut < bytes.len(), "test file too small to tear the footer");
    std::fs::write(&path, &bytes[..cut]).unwrap();

    assert!(StoreReader::open(&path).is_err(), "strict open must fail");
    let (reader, report) = StoreReader::recover(&path).unwrap();
    assert!(!report.footer_ok);
    assert!(
        !report.clean(),
        "torn footer must not report clean: {report:?}"
    );
    assert_eq!(
        report.dropped_bytes,
        (cut - chunk_end) as u64,
        "the footer debris is the dropped tail"
    );
    assert_eq!(report.torn_chunks, 0, "every chunk is intact");

    // All events salvage; the recorded ring losses die with the footer.
    assert_eq!(reader.events(), total_events);
    let back = reader.read_trace().unwrap();
    assert_eq!(back.events, trace.events);
    assert_eq!(back.lost, vec![0]);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_final_chunk_checksum_salvages_footer() {
    let path = scratch("corrupt");
    let trace = synthetic_trace(100);
    write_store(
        &path,
        &trace,
        b"meta",
        StoreOptions::default().with_chunk_capacity(16),
    )
    .unwrap();

    // Flip one payload byte of the final chunk (bit rot, not
    // truncation): the footer stays intact.
    let clean = StoreReader::open(&path).unwrap();
    let last = *clean.chunks().last().unwrap();
    let intact_events: u64 = clean.events() - last.count as u64;
    drop(clean);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[last.offset as usize + CHUNK_HEADER_BYTES] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();

    let (reader, report) = StoreReader::recover(&path).unwrap();
    assert_eq!(report.torn_chunks, 1);
    assert_eq!(report.torn_events, last.count as u64);
    assert!(report.footer_ok, "intact footer must be salvaged");

    // Footer metadata and loss counters survive; the torn chunk's
    // events are added on top of the recorded ring losses.
    assert_eq!(reader.metadata(), b"meta");
    assert_eq!(reader.lost(), &[3 + last.count as u64]);
    let back = reader.read_trace().unwrap();
    assert_eq!(back.events, trace.events[..intact_events as usize]);
    let _ = std::fs::remove_file(&path);
}
