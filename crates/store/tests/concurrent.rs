//! Concurrent-reader property tests: a [`StoreReader`] is a shared
//! read-only handle, so N threads streaming, range-slicing, and
//! materializing the same store must each see exactly what a
//! sequential walk sees — including on a store that needed recovery
//! from a torn file — and the chunk residency gauge must stay within
//! the per-stream bound.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use osn_kernel::activity::Activity;
use osn_kernel::hooks::SwitchState;
use osn_kernel::ids::{CpuId, Tid};
use osn_kernel::time::Nanos;
use osn_store::writer::write_store;
use osn_store::{StoreOptions, StoreReader, FILE_HEADER_BYTES};
use osn_trace::{Event, EventKind, Trace};

fn scratch_path() -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "osn-concurrent-{}-{}.osn",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn activity_strategy() -> impl Strategy<Value = Activity> {
    (1u16..=22).prop_map(|code| Activity::from_code(code).expect("valid code range"))
}

fn kind_strategy() -> impl Strategy<Value = EventKind> {
    prop_oneof![
        activity_strategy().prop_map(EventKind::KernelEnter),
        activity_strategy().prop_map(EventKind::KernelExit),
        (any::<u32>(), 0u16..=5, any::<u32>()).prop_map(|(p, s, n)| EventKind::SchedSwitch {
            prev: Tid(p),
            prev_state: SwitchState::from_code(s).expect("valid state range"),
            next: Tid(n),
        }),
        (any::<u32>(), any::<u32>()).prop_map(|(t, w)| EventKind::Wakeup {
            tid: Tid(t),
            waker: Tid(w),
        }),
    ]
}

fn stream_strategy(cpu: u16) -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec((0u64..5_000, any::<u32>(), kind_strategy()), 0..200).prop_map(
        move |raw| {
            let mut t = 0u64;
            raw.into_iter()
                .map(|(dt, tid, kind)| {
                    t += dt;
                    let ctx = match kind {
                        EventKind::Wakeup { waker, .. } => waker,
                        EventKind::SchedSwitch { prev, .. } => prev,
                        _ => Tid(tid),
                    };
                    Event {
                        t: Nanos(t),
                        cpu: CpuId(cpu),
                        tid: ctx,
                        kind,
                    }
                })
                .collect()
        },
    )
}

fn trace_strategy() -> impl Strategy<Value = Trace> {
    (
        1usize..=4,
        stream_strategy(0),
        stream_strategy(1),
        stream_strategy(2),
        stream_strategy(3),
        prop::collection::vec(any::<u64>(), 4),
    )
        .prop_map(|(ncpus, s0, s1, s2, s3, mut lost)| {
            let mut streams = vec![s0, s1, s2, s3];
            streams.truncate(ncpus);
            lost.truncate(ncpus);
            Trace::from_streams(streams, lost)
        })
}

const THREADS: usize = 4;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// N threads hammering one shared reader — full streams, range
    /// slices, and full k-way-merged traces — all observe exactly the
    /// sequential reference, whether the store opened clean or was
    /// recovered from a torn file.
    #[test]
    fn concurrent_readers_match_sequential(
        trace in trace_strategy(),
        chunk_capacity in 1usize..=32,
        compress in any::<bool>(),
        lo_frac in 0.0f64..1.0,
        span_frac in 0.0f64..1.0,
        torn in any::<bool>(),
        cut_frac in 0.5f64..1.0,
    ) {
        let path = scratch_path();
        let opts = StoreOptions::default()
            .with_chunk_capacity(chunk_capacity)
            .with_compress(compress);
        write_store(&path, &trace, b"concurrent-meta", opts).expect("write");

        let reader = if torn {
            // A crash mid-write: keep the header plus an arbitrary
            // prefix of the rest. Whatever recovery salvages is the
            // ground truth the concurrent walks must agree on.
            let bytes = std::fs::read(&path).unwrap();
            let body = bytes.len() - FILE_HEADER_BYTES;
            let cut = FILE_HEADER_BYTES + (body as f64 * cut_frac) as usize;
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let (reader, _report) = StoreReader::recover(&path).expect("recover");
            reader
        } else {
            StoreReader::open(&path).expect("open")
        };
        let reader = Arc::new(reader);
        let ncpus = reader.ncpus();

        // Sequential reference walks.
        let full: Vec<Vec<Event>> = (0..ncpus)
            .map(|c| reader.cpu_stream(CpuId(c as u16)).collect())
            .collect();
        let (t0, t1) = match reader.span() {
            Some((lo, hi)) => {
                let width = hi.as_nanos() - lo.as_nanos();
                let start = lo.as_nanos() + (width as f64 * lo_frac) as u64;
                let span = ((width as f64) * span_frac) as u64;
                (Nanos(start), Nanos(start.saturating_add(span).max(start)))
            }
            None => (Nanos(0), Nanos(0)),
        };
        let in_range = |e: &Event| e.t >= t0 && e.t <= t1;
        let sliced: Vec<Vec<Event>> = (0..ncpus)
            .map(|c| {
                reader
                    .cpu_stream_range(CpuId(c as u16), Some((t0, t1)))
                    .filter(in_range)
                    .collect()
            })
            .collect();
        let merged = reader.read_trace().expect("read").events;

        // The index seek may only skip chunks, never events: a range
        // stream filtered to [t0, t1] equals the filtered full walk.
        for c in 0..ncpus {
            let reference: Vec<Event> = full[c].iter().filter(|e| in_range(e)).copied().collect();
            prop_assert_eq!(&sliced[c], &reference, "cpu {} range seek lost events", c);
        }

        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let reader = Arc::clone(&reader);
                let full = &full;
                let sliced = &sliced;
                let merged = &merged;
                s.spawn(move || {
                    for c in 0..ncpus {
                        let stream: Vec<Event> =
                            reader.cpu_stream(CpuId(c as u16)).collect();
                        assert_eq!(&stream, &full[c], "concurrent full stream diverged");
                        let slice: Vec<Event> = reader
                            .cpu_stream_range(CpuId(c as u16), Some((t0, t1)))
                            .filter(in_range)
                            .collect();
                        assert_eq!(&slice, &sliced[c], "concurrent slice diverged");
                    }
                    let trace = reader.read_trace().expect("concurrent read_trace");
                    assert_eq!(&trace.events, merged, "concurrent merge diverged");
                });
            }
        });

        // Every stream released its chunk; the high-water mark is
        // bounded by one resident chunk per concurrently live stream
        // (each thread's k-way merge holds one per CPU).
        let snap = reader.stats();
        prop_assert_eq!(snap.resident, 0);
        prop_assert!(
            snap.peak_resident <= (THREADS + 1) * ncpus.max(1),
            "peak residency {} exceeds {} streams",
            snap.peak_resident,
            (THREADS + 1) * ncpus.max(1)
        );
        prop_assert_eq!(snap.decode_errors, 0);
        let _ = std::fs::remove_file(&path);
    }
}
