//! Reading side of the store: strict opening via the footer index
//! ([`StoreReader::open`]), truncation-tolerant opening via a forward
//! chunk scan ([`StoreReader::recover`]), full materialization back to
//! a [`Trace`], and the bounded-memory per-CPU chunk cursor
//! ([`CpuStream`]) that the streamed analysis path consumes.

use std::fs::File;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use osn_kernel::ids::CpuId;
use osn_kernel::time::Nanos;
use osn_trace::wire::fnv1a64;
use osn_trace::{Event, EventColumns, Trace};

use crate::chunk::{
    decode_chunk, decode_chunk_columns, ChunkHeader, ChunkMeta, CHUNK_HEADER_BYTES,
};
use crate::mmap::Mmap;
use crate::{
    StoreError, END_MAGIC, FILE_HEADER_BYTES, FILE_MAGIC, FOOTER_MAGIC, STORE_VERSION,
    TRAILER_BYTES,
};

/// Bytes per footer-index entry.
const INDEX_ENTRY_BYTES: usize = 36;

/// Shared gauge of decoded-chunk residency. Every [`CpuStream`] holds
/// at most one decoded chunk; `peak_resident` across all concurrent
/// streams is therefore bounded by the number of streams — the
/// invariant the out-of-core analysis differential test asserts.
#[derive(Debug, Default)]
pub struct ChunkStats {
    resident: AtomicUsize,
    peak_resident: AtomicUsize,
    decoded: AtomicUsize,
    decode_errors: AtomicUsize,
}

impl ChunkStats {
    fn acquire(&self) {
        let now = self.resident.fetch_add(1, Ordering::AcqRel) + 1;
        self.peak_resident.fetch_max(now, Ordering::AcqRel);
    }

    fn release(&self) {
        self.resident.fetch_sub(1, Ordering::AcqRel);
    }

    fn snapshot(&self) -> ChunkStatsSnapshot {
        ChunkStatsSnapshot {
            resident: self.resident.load(Ordering::Acquire),
            peak_resident: self.peak_resident.load(Ordering::Acquire),
            decoded: self.decoded.load(Ordering::Acquire),
            decode_errors: self.decode_errors.load(Ordering::Acquire),
        }
    }
}

/// Point-in-time view of a reader's chunk accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkStatsSnapshot {
    /// Decoded chunks currently held by live [`CpuStream`]s.
    pub resident: usize,
    /// High-water mark of `resident` since the last reset.
    pub peak_resident: usize,
    /// Total chunks decoded (streams + random access).
    pub decoded: usize,
    /// Chunks that failed validation during streaming (a poisoned
    /// stream ends early; callers must treat nonzero as failure).
    pub decode_errors: usize,
}

/// What [`StoreReader::recover`] had to do to open the file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Chunks dropped because their payload was short or failed its
    /// checksum (with append-only writes: at most the final chunk).
    pub torn_chunks: usize,
    /// Events lost with those chunks, as declared by their headers
    /// (charged into the per-CPU `lost` counters).
    pub torn_events: u64,
    /// File bytes after the last valid chunk that were discarded.
    pub dropped_bytes: u64,
    /// Whether the footer block itself was intact (loss counters and
    /// metadata survive only if it was).
    pub footer_ok: bool,
}

impl RecoveryReport {
    /// True when the file needed no repair at all.
    pub fn clean(&self) -> bool {
        self.torn_chunks == 0 && self.dropped_bytes == 0 && self.footer_ok
    }
}

struct FileHeader {
    ncpus: usize,
    chunk_capacity: usize,
}

/// The opened file plus its (optional) read-only memory map, shared by
/// the reader and every cursor it hands out.
///
/// When the map is present, chunk images are borrowed straight out of
/// the mapped file — header parse, checksum, and payload decode all
/// run over the mapped bytes with no intermediate copy. When mapping
/// fails (exotic filesystems, resource limits) every access falls back
/// to bounded `pread`s into a scratch buffer, preserving the
/// bounded-memory contract rather than slurping the file into RAM.
#[derive(Debug)]
struct StoreData {
    file: File,
    map: Option<Mmap>,
}

impl StoreData {
    /// The raw bytes of one chunk (header + payload): a zero-copy
    /// slice of the memory map when available, otherwise a `pread`
    /// into `scratch`.
    fn chunk_bytes<'a>(
        &'a self,
        meta: &ChunkMeta,
        scratch: &'a mut Vec<u8>,
    ) -> Result<&'a [u8], StoreError> {
        let len = CHUNK_HEADER_BYTES + meta.payload_len as usize;
        let start = meta.offset as usize;
        if let Some(map) = &self.map {
            if let Some(bytes) = map.as_slice().get(start..start + len) {
                return Ok(bytes);
            }
            return Err(StoreError::CorruptChunk {
                offset: meta.offset,
                reason: "chunk beyond mapped file",
            });
        }
        scratch.clear();
        scratch.resize(len, 0);
        self.file.read_exact_at(scratch, meta.offset)?;
        Ok(scratch)
    }
}

struct Footer {
    /// File offset the footer block begins at (validated against the
    /// trailer's length field and checksum).
    start: u64,
    lost: Vec<u64>,
    meta: Vec<u8>,
    chunks: Vec<ChunkMeta>,
}

/// Random-access view of a store file.
pub struct StoreReader {
    data: Arc<StoreData>,
    ncpus: usize,
    chunk_capacity: usize,
    lost: Vec<u64>,
    meta: Vec<u8>,
    /// All chunks in file (= per-CPU time) order.
    chunks: Vec<ChunkMeta>,
    /// Positions into `chunks` per CPU, time-ordered.
    per_cpu: Vec<Vec<u32>>,
    stats: Arc<ChunkStats>,
}

impl StoreReader {
    /// Open a completely written store via its footer index. Fails
    /// with a typed error on any damage; use [`StoreReader::recover`]
    /// to salvage a torn file.
    pub fn open(path: &Path) -> Result<StoreReader, StoreError> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let header = read_file_header(&file)?;
        let footer = parse_footer(&file, file_len, header.ncpus)?;
        Self::assemble(file, header, footer.lost, footer.meta, footer.chunks)
    }

    /// Whether chunk reads are served from a memory map (false only
    /// when `mmap` failed at open and the reader fell back to `pread`).
    #[inline]
    pub fn is_mapped(&self) -> bool {
        self.data.map.is_some()
    }

    /// Open a possibly torn store by scanning chunks forward from the
    /// file header, validating each payload checksum. A torn final
    /// chunk (short read or checksum failure — a crashed recorder) is
    /// dropped and its events are charged to the per-CPU loss
    /// counters, so downstream accounting sees them on the same
    /// channel as ring-buffer drops. The footer, when intact, still
    /// supplies loss counters and metadata.
    pub fn recover(path: &Path) -> Result<(StoreReader, RecoveryReport), StoreError> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let header = read_file_header(&file)?;
        let mut report = RecoveryReport::default();
        let mut chunks: Vec<ChunkMeta> = Vec::new();
        let mut torn_lost = vec![0u64; header.ncpus];

        // Validate the footer once, up front. The chunk scan may only
        // terminate "cleanly" at a position where a *checksummed*
        // footer actually begins — four garbage bytes that happen to
        // equal `FOOTER_MAGIC` (a torn footer, or payload debris after
        // the last valid chunk) must instead be accounted as a dropped
        // tail, not silently accepted as the end of the file.
        let footer = parse_footer(&file, file_len, header.ncpus).ok();

        let mut pos = FILE_HEADER_BYTES as u64;
        loop {
            if pos + 4 > file_len {
                report.dropped_bytes = file_len - pos;
                break;
            }
            let mut magic = [0u8; 4];
            file.read_exact_at(&mut magic, pos)?;
            if u32::from_le_bytes(magic) == FOOTER_MAGIC
                && footer.as_ref().is_some_and(|f| f.start == pos)
            {
                break; // a validated footer starts here: clean end of the chunk region
            }
            if pos + CHUNK_HEADER_BYTES as u64 > file_len {
                report.dropped_bytes = file_len - pos;
                break;
            }
            let mut raw = [0u8; CHUNK_HEADER_BYTES];
            file.read_exact_at(&mut raw, pos)?;
            let Ok(h) = ChunkHeader::parse(&raw) else {
                // Not a chunk header: garbage tail of unknown extent.
                report.dropped_bytes = file_len - pos;
                break;
            };
            let torn = |report: &mut RecoveryReport, torn_lost: &mut Vec<u64>| {
                report.torn_chunks += 1;
                report.torn_events += h.count as u64;
                if (h.cpu as usize) < torn_lost.len() {
                    torn_lost[h.cpu as usize] += h.count as u64;
                }
                report.dropped_bytes = file_len - pos;
            };
            if h.cpu as usize >= header.ncpus
                || pos + (CHUNK_HEADER_BYTES + h.payload_len as usize) as u64 > file_len
            {
                torn(&mut report, &mut torn_lost);
                break;
            }
            let mut payload = vec![0u8; h.payload_len as usize];
            file.read_exact_at(&mut payload, pos + CHUNK_HEADER_BYTES as u64)?;
            if fnv1a64(&payload) != h.checksum {
                torn(&mut report, &mut torn_lost);
                break;
            }
            chunks.push(ChunkMeta::from_header(pos, &h));
            pos += (CHUNK_HEADER_BYTES + h.payload_len as usize) as u64;
        }

        // The footer may still be intact (e.g. mid-file bit rot rather
        // than truncation); salvage loss counters and metadata if so.
        let (mut lost, meta) = match footer {
            Some(footer) => {
                report.footer_ok = true;
                (footer.lost, footer.meta)
            }
            None => (vec![0u64; header.ncpus], Vec::new()),
        };
        for (slot, torn) in lost.iter_mut().zip(&torn_lost) {
            *slot += torn;
        }
        let reader = Self::assemble(file, header, lost, meta, chunks)?;
        Ok((reader, report))
    }

    fn assemble(
        file: File,
        header: FileHeader,
        lost: Vec<u64>,
        meta: Vec<u8>,
        chunks: Vec<ChunkMeta>,
    ) -> Result<StoreReader, StoreError> {
        let mut per_cpu: Vec<Vec<u32>> = (0..header.ncpus).map(|_| Vec::new()).collect();
        for (i, m) in chunks.iter().enumerate() {
            let c = m.cpu as usize;
            if c >= header.ncpus {
                return Err(StoreError::CorruptChunk {
                    offset: m.offset,
                    reason: "cpu out of range",
                });
            }
            if let Some(&prev) = per_cpu[c].last() {
                if chunks[prev as usize].t_last > m.t_first {
                    return Err(StoreError::CorruptChunk {
                        offset: m.offset,
                        reason: "chunks out of time order",
                    });
                }
            }
            per_cpu[c].push(i as u32);
        }
        // Map the file for zero-copy chunk access; fall back to pread
        // silently if the platform refuses (the map is an optimization,
        // not a correctness requirement).
        let map = Mmap::map(&file).ok();
        Ok(StoreReader {
            data: Arc::new(StoreData { file, map }),
            ncpus: header.ncpus,
            chunk_capacity: header.chunk_capacity,
            lost,
            meta,
            chunks,
            per_cpu,
            stats: Arc::new(ChunkStats::default()),
        })
    }

    #[inline]
    pub fn ncpus(&self) -> usize {
        self.ncpus
    }

    #[inline]
    pub fn chunk_capacity(&self) -> usize {
        self.chunk_capacity
    }

    /// Per-CPU loss counters (ring drops, plus torn-chunk events when
    /// opened via [`StoreReader::recover`]).
    #[inline]
    pub fn lost(&self) -> &[u64] {
        &self.lost
    }

    /// The opaque metadata blob attached at write time.
    #[inline]
    pub fn metadata(&self) -> &[u8] {
        &self.meta
    }

    /// All chunk index entries, in file order.
    #[inline]
    pub fn chunks(&self) -> &[ChunkMeta] {
        &self.chunks
    }

    /// Total events across all chunks (excluding lost).
    pub fn events(&self) -> u64 {
        self.chunks.iter().map(|m| m.count as u64).sum()
    }

    /// Time span covered by the stored chunks.
    pub fn span(&self) -> Option<(Nanos, Nanos)> {
        let first = self.chunks.iter().map(|m| m.t_first).min()?;
        let last = self.chunks.iter().map(|m| m.t_last).max()?;
        Some((first, last))
    }

    /// Chunk accounting snapshot (see [`ChunkStatsSnapshot`]).
    pub fn stats(&self) -> ChunkStatsSnapshot {
        self.stats.snapshot()
    }

    /// Index lookup: the chunks of `cpu` overlapping `[lo, hi]`, in
    /// time order — two binary searches over the footer index, no file
    /// access. With `range = None`, all of the CPU's chunks.
    pub fn chunks_for(
        &self,
        cpu: CpuId,
        range: Option<(Nanos, Nanos)>,
    ) -> impl Iterator<Item = &ChunkMeta> + '_ {
        let positions = self
            .per_cpu
            .get(cpu.index())
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        let window = match range {
            None => positions,
            Some((lo, hi)) => {
                // Per-CPU chunks are time-ordered with nondecreasing
                // t_first *and* t_last, so the overlap set is a
                // contiguous run.
                let start = positions.partition_point(|&i| self.chunks[i as usize].t_last < lo);
                let end = positions.partition_point(|&i| self.chunks[i as usize].t_first <= hi);
                &positions[start..end.max(start)]
            }
        };
        window.iter().map(|&i| &self.chunks[i as usize])
    }

    /// Fetch and decode one chunk (random access; checksum-verified).
    pub fn read_chunk(&self, meta: &ChunkMeta) -> Result<Vec<Event>, StoreError> {
        let events = fetch_chunk(&self.data, meta)?;
        self.stats.decoded.fetch_add(1, Ordering::AcqRel);
        Ok(events)
    }

    /// A bounded-memory cursor over one CPU's events: holds at most
    /// one decoded chunk at a time (tracked by the reader's
    /// [`ChunkStats`]). A chunk that fails validation poisons the
    /// stream: it ends early and `stats().decode_errors` goes nonzero.
    pub fn cpu_stream(&self, cpu: CpuId) -> CpuStream {
        self.cpu_stream_range(cpu, None)
    }

    /// Like [`StoreReader::cpu_stream`], but seeded only with the
    /// chunks whose `[t_first, t_last]` span overlaps `[lo, hi]` (via
    /// the [`StoreReader::chunks_for`] index lookup — no file access to
    /// skip a chunk). Events outside the range at the edges of the
    /// first/last chunk are still yielded; callers filter by timestamp.
    /// Same bounded-memory contract: at most one decoded chunk
    /// resident, tracked by the reader's [`ChunkStats`].
    pub fn cpu_stream_range(&self, cpu: CpuId, range: Option<(Nanos, Nanos)>) -> CpuStream {
        let metas: Vec<ChunkMeta> = self.chunks_for(cpu, range).copied().collect();
        CpuStream {
            data: Arc::clone(&self.data),
            metas,
            next_chunk: 0,
            buf: Vec::new(),
            pos: 0,
            resident: false,
            stats: Arc::clone(&self.stats),
        }
    }

    /// A bounded-memory *columnar* cursor over one CPU's chunks: each
    /// call to [`ColumnChunks::next_chunk`] decodes the next chunk —
    /// straight out of the memory map when available — into a reused
    /// [`EventColumns`] block. This is the zero-copy analysis path: no
    /// `Event` structs are materialized, and one block's worth of
    /// columns is the only resident decoded state (tracked by the
    /// reader's [`ChunkStats`], same contract as
    /// [`StoreReader::cpu_stream`]).
    pub fn column_chunks(&self, cpu: CpuId) -> ColumnChunks {
        let metas: Vec<ChunkMeta> = self.chunks_for(cpu, None).copied().collect();
        ColumnChunks {
            data: Arc::clone(&self.data),
            metas,
            next: 0,
            cols: EventColumns::new(cpu),
            scratch: Vec::new(),
            resident: false,
            poisoned: false,
            stats: Arc::clone(&self.stats),
        }
    }

    /// Materialize the full trace — the inverse of
    /// [`crate::writer::write_store`], byte-identical to the in-memory
    /// collection path: per-CPU chunk streams are k-way merged exactly
    /// like `TraceSession::stop` merges its rings.
    pub fn read_trace(&self) -> Result<Trace, StoreError> {
        let mut streams: Vec<Vec<Event>> = Vec::with_capacity(self.ncpus);
        for c in 0..self.ncpus {
            let positions = &self.per_cpu[c];
            let total: usize = positions
                .iter()
                .map(|&i| self.chunks[i as usize].count as usize)
                .sum();
            let mut stream = Vec::with_capacity(total);
            for &i in positions {
                stream.extend(self.read_chunk(&self.chunks[i as usize])?);
            }
            streams.push(stream);
        }
        Ok(Trace::from_streams(streams, self.lost.clone()))
    }
}

/// A bounded-memory iterator over one CPU's stored events. See
/// [`StoreReader::cpu_stream`].
pub struct CpuStream {
    data: Arc<StoreData>,
    metas: Vec<ChunkMeta>,
    next_chunk: usize,
    buf: Vec<Event>,
    pos: usize,
    resident: bool,
    stats: Arc<ChunkStats>,
}

impl CpuStream {
    /// Chunks this stream was seeded with (for range streams: only the
    /// chunks overlapping the requested window — the decode budget).
    pub fn chunk_count(&self) -> usize {
        self.metas.len()
    }

    /// Total events this stream will yield if no chunk is corrupt.
    pub fn remaining_events(&self) -> u64 {
        let buffered = (self.buf.len() - self.pos) as u64;
        self.metas[self.next_chunk..]
            .iter()
            .map(|m| m.count as u64)
            .sum::<u64>()
            + buffered
    }

    fn release(&mut self) {
        if self.resident {
            self.stats.release();
            self.resident = false;
        }
        self.buf.clear();
        self.pos = 0;
    }
}

impl Iterator for CpuStream {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        loop {
            if self.pos < self.buf.len() {
                let e = self.buf[self.pos];
                self.pos += 1;
                return Some(e);
            }
            self.release();
            if self.next_chunk >= self.metas.len() {
                return None;
            }
            let meta = self.metas[self.next_chunk];
            self.next_chunk += 1;
            match fetch_chunk(&self.data, &meta) {
                Ok(events) => {
                    self.stats.decoded.fetch_add(1, Ordering::AcqRel);
                    self.stats.acquire();
                    self.resident = true;
                    self.buf = events;
                    self.pos = 0;
                }
                Err(_) => {
                    // Poison: record and end the stream. Consumers
                    // check `decode_errors` after draining.
                    self.stats.decode_errors.fetch_add(1, Ordering::AcqRel);
                    self.next_chunk = self.metas.len();
                    return None;
                }
            }
        }
    }
}

impl Drop for CpuStream {
    fn drop(&mut self) {
        self.release();
    }
}

/// A bounded-memory columnar cursor over one CPU's chunks. See
/// [`StoreReader::column_chunks`].
pub struct ColumnChunks {
    data: Arc<StoreData>,
    metas: Vec<ChunkMeta>,
    next: usize,
    cols: EventColumns,
    scratch: Vec<u8>,
    resident: bool,
    poisoned: bool,
    stats: Arc<ChunkStats>,
}

impl ColumnChunks {
    /// Total events across the chunks not yet decoded.
    pub fn remaining_events(&self) -> u64 {
        self.metas[self.next..].iter().map(|m| m.count as u64).sum()
    }

    /// Decode the next chunk into the reused column block and lend it
    /// out. `None` when the CPU's chunks are exhausted; an `Err` item
    /// (recorded in `stats().decode_errors`) ends the cursor — later
    /// calls return `None`.
    #[allow(clippy::should_implement_trait)] // lending cursor, not an Iterator
    pub fn next_chunk(&mut self) -> Option<Result<&EventColumns, StoreError>> {
        if self.resident {
            self.stats.release();
            self.resident = false;
        }
        if self.poisoned || self.next >= self.metas.len() {
            return None;
        }
        let meta = self.metas[self.next];
        self.next += 1;
        let step = || -> Result<(), StoreError> {
            let raw = self.data.chunk_bytes(&meta, &mut self.scratch)?;
            let payload = verify_chunk(raw, &meta)?;
            decode_chunk_columns(&meta, payload, &mut self.cols)
        }();
        match step {
            Ok(()) => {
                self.stats.decoded.fetch_add(1, Ordering::AcqRel);
                self.stats.acquire();
                self.resident = true;
                Some(Ok(&self.cols))
            }
            Err(e) => {
                self.stats.decode_errors.fetch_add(1, Ordering::AcqRel);
                self.poisoned = true;
                Some(Err(e))
            }
        }
    }
}

impl Drop for ColumnChunks {
    fn drop(&mut self) {
        if self.resident {
            self.stats.release();
            self.resident = false;
        }
    }
}

/// Parse, cross-check, and checksum-verify one chunk image, returning
/// its payload bytes.
fn verify_chunk<'a>(raw: &'a [u8], meta: &ChunkMeta) -> Result<&'a [u8], StoreError> {
    let corrupt = |reason: &'static str| StoreError::CorruptChunk {
        offset: meta.offset,
        reason,
    };
    let header_bytes: &[u8; CHUNK_HEADER_BYTES] = raw[..CHUNK_HEADER_BYTES].try_into().unwrap();
    let header = ChunkHeader::parse(header_bytes).map_err(corrupt)?;
    let on_disk = ChunkMeta::from_header(meta.offset, &header);
    if on_disk != *meta {
        return Err(corrupt("index disagrees with chunk header"));
    }
    let payload = &raw[CHUNK_HEADER_BYTES..];
    if fnv1a64(payload) != header.checksum {
        return Err(corrupt("payload checksum mismatch"));
    }
    Ok(payload)
}

/// Read, verify, and decode one chunk from the file (or map).
fn fetch_chunk(data: &StoreData, meta: &ChunkMeta) -> Result<Vec<Event>, StoreError> {
    let mut scratch = Vec::new();
    let raw = data.chunk_bytes(meta, &mut scratch)?;
    let payload = verify_chunk(raw, meta)?;
    decode_chunk(meta, payload)
}

fn read_file_header(file: &File) -> Result<FileHeader, StoreError> {
    let mut raw = [0u8; FILE_HEADER_BYTES];
    file.read_exact_at(&mut raw, 0).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::BadMagic // shorter than any store file
        } else {
            StoreError::Io(e)
        }
    })?;
    if &raw[..8] != FILE_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let u32_at = |i: usize| u32::from_le_bytes(raw[i..i + 4].try_into().unwrap());
    let version = u32_at(8);
    if version != STORE_VERSION {
        return Err(StoreError::VersionMismatch {
            found: version,
            supported: STORE_VERSION,
        });
    }
    let ncpus = u32_at(12) as usize;
    let chunk_capacity = u32_at(16) as usize;
    if ncpus == 0 || ncpus > u16::MAX as usize || chunk_capacity == 0 {
        return Err(StoreError::CorruptFooter("implausible file header"));
    }
    Ok(FileHeader {
        ncpus,
        chunk_capacity,
    })
}

fn parse_footer(file: &File, file_len: u64, ncpus: usize) -> Result<Footer, StoreError> {
    let corrupt = StoreError::CorruptFooter;
    if file_len < (FILE_HEADER_BYTES + TRAILER_BYTES) as u64 {
        return Err(corrupt("file too short for a trailer"));
    }
    let mut trailer = [0u8; TRAILER_BYTES];
    file.read_exact_at(&mut trailer, file_len - TRAILER_BYTES as u64)?;
    if &trailer[16..24] != END_MAGIC {
        return Err(corrupt("missing end magic"));
    }
    let crc = u64::from_le_bytes(trailer[0..8].try_into().unwrap());
    let footer_len = u64::from_le_bytes(trailer[8..16].try_into().unwrap());
    let max_footer = file_len - (FILE_HEADER_BYTES + TRAILER_BYTES) as u64;
    if footer_len > max_footer {
        return Err(corrupt("footer length out of range"));
    }
    let footer_start = file_len - TRAILER_BYTES as u64 - footer_len;
    let mut raw = vec![0u8; footer_len as usize];
    file.read_exact_at(&mut raw, footer_start)?;
    if fnv1a64(&raw) != crc {
        return Err(corrupt("footer checksum mismatch"));
    }

    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<std::ops::Range<usize>, StoreError> {
        if *pos + n > raw.len() {
            return Err(StoreError::CorruptFooter("footer truncated"));
        }
        let r = *pos..*pos + n;
        *pos += n;
        Ok(r)
    };
    let u32_field =
        |raw: &[u8], r: std::ops::Range<usize>| u32::from_le_bytes(raw[r].try_into().unwrap());
    let u64_field =
        |raw: &[u8], r: std::ops::Range<usize>| u64::from_le_bytes(raw[r].try_into().unwrap());

    if u32_field(&raw, take(&mut pos, 4)?) != FOOTER_MAGIC {
        return Err(corrupt("bad footer magic"));
    }
    if u32_field(&raw, take(&mut pos, 4)?) != STORE_VERSION {
        return Err(corrupt("footer version mismatch"));
    }
    if u32_field(&raw, take(&mut pos, 4)?) as usize != ncpus {
        return Err(corrupt("footer cpu count disagrees with header"));
    }
    let mut lost = Vec::with_capacity(ncpus);
    for _ in 0..ncpus {
        lost.push(u64_field(&raw, take(&mut pos, 8)?));
    }
    let meta_len = u32_field(&raw, take(&mut pos, 4)?) as usize;
    let meta = raw[take(&mut pos, meta_len)?].to_vec();
    let nchunks = u32_field(&raw, take(&mut pos, 4)?) as usize;
    if raw.len() - pos != nchunks * INDEX_ENTRY_BYTES {
        return Err(corrupt("index size disagrees with chunk count"));
    }
    let mut chunks = Vec::with_capacity(nchunks);
    for _ in 0..nchunks {
        let offset = u64_field(&raw, take(&mut pos, 8)?);
        let cpu = u16::from_le_bytes(raw[take(&mut pos, 2)?].try_into().unwrap());
        let flags = u16::from_le_bytes(raw[take(&mut pos, 2)?].try_into().unwrap());
        let count = u32_field(&raw, take(&mut pos, 4)?);
        let payload_len = u32_field(&raw, take(&mut pos, 4)?);
        let t_first = Nanos(u64_field(&raw, take(&mut pos, 8)?));
        let t_last = Nanos(u64_field(&raw, take(&mut pos, 8)?));
        let end = offset
            .checked_add((CHUNK_HEADER_BYTES + payload_len as usize) as u64)
            .ok_or(corrupt("chunk offset overflow"))?;
        if offset < FILE_HEADER_BYTES as u64 || end > footer_start {
            return Err(corrupt("chunk outside the chunk region"));
        }
        chunks.push(ChunkMeta {
            offset,
            cpu,
            flags,
            count,
            payload_len,
            t_first,
            t_last,
        });
    }
    Ok(Footer {
        start: footer_start,
        lost,
        meta,
        chunks,
    })
}

/// One-call convenience: open strictly and materialize the trace.
pub fn read_store(path: &Path) -> Result<(Trace, Vec<u8>), StoreError> {
    let reader = StoreReader::open(path)?;
    let trace = reader.read_trace()?;
    Ok((trace, reader.meta))
}
