//! LEB128 unsigned varints — the integer coding inside compressed
//! chunk payloads. Timestamps are delta-coded against the chunk's
//! first event, so the common case (events nanoseconds apart, small
//! tids, small payload words) costs 1–3 bytes per field instead of 8.

/// Append `v` to `out` as a LEB128 unsigned varint (1–10 bytes).
#[inline]
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Read a LEB128 unsigned varint from `buf` at `*pos`, advancing
/// `*pos`. Returns `None` on truncation or a varint longer than the
/// 10-byte maximum for u64.
#[inline]
pub fn get_uvarint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // overflow past 64 bits
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_boundaries() {
        let cases = [
            0u64,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &cases {
            put_uvarint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &cases {
            assert_eq!(get_uvarint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_is_none() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(get_uvarint(&buf[..cut], &mut pos), None, "cut={cut}");
        }
    }

    #[test]
    fn overlong_is_none() {
        // 11 continuation bytes can never be a valid u64 varint.
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert_eq!(get_uvarint(&buf, &mut pos), None);
    }

    #[test]
    fn small_values_are_one_byte() {
        for v in 0..0x80u64 {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            assert_eq!(buf.len(), 1);
        }
    }
}
