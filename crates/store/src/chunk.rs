//! Chunk layout: header parsing and payload codecs.
//!
//! A chunk carries the records of exactly one CPU, so the cpu field
//! lives in the header and each record stores only `(t, code, tid, a,
//! b)` — the kind packing shared with the wire format
//! ([`osn_trace::wire::pack_record`]). Two payload codecs:
//!
//! * **raw** — fixed 30-byte little-endian records; seekable within
//!   the chunk, no decode cost.
//! * **compressed** — per-record LEB128 varints with the timestamp
//!   delta-coded against the previous record (the chunk header's
//!   `t_first` seeds the predictor). Kernel events are nanoseconds to
//!   microseconds apart, so deltas are 1–3 bytes; typical payloads
//!   shrink to roughly a third of raw.
//!
//! Every payload is integrity-checked by a fnv1a-64 in the header
//! before decoding — a torn tail chunk is detected, never misparsed.

use osn_kernel::ids::CpuId;
use osn_kernel::time::Nanos;
use osn_trace::wire::{fnv1a64, pack_record, unpack_record};
use osn_trace::{Event, EventColumns};

use crate::varint::{get_uvarint, put_uvarint};
use crate::StoreError;

/// Chunk magic ("CHNK").
pub const CHUNK_MAGIC: u32 = 0x4B4E_4843;
/// Fixed chunk header size.
pub const CHUNK_HEADER_BYTES: usize = 40;
/// Chunk flag: payload is delta/varint compressed.
pub const FLAG_COMPRESSED: u16 = 1;
/// Raw (uncompressed) record size inside a chunk payload.
pub const RAW_RECORD_BYTES: usize = 30;

/// Parsed chunk header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkHeader {
    pub cpu: u16,
    pub flags: u16,
    pub count: u32,
    pub payload_len: u32,
    pub t_first: Nanos,
    pub t_last: Nanos,
    pub checksum: u64,
}

impl ChunkHeader {
    /// Append the 40-byte header image to `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&CHUNK_MAGIC.to_le_bytes());
        out.extend_from_slice(&self.cpu.to_le_bytes());
        out.extend_from_slice(&self.flags.to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.payload_len.to_le_bytes());
        out.extend_from_slice(&self.t_first.0.to_le_bytes());
        out.extend_from_slice(&self.t_last.0.to_le_bytes());
        out.extend_from_slice(&self.checksum.to_le_bytes());
    }

    /// Parse a header image; `Err` names the first failed check.
    pub fn parse(bytes: &[u8; CHUNK_HEADER_BYTES]) -> Result<ChunkHeader, &'static str> {
        let u16_at = |i: usize| u16::from_le_bytes(bytes[i..i + 2].try_into().unwrap());
        let u32_at = |i: usize| u32::from_le_bytes(bytes[i..i + 4].try_into().unwrap());
        let u64_at = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
        if u32_at(0) != CHUNK_MAGIC {
            return Err("bad chunk magic");
        }
        let header = ChunkHeader {
            cpu: u16_at(4),
            flags: u16_at(6),
            count: u32_at(8),
            payload_len: u32_at(12),
            t_first: Nanos(u64_at(16)),
            t_last: Nanos(u64_at(24)),
            checksum: u64_at(32),
        };
        if header.count == 0 {
            return Err("empty chunk"); // the writer never emits one
        }
        if header.t_first > header.t_last {
            return Err("inverted chunk span");
        }
        Ok(header)
    }
}

/// One footer-index entry: a chunk's header fields plus its offset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Offset of the chunk *header* in the file.
    pub offset: u64,
    pub cpu: u16,
    pub flags: u16,
    pub count: u32,
    pub payload_len: u32,
    pub t_first: Nanos,
    pub t_last: Nanos,
}

impl ChunkMeta {
    pub fn from_header(offset: u64, h: &ChunkHeader) -> ChunkMeta {
        ChunkMeta {
            offset,
            cpu: h.cpu,
            flags: h.flags,
            count: h.count,
            payload_len: h.payload_len,
            t_first: h.t_first,
            t_last: h.t_last,
        }
    }

    #[inline]
    pub fn compressed(&self) -> bool {
        self.flags & FLAG_COMPRESSED != 0
    }
}

/// Encode `events` (one CPU, time-sorted, non-empty) into `out` and
/// return the finished header. The header's checksum covers exactly
/// the bytes appended here.
pub fn encode_chunk(events: &[Event], cpu: u16, compress: bool, out: &mut Vec<u8>) -> ChunkHeader {
    assert!(!events.is_empty(), "chunks are never empty");
    let start = out.len();
    if compress {
        let mut prev = events[0].t.0;
        for e in events {
            debug_assert_eq!(e.cpu.0, cpu, "chunk events must belong to its CPU");
            debug_assert!(e.t.0 >= prev, "chunk events must be time-sorted");
            let (code, tid, a, b) = pack_record(e);
            put_uvarint(out, e.t.0 - prev);
            prev = e.t.0;
            put_uvarint(out, code as u64);
            put_uvarint(out, tid as u64);
            put_uvarint(out, a);
            put_uvarint(out, b);
        }
    } else {
        out.reserve(events.len() * RAW_RECORD_BYTES);
        for e in events {
            debug_assert_eq!(e.cpu.0, cpu, "chunk events must belong to its CPU");
            let (code, tid, a, b) = pack_record(e);
            out.extend_from_slice(&e.t.0.to_le_bytes());
            out.extend_from_slice(&code.to_le_bytes());
            out.extend_from_slice(&tid.to_le_bytes());
            out.extend_from_slice(&a.to_le_bytes());
            out.extend_from_slice(&b.to_le_bytes());
        }
    }
    let payload = &out[start..];
    ChunkHeader {
        cpu,
        flags: if compress { FLAG_COMPRESSED } else { 0 },
        count: events.len() as u32,
        payload_len: payload.len() as u32,
        t_first: events[0].t,
        t_last: events[events.len() - 1].t,
        checksum: fnv1a64(payload),
    }
}

/// Decode a chunk payload back into events. The caller has already
/// verified the payload checksum; this validates structure (record
/// count, codes, exact payload consumption, span agreement).
pub fn decode_chunk(meta: &ChunkMeta, payload: &[u8]) -> Result<Vec<Event>, StoreError> {
    let corrupt = |reason: &'static str| StoreError::CorruptChunk {
        offset: meta.offset,
        reason,
    };
    if payload.len() != meta.payload_len as usize {
        return Err(corrupt("payload length mismatch"));
    }
    let cpu = CpuId(meta.cpu);
    let count = meta.count as usize;
    let mut events = Vec::with_capacity(count);
    if meta.compressed() {
        let mut pos = 0usize;
        let mut prev = meta.t_first.0;
        for _ in 0..count {
            let mut next = || get_uvarint(payload, &mut pos).ok_or(corrupt("truncated varint"));
            let dt = next()?;
            let code = next()?;
            let tid = next()?;
            let a = next()?;
            let b = next()?;
            let t = prev.checked_add(dt).ok_or(corrupt("timestamp overflow"))?;
            prev = t;
            let code = u16::try_from(code).map_err(|_| corrupt("record code overflow"))?;
            let tid = u32::try_from(tid).map_err(|_| corrupt("tid overflow"))?;
            let (ctx_tid, kind) = unpack_record(code, tid, a, b)?;
            events.push(Event {
                t: Nanos(t),
                cpu,
                tid: ctx_tid,
                kind,
            });
        }
        if pos != payload.len() {
            return Err(corrupt("trailing payload bytes"));
        }
    } else {
        if payload.len() != count * RAW_RECORD_BYTES {
            return Err(corrupt("raw payload size mismatch"));
        }
        for rec in payload.chunks_exact(RAW_RECORD_BYTES) {
            let t = u64::from_le_bytes(rec[0..8].try_into().unwrap());
            let code = u16::from_le_bytes(rec[8..10].try_into().unwrap());
            let tid = u32::from_le_bytes(rec[10..14].try_into().unwrap());
            let a = u64::from_le_bytes(rec[14..22].try_into().unwrap());
            let b = u64::from_le_bytes(rec[22..30].try_into().unwrap());
            let (ctx_tid, kind) = unpack_record(code, tid, a, b)?;
            events.push(Event {
                t: Nanos(t),
                cpu,
                tid: ctx_tid,
                kind,
            });
        }
    }
    let first = events.first().map(|e| e.t);
    let last = events.last().map(|e| e.t);
    if first != Some(meta.t_first) || last != Some(meta.t_last) {
        return Err(corrupt("span disagrees with header"));
    }
    Ok(events)
}

/// Decode a chunk payload straight into columnar storage, reusing
/// `out`'s capacity (the zero-copy analysis path: the payload slice
/// normally points into the reader's memory map).
///
/// Validation is exactly [`decode_chunk`]'s — length, varint
/// structure, timestamp monotonicity/overflow, field widths, record
/// well-formedness via [`unpack_record`], exact payload consumption,
/// span agreement — so downstream column consumers may assume every
/// record decodes ([`EventColumns`]'s accessor contract). Only the
/// final representation differs: five flat vecs instead of `Event`
/// structs.
pub fn decode_chunk_columns(
    meta: &ChunkMeta,
    payload: &[u8],
    out: &mut EventColumns,
) -> Result<(), StoreError> {
    let corrupt = |reason: &'static str| StoreError::CorruptChunk {
        offset: meta.offset,
        reason,
    };
    out.cpu = CpuId(meta.cpu);
    out.clear();
    if payload.len() != meta.payload_len as usize {
        return Err(corrupt("payload length mismatch"));
    }
    let count = meta.count as usize;
    out.reserve(count);
    if meta.compressed() {
        let mut pos = 0usize;
        let mut prev = meta.t_first.0;
        for _ in 0..count {
            let mut next = || get_uvarint(payload, &mut pos).ok_or(corrupt("truncated varint"));
            let dt = next()?;
            let code = next()?;
            let tid = next()?;
            let a = next()?;
            let b = next()?;
            let t = prev.checked_add(dt).ok_or(corrupt("timestamp overflow"))?;
            prev = t;
            let code = u16::try_from(code).map_err(|_| corrupt("record code overflow"))?;
            let tid = u32::try_from(tid).map_err(|_| corrupt("tid overflow"))?;
            unpack_record(code, tid, a, b)?;
            out.push_raw(t, code, tid, a, b);
        }
        if pos != payload.len() {
            return Err(corrupt("trailing payload bytes"));
        }
    } else {
        if payload.len() != count * RAW_RECORD_BYTES {
            return Err(corrupt("raw payload size mismatch"));
        }
        for rec in payload.chunks_exact(RAW_RECORD_BYTES) {
            let t = u64::from_le_bytes(rec[0..8].try_into().unwrap());
            let code = u16::from_le_bytes(rec[8..10].try_into().unwrap());
            let tid = u32::from_le_bytes(rec[10..14].try_into().unwrap());
            let a = u64::from_le_bytes(rec[14..22].try_into().unwrap());
            let b = u64::from_le_bytes(rec[22..30].try_into().unwrap());
            unpack_record(code, tid, a, b)?;
            out.push_raw(t, code, tid, a, b);
        }
    }
    if out.t.first() != Some(&meta.t_first.0) || out.t.last() != Some(&meta.t_last.0) {
        return Err(corrupt("span disagrees with header"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_kernel::activity::Activity;
    use osn_kernel::ids::Tid;
    use osn_trace::EventKind;

    fn sample(cpu: u16) -> Vec<Event> {
        (0..50)
            .map(|i| Event {
                t: Nanos(1_000 + i * 137),
                cpu: CpuId(cpu),
                tid: Tid(7),
                kind: if i % 2 == 0 {
                    EventKind::KernelEnter(Activity::TimerInterrupt)
                } else {
                    EventKind::KernelExit(Activity::TimerInterrupt)
                },
            })
            .collect()
    }

    #[test]
    fn payload_roundtrip_both_codecs() {
        for compress in [false, true] {
            let events = sample(3);
            let mut out = Vec::new();
            let header = encode_chunk(&events, 3, compress, &mut out);
            assert_eq!(header.count, 50);
            assert_eq!(header.t_first, Nanos(1_000));
            assert_eq!(header.checksum, fnv1a64(&out));
            let meta = ChunkMeta::from_header(0, &header);
            let back = decode_chunk(&meta, &out).unwrap();
            assert_eq!(back, events);
        }
    }

    #[test]
    fn compression_beats_raw_on_dense_streams() {
        let events = sample(0);
        let (mut raw, mut packed) = (Vec::new(), Vec::new());
        encode_chunk(&events, 0, false, &mut raw);
        encode_chunk(&events, 0, true, &mut packed);
        assert!(
            packed.len() * 3 < raw.len(),
            "expected ≥3× on dense streams: {} vs {}",
            packed.len(),
            raw.len()
        );
    }

    #[test]
    fn header_image_roundtrip() {
        let events = sample(1);
        let mut payload = Vec::new();
        let header = encode_chunk(&events, 1, true, &mut payload);
        let mut img = Vec::new();
        header.write_to(&mut img);
        assert_eq!(img.len(), CHUNK_HEADER_BYTES);
        let back = ChunkHeader::parse(&img.try_into().unwrap()).unwrap();
        assert_eq!(back, header);
    }

    #[test]
    fn parse_rejects_garbage() {
        let zero = [0u8; CHUNK_HEADER_BYTES];
        assert!(ChunkHeader::parse(&zero).is_err());
    }

    #[test]
    fn columns_match_events_both_codecs() {
        for compress in [false, true] {
            let events = sample(2);
            let mut out = Vec::new();
            let header = encode_chunk(&events, 2, compress, &mut out);
            let meta = ChunkMeta::from_header(0, &header);
            let mut cols = EventColumns::new(CpuId(0));
            decode_chunk_columns(&meta, &out, &mut cols).unwrap();
            assert_eq!(cols.cpu, CpuId(2));
            let typed: Vec<Event> = cols.events().collect();
            assert_eq!(typed, decode_chunk(&meta, &out).unwrap());
        }
    }

    #[test]
    fn columns_decoder_rejects_what_event_decoder_rejects() {
        let events = sample(0);
        let mut payload = Vec::new();
        let header = encode_chunk(&events, 0, true, &mut payload);
        let meta = ChunkMeta::from_header(0, &header);
        let mut cols = EventColumns::new(CpuId(0));
        // Truncations at every byte boundary: both decoders must agree
        // that the payload is bad, with a typed error, never a panic.
        for cut in 0..payload.len() {
            let sliced = &payload[..cut];
            assert!(decode_chunk(&meta, sliced).is_err(), "events cut={cut}");
            assert!(
                decode_chunk_columns(&meta, sliced, &mut cols).is_err(),
                "columns cut={cut}"
            );
        }
    }

    #[test]
    fn corrupt_payload_is_typed_error() {
        let events = sample(0);
        let mut payload = Vec::new();
        let header = encode_chunk(&events, 0, true, &mut payload);
        let meta = ChunkMeta::from_header(0, &header);
        payload.truncate(payload.len() / 2);
        assert!(matches!(
            decode_chunk(&meta, &payload),
            Err(StoreError::CorruptChunk { .. })
        ));
    }
}
