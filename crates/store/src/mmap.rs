//! Minimal read-only memory mapping for store files.
//!
//! The container this repo builds in vendors no `libc`/`memmap2`
//! crates, so the two syscalls are declared directly. The mapping is
//! `PROT_READ`/`MAP_PRIVATE`: chunk payloads are decoded straight out
//! of the mapped image with no intermediate read buffer, and nothing
//! can write through the map.
//!
//! Safety argument (see DESIGN.md for the long form): every access to
//! the map goes through `as_slice()` byte slices and
//! `u64::from_le_bytes`-style copies — no typed pointer casts — so
//! alignment of the mapped records is irrelevant. Store files are
//! written append-only and finished before they are opened for
//! analysis; a file truncated *while mapped* would fault on touch,
//! which is the same contract `memmap2` documents, and the reader only
//! maps files it has already stat-ed and footer-validated.

use std::fs::File;
use std::os::unix::io::AsRawFd;

use core::ffi::{c_int, c_void};

extern "C" {
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> c_int;
}

const PROT_READ: c_int = 1;
const MAP_PRIVATE: c_int = 2;

/// A read-only, whole-file, private memory mapping.
pub struct Mmap {
    /// Null iff the file was empty (`mmap` rejects zero-length maps).
    ptr: *mut c_void,
    len: usize,
}

// The mapping is immutable for its whole lifetime; sharing the raw
// pointer across threads is no different from sharing a `&[u8]`.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map the whole of `file` read-only.
    pub fn map(file: &File) -> std::io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "file too large"))?;
        if len == 0 {
            return Ok(Mmap {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        // SAFETY: requesting a fresh PROT_READ/MAP_PRIVATE mapping of a
        // file descriptor we own; the kernel picks the address. The
        // only failure mode is MAP_FAILED, checked below.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Mmap { ptr, len })
    }

    /// The mapped image as a byte slice.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        if self.ptr.is_null() {
            return &[];
        }
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
        // bytes, valid until `Drop`, and nothing can write through it.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if !self.ptr.is_null() {
            // SAFETY: unmapping the exact region mapped in `map`.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents() {
        let path = std::env::temp_dir().join(format!("osn-mmap-test-{}", std::process::id()));
        let payload = b"hello, columnar world";
        {
            let mut f = File::create(&path).unwrap();
            f.write_all(payload).unwrap();
        }
        let f = File::open(&path).unwrap();
        let map = Mmap::map(&f).unwrap();
        assert_eq!(map.len(), payload.len());
        assert!(!map.is_empty());
        assert_eq!(map.as_slice(), payload);
        drop(map);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_empty() {
        let path = std::env::temp_dir().join(format!("osn-mmap-empty-{}", std::process::id()));
        File::create(&path).unwrap();
        let f = File::open(&path).unwrap();
        let map = Mmap::map(&f).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.as_slice(), b"");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_readers_share_a_map() {
        let path = std::env::temp_dir().join(format!("osn-mmap-share-{}", std::process::id()));
        std::fs::write(&path, vec![7u8; 4096]).unwrap();
        let f = File::open(&path).unwrap();
        let map = std::sync::Arc::new(Mmap::map(&f).unwrap());
        let m2 = map.clone();
        let h = std::thread::spawn(move || m2.as_slice().iter().map(|&b| b as u64).sum::<u64>());
        let a = map.as_slice().iter().map(|&b| b as u64).sum::<u64>();
        assert_eq!(h.join().unwrap(), a);
        std::fs::remove_file(&path).ok();
    }
}
