//! Appending side of the store: [`StoreWriter`] (buffer, chunk, index,
//! footer) and [`SpillWriter`] (the [`osn_trace::EventSink`] adapter
//! that lets a live [`osn_trace::TraceSession`] stream rings to disk).

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

use osn_kernel::ids::CpuId;
use osn_trace::wire::fnv1a64;
use osn_trace::{Event, EventSink, Trace};

use parking_lot::Mutex;

use crate::chunk::{encode_chunk, ChunkMeta, CHUNK_HEADER_BYTES};
use crate::{END_MAGIC, FILE_FLAG_COMPRESSED, FILE_MAGIC, FOOTER_MAGIC, STORE_VERSION};

/// Store creation knobs.
#[derive(Clone, Copy, Debug)]
pub struct StoreOptions {
    /// Events per chunk. Chunks flush whenever a CPU's buffer reaches
    /// this; it is also the reader's per-stream memory bound.
    pub chunk_capacity: usize,
    /// Delta/varint-compress chunk payloads (on by default; raw is for
    /// debugging and codec comparison).
    pub compress: bool,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            chunk_capacity: 1 << 16,
            compress: true,
        }
    }
}

impl StoreOptions {
    #[must_use]
    pub fn with_chunk_capacity(mut self, chunk_capacity: usize) -> Self {
        self.chunk_capacity = chunk_capacity;
        self
    }

    #[must_use]
    pub fn with_compress(mut self, compress: bool) -> Self {
        self.compress = compress;
        self
    }
}

/// What [`StoreWriter::finish`] reports about the written file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreSummary {
    /// Total file size.
    pub bytes: u64,
    /// Number of chunks written.
    pub chunks: usize,
    /// Number of events written.
    pub events: u64,
}

/// Append-only chunked store writer.
///
/// Events arrive per CPU (already time-sorted — ring order); each CPU
/// buffers up to `chunk_capacity` events, then flushes one chunk.
/// `finish` flushes stragglers and writes the footer index + trailer.
pub struct StoreWriter {
    out: BufWriter<File>,
    offset: u64,
    ncpus: usize,
    opts: StoreOptions,
    /// Per-CPU buffered events not yet chunked.
    pending: Vec<Vec<Event>>,
    index: Vec<ChunkMeta>,
    lost: Vec<u64>,
    meta: Vec<u8>,
    events: u64,
    /// Reused chunk image buffer (header + payload).
    scratch: Vec<u8>,
}

impl StoreWriter {
    /// Create a store at `path` (truncating any existing file).
    pub fn create(path: &Path, ncpus: usize, opts: StoreOptions) -> std::io::Result<StoreWriter> {
        assert!(ncpus > 0, "store needs at least one CPU");
        assert!(ncpus <= u16::MAX as usize, "cpu ids are u16");
        assert!(opts.chunk_capacity > 0, "chunk capacity must be positive");
        let mut out = BufWriter::new(File::create(path)?);
        let mut header = Vec::with_capacity(crate::FILE_HEADER_BYTES);
        header.extend_from_slice(FILE_MAGIC);
        header.extend_from_slice(&STORE_VERSION.to_le_bytes());
        header.extend_from_slice(&(ncpus as u32).to_le_bytes());
        header.extend_from_slice(&(opts.chunk_capacity as u32).to_le_bytes());
        let flags = if opts.compress {
            FILE_FLAG_COMPRESSED
        } else {
            0
        };
        header.extend_from_slice(&flags.to_le_bytes());
        out.write_all(&header)?;
        Ok(StoreWriter {
            out,
            offset: header.len() as u64,
            ncpus,
            opts,
            pending: (0..ncpus).map(|_| Vec::new()).collect(),
            index: Vec::new(),
            lost: vec![0; ncpus],
            meta: Vec::new(),
            events: 0,
            scratch: Vec::new(),
        })
    }

    #[inline]
    pub fn ncpus(&self) -> usize {
        self.ncpus
    }

    /// Append a batch of one CPU's events (time-sorted, at or after
    /// everything previously appended for that CPU).
    pub fn append(&mut self, cpu: CpuId, events: &[Event]) -> std::io::Result<()> {
        let c = cpu.index();
        assert!(
            c < self.ncpus,
            "cpu {c} out of range for {}-cpu store",
            self.ncpus
        );
        self.pending[c].extend_from_slice(events);
        self.events += events.len() as u64;
        while self.pending[c].len() >= self.opts.chunk_capacity {
            self.flush_chunk(c, self.opts.chunk_capacity)?;
        }
        Ok(())
    }

    /// Append a whole in-memory trace (its per-CPU streams, loss
    /// counters included). The store must span at least the trace's
    /// CPUs.
    pub fn append_trace(&mut self, trace: &Trace) -> std::io::Result<()> {
        assert!(
            trace.ncpus() <= self.ncpus,
            "trace spans {} cpus, store only {}",
            trace.ncpus(),
            self.ncpus
        );
        let mut batch = Vec::new();
        for c in 0..trace.ncpus() {
            batch.clear();
            batch.extend(trace.cpu_events(CpuId(c as u16)).copied());
            self.append(CpuId(c as u16), &batch)?;
        }
        self.set_lost(&trace.lost);
        Ok(())
    }

    /// Record per-CPU ring loss counters for the footer (padded or
    /// truncated to the store's CPU count).
    pub fn set_lost(&mut self, lost: &[u64]) {
        for (slot, &l) in self.lost.iter_mut().zip(lost) {
            *slot = l;
        }
    }

    /// Attach an opaque metadata blob (the core layer stores run
    /// config + results as JSON) to the footer.
    pub fn set_metadata(&mut self, meta: Vec<u8>) {
        self.meta = meta;
    }

    /// Write the first `n` pending events of CPU `c` as one chunk.
    fn flush_chunk(&mut self, c: usize, n: usize) -> std::io::Result<()> {
        debug_assert!(n > 0 && n <= self.pending[c].len());
        // Reserve the header slot, encode the payload after it, then
        // patch the header in — one write, one reused buffer.
        let mut buf = std::mem::take(&mut self.scratch);
        buf.clear();
        buf.resize(CHUNK_HEADER_BYTES, 0);
        let header = encode_chunk(
            &self.pending[c][..n],
            c as u16,
            self.opts.compress,
            &mut buf,
        );
        let mut img = Vec::with_capacity(CHUNK_HEADER_BYTES);
        header.write_to(&mut img);
        buf[..CHUNK_HEADER_BYTES].copy_from_slice(&img);
        self.index
            .push(ChunkMeta::from_header(self.offset, &header));
        self.out.write_all(&buf)?;
        self.offset += buf.len() as u64;
        self.scratch = buf;
        self.pending[c].drain(..n);
        Ok(())
    }

    /// Flush remaining events, write the footer index and trailer, and
    /// flush the file. The writer is consumed; a completely written
    /// store always ends in the 24-byte trailer.
    pub fn finish(mut self) -> std::io::Result<StoreSummary> {
        for c in 0..self.ncpus {
            while !self.pending[c].is_empty() {
                let n = self.pending[c].len().min(self.opts.chunk_capacity);
                self.flush_chunk(c, n)?;
            }
        }
        let mut footer = Vec::new();
        footer.extend_from_slice(&FOOTER_MAGIC.to_le_bytes());
        footer.extend_from_slice(&STORE_VERSION.to_le_bytes());
        footer.extend_from_slice(&(self.ncpus as u32).to_le_bytes());
        for &l in &self.lost {
            footer.extend_from_slice(&l.to_le_bytes());
        }
        footer.extend_from_slice(&(self.meta.len() as u32).to_le_bytes());
        footer.extend_from_slice(&self.meta);
        footer.extend_from_slice(&(self.index.len() as u32).to_le_bytes());
        for m in &self.index {
            footer.extend_from_slice(&m.offset.to_le_bytes());
            footer.extend_from_slice(&m.cpu.to_le_bytes());
            footer.extend_from_slice(&m.flags.to_le_bytes());
            footer.extend_from_slice(&m.count.to_le_bytes());
            footer.extend_from_slice(&m.payload_len.to_le_bytes());
            footer.extend_from_slice(&m.t_first.0.to_le_bytes());
            footer.extend_from_slice(&m.t_last.0.to_le_bytes());
        }
        let crc = fnv1a64(&footer);
        let footer_len = footer.len() as u64;
        self.out.write_all(&footer)?;
        self.out.write_all(&crc.to_le_bytes())?;
        self.out.write_all(&footer_len.to_le_bytes())?;
        self.out.write_all(END_MAGIC)?;
        self.offset += footer_len + crate::TRAILER_BYTES as u64;
        self.out.flush()?;
        Ok(StoreSummary {
            bytes: self.offset,
            chunks: self.index.len(),
            events: self.events,
        })
    }
}

/// One-call convenience: write a whole in-memory trace (plus an opaque
/// metadata blob) as a store file.
pub fn write_store(
    path: &Path,
    trace: &Trace,
    meta: &[u8],
    opts: StoreOptions,
) -> std::io::Result<StoreSummary> {
    let mut w = StoreWriter::create(path, trace.ncpus().max(1), opts)?;
    w.append_trace(trace)?;
    w.set_metadata(meta.to_vec());
    w.finish()
}

/// The [`EventSink`] adapter: clones share one [`StoreWriter`], so a
/// spilling [`osn_trace::TraceSession`] can own one clone (boxed) while
/// the recorder keeps another to [`SpillWriter::finish`] the file after
/// `stop_spill` returns the loss counters.
#[derive(Clone)]
pub struct SpillWriter {
    inner: Arc<Mutex<Option<StoreWriter>>>,
}

impl SpillWriter {
    pub fn new(writer: StoreWriter) -> SpillWriter {
        SpillWriter {
            inner: Arc::new(Mutex::new(Some(writer))),
        }
    }

    /// Finalize the underlying store: record the session's loss
    /// counters and metadata, then write the footer. Panics if called
    /// twice (the writer is consumed by the first call).
    pub fn finish(self, lost: &[u64], meta: Vec<u8>) -> std::io::Result<StoreSummary> {
        let mut writer = self.inner.lock().take().expect("store already finished");
        writer.set_lost(lost);
        writer.set_metadata(meta);
        writer.finish()
    }
}

impl EventSink for SpillWriter {
    fn append(&mut self, cpu: CpuId, events: &[Event]) -> std::io::Result<()> {
        self.inner
            .lock()
            .as_mut()
            .expect("append after finish")
            .append(cpu, events)
    }
}
