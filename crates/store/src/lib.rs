//! `osn-store`: chunked on-disk trace store.
//!
//! The simulator-side equivalent of LTTng relaying its per-CPU ring
//! buffers into chunked CTF trace files: an append-only store of
//! fixed-capacity per-CPU chunks, each checksummed and individually
//! decodable, behind a footer index that locates any chunk by CPU and
//! time range without scanning the file. Traces no longer have to fit
//! in RAM — a session can spill chunks while the run is producing
//! ([`writer::SpillWriter`]), and analysis can stream chunks back one
//! at a time ([`reader::CpuStream`]), bounded-memory, with results
//! bit-identical to the in-memory path.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! file header   "OSNSTORE" | u32 version | u32 ncpus
//!               | u32 chunk_capacity | u32 flags
//! chunk*        u32 "CHNK" | u16 cpu | u16 flags | u32 count
//!               | u32 payload_len | u64 t_first | u64 t_last
//!               | u64 fnv1a-64(payload) | payload
//! footer        u32 "FOOT" | u32 version | u32 ncpus
//!               | ncpus × u64 lost | u32 meta_len | meta
//!               | u32 nchunks | nchunks × index entry
//! trailer       u64 fnv1a-64(footer) | u64 footer_len | "OSNSTEND"
//! ```
//!
//! The trailer is fixed-size and at the very end, so a reader finds
//! the footer in two reads ([`reader::StoreReader::open`]). When the
//! footer is missing or torn (crashed recorder), the chunks themselves
//! are self-describing: [`reader::StoreReader::recover`] rebuilds the
//! index by scanning forward and drops a torn final chunk, charging
//! its events to the per-CPU loss counters.

pub mod chunk;
pub mod mmap;
pub mod reader;
pub mod varint;
pub mod writer;

pub use chunk::{ChunkHeader, ChunkMeta, CHUNK_HEADER_BYTES};
pub use reader::{read_store, ChunkStatsSnapshot, CpuStream, RecoveryReport, StoreReader};
pub use writer::{write_store, SpillWriter, StoreOptions, StoreSummary, StoreWriter};

/// File magic, first 8 bytes of every store.
pub const FILE_MAGIC: &[u8; 8] = b"OSNSTORE";
/// Trailing magic, last 8 bytes of a completely written store.
pub const END_MAGIC: &[u8; 8] = b"OSNSTEND";
/// Current store format version.
pub const STORE_VERSION: u32 = 1;
/// Fixed file header size.
pub const FILE_HEADER_BYTES: usize = 24;
/// File-level flag: chunk payloads are delta/varint compressed.
pub const FILE_FLAG_COMPRESSED: u32 = 1;
/// Fixed trailer size (footer checksum, footer length, end magic).
pub const TRAILER_BYTES: usize = 24;
/// Footer block magic ("FOOT").
pub const FOOTER_MAGIC: u32 = 0x544F_4F46;

/// Store errors: I/O, or a typed description of what is corrupt.
#[derive(Debug)]
pub enum StoreError {
    Io(std::io::Error),
    /// Not a store file at all.
    BadMagic,
    /// A store from a different format version.
    VersionMismatch {
        found: u32,
        supported: u32,
    },
    /// The footer block or trailer is missing or damaged (use
    /// [`reader::StoreReader::recover`] for tolerant opening).
    CorruptFooter(&'static str),
    /// A chunk at `offset` failed validation.
    CorruptChunk {
        offset: u64,
        reason: &'static str,
    },
    /// A record inside a chunk did not decode.
    Wire(osn_trace::wire::WireError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o: {e}"),
            StoreError::BadMagic => write!(f, "not an osn-store file (bad magic)"),
            StoreError::VersionMismatch { found, supported } => {
                write!(
                    f,
                    "store version {found} unsupported (supported {supported})"
                )
            }
            StoreError::CorruptFooter(why) => write!(f, "corrupt footer: {why}"),
            StoreError::CorruptChunk { offset, reason } => {
                write!(f, "corrupt chunk at offset {offset}: {reason}")
            }
            StoreError::Wire(e) => write!(f, "record decode: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<osn_trace::wire::WireError> for StoreError {
    fn from(e: osn_trace::wire::WireError) -> Self {
        StoreError::Wire(e)
    }
}

impl From<StoreError> for std::io::Error {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Io(e) => e,
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other),
        }
    }
}
