//! `osn-bench`: the experiment harness that regenerates every table and
//! figure of the paper.
//!
//! Each `src/bin/figNN_*.rs` / `src/bin/tableN_*.rs` binary reruns (or
//! loads from the shared on-disk cache) the needed traced runs and
//! prints the same rows/series the paper reports. `cargo bench`
//! additionally runs the Criterion micro-benchmarks in `benches/`.
//!
//! Environment knobs:
//! * `OSN_SECS` — simulated seconds per application run (default 10).
//! * `OSN_SEED` — campaign seed (default the paper-date seed).
//! * `OSN_NO_CACHE=1` — ignore and overwrite the trace cache.

use std::fs;
use std::path::PathBuf;

use osn_core::analysis::NoiseAnalysis;
use osn_core::kernel::ids::Tid;
use osn_core::kernel::node::RunResult;
use osn_core::kernel::time::Nanos;
use osn_core::trace::wire;
use osn_core::workloads::App;
use osn_core::{run_app, AppRun, ExperimentConfig};

/// Merge one producer's section into a shared bench JSON file
/// (`BENCH_PR6.json` is written by both `analysis_throughput` and
/// `store_throughput`): read the existing top-level map if any, drop
/// the keys this producer owns (`owns` returns true), keep everyone
/// else's, and write back `own` followed by the kept keys. Key order
/// is deterministic: each producer's keys stay in the order it emits
/// them.
pub fn merge_bench_json(path: &str, own: Vec<(String, serde::Value)>, owns: impl Fn(&str) -> bool) {
    let mut entries = own;
    if let Ok(text) = fs::read_to_string(path) {
        if let Ok(serde::Value::Map(existing)) = serde_json::from_str::<serde::Value>(&text) {
            entries.extend(existing.into_iter().filter(|(k, _)| !owns(k)));
        }
    }
    let doc = serde::Value::Map(entries);
    fs::write(path, serde_json::to_vec_pretty(&doc).expect("serializable"))
        .expect("write bench json");
}

/// Simulated duration per app run, from `OSN_SECS`.
pub fn duration() -> Nanos {
    let secs: u64 = std::env::var("OSN_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    Nanos::from_secs(secs.max(1))
}

/// Campaign seed, from `OSN_SEED`.
pub fn seed() -> u64 {
    std::env::var("OSN_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x0511_2011)
}

fn cache_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/osn-cache");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Run (or load from cache) one traced application run. The cache
/// stores the binary trace (exercising the wire format end-to-end)
/// plus the run metadata as JSON; analysis is recomputed on load.
pub fn load_or_run(app: App) -> AppRun {
    let dur = duration();
    let seed = seed();
    let stem = format!(
        "{}-{}s-{:x}",
        app.name(),
        dur.as_nanos() / 1_000_000_000,
        seed
    );
    let trace_path = cache_dir().join(format!("{stem}.trace"));
    let meta_path = cache_dir().join(format!("{stem}.json"));
    let no_cache = std::env::var("OSN_NO_CACHE").is_ok();

    let config = ExperimentConfig::paper(app, dur).with_seed(seed);
    if !no_cache {
        if let (Ok(raw), Ok(meta_raw)) = (fs::read(&trace_path), fs::read(&meta_path)) {
            if let (Ok(trace), Ok(result)) = (
                wire::decode(bytes::Bytes::from(raw)),
                serde_json::from_slice::<RunResult>(&meta_raw),
            ) {
                let ranks: Vec<Tid> = result
                    .tasks
                    .iter()
                    .filter(|t| t.kind == "app" && t.name.starts_with(app.name()))
                    .map(|t| t.tid)
                    .collect();
                let analysis = NoiseAnalysis::analyze(&trace, &result.tasks, result.end_time);
                return AppRun {
                    app,
                    config,
                    trace,
                    result,
                    ranks,
                    analysis,
                };
            }
        }
    }
    let run = run_app(config);
    let _ = fs::write(&trace_path, wire::encode(&run.trace));
    let _ = fs::write(
        &meta_path,
        serde_json::to_vec(&run.result).expect("serializable"),
    );
    run
}

/// Load-or-run all five Sequoia apps (sequentially; the cache makes
/// repeats instant).
pub fn load_or_run_all() -> Vec<AppRun> {
    App::ALL.iter().map(|a| load_or_run(*a)).collect()
}

/// Render a histogram as an ASCII bar chart (the harness's stand-in
/// for the paper's Matlab figures).
pub fn render_histogram(h: &osn_core::analysis::Histogram, width: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let peak = h.counts.iter().copied().max().unwrap_or(0).max(1);
    for (center, count) in h.centers().iter().zip(&h.counts) {
        let bar = (count * width as u64 / peak) as usize;
        let _ = writeln!(
            out,
            "{:>10.2}us |{:<width$}| {}",
            center.as_micros_f64(),
            "#".repeat(bar),
            count,
            width = width
        );
    }
    let _ = writeln!(
        out,
        "  (cut at p99; {} samples above the cut, {:.2}% tail)",
        h.overflow,
        h.tail_fraction() * 100.0
    );
    out
}

/// Render a time series of (t, value) pairs as the list of its biggest
/// spikes.
pub fn render_spikes(series: &[(Nanos, Nanos)], top: usize) -> String {
    use std::fmt::Write as _;
    let mut sorted: Vec<&(Nanos, Nanos)> = series.iter().collect();
    sorted.sort_by_key(|(_, v)| std::cmp::Reverse(*v));
    let mut out = String::new();
    for (t, v) in sorted.into_iter().take(top) {
        let _ = writeln!(out, "  t={:>12} spike={}", t.to_string(), v);
    }
    out
}

/// Per-decile event counts over a run: a textual Fig 5 / Fig 7
/// placement trace.
pub fn render_deciles(samples: &[(Nanos, Nanos)], span: (Nanos, Nanos)) -> String {
    use std::fmt::Write as _;
    let (start, end) = span;
    let total = (end - start).max(Nanos(1));
    let mut counts = [0u64; 10];
    for (t, _) in samples {
        if *t < start || *t >= end {
            continue;
        }
        let idx = (((*t - start).as_nanos() as u128 * 10) / total.as_nanos() as u128) as usize;
        counts[idx.min(9)] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(0).max(1);
    let mut out = String::new();
    for (i, c) in counts.iter().enumerate() {
        let bar = (c * 40 / peak) as usize;
        let _ = writeln!(out, "  {:>3}0% |{:<40}| {}", i, "#".repeat(bar), c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_core::analysis::Histogram;

    #[test]
    fn duration_and_seed_have_defaults() {
        assert!(duration() >= Nanos::from_secs(1));
        let _ = seed();
    }

    #[test]
    fn histogram_rendering() {
        let h = Histogram::build(&[Nanos(1000), Nanos(1100), Nanos(5000)], 4, 100.0);
        let text = render_histogram(&h, 20);
        assert!(text.contains('#'));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn decile_rendering() {
        let samples = vec![(Nanos(5), Nanos(1)), (Nanos(95), Nanos(1))];
        let text = render_deciles(&samples, (Nanos(0), Nanos(100)));
        assert_eq!(text.lines().count(), 10);
        assert!(text.contains("| 1"));
    }

    #[test]
    fn spike_rendering() {
        let series = vec![(Nanos(1), Nanos(10)), (Nanos(2), Nanos(99))];
        let text = render_spikes(&series, 1);
        assert!(text.contains("99"));
        assert!(!text.contains("spike=10ns"));
    }
}
