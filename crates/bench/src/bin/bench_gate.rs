//! Bench regression gate: compare a fresh bench run against the
//! committed `BENCH_PR*.json` baselines and fail on aggregate
//! regression.
//!
//! ```text
//! bench_gate <baseline_dir> <fresh_dir> [--threshold 0.85] [--metric-floor 0.70]
//! ```
//!
//! Every `BENCH_PR*.json` in the baseline dir must exist in the fresh
//! dir. For each file the top-level `aggregate_*` metrics are scored
//! `fresh/baseline` (or inverted for lower-is-better metrics); the
//! gate passes when the geometric mean over all metrics stays at or
//! above the threshold (default 0.85, i.e. at most a 15% aggregate
//! regression) AND no single metric falls below the per-metric floor
//! (default 0.70 — a collapse in one metric cannot hide behind five
//! healthy ones).
//!
//! On ANY failure the full per-metric table is still printed — every
//! metric with its old value, new value, score, direction, and
//! verdict — so one look at a red CI log shows the complete picture,
//! not just the first offender. Exit code 0 = pass, 1 = regression or
//! missing data.

use std::path::Path;
use std::process::ExitCode;

/// Metrics where smaller numbers are better. Everything else
/// (speedups, MB/s, ratios-vs-raw, nodes/s) is higher-is-better.
const LOWER_IS_BETTER: &[&str] = &[
    "aggregate_streamed_over_in_memory",
    "aggregate_streamed_over_resident",
    "aggregate_validation_ratio_error",
    "aggregate_capture_overhead_ns",
];

/// One scored (or unscorable) metric row of the final table.
struct Row {
    file: String,
    key: String,
    base: Option<f64>,
    new: Option<f64>,
    /// `None` when the metric could not be scored (missing / non-positive).
    score: Option<f64>,
    verdict: &'static str,
    failing: bool,
}

/// Pull the top-level `"aggregate_*": <number>` pairs out of a bench
/// JSON without a full parser (the vendored serde shim exposes no
/// generic `Value`). Nested keys never start with `aggregate`, so a
/// plain scan is exact here.
fn aggregates(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while let Some(pos) = text[i..].find("\"aggregate") {
        let start = i + pos + 1;
        let Some(len) = text[start..].find('"') else {
            break;
        };
        let key = text[start..start + len].to_string();
        let mut j = start + len + 1;
        while j < bytes.len() && (bytes[j] == b':' || bytes[j].is_ascii_whitespace()) {
            j += 1;
        }
        let num_start = j;
        while j < bytes.len()
            && (bytes[j].is_ascii_digit() || matches!(bytes[j], b'.' | b'-' | b'+' | b'e' | b'E'))
        {
            j += 1;
        }
        if let Ok(v) = text[num_start..j].parse::<f64>() {
            out.push((key, v));
        }
        i = j.max(start + len + 1);
    }
    out
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.3}"),
        None => "-".into(),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold = 0.85f64;
    let mut metric_floor = 0.70f64;
    let mut dirs = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a == "--threshold" {
            threshold = iter
                .next()
                .and_then(|s| s.parse().ok())
                .unwrap_or(threshold);
        } else if a == "--metric-floor" {
            metric_floor = iter
                .next()
                .and_then(|s| s.parse().ok())
                .unwrap_or(metric_floor);
        } else {
            dirs.push(a.clone());
        }
    }
    let [baseline_dir, fresh_dir] = dirs.as_slice() else {
        eprintln!(
            "usage: bench_gate <baseline_dir> <fresh_dir> [--threshold 0.85] [--metric-floor 0.70]"
        );
        return ExitCode::FAILURE;
    };

    let mut files: Vec<String> = match std::fs::read_dir(baseline_dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("BENCH_PR") && n.ends_with(".json"))
            .collect(),
        Err(e) => {
            eprintln!("cannot read {baseline_dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    files.sort();
    if files.is_empty() {
        eprintln!("no BENCH_PR*.json baselines in {baseline_dir}");
        return ExitCode::FAILURE;
    }

    let mut rows: Vec<Row> = Vec::new();
    let mut unreadable = false;
    for file in &files {
        let base_text = match std::fs::read_to_string(Path::new(baseline_dir).join(file)) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: cannot read baseline: {e}");
                unreadable = true;
                continue;
            }
        };
        let fresh_path = Path::new(fresh_dir).join(file);
        let fresh_text = match std::fs::read_to_string(&fresh_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: fresh run missing ({}): {e}", fresh_path.display());
                unreadable = true;
                continue;
            }
        };
        let fresh = aggregates(&fresh_text);
        for (key, base) in aggregates(&base_text) {
            let new = fresh.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
            let lower = LOWER_IS_BETTER.contains(&key.as_str());
            let (score, verdict, failing) = match new {
                None => (None, "LOST", true),
                Some(new) if base <= 0.0 || new <= 0.0 => (None, "NONPOSITIVE", true),
                Some(new) => {
                    let score = if lower { base / new } else { new / base };
                    if score < metric_floor {
                        (Some(score), "FLOOR", true)
                    } else {
                        (Some(score), "ok", false)
                    }
                }
            };
            rows.push(Row {
                file: file.clone(),
                key,
                base: Some(base),
                new,
                score,
                verdict,
                failing,
            });
        }
    }

    // The complete table, pass or fail: every metric, both values,
    // the direction-aware score, and a per-row verdict.
    println!(
        "{:<16} {:<38} {:>14} {:>14} {:>8}  {:<6} verdict",
        "file", "metric", "old", "new", "score", "dir"
    );
    for r in &rows {
        println!(
            "{:<16} {:<38} {:>14} {:>14} {:>8}  {:<6} {}",
            r.file,
            r.key,
            fmt_opt(r.base),
            fmt_opt(r.new),
            fmt_opt(r.score),
            if LOWER_IS_BETTER.contains(&r.key.as_str()) {
                "lower"
            } else {
                "higher"
            },
            r.verdict
        );
    }

    let scored: Vec<f64> = rows.iter().filter_map(|r| r.score).collect();
    if scored.is_empty() {
        eprintln!("no comparable metrics found");
        return ExitCode::FAILURE;
    }
    let geo_mean = (scored.iter().map(|s| s.ln()).sum::<f64>() / scored.len() as f64).exp();
    println!(
        "geometric mean over {} metrics: {geo_mean:.3} (threshold {threshold:.2}, floor {metric_floor:.2})",
        scored.len()
    );

    let failing: Vec<&Row> = rows.iter().filter(|r| r.failing).collect();
    if unreadable || !failing.is_empty() {
        for r in &failing {
            eprintln!(
                "FAIL {}: {} {} ({} -> {}, score {})",
                r.file,
                r.key,
                r.verdict,
                fmt_opt(r.base),
                fmt_opt(r.new),
                fmt_opt(r.score)
            );
        }
        eprintln!(
            "FAIL: {} failing metric(s){}",
            failing.len(),
            if unreadable {
                " plus unreadable/missing bench file(s)"
            } else {
                ""
            }
        );
        return ExitCode::FAILURE;
    }
    if geo_mean < threshold {
        eprintln!(
            "FAIL: aggregate bench regression {:.1}% (> {:.0}% allowed)",
            (1.0 - geo_mean) * 100.0,
            (1.0 - threshold) * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("PASS");
    ExitCode::SUCCESS
}
