//! Bench regression gate: compare a fresh bench run against the
//! committed `BENCH_PR*.json` baselines and fail on aggregate
//! regression.
//!
//! ```text
//! bench_gate <baseline_dir> <fresh_dir> [--threshold 0.85] [--metric-floor 0.70]
//! ```
//!
//! Every `BENCH_PR*.json` in the baseline dir must exist in the fresh
//! dir. For each file the top-level `aggregate_*` metrics are scored
//! `fresh/baseline` (or inverted for lower-is-better metrics); the
//! gate passes when the geometric mean over all metrics stays at or
//! above the threshold (default 0.85, i.e. at most a 15% aggregate
//! regression) AND no single metric falls below the per-metric floor
//! (default 0.70 — a collapse in one metric cannot hide behind five
//! healthy ones). Exit code 0 = pass, 1 = regression or missing data.

use std::path::Path;
use std::process::ExitCode;

/// Metrics where smaller numbers are better. Everything else
/// (speedups, MB/s, ratios-vs-raw, nodes/s) is higher-is-better.
const LOWER_IS_BETTER: &[&str] = &[
    "aggregate_streamed_over_in_memory",
    "aggregate_streamed_over_resident",
    "aggregate_validation_ratio_error",
];

/// Pull the top-level `"aggregate_*": <number>` pairs out of a bench
/// JSON without a full parser (the vendored serde shim exposes no
/// generic `Value`). Nested keys never start with `aggregate`, so a
/// plain scan is exact here.
fn aggregates(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while let Some(pos) = text[i..].find("\"aggregate") {
        let start = i + pos + 1;
        let Some(len) = text[start..].find('"') else {
            break;
        };
        let key = text[start..start + len].to_string();
        let mut j = start + len + 1;
        while j < bytes.len() && (bytes[j] == b':' || bytes[j].is_ascii_whitespace()) {
            j += 1;
        }
        let num_start = j;
        while j < bytes.len()
            && (bytes[j].is_ascii_digit() || matches!(bytes[j], b'.' | b'-' | b'+' | b'e' | b'E'))
        {
            j += 1;
        }
        if let Ok(v) = text[num_start..j].parse::<f64>() {
            out.push((key, v));
        }
        i = j.max(start + len + 1);
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold = 0.85f64;
    let mut metric_floor = 0.70f64;
    let mut dirs = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a == "--threshold" {
            threshold = iter
                .next()
                .and_then(|s| s.parse().ok())
                .unwrap_or(threshold);
        } else if a == "--metric-floor" {
            metric_floor = iter
                .next()
                .and_then(|s| s.parse().ok())
                .unwrap_or(metric_floor);
        } else {
            dirs.push(a.clone());
        }
    }
    let [baseline_dir, fresh_dir] = dirs.as_slice() else {
        eprintln!(
            "usage: bench_gate <baseline_dir> <fresh_dir> [--threshold 0.85] [--metric-floor 0.70]"
        );
        return ExitCode::FAILURE;
    };

    let mut files: Vec<String> = match std::fs::read_dir(baseline_dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("BENCH_PR") && n.ends_with(".json"))
            .collect(),
        Err(e) => {
            eprintln!("cannot read {baseline_dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    files.sort();
    if files.is_empty() {
        eprintln!("no BENCH_PR*.json baselines in {baseline_dir}");
        return ExitCode::FAILURE;
    }

    let mut log_sum = 0.0f64;
    let mut nmetrics = 0usize;
    let mut failed = false;
    for file in &files {
        let base_text = match std::fs::read_to_string(Path::new(baseline_dir).join(file)) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: cannot read baseline: {e}");
                failed = true;
                continue;
            }
        };
        let fresh_path = Path::new(fresh_dir).join(file);
        let fresh_text = match std::fs::read_to_string(&fresh_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: fresh run missing ({}): {e}", fresh_path.display());
                failed = true;
                continue;
            }
        };
        let fresh = aggregates(&fresh_text);
        for (key, base) in aggregates(&base_text) {
            let Some((_, new)) = fresh.iter().find(|(k, _)| *k == key) else {
                eprintln!("{file}: fresh run lost metric {key}");
                failed = true;
                continue;
            };
            if base <= 0.0 || *new <= 0.0 {
                eprintln!("{file}: non-positive {key} ({base} -> {new})");
                failed = true;
                continue;
            }
            let score = if LOWER_IS_BETTER.contains(&key.as_str()) {
                base / new
            } else {
                new / base
            };
            println!(
                "{file:<16} {key:<36} {base:>12.3} -> {new:>12.3}  score {score:>6.3}{}",
                if LOWER_IS_BETTER.contains(&key.as_str()) {
                    "  (lower is better)"
                } else {
                    ""
                }
            );
            if score < metric_floor {
                eprintln!(
                    "{file}: {key} regressed to {score:.3} of baseline (floor {metric_floor:.2})"
                );
                failed = true;
            }
            log_sum += score.ln();
            nmetrics += 1;
        }
    }
    if nmetrics == 0 {
        eprintln!("no comparable metrics found");
        return ExitCode::FAILURE;
    }
    let geo_mean = (log_sum / nmetrics as f64).exp();
    println!("geometric mean over {nmetrics} metrics: {geo_mean:.3} (threshold {threshold:.2})");
    if failed {
        eprintln!("FAIL: missing data or a metric below the floor");
        return ExitCode::FAILURE;
    }
    if geo_mean < threshold {
        eprintln!(
            "FAIL: aggregate bench regression {:.1}% (> {:.0}% allowed)",
            (1.0 - geo_mean) * 100.0,
            (1.0 - threshold) * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("PASS");
    ExitCode::SUCCESS
}
