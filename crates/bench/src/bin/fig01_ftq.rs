//! Fig 1 — Measuring OS noise using FTQ: (a/c) the FTQ series, (b/d)
//! the synthetic OS-noise chart for the same run, plus the §III-C
//! agreement statistics.

use osn_bench::render_spikes;
use osn_core::figures::{fig1_config, run_ftq};
use osn_core::kernel::time::Nanos;

fn main() {
    let samples: u32 = std::env::var("OSN_FTQ_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3000);
    let (params, node) = fig1_config(samples);
    let exp = run_ftq(params, node.with_seed(osn_bench::seed()));

    println!("== Fig 1a: OS noise as measured by FTQ ==");
    let ftq_series: Vec<(Nanos, Nanos)> = exp
        .series
        .times()
        .into_iter()
        .zip(exp.series.noise_estimate())
        .collect();
    println!("{}", render_spikes(&ftq_series, 12));

    println!("== Fig 1b: Synthetic OS noise chart (LTTng-noise) ==");
    let chart_series: Vec<(Nanos, Nanos)> =
        exp.chart.points.iter().map(|p| (p.t, p.noise)).collect();
    println!("{}", render_spikes(&chart_series, 12));

    // Fig 1c/1d: zoom around the largest FTQ spike.
    let (spike_idx, _) = exp
        .series
        .spikes(Nanos(0))
        .into_iter()
        .max_by_key(|(_, n)| *n)
        .unwrap_or((0, Nanos::ZERO));
    let lo = spike_idx.saturating_sub(5);
    let zoom = exp.series.window(lo, spike_idx + 5);
    println!("== Fig 1c: FTQ zoom around quantum {spike_idx} ==");
    for (t, n) in zoom.times().into_iter().zip(zoom.noise_estimate()) {
        println!("  t={t} ftq_noise={n}");
    }
    println!("\n== Fig 1d: chart zoom with per-event decomposition ==");
    let zstart = zoom.origin;
    let zend = zoom.origin + zoom.quantum * zoom.ops.len() as u64;
    for p in &exp.chart.window(zstart, zend).points {
        println!("  t={} noise={} components:", p.t, p.noise);
        for (c, d) in &p.components {
            println!("    {c:?} = {d}");
        }
    }

    let (ftq_total, traced_total) = exp.comparison.totals();
    println!("\n== §III-C agreement ==");
    println!("  FTQ estimate total:    {ftq_total}");
    println!("  Traced noise total:    {traced_total}");
    println!(
        "  correlation:           {:.4}",
        exp.comparison.correlation()
    );
    println!(
        "  FTQ >= traced quanta:  {:.1}% (FTQ slightly overestimates)",
        exp.comparison.overestimate_fraction() * 100.0
    );
}
