//! Fig 4 — Page fault time distributions: AMG (bimodal, ≈2.5 µs and
//! ≈4.5 µs, long tail) vs LAMMPS (one-sided, ≈2.5 µs).

use osn_bench::{load_or_run, render_histogram};
use osn_core::analysis::stats::{class_samples, EventClass};
use osn_core::analysis::Histogram;
use osn_core::workloads::App;

fn main() {
    for app in [App::Amg, App::Lammps] {
        let run = load_or_run(app);
        let samples = class_samples(&run.analysis, &run.ranks, EventClass::PageFault);
        let h = Histogram::build(&samples, 40, 99.0);
        println!(
            "== Fig 4{}: {} page fault time distribution ({} faults) ==",
            if app == App::Amg { 'a' } else { 'b' },
            app.name().to_uppercase(),
            samples.len()
        );
        println!("{}", render_histogram(&h, 50));
        let modes = h.modes(0.25);
        println!(
            "  modes at bins {:?} -> {}",
            modes,
            if modes.len() >= 2 {
                "bimodal"
            } else {
                "one-sided"
            }
        );
        println!();
    }
}
