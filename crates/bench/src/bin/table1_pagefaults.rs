//! Table I — page fault freq/avg/max/min (paper: AMG 1693/s avg 4380ns max 69ms; LAMMPS 231/s; SPHOT 25/s; UMT 3554/s)

use osn_core::analysis::stats::EventClass;
use osn_core::PaperReport;

fn main() {
    let runs = osn_bench::load_or_run_all();
    let report = PaperReport::build(&runs);
    println!("== Table I: {} ==", EventClass::PageFault.name());
    println!("{}", report.render_table(EventClass::PageFault));
    println!("note: page fault freq/avg/max/min (paper: AMG 1693/s avg 4380ns max 69ms; LAMMPS 231/s; SPHOT 25/s; UMT 3554/s)");
}
