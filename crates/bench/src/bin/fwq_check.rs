//! FWQ companion check: Fixed Work Quantum measures the same noise as
//! FTQ, without FTQ's discretization overestimate.

use osn_core::ftq::{fwq_series_from_trace, FwqParams, FwqWorkload};
use osn_core::kernel::node::Node;
use osn_core::kernel::prelude::*;
use osn_core::trace::TraceSession;

fn main() {
    let params = FwqParams {
        work: Nanos::from_millis(1),
        samples: 3000,
    };
    let cfg = NodeConfig::default()
        .with_cpus(1)
        .with_seed(osn_bench::seed())
        .with_horizon(Nanos::from_secs(5));
    let mut node = Node::new(cfg);
    node.spawn_process("fwq", Box::new(FwqWorkload::new(params)));
    let (session, mut tracer) = TraceSession::with_defaults(1);
    node.run(&mut tracer);
    let trace = session.stop();
    let series = fwq_series_from_trace(&trace, &params).expect("series");
    let noise = series.noise();
    let clean = noise.iter().filter(|n| n.is_zero()).count();
    println!(
        "FWQ: {} iterations of {} fixed work",
        series.walls.len(),
        params.work
    );
    println!("  total noise: {}", series.total_noise());
    println!(
        "  clean iterations: {} ({:.1}%)",
        clean,
        100.0 * clean as f64 / noise.len() as f64
    );
    let spikes = series.spikes(Nanos::from_micros(1));
    println!("  {} iterations with >1us noise; largest:", spikes.len());
    let mut top = spikes.clone();
    top.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    for (i, n) in top.iter().take(5) {
        println!("    iteration {i:>5}: {n}");
    }
}
