//! Ablation: periodic-noise scaling with tick frequency. The paper's
//! testbed ran the lowest-possible 100 Hz tick; desktop kernels of the
//! era ran 1000 Hz. How much periodic noise does the tick rate buy?

use osn_core::analysis::Breakdown;
use osn_core::kernel::activity::NoiseCategory;
use osn_core::kernel::time::Nanos;
use osn_core::workloads::App;
use osn_core::{run_app, ExperimentConfig};

fn main() {
    let dur = osn_bench::duration().min(Nanos::from_secs(10));
    println!("== tick-frequency ablation: SPHOT (quietest app) ==");
    for hz in [100u64, 250, 1000] {
        let mut config = ExperimentConfig::paper(App::Sphot, dur).with_seed(osn_bench::seed());
        config.node.tick_period = Nanos::SEC / hz;
        let run = run_app(config);
        let b = Breakdown::compute(&run.analysis, &run.ranks);
        println!(
            "  {:>5} Hz tick: noise/run {:.4}%  periodic share {:.1}%",
            hz,
            b.noise_ratio() * 100.0,
            b.fraction(NoiseCategory::Periodic) * 100.0
        );
    }
    println!("\n(the paper minimized the tick rate for exactly this reason)");
}
