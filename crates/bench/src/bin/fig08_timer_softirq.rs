//! Fig 8 — run_timer_softirq time distributions for AMG and UMT:
//! long-tail density functions.

use osn_bench::{load_or_run, render_histogram};
use osn_core::analysis::stats::{class_samples, EventClass};
use osn_core::analysis::Histogram;
use osn_core::workloads::App;

fn main() {
    for app in [App::Amg, App::Umt] {
        let run = load_or_run(app);
        let samples = class_samples(&run.analysis, &run.ranks, EventClass::RunTimerSoftirq);
        let h = Histogram::build(&samples, 30, 99.0);
        println!(
            "== Fig 8{}: {} run_timer_softirq distribution ==",
            if app == App::Amg { 'a' } else { 'b' },
            app.name().to_uppercase()
        );
        println!("{}", render_histogram(&h, 50));
        // Long tail check: mean well above the mode.
        let mode_bin = h
            .counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
            .unwrap_or(0);
        let mode = h.centers()[mode_bin];
        println!(
            "  mode ~{} vs binned mean {} (long tail)",
            mode,
            h.binned_mean()
        );
        println!();
    }
}
