//! Fig 5 — Page fault placement traces: AMG faults spread through the
//! whole execution (with accumulation points); LAMMPS faults mainly at
//! the beginning and the end.

use osn_bench::{load_or_run, render_deciles};
use osn_core::analysis::stats::{class_samples_timed, EventClass};
use osn_core::workloads::App;

fn main() {
    for app in [App::Amg, App::Lammps] {
        let run = load_or_run(app);
        let samples = class_samples_timed(&run.analysis, &run.ranks, EventClass::PageFault);
        let span = (osn_core::kernel::time::Nanos::ZERO, run.result.end_time);
        println!(
            "== Fig 5{}: {} page-fault placement (faults per run decile) ==",
            if app == App::Amg { 'a' } else { 'b' },
            app.name().to_uppercase()
        );
        println!("{}", render_deciles(&samples, span));
    }
}
