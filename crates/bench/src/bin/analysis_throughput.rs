//! Analysis throughput: sharded/fused engine vs the retained sequential
//! reference, over real traces.
//!
//! Two sections, both written to `BENCH_PR3.json` at the repo root:
//!
//! * **Paper campaign** — for every Sequoia app, time the full analysis
//!   phase (trace → `NoiseAnalysis` → `AppReport`) through the new
//!   engine (`NoiseAnalysis::analyze` + fused `AppReport::build_with`)
//!   and the reference (`analyze_reference` + multi-pass
//!   `build_reference`), asserting the serialized reports are
//!   bit-identical — every timed rep doubles as a differential check.
//! * **Rank sweep** — ranks pushed past the CPU count, where the
//!   reference's O(ranks × instances) obstruction gather separates from
//!   the per-context index.
//!
//! Knobs: `OSN_SECS` — simulated seconds per campaign run (default 10);
//! `OSN_REPS` — timed repetitions, best kept (default 3); `OSN_SEED`.
//!
//! The campaign section is additionally merged into `BENCH_PR6.json`
//! under `analysis_*` keys (plus `aggregate_analysis_events_per_sec`,
//! total campaign events over total engine seconds) — the columnar
//! engine's headline throughput, shared with `store_throughput`'s
//! streaming metrics in the same file.

use std::time::Instant;

use osn_bench::{duration, load_or_run, seed};
use osn_core::analysis::NoiseAnalysis;
use osn_core::report::AppReport;
use osn_core::{run_app, AppRun, ExperimentConfig};
use osn_kernel::time::Nanos;
use osn_workloads::App;

use serde::Serialize;

#[derive(Serialize)]
struct AppRow {
    app: String,
    sim_secs: u64,
    events: usize,
    instances: usize,
    /// Best-of-reps seconds for analyze + report assembly.
    reference_s: f64,
    engine_s: f64,
    reference_events_per_sec: f64,
    engine_events_per_sec: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct SweepRow {
    cpus: u16,
    ranks: usize,
    sim_secs: u64,
    events: usize,
    instances: usize,
    /// Best-of-reps seconds for the analysis alone (no report).
    reference_s: f64,
    engine_s: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Report {
    seed: u64,
    reps: usize,
    host_workers: usize,
    apps: Vec<AppRow>,
    /// Total reference time over total engine time across the campaign.
    aggregate_speedup: f64,
    sweep: Vec<SweepRow>,
    largest_sweep_speedup: f64,
}

/// Nanoseconds this thread has been on-CPU, from
/// `/proc/thread-self/schedstat`.
fn on_cpu_ns() -> Option<u64> {
    std::fs::read_to_string("/proc/thread-self/schedstat")
        .ok()
        .and_then(|s| s.split_whitespace().next()?.parse().ok())
}

/// Time a closure, preferring on-CPU seconds over wall seconds; below
/// ~20 ms schedstat is quantization noise, so fall back to wall time.
/// The parallel engine's worker threads don't bill to this thread's
/// schedstat, so when it uses more than one worker we take wall time —
/// on a multi-core host that is the honest "phase latency" comparison.
fn timed<T>(multi_threaded: bool, f: impl FnOnce() -> T) -> (f64, T) {
    let wall = Instant::now();
    let cpu0 = on_cpu_ns();
    let out = f();
    let cpu = cpu0
        .zip(on_cpu_ns())
        .map(|(a, b)| b.saturating_sub(a) as f64 / 1e9);
    let wall = wall.elapsed().as_secs_f64();
    if multi_threaded {
        return (wall, out);
    }
    match cpu {
        Some(c) if c >= 0.02 => (c, out),
        _ => (wall, out),
    }
}

fn best_of<T>(reps: usize, mut f: impl FnMut() -> (f64, T)) -> (f64, T) {
    let (mut best, mut out) = f();
    for _ in 1..reps {
        let (s, o) = f();
        if s < best {
            best = s;
            out = o;
        }
    }
    (best, out)
}

fn analyze_reference(run: &AppRun) -> NoiseAnalysis {
    NoiseAnalysis::analyze_reference(&run.trace, &run.result.tasks, run.result.end_time)
}

fn analyze_engine(run: &AppRun) -> NoiseAnalysis {
    NoiseAnalysis::analyze(&run.trace, &run.result.tasks, run.result.end_time)
}

fn main() {
    let sim = duration();
    let sim_secs = sim.as_nanos() / 1_000_000_000;
    let reps: usize = std::env::var("OSN_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);
    let seed = seed();
    let host_workers = std::thread::available_parallelism()
        .map(|w| w.get())
        .unwrap_or(1);
    let multi = host_workers > 1;

    // ---- Paper campaign: full analysis phase, report included. ----
    let mut apps = Vec::new();
    let (mut tot_ref, mut tot_eng) = (0.0f64, 0.0f64);
    for &app in App::ALL.iter() {
        let run = load_or_run(app);
        // Warm-up rep of each side, then timed reps.
        let reference_report = AppReport::build_reference(&run, &analyze_reference(&run));
        let engine_report = AppReport::build_with(&run, &analyze_engine(&run));
        let reference_json = serde_json::to_vec(&reference_report).expect("serializable");
        let engine_json = serde_json::to_vec(&engine_report).expect("serializable");
        assert_eq!(
            reference_json,
            engine_json,
            "{}: engine report differs from reference",
            app.name()
        );

        let (reference_s, _) = best_of(reps, || {
            timed(false, || {
                AppReport::build_reference(&run, &analyze_reference(&run))
            })
        });
        let (engine_s, _) = best_of(reps, || {
            timed(multi, || AppReport::build_with(&run, &analyze_engine(&run)))
        });

        let row = AppRow {
            app: app.name().to_string(),
            sim_secs,
            events: run.trace.len(),
            instances: run.analysis.instances.len(),
            reference_s,
            engine_s,
            reference_events_per_sec: run.trace.len() as f64 / reference_s,
            engine_events_per_sec: run.trace.len() as f64 / engine_s,
            speedup: reference_s / engine_s,
        };
        println!(
            "{:>10}: {:>9} events  ref {:>8.1} kev/s  engine {:>8.1} kev/s  speedup {:.2}x",
            row.app,
            row.events,
            row.reference_events_per_sec / 1e3,
            row.engine_events_per_sec / 1e3,
            row.speedup
        );
        tot_ref += reference_s;
        tot_eng += engine_s;
        apps.push(row);
    }
    let aggregate_speedup = tot_ref / tot_eng;
    println!(
        "campaign aggregate: ref {:.3}s vs engine {:.3}s -> {:.2}x",
        tot_ref, tot_eng, aggregate_speedup
    );

    // ---- Rank sweep: quadratic gather vs per-context index. ----
    let sweep_secs = (sim_secs / 2).max(2);
    let sweep_sim = Nanos::from_secs(sweep_secs);
    let mut sweep = Vec::new();
    let mut largest_sweep_speedup = 0.0f64;
    for ranks in [8usize, 32, 64, 256] {
        let cpus = 8u16;
        let mut config = ExperimentConfig::paper(App::Amg, sweep_sim).with_seed(seed);
        config.node.cpus = cpus;
        config.nranks = ranks;
        let run = run_app(config);

        // Differential check once per configuration.
        let reference = analyze_reference(&run);
        assert_eq!(
            run.analysis.instances, reference.instances,
            "sweep ranks={ranks}: instances differ"
        );
        for (tid, tn) in &run.analysis.tasks {
            assert_eq!(
                Some(&tn.interruptions),
                reference.tasks.get(tid).map(|t| &t.interruptions),
                "sweep ranks={ranks}: interruptions of {tid} differ"
            );
        }

        let (reference_s, _) = best_of(reps, || timed(false, || analyze_reference(&run)));
        let (engine_s, _) = best_of(reps, || timed(multi, || analyze_engine(&run)));
        let row = SweepRow {
            cpus,
            ranks,
            sim_secs: sweep_secs,
            events: run.trace.len(),
            instances: reference.instances.len(),
            reference_s,
            engine_s,
            speedup: reference_s / engine_s,
        };
        println!(
            "sweep ranks={:>3} on {} cpus: {:>9} events  ref {:>7.3}s  engine {:>7.3}s  speedup {:.2}x",
            row.ranks, row.cpus, row.events, row.reference_s, row.engine_s, row.speedup
        );
        largest_sweep_speedup = row.speedup;
        sweep.push(row);
    }

    let report = Report {
        seed,
        reps,
        host_workers,
        apps,
        aggregate_speedup,
        sweep,
        largest_sweep_speedup,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR3.json");
    std::fs::write(path, serde_json::to_vec(&report).expect("serializable"))
        .expect("write BENCH_PR3.json");
    println!("wrote {path}");

    // ---- BENCH_PR6.json analysis section (shared with store_throughput). ----
    let tot_events: usize = report.apps.iter().map(|r| r.events).sum();
    let aggregate_analysis_events_per_sec = tot_events as f64 / tot_eng;
    let own = vec![
        ("analysis_seed".to_string(), serde::Value::U64(seed)),
        ("analysis_reps".to_string(), serde::Value::U64(reps as u64)),
        (
            "analysis_host_workers".to_string(),
            serde::Value::U64(host_workers as u64),
        ),
        ("analysis_apps".to_string(), report.apps.to_value()),
        (
            "analysis_aggregate_speedup_vs_reference".to_string(),
            serde::Value::F64(aggregate_speedup),
        ),
        (
            "aggregate_analysis_events_per_sec".to_string(),
            serde::Value::F64(aggregate_analysis_events_per_sec),
        ),
    ];
    let pr6 = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR6.json");
    osn_bench::merge_bench_json(pr6, own, |k| {
        k.starts_with("analysis") || k == "aggregate_analysis_events_per_sec"
    });
    println!(
        "wrote {pr6} (aggregate {:.1} Mev/s over the campaign)",
        aggregate_analysis_events_per_sec / 1e6
    );
}
