//! Catalog service throughput: queries/second against a live
//! in-process `osn-catalog` daemon at 1/4/16 concurrent keep-alive
//! clients running a mixed endpoint workload (listing, cached reports,
//! chunk-seek slices, histograms, signature compares, stats). Every
//! `/runs/{id}/report` response is differentially checked against the
//! offline report bytes, so the bench doubles as a byte-identity check
//! under load.
//!
//! Written to `BENCH_PR9.json` at the repo root. Knobs: `OSN_SECS`
//! (simulated seconds per recorded store, default 10), `OSN_REPS`
//! (default 3), `OSN_SEED`, `OSN_CATALOG_QUERIES` (queries per client
//! per rep, default 200).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use osn_bench::{duration, seed};
use osn_catalog::service::RunsResponse;
use osn_catalog::{Client, Service, ServiceConfig};
use osn_core::workloads::App;
use osn_core::ExperimentConfig;

use serde::Serialize;

#[derive(Serialize)]
struct ClientRow {
    clients: usize,
    /// Queries per client per rep.
    queries: usize,
    /// Best-of-reps wall time for all clients to drain their queries.
    run_s: f64,
    qps: f64,
    /// `None` when the host has fewer CPUs than client threads — a
    /// "speedup" measured on an oversubscribed host is scheduling
    /// noise, not concurrency, so it is suppressed rather than
    /// reported as a (dis)honest number.
    speedup_vs_1: Option<f64>,
}

#[derive(Serialize)]
struct Report {
    seed: u64,
    sim_secs: u64,
    reps: usize,
    runs_indexed: usize,
    events_indexed: u64,
    /// `available_parallelism()` of the benchmarking host, recorded so
    /// the concurrency rows can be judged against real core counts.
    host_cpus: usize,
    rows: Vec<ClientRow>,
    aggregate_catalog_qps_c1: f64,
    aggregate_catalog_qps_c4: f64,
    aggregate_catalog_qps_c16: f64,
}

fn main() {
    let dur = duration();
    let sim_secs = dur.as_nanos() / 1_000_000_000;
    let seed = seed();
    let reps: usize = std::env::var("OSN_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);
    let queries: usize = std::env::var("OSN_CATALOG_QUERIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200)
        .max(1);

    // Record two stores into a cache dir keyed by duration and seed;
    // repeats reuse them (the catalog re-indexes from the files).
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/osn-cache")
        .join(format!("catalog-{sim_secs}s-{seed:x}"));
    std::fs::create_dir_all(&root).expect("create store dir");
    for (app, store_seed) in [(App::Sphot, seed), (App::Amg, seed + 1)] {
        let path = root.join(format!("{}.osn", app.name()));
        if path.exists() {
            continue;
        }
        let config = ExperimentConfig::paper(app, dur).with_seed(store_seed);
        osn_core::record_app(config, &path, osn_core::store::Options::default())
            .expect("record store");
        println!("recorded {}", path.display());
    }

    let mut config = ServiceConfig::new(root);
    config.threads = 16;
    config.rescan = None;
    let service = Service::start(config).expect("start service");
    let addr = service.addr();

    // Reference bytes for the differential check, fetched once.
    let mut probe = Client::connect(addr).expect("connect");
    let (status, body) = probe.get("/runs").expect("list runs");
    assert_eq!(status, 200);
    let runs: RunsResponse = serde_json::from_slice(&body).expect("parse /runs");
    assert_eq!(runs.count, 2, "both recorded stores indexed");
    let events_indexed: u64 = runs.runs.iter().map(|r| r.events).sum();
    let mut reports: HashMap<String, Vec<u8>> = HashMap::new();
    for run in &runs.runs {
        let (status, body) = probe
            .get(&format!("/runs/{}/report", run.id))
            .expect("fetch report");
        assert_eq!(status, 200);
        reports.insert(run.id.clone(), body);
    }

    // The mixed workload: each entry is (target, expected report id).
    let a = &runs.runs[0];
    let b = &runs.runs[1];
    let mid = a.span_start_ns + (a.span_end_ns - a.span_start_ns) / 2;
    let q1 = a.span_start_ns + (a.span_end_ns - a.span_start_ns) / 4;
    let targets: Arc<Vec<(String, Option<String>)>> = Arc::new(vec![
        ("/runs".to_string(), None),
        (format!("/runs/{}/report", a.id), Some(a.id.clone())),
        (format!("/runs/{}/slice?t0={q1}&t1={mid}", a.id), None),
        (format!("/runs/{}/report", b.id), Some(b.id.clone())),
        (
            format!("/runs/{}/histogram?class=page_fault&bins=64", a.id),
            None,
        ),
        (format!("/compare?a={}&b={}", a.id, b.id), None),
        ("/stats".to_string(), None),
        (
            format!(
                "/runs/{}/slice?t0={q1}&t1={mid}&class=timer_interrupt",
                b.id
            ),
            None,
        ),
    ]);
    let reports = Arc::new(reports);

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rows: Vec<ClientRow> = Vec::new();
    for clients in [1usize, 4, 16] {
        let mut run_s = f64::INFINITY;
        for _ in 0..reps {
            let t = Instant::now();
            std::thread::scope(|s| {
                for worker in 0..clients {
                    let targets = Arc::clone(&targets);
                    let reports = Arc::clone(&reports);
                    s.spawn(move || {
                        let mut client = Client::connect(addr).expect("connect");
                        for i in 0..queries {
                            let (target, expect) = &targets[(worker + i) % targets.len()];
                            let (status, body) = client.get(target).expect("query");
                            assert_eq!(status, 200, "GET {target}");
                            if let Some(id) = expect {
                                assert_eq!(&body, &reports[id], "report bytes diverged under load");
                            }
                        }
                    });
                }
            });
            run_s = run_s.min(t.elapsed().as_secs_f64());
        }
        let qps = (clients * queries) as f64 / run_s;
        let speedup_vs_1 =
            (clients <= host_cpus).then(|| rows.first().map(|r| qps / r.qps).unwrap_or(1.0));
        match speedup_vs_1 {
            Some(s) => println!(
                "{clients:>2} clients: {run_s:>7.3}s  {qps:>8.1} queries/s  speedup {s:>5.2}x"
            ),
            None => println!(
                "{clients:>2} clients: {run_s:>7.3}s  {qps:>8.1} queries/s  speedup n/a ({host_cpus} host CPUs)"
            ),
        }
        rows.push(ClientRow {
            clients,
            queries,
            run_s,
            qps,
            speedup_vs_1,
        });
    }

    let (qps_c1, qps_c4, qps_c16) = (rows[0].qps, rows[1].qps, rows[2].qps);
    let report = Report {
        seed,
        sim_secs,
        reps,
        runs_indexed: runs.count,
        events_indexed,
        host_cpus,
        rows,
        aggregate_catalog_qps_c1: qps_c1,
        aggregate_catalog_qps_c4: qps_c4,
        aggregate_catalog_qps_c16: qps_c16,
    };
    println!(
        "aggregate: {:.1} / {:.1} / {:.1} queries/s at 1/4/16 clients",
        report.aggregate_catalog_qps_c1,
        report.aggregate_catalog_qps_c4,
        report.aggregate_catalog_qps_c16
    );
    service.shutdown();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR9.json");
    std::fs::write(
        path,
        serde_json::to_vec_pretty(&report).expect("serializable"),
    )
    .expect("write BENCH_PR9.json");
    println!("wrote {path}");
}
