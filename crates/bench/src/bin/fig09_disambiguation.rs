//! Fig 9 — Noise disambiguation (§V-B): a single FTQ spike that hides
//! two unrelated events (a page fault right before a timer tick); the
//! tracer separates them.

use osn_core::figures::{fig9_quantum_composites, run_ftq};
use osn_core::ftq::FtqParams;
use osn_core::kernel::config::NodeConfig;
use osn_core::kernel::time::Nanos;

fn main() {
    // Page the FTQ sample buffer every 9 quanta: fault times drift
    // through the 10 ms tick phase, so some faults land immediately
    // before a tick — the paper's §V-B coincidence.
    let params = FtqParams {
        samples: 2000,
        quanta_per_page: 9,
        ..FtqParams::default()
    };
    let node = NodeConfig::default()
        .with_seed(osn_bench::seed())
        .with_horizon(Nanos::from_secs(3));
    let exp = run_ftq(params, node);

    println!("== Fig 9a: FTQ view (equidistant spikes, one larger) ==");
    let noise = exp.series.noise_estimate();
    let spikes: Vec<(usize, Nanos)> = noise
        .iter()
        .enumerate()
        .filter(|(_, n)| **n > Nanos(1500))
        .map(|(i, n)| (i, *n))
        .take(12)
        .collect();
    for (i, n) in &spikes {
        println!("  quantum {i:>5}: {n}");
    }

    println!("\n== Fig 9b: LTTng-noise view (folded quanta separated) ==");
    let mut composites = fig9_quantum_composites(&exp);
    // The paper's example: a page fault folded into a timer spike.
    composites.sort_by_key(|(_, events)| {
        let has_fault = events
            .iter()
            .any(|(k, _)| *k == osn_core::analysis::EventClass::PageFault);
        std::cmp::Reverse((has_fault, events.len()))
    });
    println!(
        "  {} quanta fold 2+ unrelated events into one FTQ spike:",
        composites.len()
    );
    for (q, events) in composites.iter().take(8) {
        print!("  quantum {q:>5}:");
        for (class, d) in events {
            print!(" {}={}", class.name(), d);
        }
        println!();
    }
    println!("\npaper: \"FTQ was not able to distinguish the two events that, indeed,");
    println!("        appear as one in its graph. LTTng-noise ... shows the two events\"");
}
