//! On-disk store throughput: chunked write speed, codec effectiveness,
//! and out-of-core streamed analysis vs the in-memory engine.
//!
//! For every Sequoia app (written to `BENCH_PR4.json` at the repo
//! root):
//!
//! * **Write** — `persist_run` MB/s and events/s, delta/varint codec
//!   vs raw records, plus the resulting compression ratio against the
//!   in-memory event footprint.
//! * **Analyze** — full out-of-core pipeline (open + chunk streams +
//!   `analyze_store` + report) vs the in-memory engine on the same
//!   run, asserting byte-identical serialized reports on every timed
//!   rep — each rep doubles as a differential check.
//! * **Memory** — the reader's chunk-residency proxy (peak resident
//!   chunks × chunk capacity × record size) against the materialized
//!   trace footprint.
//!
//! Knobs: `OSN_SECS` (default 10), `OSN_REPS` (default 3), `OSN_SEED`.

use std::path::PathBuf;
use std::time::Instant;

use osn_bench::{duration, load_or_run, seed};
use osn_core::report::AppReport;
use osn_core::store::{self, Options};
use osn_workloads::App;

use serde::Serialize;

#[derive(Serialize)]
struct AppRow {
    app: String,
    sim_secs: u64,
    events: usize,
    /// Compressed store size / raw-records store size / in-memory.
    file_bytes: u64,
    raw_file_bytes: u64,
    memory_bytes: u64,
    compression_ratio: f64,
    chunks: usize,
    /// Best-of-reps write and analyze timings.
    write_s: f64,
    write_mb_per_sec: f64,
    write_events_per_sec: f64,
    in_memory_analyze_s: f64,
    streamed_analyze_s: f64,
    streamed_over_in_memory: f64,
    /// Reader residency proxy: peak chunks × capacity × record bytes.
    peak_resident_chunks: usize,
    streamed_peak_bytes: u64,
}

#[derive(Serialize)]
struct Report {
    seed: u64,
    reps: usize,
    chunk_capacity: usize,
    apps: Vec<AppRow>,
    aggregate_write_mb_per_sec: f64,
    aggregate_streamed_over_in_memory: f64,
    aggregate_compression_ratio: f64,
}

fn best_of(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..reps.max(1)).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn scratch(app: App, tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "osn-bench-store-{}-{tag}-{}.osn",
        app.name(),
        std::process::id()
    ))
}

fn main() {
    let sim = duration();
    let sim_secs = sim.as_nanos() / 1_000_000_000;
    let reps: usize = std::env::var("OSN_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);
    let seed = seed();
    let opts = Options::default();

    let mut apps = Vec::new();
    let (mut tot_bytes, mut tot_write, mut tot_mem, mut tot_stream) = (0u64, 0.0f64, 0.0, 0.0);
    let mut tot_raw = 0u64;
    for &app in App::ALL.iter() {
        let run = load_or_run(app);
        let path = scratch(app, "delta");
        let raw_path = scratch(app, "raw");

        // ---- Write throughput, both codecs. ----
        let mut summary = store::persist_run(&run, &path, opts).expect("persist");
        let write_s = best_of(reps, || {
            let t = Instant::now();
            summary = store::persist_run(&run, &path, opts).expect("persist");
            t.elapsed().as_secs_f64()
        });
        let raw_summary =
            store::persist_run(&run, &raw_path, opts.with_compress(false)).expect("persist raw");
        let memory_bytes = (run.trace.len() * std::mem::size_of::<osn_trace::Event>()) as u64;

        // ---- Streamed vs in-memory analysis, differentially checked. ----
        let in_memory_report = AppReport::build(&run);
        let in_memory_json = serde_json::to_vec(&in_memory_report).expect("serializable");
        let mut peak_resident = 0usize;
        let streamed_analyze_s = best_of(reps, || {
            let t = Instant::now();
            let reader = store::Reader::open(&path).expect("open");
            let meta = osn_core::StoredRunMeta::from_bytes(reader.metadata()).expect("meta");
            let analysis = store::analyze_store(&reader, &meta.result).expect("analyze");
            let report = AppReport::from_analysis(
                meta.config.app,
                &meta.ranks,
                meta.config.node.net_irq_cpu,
                &analysis,
            );
            let s = t.elapsed().as_secs_f64();
            peak_resident = reader.stats().peak_resident;
            assert_eq!(
                serde_json::to_vec(&report).expect("serializable"),
                in_memory_json,
                "{}: streamed report differs from in-memory",
                app.name()
            );
            s
        });
        let in_memory_analyze_s = best_of(reps, || {
            let t = Instant::now();
            let analysis = osn_core::analysis::NoiseAnalysis::analyze(
                &run.trace,
                &run.result.tasks,
                run.result.end_time,
            );
            let _ = AppReport::build_with(&run, &analysis);
            t.elapsed().as_secs_f64()
        });

        let row = AppRow {
            app: app.name().to_string(),
            sim_secs,
            events: run.trace.len(),
            file_bytes: summary.bytes,
            raw_file_bytes: raw_summary.bytes,
            memory_bytes,
            compression_ratio: memory_bytes as f64 / summary.bytes as f64,
            chunks: summary.chunks,
            write_s,
            write_mb_per_sec: summary.bytes as f64 / write_s / 1e6,
            write_events_per_sec: summary.events as f64 / write_s,
            in_memory_analyze_s,
            streamed_analyze_s,
            streamed_over_in_memory: streamed_analyze_s / in_memory_analyze_s,
            peak_resident_chunks: peak_resident,
            streamed_peak_bytes: (peak_resident
                * opts.chunk_capacity
                * std::mem::size_of::<osn_trace::Event>()) as u64,
        };
        println!(
            "{:>10}: {:>9} events  write {:>7.1} MB/s  {:>5.2}x smaller  streamed/in-mem {:>5.2}x  peak {:>3} chunks",
            row.app,
            row.events,
            row.write_mb_per_sec,
            row.compression_ratio,
            row.streamed_over_in_memory,
            row.peak_resident_chunks
        );
        tot_bytes += summary.bytes;
        tot_raw += raw_summary.bytes;
        tot_write += write_s;
        tot_mem += in_memory_analyze_s;
        tot_stream += streamed_analyze_s;
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&raw_path);
        apps.push(row);
    }

    let report = Report {
        seed,
        reps,
        chunk_capacity: opts.chunk_capacity,
        aggregate_write_mb_per_sec: tot_bytes as f64 / tot_write / 1e6,
        aggregate_streamed_over_in_memory: tot_stream / tot_mem,
        aggregate_compression_ratio: tot_raw as f64 / tot_bytes as f64,
        apps,
    };
    println!(
        "aggregate: write {:.1} MB/s, streamed analysis {:.2}x the in-memory time, raw/delta file ratio {:.2}x",
        report.aggregate_write_mb_per_sec,
        report.aggregate_streamed_over_in_memory,
        report.aggregate_compression_ratio
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR4.json");
    std::fs::write(path, serde_json::to_vec(&report).expect("serializable"))
        .expect("write BENCH_PR4.json");
    println!("wrote {path}");
}
