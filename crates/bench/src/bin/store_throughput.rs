//! On-disk store throughput: chunked write speed, codec effectiveness,
//! and out-of-core streamed analysis vs the in-memory engine.
//!
//! For every Sequoia app (written to `BENCH_PR4.json` at the repo
//! root):
//!
//! * **Write** — `persist_run` MB/s and events/s, delta/varint codec
//!   vs raw records, plus the resulting compression ratio against the
//!   in-memory event footprint.
//! * **Analyze** — full out-of-core pipeline (open + mmap'd columnar
//!   chunk cursors + `analyze_store` + report) vs two in-memory
//!   baselines on the same run: the *resident* engine (trace already
//!   in RAM) and the *from-file* engine (`read_trace` materialization
//!   then analyze — the `load_run` path, which is the apples-to-apples
//!   comparison since both sides pay decode + checksum + I/O). Every
//!   timed rep asserts byte-identical serialized reports — each rep
//!   doubles as a differential check.
//! * **Memory** — the reader's chunk-residency proxy (peak resident
//!   chunks × chunk capacity × record size) against the materialized
//!   trace footprint.
//!
//! Knobs: `OSN_SECS` (default 10), `OSN_REPS` (default 3), `OSN_SEED`.

use std::path::PathBuf;
use std::time::Instant;

use osn_bench::{duration, load_or_run, seed};
use osn_core::report::AppReport;
use osn_core::store::{self, Options};
use osn_workloads::App;

use serde::Serialize;

#[derive(Serialize)]
struct AppRow {
    app: String,
    sim_secs: u64,
    events: usize,
    /// Compressed store size / raw-records store size / in-memory.
    file_bytes: u64,
    raw_file_bytes: u64,
    memory_bytes: u64,
    compression_ratio: f64,
    chunks: usize,
    /// Best-of-reps write and analyze timings.
    write_s: f64,
    write_mb_per_sec: f64,
    write_events_per_sec: f64,
    in_memory_analyze_s: f64,
    in_memory_from_file_s: f64,
    streamed_analyze_s: f64,
    streamed_over_in_memory: f64,
    streamed_over_resident: f64,
    /// Chunk reads served from the memory map (false = pread fallback).
    mapped: bool,
    /// Reader residency proxy: peak chunks × capacity × record bytes.
    peak_resident_chunks: usize,
    streamed_peak_bytes: u64,
}

#[derive(Serialize)]
struct Report {
    seed: u64,
    reps: usize,
    chunk_capacity: usize,
    apps: Vec<AppRow>,
    aggregate_write_mb_per_sec: f64,
    /// Sum of streamed times over sum of *from-file* in-memory times
    /// (both sides pay open + decode + checksum; streamed does
    /// strictly less work). BENCH_PR4 used the resident-trace
    /// denominator, reported here as
    /// `aggregate_streamed_over_resident`.
    aggregate_streamed_over_in_memory: f64,
    aggregate_streamed_over_resident: f64,
    /// Ratio of sums: Σ memory_bytes / Σ file_bytes — the same
    /// direction as every per-app `compression_ratio` (in-memory event
    /// footprint over compressed file size). The old aggregate divided
    /// raw-*file* bytes by compressed-file bytes, a different metric
    /// that sat below every per-app value; that ratio is now
    /// `aggregate_raw_file_over_file`.
    aggregate_compression_ratio: f64,
    aggregate_raw_file_over_file: f64,
    compression_ratio_definition: String,
    streamed_over_in_memory_definition: String,
}

fn best_of(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..reps.max(1)).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn scratch(app: App, tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "osn-bench-store-{}-{tag}-{}.osn",
        app.name(),
        std::process::id()
    ))
}

fn main() {
    let sim = duration();
    let sim_secs = sim.as_nanos() / 1_000_000_000;
    let reps: usize = std::env::var("OSN_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);
    let seed = seed();
    // OSN_CHUNK_CAP: events per chunk (default = the store's own);
    // small values stress cross-chunk pairing resumption in the
    // columnar cursors — bench_smoke uses this.
    let opts = match std::env::var("OSN_CHUNK_CAP")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        Some(cap) => Options::default().with_chunk_capacity(cap),
        None => Options::default(),
    };

    let mut apps = Vec::new();
    let (mut tot_bytes, mut tot_write, mut tot_mem, mut tot_stream) = (0u64, 0.0f64, 0.0, 0.0);
    let (mut tot_raw, mut tot_mem_bytes, mut tot_from_file) = (0u64, 0u64, 0.0f64);
    for &app in App::ALL.iter() {
        let run = load_or_run(app);
        let path = scratch(app, "delta");
        let raw_path = scratch(app, "raw");

        // ---- Write throughput, both codecs. ----
        let mut summary = store::persist_run(&run, &path, opts).expect("persist");
        let write_s = best_of(reps, || {
            let t = Instant::now();
            summary = store::persist_run(&run, &path, opts).expect("persist");
            t.elapsed().as_secs_f64()
        });
        let raw_summary =
            store::persist_run(&run, &raw_path, opts.with_compress(false)).expect("persist raw");
        let memory_bytes = (run.trace.len() * std::mem::size_of::<osn_trace::Event>()) as u64;

        // ---- Streamed vs in-memory analysis, differentially checked. ----
        let in_memory_report = AppReport::build(&run);
        let in_memory_json = serde_json::to_vec(&in_memory_report).expect("serializable");
        let mut peak_resident = 0usize;
        let mut mapped = false;
        let streamed_analyze_s = best_of(reps, || {
            let t = Instant::now();
            let reader = store::Reader::open(&path).expect("open");
            let meta = osn_core::StoredRunMeta::from_bytes(reader.metadata()).expect("meta");
            let analysis = store::analyze_store(&reader, &meta.result).expect("analyze");
            let report = AppReport::from_analysis(
                meta.config.app,
                &meta.ranks,
                meta.config.node.net_irq_cpu,
                &analysis,
            );
            let s = t.elapsed().as_secs_f64();
            peak_resident = reader.stats().peak_resident;
            mapped = reader.is_mapped();
            assert_eq!(
                serde_json::to_vec(&report).expect("serializable"),
                in_memory_json,
                "{}: streamed report differs from in-memory",
                app.name()
            );
            s
        });
        // From-file in-memory baseline: materialize the trace from the
        // same store, then run the resident engine — the `load_run`
        // path, paying the same open/decode/checksum the streamed side
        // pays.
        let in_memory_from_file_s = best_of(reps, || {
            let t = Instant::now();
            let reader = store::Reader::open(&path).expect("open");
            let meta = osn_core::StoredRunMeta::from_bytes(reader.metadata()).expect("meta");
            let trace = reader.read_trace().expect("read");
            let analysis = osn_core::analysis::NoiseAnalysis::analyze(
                &trace,
                &meta.result.tasks,
                meta.result.end_time,
            );
            let report = AppReport::from_analysis(
                meta.config.app,
                &meta.ranks,
                meta.config.node.net_irq_cpu,
                &analysis,
            );
            let s = t.elapsed().as_secs_f64();
            assert_eq!(
                serde_json::to_vec(&report).expect("serializable"),
                in_memory_json,
                "{}: from-file report differs from in-memory",
                app.name()
            );
            s
        });
        let in_memory_analyze_s = best_of(reps, || {
            let t = Instant::now();
            let analysis = osn_core::analysis::NoiseAnalysis::analyze(
                &run.trace,
                &run.result.tasks,
                run.result.end_time,
            );
            let _ = AppReport::build_with(&run, &analysis);
            t.elapsed().as_secs_f64()
        });

        let row = AppRow {
            app: app.name().to_string(),
            sim_secs,
            events: run.trace.len(),
            file_bytes: summary.bytes,
            raw_file_bytes: raw_summary.bytes,
            memory_bytes,
            compression_ratio: memory_bytes as f64 / summary.bytes as f64,
            chunks: summary.chunks,
            write_s,
            write_mb_per_sec: summary.bytes as f64 / write_s / 1e6,
            write_events_per_sec: summary.events as f64 / write_s,
            in_memory_analyze_s,
            in_memory_from_file_s,
            streamed_analyze_s,
            streamed_over_in_memory: streamed_analyze_s / in_memory_from_file_s,
            streamed_over_resident: streamed_analyze_s / in_memory_analyze_s,
            mapped,
            peak_resident_chunks: peak_resident,
            streamed_peak_bytes: (peak_resident
                * opts.chunk_capacity
                * std::mem::size_of::<osn_trace::Event>()) as u64,
        };
        println!(
            "{:>10}: {:>9} events  write {:>7.1} MB/s  {:>5.2}x smaller  streamed/from-file {:>5.2}x  /resident {:>5.2}x  peak {:>3} chunks",
            row.app,
            row.events,
            row.write_mb_per_sec,
            row.compression_ratio,
            row.streamed_over_in_memory,
            row.streamed_over_resident,
            row.peak_resident_chunks
        );
        tot_bytes += summary.bytes;
        tot_raw += raw_summary.bytes;
        tot_mem_bytes += memory_bytes;
        tot_write += write_s;
        tot_mem += in_memory_analyze_s;
        tot_from_file += in_memory_from_file_s;
        tot_stream += streamed_analyze_s;
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&raw_path);
        apps.push(row);
    }

    let compression_def = "memory_bytes / file_bytes (in-memory event footprint over \
compressed store size); the aggregate is the ratio of sums over all apps, \
direction-consistent with every per-app compression_ratio"
        .to_string();
    let streamed_def = "streamed_analyze_s / in_memory_from_file_s (both sides open the \
store and pay decode + checksum; the denominator materializes the trace and runs the \
resident engine — the load_run path). streamed_over_resident keeps the BENCH_PR4 \
denominator (trace already in RAM) for continuity"
        .to_string();
    let report = Report {
        seed,
        reps,
        chunk_capacity: opts.chunk_capacity,
        aggregate_write_mb_per_sec: tot_bytes as f64 / tot_write / 1e6,
        aggregate_streamed_over_in_memory: tot_stream / tot_from_file,
        aggregate_streamed_over_resident: tot_stream / tot_mem,
        aggregate_compression_ratio: tot_mem_bytes as f64 / tot_bytes as f64,
        aggregate_raw_file_over_file: tot_raw as f64 / tot_bytes as f64,
        compression_ratio_definition: compression_def,
        streamed_over_in_memory_definition: streamed_def,
        apps,
    };
    println!(
        "aggregate: write {:.1} MB/s, streamed {:.2}x the from-file in-memory time \
({:.2}x resident), compression {:.2}x",
        report.aggregate_write_mb_per_sec,
        report.aggregate_streamed_over_in_memory,
        report.aggregate_streamed_over_resident,
        report.aggregate_compression_ratio
    );
    let pr4 = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR4.json");
    std::fs::write(pr4, serde_json::to_vec(&report).expect("serializable"))
        .expect("write BENCH_PR4.json");
    println!("wrote {pr4}");

    // BENCH_PR6.json is shared with analysis_throughput: this binary
    // owns every key except the analysis_* section.
    let pr6 = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR6.json");
    let own = match serde_json::from_str::<serde::Value>(
        &serde_json::to_string(&report).expect("serializable"),
    ) {
        Ok(serde::Value::Map(entries)) => entries,
        _ => panic!("report serializes to a map"),
    };
    osn_bench::merge_bench_json(pr6, own, |k| {
        !(k.starts_with("analysis") || k == "aggregate_analysis_events_per_sec")
    });
    println!("wrote {pr6}");
}
