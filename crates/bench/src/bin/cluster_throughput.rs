//! Cluster engine throughput: node simulations per second as the
//! worker-thread count scales, with every timed rep doubling as a
//! determinism check (the serialized report must be byte-identical
//! across reps *and* across thread counts).
//!
//! Written to `BENCH_PR5.json` at the repo root. Knobs: `OSN_SECS`
//! (per-node simulated seconds, default 10), `OSN_REPS` (default 3),
//! `OSN_SEED`, `OSN_CLUSTER_NODES` (default 8).

use std::time::Instant;

use osn_bench::seed;
use osn_core::cluster::{run_cluster, ClusterConfig};
use osn_core::kernel::time::Nanos;
use osn_core::workloads::App;

use serde::Serialize;

#[derive(Serialize)]
struct WorkerRow {
    workers: usize,
    /// Best-of-reps wall time for the whole campaign (sims + coupling
    /// + report).
    run_s: f64,
    nodes_per_sec: f64,
    /// `None` when the host has fewer CPUs than worker threads — a
    /// "speedup" measured on an oversubscribed host is scheduling
    /// noise, not parallel efficiency, so it is suppressed rather
    /// than reported as a (dis)honest number.
    speedup_vs_1: Option<f64>,
}

#[derive(Serialize)]
struct Report {
    seed: u64,
    reps: usize,
    app: String,
    nodes: usize,
    sim_secs: u64,
    granularity_us: u64,
    /// `available_parallelism()` of the benchmarking host, recorded so
    /// per-worker rows can be judged against real core counts.
    host_cpus: usize,
    rows: Vec<WorkerRow>,
    /// Peak simulation throughput over the thread-count sweep — the
    /// gated metric (higher is better).
    aggregate_nodes_per_sec: f64,
}

fn main() {
    let sim_secs: u64 = std::env::var("OSN_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10)
        .max(1);
    let nodes: usize = std::env::var("OSN_CLUSTER_NODES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
        .max(2);
    let reps: usize = std::env::var("OSN_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);
    let seed = seed();

    let mut config = ClusterConfig::new(App::Amg, nodes, Nanos::from_secs(sim_secs));
    config.cpus = Some(2);
    config.seed = seed;

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rows: Vec<WorkerRow> = Vec::new();
    let mut reference: Option<Vec<u8>> = None;
    for workers in [1usize, 2, 4, 8] {
        config.workers = Some(workers);
        let mut run_s = f64::INFINITY;
        for _ in 0..reps {
            let t = Instant::now();
            let outcome = run_cluster(&config);
            run_s = run_s.min(t.elapsed().as_secs_f64());
            let json = serde_json::to_vec(&outcome.report).expect("serializable");
            match &reference {
                Some(expected) => assert_eq!(
                    &json, expected,
                    "report differs at {workers} workers — determinism broken"
                ),
                None => reference = Some(json),
            }
        }
        let nodes_per_sec = nodes as f64 / run_s;
        let speedup_vs_1 =
            (workers <= host_cpus).then(|| rows.first().map(|r| r.run_s / run_s).unwrap_or(1.0));
        match speedup_vs_1 {
            Some(s) => println!(
                "{workers:>2} workers: {run_s:>7.3}s  {nodes_per_sec:>6.2} nodes/s  speedup {s:>5.2}x"
            ),
            None => println!(
                "{workers:>2} workers: {run_s:>7.3}s  {nodes_per_sec:>6.2} nodes/s  speedup n/a ({host_cpus} host CPUs)"
            ),
        }
        rows.push(WorkerRow {
            workers,
            run_s,
            nodes_per_sec,
            speedup_vs_1,
        });
    }

    let aggregate = rows.iter().map(|r| r.nodes_per_sec).fold(0.0, f64::max);
    let report = Report {
        seed,
        reps,
        app: App::Amg.name().to_string(),
        nodes,
        sim_secs,
        granularity_us: config.granularity.as_nanos() / 1_000,
        host_cpus,
        rows,
        aggregate_nodes_per_sec: aggregate,
    };
    println!("aggregate: {aggregate:.2} nodes/s peak");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR5.json");
    std::fs::write(path, serde_json::to_vec(&report).expect("serializable"))
        .expect("write BENCH_PR5.json");
    println!("wrote {path}");
}
