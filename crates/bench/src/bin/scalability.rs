//! Extension (the paper's future work): predicted noise amplification
//! at scale, from the measured interruption distributions.
//!
//! For each application and barrier granularity, the expected
//! per-iteration slowdown of a bulk-synchronous job on N nodes is
//! (g + E[max over N nodes of per-window noise]) / g.

use osn_core::kernel::time::Nanos;
use osn_core::ScaleModel;

fn main() {
    let nodes = [1u64, 8, 64, 512, 4096, 32768, 262144];
    for app in osn_core::workloads::App::ALL {
        let run = osn_bench::load_or_run(app);
        println!("== {} ==", app.name().to_uppercase());
        for (label, g) in [
            ("fine, 1ms", Nanos::from_millis(1)),
            ("coarse, 100ms", Nanos::from_millis(100)),
        ] {
            let model = ScaleModel::from_run(&run, g);
            print!("  {label:>14}:");
            for p in model.curve(&nodes, 2_000, osn_bench::seed()) {
                print!(" {}n={:.3}x", p.nodes, p.slowdown);
            }
            println!();
        }
    }
    println!("\n(paper context: Petrini et al. saw 1.87x at 8k CPUs from resonance;");
    println!(" fine-grained apps amplify high-frequency noise the most)");
}
