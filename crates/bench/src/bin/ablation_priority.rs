//! Ablation (Jones et al. SC'03 / HPL, the paper's refs \[23\]\[24\]):
//! "prioritizing HPC processes over user and kernel daemons" — run
//! LAMMPS at normal priority vs elevated priority and compare the
//! preemption noise the ranks experience.

use osn_core::analysis::{Breakdown, NoiseAnalysis};
use osn_core::kernel::activity::NoiseCategory;
use osn_core::kernel::node::Node;
use osn_core::kernel::prelude::*;
use osn_core::kernel::task::SchedClass;
use osn_core::trace::TraceSession;
use osn_core::workloads::App;

fn run(app: App, class: SchedClass) -> (f64, f64) {
    let dur = osn_bench::duration().min(Nanos::from_secs(10));
    let cfg = NodeConfig::default()
        .with_seed(osn_bench::seed())
        .with_horizon(dur * 3);
    let cpus = cfg.cpus as usize;
    let mut node = Node::new(cfg);
    let job = node.spawn_job_with_class(
        app.name(),
        osn_core::workloads::ranks(app, cpus, dur),
        class,
    );
    let (session, mut tracer) = TraceSession::with_defaults(cpus);
    let result = node.run(&mut tracer);
    let trace = session.stop();
    let analysis = NoiseAnalysis::analyze(&trace, &result.tasks, result.end_time);
    let ranks = result.job_ranks(job);
    let b = Breakdown::compute(&analysis, &ranks);
    (b.noise_ratio(), b.fraction(NoiseCategory::Preemption))
}

fn main() {
    println!("== priority ablation (paper refs [23][24]): elevate rank priority ==");
    for app in [App::Sphot, App::Lammps] {
        let (normal_noise, normal_preempt) = run(app, SchedClass::Normal);
        let (hi_noise, hi_preempt) = run(app, SchedClass::Daemon);
        println!(
            "  {:<8} nice-0: noise {:.4}% (preempt {:.0}%)  prioritized: noise {:.4}% (preempt {:.0}%)  -> {:.2}x",
            app.name().to_uppercase(),
            normal_noise * 100.0,
            normal_preempt * 100.0,
            hi_noise * 100.0,
            hi_preempt * 100.0,
            normal_noise / hi_noise.max(1e-9)
        );
    }
    println!("\nheavier (prioritized) tasks are harder to preempt (CFS scales the wakeup");
    println!("granularity by the current task's weight), so computing ranks keep their");
    println!("CPUs when I/O completions wake other tasks onto them — the LAMMPS-style");
    println!("displacement noise drops the most, as refs [23][24] report.");
}
