//! Native-capture recorder overhead: how much the `osnoise capture`
//! probe itself costs on this host, and how fast its synthesized
//! event stream flows through the `.osn` write path.
//!
//! Per rep: one real `run_capture` on the benchmarking host (so the
//! numbers include genuine procfs sampling latency, not a mock),
//! then a timed `write_capture` of the resulting event stream.
//! Reported per rep and aggregated best-of-reps:
//!
//! * self-overhead per quantum (ns, lower is better) — loop dead time
//!   spent reading `/proc` after gaps, divided by quanta kept;
//! * synthesized events/second through capture + store write
//!   (higher is better);
//! * drop rate (events the store sink refused / events synthesized) —
//!   informational, expected 0.0, deliberately *not* an `aggregate_*`
//!   key because the gate rejects non-positive aggregates.
//!
//! Written to `BENCH_PR10.json` at the repo root. Knobs:
//! `OSN_CAPTURE_SECS` (capture seconds per rep, default 2),
//! `OSN_REPS` (default 3).

use std::time::Instant;

use osn_core::ftq::CaptureConfig;
use osn_core::kernel::time::Nanos;
use osn_core::write_capture;
use osn_store::StoreOptions;

use serde::Serialize;

#[derive(Serialize)]
struct Rep {
    quanta: usize,
    gaps: u64,
    classified_fraction: f64,
    events: usize,
    /// Recorder self-overhead (procfs sampling dead time) per quantum.
    overhead_per_quantum_ns: u64,
    /// Synthesized events through capture loop + store write, per
    /// second of wall time spent in both.
    events_per_sec: f64,
    store_write_s: f64,
    store_bytes: u64,
    dropped: u64,
}

#[derive(Serialize)]
struct Report {
    capture_secs: u64,
    reps: usize,
    quantum_us: u64,
    schedstat_available: bool,
    rows: Vec<Rep>,
    /// Informational, not gated (0 is the healthy value).
    capture_drop_rate: f64,
    aggregate_capture_overhead_ns: f64,
    aggregate_capture_events_per_sec: f64,
}

fn main() {
    let capture_secs: u64 = std::env::var("OSN_CAPTURE_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
        .max(1);
    let reps: usize = std::env::var("OSN_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);
    let quantum = Nanos::from_millis(1);

    let dir = std::env::temp_dir().join(format!("osn-capture-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench dir");

    let mut rows = Vec::with_capacity(reps);
    let mut schedstat_available = false;
    let mut total_events = 0u64;
    let mut total_dropped = 0u64;
    for rep in 0..reps {
        let t0 = Instant::now();
        let capture = osn_core::ftq::run_capture(CaptureConfig {
            duration: Nanos::from_secs(capture_secs),
            quantum,
            ..CaptureConfig::default()
        });
        let capture_s = t0.elapsed().as_secs_f64();

        let path = dir.join(format!("rep{rep}.osn"));
        let t1 = Instant::now();
        let (_meta, summary) =
            write_capture(&capture, &path, StoreOptions::default()).expect("write capture store");
        let store_write_s = t1.elapsed().as_secs_f64();

        let r = &capture.report;
        schedstat_available = r.schedstat_available;
        let dropped = capture.events.len() as u64 - summary.events;
        total_events += capture.events.len() as u64;
        total_dropped += dropped;
        rows.push(Rep {
            quanta: r.quanta,
            gaps: r.gaps,
            classified_fraction: r.classified_fraction,
            events: capture.events.len(),
            overhead_per_quantum_ns: r.probe_overhead_per_quantum.as_nanos(),
            events_per_sec: capture.events.len() as f64 / (capture_s + store_write_s),
            store_write_s,
            store_bytes: summary.bytes,
            dropped,
        });
        println!(
            "rep {rep}: {} quanta, {} gaps ({:.1}% classified), {} events, \
             overhead {} ns/quantum, {:.0} events/s, {} dropped",
            r.quanta,
            r.gaps,
            r.classified_fraction * 100.0,
            capture.events.len(),
            r.probe_overhead_per_quantum.as_nanos(),
            rows.last().unwrap().events_per_sec,
            dropped,
        );
    }
    std::fs::remove_dir_all(&dir).ok();

    // Best-of-reps, floored at 1 ns / 1 ev/s: a gap-free idle rep
    // would otherwise emit a zero and trip the gate's non-positive
    // aggregate check.
    let overhead = rows
        .iter()
        .map(|r| r.overhead_per_quantum_ns)
        .min()
        .unwrap_or(0)
        .max(1) as f64;
    let events_per_sec = rows
        .iter()
        .map(|r| r.events_per_sec)
        .fold(0.0f64, f64::max)
        .max(1.0);
    let report = Report {
        capture_secs,
        reps,
        quantum_us: quantum.as_nanos() / 1_000,
        schedstat_available,
        rows,
        capture_drop_rate: total_dropped as f64 / total_events.max(1) as f64,
        aggregate_capture_overhead_ns: overhead,
        aggregate_capture_events_per_sec: events_per_sec,
    };
    let json = serde_json::to_vec_pretty(&report).expect("serializable");
    std::fs::write("BENCH_PR10.json", json).expect("write BENCH_PR10.json");
    println!(
        "BENCH_PR10.json: overhead {overhead:.0} ns/quantum, {events_per_sec:.0} events/s, \
         drop rate {:.4}{}",
        report.capture_drop_rate,
        if schedstat_available {
            ""
        } else {
            " (no /proc/schedstat: degraded attribution)"
        }
    );
}
