//! Table IV — net_tx_action (paper: avg ~0.5us, tight; returns after DMA start)

use osn_core::analysis::stats::EventClass;
use osn_core::PaperReport;

fn main() {
    let runs = osn_bench::load_or_run_all();
    let report = PaperReport::build(&runs);
    println!("== Table IV: {} ==", EventClass::NetTxAction.name());
    println!("{}", report.render_table(EventClass::NetTxAction));
    println!("note: net_tx_action (paper: avg ~0.5us, tight; returns after DMA start)");
}
