//! §III-B — tracing scalability: "Given that OS noise is inherently
//! redundant across nodes, one of the most effective solutions is to
//! enable tracing only on a statistically significant subset of the
//! cluster's nodes."
//!
//! We simulate a 16-node cluster (16 independent nodes running the same
//! application with different seeds) and compare the noise signature
//! measured on a 4-node sample against the full-population signature.

use osn_core::analysis::signature::NoiseSignature;
use osn_core::analysis::stats::EventClass;
use osn_core::kernel::time::Nanos;
use osn_core::workloads::App;
use osn_core::{run_app, AppRun, ExperimentConfig};

fn main() {
    let app = App::Amg;
    let dur = Nanos::from_secs(4);
    let nodes = 16usize;
    println!(
        "== §III-B: tracing a subset of a {nodes}-node cluster ({}) ==",
        app.name()
    );

    // Run the "cluster": one simulated node per seed, in parallel.
    let runs: Vec<AppRun> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nodes)
            .map(|i| {
                let config = ExperimentConfig::paper(app, dur).with_seed(0x0511_2011 + i as u64);
                scope.spawn(move || run_app(config))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let signatures: Vec<NoiseSignature> = runs
        .iter()
        .map(|r| NoiseSignature::build(&r.analysis, &r.ranks))
        .collect();

    // Aggregate signature over a set of nodes: average the shares.
    let aggregate = |idx: &[usize]| -> Vec<(EventClass, f64)> {
        EventClass::ALL
            .iter()
            .map(|c| {
                let mean = idx
                    .iter()
                    .map(|i| signatures[*i].entry(*c).map(|e| e.share).unwrap_or(0.0))
                    .sum::<f64>()
                    / idx.len() as f64;
                (*c, mean)
            })
            .collect()
    };
    let full: Vec<usize> = (0..nodes).collect();
    let full_agg = aggregate(&full);

    let distance = |a: &[(EventClass, f64)], b: &[(EventClass, f64)]| -> f64 {
        a.iter()
            .zip(b)
            .map(|((_, x), (_, y))| (x - y).abs())
            .sum::<f64>()
            / 2.0
    };

    println!("{:>12} {:>22}", "sample size", "composition distance");
    for k in [1usize, 2, 4, 8] {
        let sample: Vec<usize> = (0..k).map(|i| i * nodes / k).collect();
        let d = distance(&aggregate(&sample), &full_agg);
        println!("{:>12} {:>22.4}", k, d);
    }
    // Per-node variability (the redundancy claim itself).
    let mut worst = 0.0f64;
    for i in 0..nodes {
        for j in (i + 1)..nodes {
            worst = worst.max(signatures[i].distance(&signatures[j]));
        }
    }
    println!("\nworst pairwise node-to-node signature distance: {worst:.4}");
    println!("(OS noise is \"inherently redundant across nodes\": a small sample's");
    println!(" composition converges on the population's)");
}
