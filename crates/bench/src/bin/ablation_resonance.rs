//! Resonance experiment (Petrini et al., SC'03; Ferreira et al., SC'08):
//! periodic noise hurts a bulk-synchronous application the most when
//! its period aligns with the application's iteration granularity —
//! "impact on HPC applications is higher when the OS noise resonates
//! with the application" (paper §II).
//!
//! An injector fires a 1 ms burst every 10 ms beside an 8-rank BSP job;
//! we sweep the job's compute granularity across the noise period and
//! report the slowdown relative to the injector-free run.

use osn_core::kernel::hooks::Probe;
use osn_core::kernel::ids::{CpuId, Tid};
use osn_core::kernel::prelude::*;
use osn_core::kernel::workload::{Action, Workload, WorkloadCtx};
use osn_core::workloads::{InjectorWorkload, NoiseInjector};

/// A jitter-free BSP job: compute `granularity`, barrier, repeat.
struct Bsp {
    granularity: Nanos,
    iterations: u64,
    done: u64,
    computed: bool,
}

impl Workload for Bsp {
    fn name(&self) -> &'static str {
        "bsp"
    }
    fn next(&mut self, _ctx: &mut WorkloadCtx<'_>) -> Action {
        if self.done >= self.iterations {
            return Action::Exit;
        }
        if !self.computed {
            self.computed = true;
            Action::Compute {
                work: self.granularity,
            }
        } else {
            self.computed = false;
            self.done += 1;
            Action::Barrier
        }
    }
}

/// Records when the last BSP rank exits (the injector outlives the job;
/// the run's end time is not the job's completion time).
#[derive(Default)]
struct JobEndProbe {
    job_end: Nanos,
    exits: u32,
}

impl Probe for JobEndProbe {
    fn task_exit(&mut self, t: Nanos, _cpu: CpuId, _tid: Tid) {
        self.exits += 1;
        // The 8 ranks exit first (the injector runs to its deadline).
        if self.exits <= 8 {
            self.job_end = self.job_end.max(t);
        }
    }
}

fn run_job(granularity: Nanos, with_injector: bool, seed: u64) -> Nanos {
    let total_compute = Nanos::from_secs(4);
    let iterations = (total_compute / granularity).max(1);
    let cfg = NodeConfig::default()
        .with_seed(seed)
        .with_horizon(Nanos::from_secs(30));
    let mut node = Node::new(cfg);
    node.spawn_job(
        "bsp",
        (0..8)
            .map(|_| {
                Box::new(Bsp {
                    granularity,
                    iterations,
                    done: 0,
                    computed: false,
                }) as Box<dyn Workload>
            })
            .collect(),
    );
    if with_injector {
        let spec = NoiseInjector {
            period: Nanos::from_millis(10),
            duration: Nanos::from_millis(1),
            period_jitter: 0.0,
            deadline: Nanos::from_secs(30),
        };
        node.spawn_process("injector", Box::new(InjectorWorkload::new(spec)));
    }
    let mut probe = JobEndProbe::default();
    node.run(&mut probe);
    assert!(
        probe.exits >= 8,
        "job did not finish: {} exits",
        probe.exits
    );
    probe.job_end
}

fn main() {
    let seed = osn_bench::seed();
    println!("== resonance: 1 ms burst every 10 ms vs BSP granularity ==");
    println!(
        "{:>14} {:>12} {:>12} {:>10}",
        "granularity", "clean", "noisy", "slowdown"
    );
    for g_us in [1_000u64, 3_000, 9_000, 10_000, 11_000, 30_000, 100_000] {
        let g = Nanos::from_micros(g_us);
        let clean = run_job(g, false, seed);
        let noisy = run_job(g, true, seed);
        println!(
            "{:>12}us {:>12} {:>12} {:>9.3}x",
            g_us,
            clean.to_string(),
            noisy.to_string(),
            noisy.as_nanos() as f64 / clean.as_nanos() as f64
        );
    }
    println!("\n(the slowdown peaks when the iteration granularity equals the noise");
    println!(" period: every iteration, the same phase of the burst lands in someone's");
    println!(" compute window and the barrier amplifies it — the paper's resonance)");
}
