//! Ablation (Petrini et al., SC'03): "leaving one processor idle to
//! take care of the system activities led to a performance improvement"
//! — run LAMMPS with 8 ranks on 8 CPUs vs 7 ranks with the kernel
//! daemons pinned to the spare CPU, and compare per-rank preemption
//! noise.

use osn_core::analysis::Breakdown;
use osn_core::kernel::activity::NoiseCategory;
use osn_core::kernel::ids::CpuId;
use osn_core::workloads::App;
use osn_core::{run_app, ExperimentConfig};

fn main() {
    let dur = osn_bench::duration();
    let app = App::Lammps;

    let run = |nranks: usize, daemon_cpu: Option<CpuId>| {
        let mut config = ExperimentConfig::paper(app, dur).with_seed(osn_bench::seed());
        config.nranks = nranks;
        config.node.daemon_cpu = daemon_cpu;
        // With a reserved CPU, interrupts also go there.
        if let Some(cpu) = daemon_cpu {
            config.node.net_irq_cpu = cpu;
        }
        let run = run_app(config);
        let b = Breakdown::compute(&run.analysis, &run.ranks);
        (run.wall(), b)
    };

    println!(
        "== idle-core ablation: {} ({}s sim) ==",
        app.name().to_uppercase(),
        dur.as_secs_f64()
    );
    let (wall8, b8) = run(8, None);
    println!(
        "  8 ranks, shared CPUs:   wall {}  noise/run {:.3}%  preemption {:.1}%",
        wall8,
        b8.noise_ratio() * 100.0,
        b8.fraction(NoiseCategory::Preemption) * 100.0
    );
    let (wall7, b7) = run(7, Some(CpuId(7)));
    println!(
        "  7 ranks + OS core 7:    wall {}  noise/run {:.3}%  preemption {:.1}%",
        wall7,
        b7.noise_ratio() * 100.0,
        b7.fraction(NoiseCategory::Preemption) * 100.0
    );
    println!(
        "\nnoise reduction: {:.1}x (paper context: Petrini saw 1.87x app speedup at 8k CPUs)",
        b8.noise_ratio() / b7.noise_ratio().max(1e-9)
    );
}
