//! §III-A — instrumentation overhead: "an overhead in the order of
//! 0.28% (average among all the LLNL Sequoia applications we tested)".

use osn_core::kernel::node::Node;
use osn_core::kernel::time::Nanos;
use osn_core::trace::overhead::{measure_overhead_avg, LTTNG_CLASS_OVERHEAD};
use osn_core::workloads::App;
use osn_core::ExperimentConfig;

fn main() {
    let dur = osn_bench::duration().min(Nanos::from_secs(5));
    let mut total = 0.0;
    println!(
        "== LTTng-noise instrumentation overhead (probe cost {LTTNG_CLASS_OVERHEAD:?}/event) =="
    );
    for app in App::ALL {
        let config = ExperimentConfig::paper(app, dur).with_seed(osn_bench::seed());
        let seeds: Vec<u64> = (0..6).map(|i| osn_bench::seed() + i * 7919).collect();
        let report = measure_overhead_avg(&config.node, LTTNG_CLASS_OVERHEAD, &seeds, |node_cfg| {
            let mut node = Node::new(node_cfg);
            node.spawn_job(
                app.name(),
                osn_core::workloads::ranks(app, config.nranks, dur),
            );
            for (i, h) in osn_core::workloads::helpers(app, dur)
                .into_iter()
                .enumerate()
            {
                node.spawn_process(&format!("python.{i}"), h);
            }
            node
        });
        println!(
            "  {:<8} base {} traced {} overhead {:+.4}%",
            app.name().to_uppercase(),
            report.base,
            report.traced,
            report.percent()
        );
        total += report.percent();
    }
    println!(
        "  average: {:.4}% (paper: ~0.28%)",
        total / App::ALL.len() as f64
    );
}
