//! Fig 7 — Process preemption experienced by LAMMPS: frequent
//! preemptions throughout the execution.

use osn_bench::{load_or_run, render_deciles};
use osn_core::analysis::noise::Component;
use osn_core::kernel::time::Nanos;
use osn_core::workloads::App;

fn main() {
    let run = load_or_run(App::Lammps);
    let mut preemptions: Vec<(Nanos, Nanos)> = Vec::new();
    for tid in &run.ranks {
        if let Some(tn) = run.analysis.tasks.get(tid) {
            for i in &tn.interruptions {
                for (c, d) in &i.components {
                    if matches!(c, Component::Preemption { .. }) {
                        preemptions.push((i.start, *d));
                    }
                }
            }
        }
    }
    println!(
        "== Fig 7: LAMMPS preemptions over the run ({} events, {}) ==",
        preemptions.len(),
        preemptions.iter().map(|(_, d)| *d).sum::<Nanos>()
    );
    println!(
        "{}",
        render_deciles(&preemptions, (Nanos::ZERO, run.result.end_time))
    );
    println!("paper: \"LAMMPS suffers many frequent preemptions\" throughout");
}
