//! Fig 3 — OS noise breakdown for the Sequoia benchmarks, by the five
//! categories of §IV-A.

use osn_core::PaperReport;

fn main() {
    let runs = osn_bench::load_or_run_all();
    let report = PaperReport::build(&runs);
    println!("== Fig 3: OS noise breakdown (fraction of total noise) ==");
    println!("{}", report.render_breakdown());
    println!("paper: AMG/UMT fault-dominated (82.4%/86.7%), LAMMPS preemption-dominated (80.2%),");
    println!("       IRS/SPHOT sizable preemption (27.1%/24.7%), periodic 5-10% for all but SPHOT");
}
