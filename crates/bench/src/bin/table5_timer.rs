//! Table V — timer interrupt (paper: 100 ev/s on every app; avg 1.5-6.5us)

use osn_core::analysis::stats::EventClass;
use osn_core::PaperReport;

fn main() {
    let runs = osn_bench::load_or_run_all();
    let report = PaperReport::build(&runs);
    println!("== Table V: {} ==", EventClass::TimerInterrupt.name());
    println!("{}", report.render_table(EventClass::TimerInterrupt));
    println!("note: timer interrupt (paper: 100 ev/s on every app; avg 1.5-6.5us)");
}
