//! Engine throughput: heap vs wheel events/sec over the paper campaign.
//!
//! For every Sequoia app this runs the paper node configuration
//! (untraced, `NullProbe` — pure engine speed, no tracer cost in the
//! numerator) under both `QueueKind::Heap` and `QueueKind::Wheel` in
//! the same process, at one or more simulated durations, and writes
//! `BENCH_PR1.json` at the repo root with per-app events/sec, on-CPU
//! times and the wheel/heap speedup. Both queues must dispatch the
//! *same* number of events (the ordering contract) — the binary
//! asserts that, so a throughput run doubles as a cheap differential
//! check.
//!
//! A second section sweeps raw queue ops at 1e5–1e7 pending entries,
//! where the O(log n) heap and the O(1) wheel actually separate.
//!
//! Knobs: `OSN_SECS` — simulated seconds per app run (default 10;
//! below ~5 the per-run times are too short to time reliably);
//! `OSN_REPS` — timed repetitions per configuration, best time kept
//! (default 3).

use std::time::Instant;

use osn_core::ExperimentConfig;
use osn_kernel::config::QueueKind;
use osn_kernel::hooks::NullProbe;
use osn_kernel::node::Node;
use osn_kernel::time::Nanos;
use osn_workloads::App;

use serde::Serialize;

#[derive(Serialize)]
struct AppRow {
    app: String,
    sim_secs: u64,
    /// Events dispatched by the main loop (identical for both queues).
    events: u64,
    /// Of those, stale `Advance` pops — dead queue traffic.
    stale_events: u64,
    /// Best-of-reps on-CPU seconds (see `on_cpu_secs`).
    heap_cpu_s: f64,
    wheel_cpu_s: f64,
    heap_events_per_sec: f64,
    wheel_events_per_sec: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct DepthRow {
    /// Pending entries held in the queue during the hold phase.
    depth: u64,
    /// Million queue ops (push or pop) per on-CPU second.
    heap_mops: f64,
    wheel_mops: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Report {
    seed: u64,
    reps: usize,
    /// Whole-engine runs: the queue is one term of the per-event cost
    /// (the paper config holds only ~20 pending events), so this
    /// speedup is much smaller than the queue-level one below.
    apps: Vec<AppRow>,
    /// Total events over total on-CPU time, wheel vs heap.
    aggregate_speedup: f64,
    /// Raw queue ops at depth — where the O(log n) vs O(1) asymptotics
    /// actually separate. Fill to `depth`, then a steady-state
    /// pop+push hold phase, timed together.
    queue_depth: Vec<DepthRow>,
}

/// Nanoseconds this thread has been on-CPU, from
/// `/proc/thread-self/schedstat`. Unlike wall time this is unaffected
/// by preemption, so the numbers stay meaningful on a loaded or
/// oversubscribed host.
fn on_cpu_ns() -> Option<u64> {
    std::fs::read_to_string("/proc/thread-self/schedstat")
        .ok()
        .and_then(|s| s.split_whitespace().next()?.parse().ok())
}

/// Time a closure, preferring on-CPU seconds over wall seconds. The
/// scheduler only folds runtime into schedstat at ticks and context
/// switches, so below ~20 ms the on-CPU figure is quantization noise —
/// fall back to wall time there (and wherever schedstat is missing).
fn timed<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let wall = Instant::now();
    let cpu0 = on_cpu_ns();
    let out = f();
    let cpu = cpu0
        .zip(on_cpu_ns())
        .map(|(a, b)| b.saturating_sub(a) as f64 / 1e9);
    let wall = wall.elapsed().as_secs_f64();
    match cpu {
        Some(c) if c >= 0.02 => (c, out),
        _ => (wall, out),
    }
}

/// One timed run: paper config for `app`, chosen queue, no tracer.
/// Returns (on-CPU seconds, loop events, stale advance pops).
fn timed_run(app: App, sim: Nanos, seed: u64, queue: QueueKind) -> (f64, u64, u64) {
    let config = ExperimentConfig::paper(app, sim).with_seed(seed);
    let mut node = Node::new(config.node.clone().with_queue(queue));
    node.spawn_job(
        config.app.name(),
        osn_workloads::ranks(config.app, config.nranks, config.duration),
    );
    for (i, helper) in osn_workloads::helpers(config.app, config.duration)
        .into_iter()
        .enumerate()
    {
        node.spawn_process(&format!("python.{i}"), helper);
    }
    let (secs, result) = timed(|| node.run(&mut NullProbe));
    (secs, result.stats.loop_events, result.stats.stale_advances)
}

/// splitmix64: deterministic delta stream for the depth sweep.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Queue ops/sec at a given pending depth: fill with `depth` entries
/// (deltas spread over ~16 ms so every wheel level below overflow is
/// exercised), then `hold_ops` steady-state pop+push pairs. Returns
/// million ops per on-CPU second over both phases.
fn depth_mops<Q: osn_kernel::wheel::EventQueue<u64>>(
    queue: &mut Q,
    depth: u64,
    hold_ops: u64,
) -> f64 {
    const DELTA_MASK: u64 = (1 << 24) - 1;
    let mut rng = 0xD1CEu64;
    let mut seq = 0u64;
    let (secs, clock) = timed(|| {
        for _ in 0..depth {
            seq += 1;
            queue.push(Nanos(splitmix64(&mut rng) & DELTA_MASK), seq, seq);
        }
        let mut clock = 0u64;
        for _ in 0..hold_ops {
            let (t, _, _) = queue.pop().expect("queue drained during hold");
            clock = t.0;
            seq += 1;
            queue.push(Nanos(clock + (splitmix64(&mut rng) & DELTA_MASK)), seq, seq);
        }
        clock
    });
    std::hint::black_box(clock);
    (depth + 2 * hold_ops) as f64 / secs / 1e6
}

fn main() {
    let sim_secs: u64 = std::env::var("OSN_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10)
        .max(1);
    let reps: usize = std::env::var("OSN_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);
    let seed = 0x0511_2011u64;
    let sim = Nanos::from_secs(sim_secs);

    let mut apps = Vec::new();
    let (mut tot_heap_cpu, mut tot_wheel_cpu, mut tot_events) = (0.0f64, 0.0f64, 0u64);
    for &app in App::ALL.iter() {
        // Warm-up (page in code + allocator), then timed reps of each
        // queue interleaved so neither side owns the warmer cache.
        let (_, ev_heap, stale) = timed_run(app, sim, seed, QueueKind::Heap);
        let (_, ev_wheel, _) = timed_run(app, sim, seed, QueueKind::Wheel);
        assert_eq!(
            ev_heap,
            ev_wheel,
            "{}: heap and wheel dispatched different event counts",
            app.name()
        );
        let mut heap_cpu = f64::INFINITY;
        let mut wheel_cpu = f64::INFINITY;
        for _ in 0..reps {
            let (w, ev, _) = timed_run(app, sim, seed, QueueKind::Heap);
            assert_eq!(ev, ev_heap);
            heap_cpu = heap_cpu.min(w);
            let (w, ev, _) = timed_run(app, sim, seed, QueueKind::Wheel);
            assert_eq!(ev, ev_wheel);
            wheel_cpu = wheel_cpu.min(w);
        }
        let events = ev_heap;
        let row = AppRow {
            app: app.name().to_string(),
            sim_secs,
            events,
            stale_events: stale,
            heap_cpu_s: heap_cpu,
            wheel_cpu_s: wheel_cpu,
            heap_events_per_sec: events as f64 / heap_cpu,
            wheel_events_per_sec: events as f64 / wheel_cpu,
            speedup: heap_cpu / wheel_cpu,
        };
        println!(
            "{:>10}: {:>9} events  heap {:>8.1} kev/s  wheel {:>8.1} kev/s  speedup {:.2}x",
            row.app,
            row.events,
            row.heap_events_per_sec / 1e3,
            row.wheel_events_per_sec / 1e3,
            row.speedup
        );
        tot_heap_cpu += heap_cpu;
        tot_wheel_cpu += wheel_cpu;
        tot_events += events;
        apps.push(row);
    }

    let mut queue_depth = Vec::new();
    for depth in [100_000u64, 1_000_000, 10_000_000] {
        let hold = 1_000_000u64.min(depth * 10);
        let mut heap = osn_kernel::wheel::HeapQueue::new();
        let heap_mops = depth_mops(&mut heap, depth, hold);
        drop(heap);
        let mut wheel = osn_kernel::wheel::TimerWheel::new();
        let wheel_mops = depth_mops(&mut wheel, depth, hold);
        drop(wheel);
        let row = DepthRow {
            depth,
            heap_mops,
            wheel_mops,
            speedup: wheel_mops / heap_mops,
        };
        println!(
            "depth {:>9}: heap {:>6.1} Mops/s  wheel {:>6.1} Mops/s  speedup {:.2}x",
            row.depth, row.heap_mops, row.wheel_mops, row.speedup
        );
        queue_depth.push(row);
    }

    let report = Report {
        seed,
        reps,
        apps,
        aggregate_speedup: tot_heap_cpu / tot_wheel_cpu,
        queue_depth,
    };
    println!(
        "aggregate: {} events, heap {:.2}s vs wheel {:.2}s -> {:.2}x",
        tot_events, tot_heap_cpu, tot_wheel_cpu, report.aggregate_speedup
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR1.json");
    std::fs::write(path, serde_json::to_vec(&report).expect("serializable"))
        .expect("write BENCH_PR1.json");
    println!("wrote {path}");
}
