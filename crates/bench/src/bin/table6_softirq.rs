//! Table VI — run_timer_softirq (paper: 100 ev/s; avg 0.6-3.9us, long tail)

use osn_core::analysis::stats::EventClass;
use osn_core::PaperReport;

fn main() {
    let runs = osn_bench::load_or_run_all();
    let report = PaperReport::build(&runs);
    println!("== Table VI: {} ==", EventClass::RunTimerSoftirq.name());
    println!("{}", report.render_table(EventClass::RunTimerSoftirq));
    println!("note: run_timer_softirq (paper: 100 ev/s; avg 0.6-3.9us, long tail)");
}
