//! Tiered cluster scaling: what the surrogate tier buys and what it
//! costs. Three sections, all in `BENCH_PR8.json`:
//!
//! 1. **Validation scales** (64/256/512 nodes): full-mechanistic vs
//!    `sampled:0.25` on the same seed — wall time for each tier and
//!    the sampled/mechanistic amplification ratio (the fidelity
//!    number; 1.0 = perfect).
//! 2. **Extension scales** (10k/100k ranks): the tiers mechanistic
//!    simulation cannot reach in bench time. The speedup denominator
//!    is a real measurement, not an extrapolation: one full-
//!    mechanistic 10k-rank campaign of the exact extension config
//!    took 435 s (23.0 nodes/s, mean max noise 2.238 ms) — see
//!    `MECH_10K_*` below. Extension rows are therefore pinned to that
//!    baseline's seed; set `OSN_SCALE_FULL_MECH=1` to re-measure the
//!    baseline in-run (minutes) instead, which also unpins the seed.
//! 3. **Regimes** at 10k ranks: staggered vs aligned tick phases; the
//!    aligned run must keep the sub-analytic absorption regime
//!    (mechanistic finding: 0.33-0.70x of the analytic `E[max]`).
//!
//! Gated aggregates: `aggregate_effective_nodes_per_sec_10k` (higher
//! is better; the auto tier's staggered 10k point),
//! `aggregate_tier_speedup` (that point over the measured mechanistic
//! 23.0 nodes/s; the tentpole demands >= 100x),
//! `aggregate_validation_ratio_error` (lower is better; max |ratio-1|
//! over the validation scales, clamped to a 0.02 deadband so
//! seed-level jitter inside the fidelity envelope cannot flap the
//! gate).
//!
//! Knobs: `OSN_SEED` (validation scales; extension scales only with
//! `OSN_SCALE_FULL_MECH=1`), `OSN_REPS` (best-of wall-time reps,
//! default 2), `OSN_SCALE_MS` (per-node simulated milliseconds,
//! default 600 — the envelope validated by `tier_differential`),
//! `OSN_SCALE_MAX` (largest extension scale, default 100_000).

use std::time::Instant;

use osn_bench::seed;
use osn_core::cluster::{run_cluster, ClusterConfig, ClusterReport, Tier};
use osn_core::kernel::time::Nanos;
use osn_core::workloads::App;

use serde::Serialize;

#[derive(Serialize)]
struct ValidationRow {
    nodes: usize,
    mech_s: f64,
    sampled_s: f64,
    mech_nodes_per_sec: f64,
    mech_mean_max_ns: u64,
    sampled_mean_max_ns: u64,
    /// sampled / mechanistic mean per-phase critical noise.
    ratio: f64,
}

#[derive(Serialize)]
struct ScaleRow {
    ranks: usize,
    staggered: bool,
    mechanistic_sample: usize,
    run_s: f64,
    effective_nodes_per_sec: f64,
    mean_max_ns: u64,
    slowdown: f64,
    /// mean max noise over the analytic order-statistics expectation
    /// at the same N (the regime indicator: aligned absorbs to
    /// 0.33-0.70x through the unsaturated sub-scales).
    vs_analytic: f64,
    /// mean max noise over the full-mechanistic 10k baseline's
    /// (staggered 10k rows only — the fidelity-vs-speed dial).
    vs_mechanistic: Option<f64>,
}

/// One full-mechanistic 10k-rank campaign of the extension config
/// (UMT, 600 ms, 1 ms granularity, 2 cpus, staggered, seed 7),
/// measured 2026-08-08: 435 s wall (1-CPU container, the CI
/// environment). Re-measure with `OSN_SCALE_FULL_MECH=1`.
const MECH_10K_SEED: u64 = 7;
const MECH_10K_NODES_PER_SEC: f64 = 23.0;
const MECH_10K_MEAN_MAX_NS: u64 = 2_238_000;

#[derive(Serialize)]
struct Report {
    seed: u64,
    reps: usize,
    app: String,
    sim_ms: u64,
    granularity_us: u64,
    host_cpus: usize,
    /// The full-mechanistic 10k-rank speedup denominator and whether
    /// it was re-measured in this run (`OSN_SCALE_FULL_MECH=1`) or
    /// taken from the recorded `MECH_10K_*` measurement.
    mech_10k_nodes_per_sec: f64,
    mech_10k_mean_max_ns: u64,
    mech_10k_measured_in_run: bool,
    validation: Vec<ValidationRow>,
    scale: Vec<ScaleRow>,
    aggregate_effective_nodes_per_sec_10k: f64,
    aggregate_tier_speedup: f64,
    aggregate_validation_ratio_error: f64,
}

fn config(app: App, nodes: usize, dur: Nanos, seed: u64) -> ClusterConfig {
    let mut c = ClusterConfig::new(app, nodes, dur);
    c.cpus = Some(2);
    c.seed = seed;
    c
}

fn timed(c: &ClusterConfig, reps: usize) -> (f64, ClusterReport) {
    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        report = Some(run_cluster(c).report);
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, report.expect("at least one rep"))
}

fn vs_analytic(r: &ClusterReport) -> f64 {
    let p = r.curve.last().expect("curve has the full-scale point");
    p.mean_max_noise.as_nanos() as f64 / p.analytic_expected_max.as_nanos().max(1) as f64
}

fn main() {
    let sim_ms: u64 = std::env::var("OSN_SCALE_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(600)
        .max(50);
    let max_ranks: usize = std::env::var("OSN_SCALE_MAX")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000)
        .max(10_000);
    let reps: usize = std::env::var("OSN_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
        .max(1);
    let seed = seed();
    let dur = Nanos::from_millis(sim_ms);
    let app = App::Umt;
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // 1. Validation scales: both tiers affordable, same seed.
    let mut validation = Vec::new();
    for nodes in [64usize, 256, 512] {
        let (mech_s, mech) = timed(&config(app, nodes, dur, seed), reps);
        let mut c = config(app, nodes, dur, seed);
        c.tier = Tier::Sampled { fraction: 0.25 };
        let (sampled_s, sampled) = timed(&c, reps);
        let ratio =
            sampled.mean_max_noise.as_nanos() as f64 / mech.mean_max_noise.as_nanos().max(1) as f64;
        let mech_nodes_per_sec = nodes as f64 / mech_s;
        println!(
            "validate {nodes:>4} nodes: mech {mech_s:>7.2}s ({mech_nodes_per_sec:>6.1} nodes/s)  \
             sampled {sampled_s:>6.2}s  ratio {ratio:.4}"
        );
        validation.push(ValidationRow {
            nodes,
            mech_s,
            sampled_s,
            mech_nodes_per_sec,
            mech_mean_max_ns: mech.mean_max_noise.as_nanos(),
            sampled_mean_max_ns: sampled.mean_max_noise.as_nanos(),
            ratio,
        });
    }

    // 2 + 3. Extension scales. The mechanistic baseline is the
    // measured full 10k campaign (MECH_10K_*), so the extension rows
    // run on its seed; OSN_SCALE_FULL_MECH=1 re-measures the baseline
    // here (expect ~7 minutes) and keeps OSN_SEED in force.
    let full_mech = std::env::var("OSN_SCALE_FULL_MECH").is_ok_and(|v| v == "1");
    let (ext_seed, mech_nps_10k, mech_mean_max_10k) = if full_mech {
        println!("measuring full-mechanistic 10k baseline (seed {seed})...");
        let (mech_s, mech) = timed(&config(app, 10_000, dur, seed), 1);
        let nps = 10_000.0 / mech_s;
        println!(
            "baseline 10000 ranks (mechanistic): {mech_s:>7.2}s  {nps:>8.1} nodes/s  \
             mean max {:.3}ms",
            mech.mean_max_noise.as_nanos() as f64 / 1e6,
        );
        (seed, nps, mech.mean_max_noise.as_nanos())
    } else {
        (MECH_10K_SEED, MECH_10K_NODES_PER_SEC, MECH_10K_MEAN_MAX_NS)
    };
    let mut scale = Vec::new();
    let mut eff_10k = 0.0f64;
    // (ranks, staggered, tier). At 10k: the auto tier's 128-node
    // sample is the headline point (staggered + aligned for the
    // regime check), and a 256-node sample shows the fidelity end of
    // the dial — at this operating point it tracks the measured
    // mechanistic mean-max within a few permil at ~4x the baseline
    // documented cost of auto.
    let mut points: Vec<(usize, bool, Tier)> = vec![
        (10_000, true, Tier::Auto),
        (10_000, false, Tier::Auto),
        (10_000, true, Tier::Sampled { fraction: 0.0256 }),
    ];
    if max_ranks > 10_000 {
        points.push((max_ranks, true, Tier::Auto));
    }
    for (ranks, staggered, tier) in points {
        let mut c = config(app, ranks, dur, ext_seed);
        c.tier = tier;
        c.stagger = staggered;
        let (run_s, r) = timed(&c, reps);
        let effective_nodes_per_sec = ranks as f64 / run_s;
        let t = r.tier.as_ref().expect("extension tiers are sampled");
        let va = vs_analytic(&r);
        let vm = (staggered && ranks == 10_000)
            .then(|| r.mean_max_noise.as_nanos() as f64 / mech_mean_max_10k.max(1) as f64);
        if staggered && ranks == 10_000 && tier == Tier::Auto {
            eff_10k = effective_nodes_per_sec;
        }
        println!(
            "scale {ranks:>6} ranks ({}, {:>4}-node sample): {run_s:>7.2}s  \
             {effective_nodes_per_sec:>8.0} nodes/s  slowdown {:.4}x  vs analytic {va:.3}{}",
            if staggered { "staggered" } else { "aligned" },
            t.mechanistic_nodes,
            r.slowdown,
            vm.map(|v| format!("  vs mech {v:.3}")).unwrap_or_default(),
        );
        scale.push(ScaleRow {
            ranks,
            staggered,
            mechanistic_sample: t.mechanistic_nodes,
            run_s,
            effective_nodes_per_sec,
            mean_max_ns: r.mean_max_noise.as_nanos(),
            slowdown: r.slowdown,
            vs_analytic: va,
            vs_mechanistic: vm,
        });
    }

    let ratio_error = validation
        .iter()
        .map(|v| (v.ratio - 1.0).abs())
        .fold(0.0, f64::max)
        .max(0.02);
    let tier_speedup = eff_10k / mech_nps_10k.max(1e-9);
    println!(
        "aggregate: {eff_10k:.0} effective nodes/s at 10k ({tier_speedup:.0}x the measured \
         {mech_nps_10k:.1} nodes/s mechanistic baseline), validation ratio error {ratio_error:.3}"
    );

    let report = Report {
        seed,
        reps,
        app: app.name().to_string(),
        sim_ms,
        granularity_us: 1_000,
        host_cpus,
        mech_10k_nodes_per_sec: mech_nps_10k,
        mech_10k_mean_max_ns: mech_mean_max_10k,
        mech_10k_measured_in_run: full_mech,
        validation,
        scale,
        aggregate_effective_nodes_per_sec_10k: eff_10k,
        aggregate_tier_speedup: tier_speedup,
        aggregate_validation_ratio_error: ratio_error,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR8.json");
    std::fs::write(path, serde_json::to_vec(&report).expect("serializable"))
        .expect("write BENCH_PR8.json");
    println!("wrote {path}");
}
