//! Table III — net_rx_action (paper: avg 2-5.5us, wide; synchronous receive copy)

use osn_core::analysis::stats::EventClass;
use osn_core::PaperReport;

fn main() {
    let runs = osn_bench::load_or_run_all();
    let report = PaperReport::build(&runs);
    println!("== Table III: {} ==", EventClass::NetRxAction.name());
    println!("{}", report.render_table(EventClass::NetRxAction));
    println!("note: net_rx_action (paper: avg 2-5.5us, wide; synchronous receive copy)");
}
