//! Fig 10 — AMG synthetic noise chart (§V-A): two interruptions with
//! near-identical durations but different causes (a page fault vs a
//! timer interrupt + softirq).

use osn_bench::load_or_run;
use osn_core::fig10_pairs;
use osn_core::kernel::time::Nanos;
use osn_core::workloads::App;

fn main() {
    let run = load_or_run(App::Amg);
    let pairs = fig10_pairs(&run, Nanos(60), 10);
    println!("== Fig 10: confusable interruption pairs in AMG (tolerance 60 ns) ==",);
    for p in &pairs {
        println!(
            "  A: t={} noise={} cause={}  |  B: t={} noise={} cause={}",
            p.a_start,
            p.a_noise,
            p.a_class.name(),
            p.b_start,
            p.b_noise,
            p.b_class.name()
        );
    }
    println!("\npaper example: page fault 2913 ns vs timer 2648 ns + softirq 254 ns = 2902 ns");
    if pairs.is_empty() {
        println!("(no pairs at this tolerance; rerun with a longer OSN_SECS)");
    }
}
