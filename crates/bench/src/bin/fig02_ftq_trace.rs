//! Fig 2 — FTQ execution trace: the zoomed interruption showing timer
//! interrupt, run_timer_softirq, the two schedule halves, and a daemon
//! preemption, with per-event durations (paper: 2.178 µs / 1.842 µs /
//! 0.382 µs / 2.215 µs / 0.179 µs).

use osn_core::figures::{fig1_config, fig2_interruption, run_ftq};
use osn_core::paraver;

fn main() {
    let (params, node) = fig1_config(4000);
    let exp = run_ftq(params, node.with_seed(osn_bench::seed()));

    match fig2_interruption(&exp) {
        Some(i) => {
            println!("== Fig 2b: one interruption, decomposed ==");
            println!(
                "interval [{}, {}] total {} (noise {})",
                i.start,
                i.end,
                i.duration(),
                i.noise()
            );
            for (c, d) in &i.components {
                println!("  {c:?} = {d}");
            }
        }
        None => println!("no multi-component interruption found (rerun with more samples)"),
    }

    // Fig 2a: a 75 ms window of the execution trace, exported to
    // Paraver format (counts reported here; files via the CLI).
    let full = paraver::write_full_prv(
        &exp.trace,
        &exp.analysis.instances,
        &exp.result.tasks,
        exp.result.end_time,
    );
    let records = paraver::parse_prv(&full).expect("valid prv").len();
    println!("\n== Fig 2a: execution trace ==");
    println!(
        "  Paraver export: {} records over {}",
        records, exp.result.end_time
    );
}
