//! Table II — network interrupt handler (paper: AMG 116/s avg 1552ns, ~350us maxima on every app)

use osn_core::analysis::stats::EventClass;
use osn_core::PaperReport;

fn main() {
    let runs = osn_bench::load_or_run_all();
    let report = PaperReport::build(&runs);
    println!("== Table II: {} ==", EventClass::NetworkInterrupt.name());
    println!("{}", report.render_table(EventClass::NetworkInterrupt));
    println!(
        "note: network interrupt handler (paper: AMG 116/s avg 1552ns, ~350us maxima on every app)"
    );
}
