//! Fig 6 — run_rebalance_domains time distributions: UMT (wide; the
//! Python helpers keep the domains unbalanced) vs IRS (compact).

use osn_bench::{load_or_run, render_histogram};
use osn_core::analysis::stats::{class_samples, class_stats, EventClass};
use osn_core::analysis::Histogram;
use osn_core::workloads::App;

fn main() {
    let mut spreads = Vec::new();
    for app in [App::Umt, App::Irs] {
        let run = load_or_run(app);
        let samples = class_samples(&run.analysis, &run.ranks, EventClass::RebalanceDomains);
        let stats = class_stats(&run.analysis, &run.ranks, EventClass::RebalanceDomains);
        let h = Histogram::build(&samples, 30, 99.0);
        println!(
            "== Fig 6{}: {} run_rebalance_domains distribution (avg {}) ==",
            if app == App::Umt { 'a' } else { 'b' },
            app.name().to_uppercase(),
            stats.avg
        );
        println!("{}", render_histogram(&h, 50));
        spreads.push((app, stats));
    }
    let (_, umt) = spreads[0];
    let (_, irs) = spreads[1];
    println!(
        "UMT avg {} vs IRS avg {} (paper: 3.36us vs ~1.8us peak; UMT wider)",
        umt.avg, irs.avg
    );
}
