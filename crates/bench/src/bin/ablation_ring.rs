//! Ablation: tracer ring-buffer capacity vs record loss. LTTng-class
//! tracers size per-CPU buffers so the consumer keeps up; undersized
//! rings silently drop the events that matter most (bursts).

use osn_core::kernel::node::Node;
use osn_core::kernel::prelude::*;
use osn_core::trace::session::{EventMask, TraceSession};
use osn_core::workloads::App;

fn main() {
    let dur = Nanos::from_secs(3);
    println!("== ring-capacity ablation: AMG, no background collector ==");
    for capacity in [1usize << 8, 1 << 12, 1 << 16, 1 << 20] {
        let cfg = NodeConfig::default()
            .with_seed(osn_bench::seed())
            .with_horizon(dur * 3);
        let cpus = cfg.cpus as usize;
        let mut node = Node::new(cfg);
        node.spawn_job("amg", osn_core::workloads::ranks(App::Amg, cpus, dur));
        let (session, mut tracer) = TraceSession::new(cpus, capacity, EventMask::ALL);
        node.run(&mut tracer);
        let trace = session.stop();
        let total = trace.len() as u64 + trace.total_lost();
        println!(
            "  {:>8} slots/cpu: kept {:>8} lost {:>8} ({:.2}% loss)",
            capacity,
            trace.len(),
            trace.total_lost(),
            100.0 * trace.total_lost() as f64 / total.max(1) as f64
        );
    }
    println!("\n(with the background collector even small rings survive; see osn-trace)");
}
