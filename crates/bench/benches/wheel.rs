//! Event-queue microbenchmarks: heap vs timer wheel at depth.
//!
//! Measures one steady-state pop+push pair per iteration against a
//! queue pre-filled to the target depth (1e5–1e7 pending entries).
//! The engine's own pending set is tiny (~20 entries on the paper
//! config — see `engine_throughput`), so this is where the heap's
//! O(log n) and the wheel's O(1) amortized costs actually separate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use osn_kernel::time::Nanos;
use osn_kernel::wheel::{EventQueue, HeapQueue, TimerWheel};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deltas up to ~16 ms spread entries across every wheel level below
/// overflow.
const DELTA_MASK: u64 = (1 << 24) - 1;

fn fill<Q: EventQueue<u64>>(queue: &mut Q, depth: u64, rng: &mut SmallRng, seq: &mut u64) {
    for _ in 0..depth {
        *seq += 1;
        queue.push(Nanos(rng.gen::<u64>() & DELTA_MASK), *seq, *seq);
    }
}

fn bench_queues(c: &mut Criterion) {
    for depth in [100_000u64, 1_000_000, 10_000_000] {
        let mut group = c.benchmark_group(&format!("queue/depth_{depth}"));
        // One pop + one push per iteration.
        group.throughput(Throughput::Elements(2));

        let mut rng = SmallRng::seed_from_u64(0xD1CE);
        let mut seq = 0u64;
        let mut heap = HeapQueue::new();
        fill(&mut heap, depth, &mut rng, &mut seq);
        group.bench_function("heap_hold", |b| {
            b.iter(|| {
                let (t, _, _) = heap.pop().expect("drained");
                seq += 1;
                heap.push(Nanos(t.0 + (rng.gen::<u64>() & DELTA_MASK)), seq, seq);
                t
            })
        });
        drop(heap);

        let mut rng = SmallRng::seed_from_u64(0xD1CE);
        let mut seq = 0u64;
        let mut wheel = TimerWheel::new();
        fill(&mut wheel, depth, &mut rng, &mut seq);
        group.bench_function("wheel_hold", |b| {
            b.iter(|| {
                let (t, _, _) = wheel.pop().expect("drained");
                seq += 1;
                wheel.push(Nanos(t.0 + (rng.gen::<u64>() & DELTA_MASK)), seq, seq);
                t
            })
        });
        drop(wheel);
        group.finish();
    }
}

criterion_group!(benches, bench_queues);
criterion_main!(benches);
