//! Simulator speed: simulated-seconds per wall-second and trace events
//! per second for the standard AMG configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use osn_core::{run_app, ExperimentConfig};
use osn_kernel::hooks::NullProbe;
use osn_kernel::prelude::*;
use osn_workloads::App;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);

    group.bench_function("amg_500ms_traced", |b| {
        b.iter(|| {
            let config = ExperimentConfig::paper(App::Amg, Nanos::from_millis(500));
            black_box(run_app(config))
        });
    });

    group.bench_function("amg_500ms_untraced", |b| {
        b.iter(|| {
            let cfg = NodeConfig::default().with_horizon(Nanos::from_secs(2));
            let mut node = Node::new(cfg);
            node.spawn_job(
                "amg",
                osn_workloads::ranks(App::Amg, 8, Nanos::from_millis(500)),
            );
            black_box(node.run(&mut NullProbe))
        });
    });

    group.bench_function("busy_loop_1s_8cpus", |b| {
        b.iter(|| {
            let cfg = NodeConfig::default().with_horizon(Nanos::from_secs(2));
            let mut node = Node::new(cfg);
            node.spawn_job(
                "busy",
                (0..8)
                    .map(|_| Box::new(BusyLoop::new(Nanos::from_secs(1))) as Box<dyn Workload>)
                    .collect(),
            );
            black_box(node.run(&mut NullProbe))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
