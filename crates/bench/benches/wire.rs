//! Wire-format encode/decode throughput for trace files.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use osn_kernel::activity::Activity;
use osn_kernel::ids::{CpuId, Tid};
use osn_kernel::time::Nanos;
use osn_trace::wire::{decode, encode};
use osn_trace::{Event, EventKind, Trace};

fn synthetic_trace(n: usize) -> Trace {
    let events = (0..n)
        .map(|i| Event {
            t: Nanos(i as u64 * 100),
            cpu: CpuId((i % 8) as u16),
            tid: Tid(1 + (i % 10) as u32),
            kind: if i % 2 == 0 {
                EventKind::KernelEnter(Activity::from_code(1 + (i % 21) as u16).unwrap())
            } else {
                EventKind::KernelExit(Activity::from_code(1 + ((i - 1) % 21) as u16).unwrap())
            },
        })
        .collect();
    Trace::new(events, vec![0; 8])
}

fn bench_wire(c: &mut Criterion) {
    let trace = synthetic_trace(100_000);
    let encoded = encode(&trace);

    let mut group = c.benchmark_group("wire");
    group.throughput(Throughput::Elements(trace.events.len() as u64));
    group.bench_function("encode_100k_events", |b| {
        b.iter(|| black_box(encode(black_box(&trace))));
    });
    group.bench_function("decode_100k_events", |b| {
        b.iter(|| black_box(decode(black_box(encoded.clone())).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
