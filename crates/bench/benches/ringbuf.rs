//! Ring-buffer throughput: the tracer's hot path. LTTng-class tracers
//! need sub-100ns record costs; this bench verifies the lock-free ring
//! delivers that.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use osn_kernel::activity::Activity;
use osn_kernel::ids::{CpuId, Tid};
use osn_kernel::time::Nanos;
use osn_trace::ringbuf::ring;
use osn_trace::{Event, EventKind};

fn sample_event(i: u64) -> Event {
    Event {
        t: Nanos(i),
        cpu: CpuId(0),
        tid: Tid(1),
        kind: EventKind::KernelEnter(Activity::TimerInterrupt),
    }
}

fn bench_ringbuf(c: &mut Criterion) {
    let mut group = c.benchmark_group("ringbuf");
    group.throughput(Throughput::Elements(1));

    group.bench_function("push_pop_event", |b| {
        let (mut producer, mut consumer) = ring::<Event>(1 << 16);
        let mut i = 0u64;
        b.iter(|| {
            producer.push(black_box(sample_event(i)));
            i += 1;
            black_box(consumer.pop())
        });
    });

    group.bench_function("push_batch_1k_then_drain", |b| {
        b.iter_batched(
            || ring::<Event>(1 << 12),
            |(mut producer, mut consumer)| {
                for i in 0..1000 {
                    producer.push(sample_event(i));
                }
                let mut out = Vec::with_capacity(1000);
                consumer.drain_into(&mut out);
                black_box(out)
            },
            BatchSize::SmallInput,
        );
    });

    group.sample_size(10);
    group.bench_function("concurrent_stream_100k", |b| {
        b.iter(|| {
            let (mut producer, mut consumer) = ring::<u64>(1 << 10);
            let handle = std::thread::spawn(move || {
                let mut sent = 0u64;
                for i in 0..100_000u64 {
                    while !producer.push(i) {
                        std::hint::spin_loop();
                    }
                    sent += 1;
                }
                sent
            });
            let mut received = 0u64;
            while received < 100_000 {
                if consumer.pop().is_some() {
                    received += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
            black_box(handle.join().unwrap())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ringbuf);
criterion_main!(benches);
