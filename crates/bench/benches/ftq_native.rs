//! Native FTQ micro-costs: the basic operation and a full quantum loop
//! on this host.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use osn_ftq::native::{basic_op, run_native};
use osn_kernel::time::Nanos;

fn bench_ftq_native(c: &mut Criterion) {
    let mut group = c.benchmark_group("ftq_native");
    group.throughput(Throughput::Elements(1));
    group.bench_function("basic_op", |b| {
        let mut acc = 1u64;
        b.iter(|| {
            acc = basic_op(black_box(acc));
            black_box(acc)
        });
    });
    group.sample_size(10);
    group.bench_function("ftq_50_quanta_200us", |b| {
        b.iter(|| black_box(run_native(Nanos::from_micros(200), 50)));
    });
    group.finish();
}

criterion_group!(benches, bench_ftq_native);
criterion_main!(benches);
