//! Offline analysis throughput: nesting reconstruction and the full
//! noise analysis over a real traced run.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use osn_analysis::nesting::reconstruct;
use osn_analysis::NoiseAnalysis;
use osn_core::{run_app, ExperimentConfig};
use osn_kernel::time::Nanos;
use osn_workloads::App;

fn bench_analysis(c: &mut Criterion) {
    // One real AMG run provides the input trace.
    let run = run_app(ExperimentConfig::paper(App::Amg, Nanos::from_secs(2)));
    let nevents = run.trace.len() as u64;

    let mut group = c.benchmark_group("analysis");
    group.sample_size(20);
    group.throughput(Throughput::Elements(nevents));
    group.bench_function("nesting_reconstruct", |b| {
        b.iter(|| black_box(reconstruct(black_box(&run.trace))));
    });
    group.bench_function("full_noise_analysis", |b| {
        b.iter(|| {
            black_box(NoiseAnalysis::analyze(
                black_box(&run.trace),
                &run.result.tasks,
                run.result.end_time,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
