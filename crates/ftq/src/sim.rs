//! FTQ as a simulated workload, plus the extraction of its sample
//! series from a trace.
//!
//! The workload computes in fixed wall-clock quanta and emits one
//! user-space tracepoint per quantum carrying the operation count —
//! exactly what the real benchmark writes to its sample buffer. The
//! quantum boundary includes a `clock_gettime`, as the real FTQ reads
//! the clock each iteration.

use osn_kernel::time::Nanos;
use osn_kernel::workload::{Action, Outcome, Workload, WorkloadCtx};
use osn_trace::{EventKind, Trace};

use crate::series::FtqSeries;

/// Mark id used for FTQ per-quantum samples.
pub const FTQ_MARK: u32 = 0xF7;

/// FTQ parameters.
#[derive(Clone, Copy, Debug)]
pub struct FtqParams {
    /// Quantum length `T` (Sottile & Minnich default is ~1 ms).
    pub quantum: Nanos,
    /// Number of quanta to sample.
    pub samples: u32,
    /// Cost of one basic operation.
    pub op_cost: Nanos,
    /// Whether the loop reads the clock through a syscall at each
    /// boundary (2.6-era gettime).
    pub gettime_per_quantum: bool,
    /// The sample buffer is demand-paged: writing results crosses a
    /// page boundary every this many quanta, faulting in a fresh page
    /// (the paper's Fig 1d: "smaller spikes ... caused by page
    /// faults"). 0 disables the buffer.
    pub quanta_per_page: u32,
}

impl Default for FtqParams {
    fn default() -> Self {
        FtqParams {
            quantum: Nanos::from_millis(1),
            samples: 3_000,
            op_cost: Nanos(25),
            gettime_per_quantum: false,
            quanta_per_page: 512,
        }
    }
}

/// The simulated FTQ benchmark.
pub struct FtqWorkload {
    params: FtqParams,
    state: FtqState,
    quantum_idx: u32,
    origin: Option<Nanos>,
    buffer: Option<osn_kernel::ids::RegionId>,
    buffer_page: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FtqState {
    Start,
    MapBuffer,
    /// Spin until the aligned origin (discarded work, as the real
    /// benchmark discards its first partial quantum).
    Warmup,
    Compute,
    Sample,
    TouchBuffer,
    Gettime,
    Done,
}

impl FtqWorkload {
    pub fn new(params: FtqParams) -> Self {
        FtqWorkload {
            params,
            state: FtqState::Start,
            quantum_idx: 0,
            origin: None,
            buffer: None,
            buffer_page: 0,
        }
    }

    fn boundary(&self, idx: u32) -> Nanos {
        self.origin.expect("origin set at start") + self.params.quantum * (idx as u64 + 1)
    }
}

impl Workload for FtqWorkload {
    fn name(&self) -> &'static str {
        "ftq"
    }

    fn cache_factor(&self) -> f64 {
        0.6 // a tiny arithmetic loop: very cache friendly
    }

    fn next(&mut self, ctx: &mut WorkloadCtx<'_>) -> Action {
        loop {
            match self.state {
                FtqState::Start => {
                    self.state = FtqState::MapBuffer;
                    if self.params.quanta_per_page > 0 {
                        let pages =
                            (self.params.samples as u64 / self.params.quanta_per_page as u64) + 2;
                        return Action::Mmap {
                            backing: osn_kernel::mm::Backing::AnonFresh,
                            pages,
                        };
                    }
                }
                FtqState::MapBuffer => {
                    if let Outcome::Mapped(r) = ctx.outcome {
                        self.buffer = Some(r);
                    }
                    // Align the origin to the next quantum boundary and
                    // spin out the partial quantum before it.
                    let q = self.params.quantum.as_nanos();
                    let aligned = Nanos((ctx.now.as_nanos() / q + 1) * q);
                    self.origin = Some(aligned);
                    self.state = FtqState::Warmup;
                    return Action::ComputeUntil { wall: aligned };
                }
                FtqState::Warmup => {
                    self.state = FtqState::Compute;
                }
                FtqState::Compute => {
                    if self.quantum_idx >= self.params.samples {
                        self.state = FtqState::Done;
                        continue;
                    }
                    self.state = FtqState::Sample;
                    return Action::ComputeUntil {
                        wall: self.boundary(self.quantum_idx),
                    };
                }
                FtqState::Sample => {
                    let user = match ctx.outcome {
                        Outcome::Computed { user } => user,
                        other => {
                            debug_assert!(false, "expected Computed, got {other:?}");
                            Nanos::ZERO
                        }
                    };
                    // Whole operations only: the discretization that
                    // makes FTQ overestimate (§III-C).
                    let ops = user / self.params.op_cost;
                    let crosses_page = self.buffer.is_some()
                        && self.params.quanta_per_page > 0
                        && self.quantum_idx % self.params.quanta_per_page
                            == self.params.quanta_per_page - 1;
                    self.state = if crosses_page {
                        FtqState::TouchBuffer
                    } else if self.params.gettime_per_quantum {
                        FtqState::Gettime
                    } else {
                        FtqState::Compute
                    };
                    self.quantum_idx += 1;
                    return Action::Mark {
                        mark: FTQ_MARK,
                        value: ops,
                    };
                }
                FtqState::TouchBuffer => {
                    self.state = if self.params.gettime_per_quantum {
                        FtqState::Gettime
                    } else {
                        FtqState::Compute
                    };
                    let page = self.buffer_page;
                    self.buffer_page += 1;
                    return Action::Touch {
                        region: self.buffer.expect("buffer mapped"),
                        first_page: page,
                        pages: 1,
                        work_per_page: Nanos(60),
                    };
                }
                FtqState::Gettime => {
                    self.state = FtqState::Compute;
                    return Action::Gettime;
                }
                FtqState::Done => return Action::Exit,
            }
        }
    }
}

/// Rebuild the FTQ series from the marks in a trace.
///
/// `op_cost` and `quantum` must match the run's parameters (they are
/// workload inputs, not trace contents — as with the real benchmark,
/// where they live in the output file header).
pub fn series_from_trace(trace: &Trace, params: &FtqParams) -> Option<FtqSeries> {
    let mut ops = Vec::new();
    let mut first_mark: Option<Nanos> = None;
    for e in &trace.events {
        if let EventKind::AppMark { mark, value } = e.kind {
            if mark == FTQ_MARK {
                first_mark.get_or_insert(e.t);
                ops.push(value);
            }
        }
    }
    if ops.is_empty() {
        return None;
    }
    // Quantum i's mark fires at its end: origin = first_mark − T.
    let origin = first_mark.unwrap().saturating_sub(params.quantum);
    Some(FtqSeries {
        origin,
        quantum: params.quantum,
        op_cost: params.op_cost,
        ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_kernel::config::NodeConfig;
    use osn_kernel::node::Node;
    use osn_trace::session::TraceSession;

    fn run_ftq(params: FtqParams, cpus: u16, seed: u64) -> (Trace, osn_kernel::node::RunResult) {
        let horizon = params.quantum * (params.samples as u64 + 10) + Nanos::from_millis(5);
        let cfg = NodeConfig::default()
            .with_cpus(cpus)
            .with_horizon(horizon)
            .with_seed(seed);
        let mut node = Node::new(cfg);
        node.spawn_process("ftq", Box::new(FtqWorkload::new(params)));
        let (session, mut tracer) = TraceSession::with_defaults(cpus as usize);
        let result = node.run(&mut tracer);
        (session.stop(), result)
    }

    #[test]
    fn ftq_produces_expected_sample_count() {
        let params = FtqParams {
            samples: 50,
            ..FtqParams::default()
        };
        let (trace, _) = run_ftq(params, 1, 9);
        let series = series_from_trace(&trace, &params).expect("series");
        assert_eq!(series.ops.len(), 50);
    }

    #[test]
    fn quanta_lose_ops_to_ticks() {
        // 1 ms quanta on a 100 Hz tick: every 10th quantum contains a
        // tick and loses operations.
        let params = FtqParams {
            samples: 100,
            ..FtqParams::default()
        };
        let (trace, _) = run_ftq(params, 1, 10);
        let series = series_from_trace(&trace, &params).expect("series");
        let noise = series.noise_estimate();
        let spiky = noise.iter().filter(|n| **n > Nanos(500)).count();
        // ~10 ticks in 100 ms → ~10 spiky quanta (plus scheduler work).
        assert!(
            (5..=40).contains(&spiky),
            "{spiky} spiky quanta, noise {:?}",
            &noise[..20]
        );
        // Most quanta are clean.
        let clean = noise.iter().filter(|n| n.is_zero()).count();
        assert!(clean > 40, "only {clean} clean quanta");
    }

    #[test]
    fn gettime_variant_emits_syscalls() {
        let params = FtqParams {
            samples: 20,
            gettime_per_quantum: true,
            ..FtqParams::default()
        };
        let (trace, _) = run_ftq(params, 1, 11);
        let gettimes = trace
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::KernelEnter(osn_kernel::activity::Activity::Syscall(
                        osn_kernel::activity::SyscallKind::Gettime
                    ))
                )
            })
            .count();
        assert_eq!(gettimes, 20);
    }

    #[test]
    fn no_marks_means_no_series() {
        let trace = Trace::default();
        assert!(series_from_trace(&trace, &FtqParams::default()).is_none());
    }
}
