//! Native FTQ: the real Fixed Time Quantum microbenchmark running on
//! the host machine (Sottile & Minnich, CLUSTER'04).
//!
//! This demonstrates the indirect measurement technique on real
//! hardware: within each wall-clock quantum, count how many basic
//! operations complete; missing operations relative to the best
//! quantum estimate the noise the host OS injected.

use std::hint::black_box;
use std::time::Instant;

use osn_kernel::time::Nanos;

use crate::series::FtqSeries;

/// One basic operation: a short dependent arithmetic chain the
/// compiler cannot elide or vectorize away.
#[inline(never)]
pub fn basic_op(seed: u64) -> u64 {
    let mut x = black_box(seed) | 1;
    // 32 dependent steps; on a ~GHz-class core this is tens of ns.
    for _ in 0..32 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x ^= x >> 29;
    }
    black_box(x)
}

/// Calibrate the basic-op cost on this host (median of several runs).
pub fn calibrate_op_cost() -> Nanos {
    let mut samples = Vec::with_capacity(9);
    for round in 0..9u64 {
        let iters = 20_000u64;
        let start = Instant::now();
        let mut acc = round;
        for i in 0..iters {
            acc = basic_op(acc ^ i);
        }
        black_box(acc);
        let per_op = start.elapsed().as_nanos() as u64 / iters;
        samples.push(per_op.max(1));
    }
    samples.sort_unstable();
    Nanos(samples[samples.len() / 2])
}

/// How many quanta [`run_native`] runs between op-cost recalibrations.
pub const RECALIBRATE_EVERY: usize = 256;

/// Run native FTQ: `samples` quanta of length `quantum`, recalibrating
/// every [`RECALIBRATE_EVERY`] quanta.
pub fn run_native(quantum: Nanos, samples: usize) -> FtqSeries {
    run_native_with(quantum, samples, RECALIBRATE_EVERY)
}

/// [`run_native`] with an explicit recalibration period.
///
/// The op cost is not a run constant: DVFS / thermal throttling moves
/// it mid-run, and with a single startup calibration that frequency
/// drift masquerades as noise. So the cost is re-measured every
/// `recalibrate_every` quanta, and any quantum the calibration window
/// overlaps is *discarded* (calibration time would read as a giant
/// noise spike). The result's `op_cost` is the median over all
/// calibration rounds; `ops.len()` may therefore be less than
/// `samples`.
pub fn run_native_with(quantum: Nanos, samples: usize, recalibrate_every: usize) -> FtqSeries {
    let recal_every = recalibrate_every.max(1);
    let mut costs = vec![calibrate_op_cost()];
    let start = Instant::now();
    let q = quantum.as_nanos() as u128;
    let mut ops = Vec::with_capacity(samples);
    let mut acc = 0u64;
    let mut i = 0usize;
    let mut last_recal = 0usize;
    while i < samples {
        if i > 0 && i - last_recal >= recal_every {
            costs.push(calibrate_op_cost());
            last_recal = i;
            // Discard every quantum the calibration straddled: resume
            // at the next quantum boundary after "now".
            let next = (start.elapsed().as_nanos() / q) as usize + 1;
            i = next.max(i + 1);
            continue;
        }
        let deadline = (i as u128 + 1) * q;
        let mut n = 0u64;
        while start.elapsed().as_nanos() < deadline {
            acc = basic_op(acc.wrapping_add(n));
            n += 1;
        }
        ops.push(n);
        i += 1;
    }
    black_box(acc);
    costs.sort_unstable();
    let op_cost = costs[costs.len() / 2];
    FtqSeries {
        origin: Nanos::ZERO,
        quantum,
        op_cost,
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_op_is_deterministic_and_nontrivial() {
        assert_eq!(basic_op(42), basic_op(42));
        assert_ne!(basic_op(42), basic_op(44));
    }

    #[test]
    fn calibration_returns_plausible_cost() {
        let cost = calibrate_op_cost();
        // A 32-step dependent chain: somewhere between 1 ns and 10 µs
        // on anything that can run this test suite.
        assert!(cost >= Nanos(1) && cost <= Nanos(10_000), "cost {cost}");
    }

    #[test]
    fn recalibration_discards_straddled_quanta() {
        // 30 quanta of 200 µs with recalibration every 10: the two
        // calibration windows (~ms each) straddle at least one quantum
        // apiece, so strictly fewer than 30 samples survive — the
        // discarded ones must not appear as zero-op "noise" quanta.
        let series = run_native_with(Nanos::from_micros(200), 30, 10);
        assert!(series.ops.len() < 30, "straddled quanta were kept");
        assert!(!series.ops.is_empty());
        // A calibration window (~ms) leaking into a recorded 200 µs
        // quantum would zero it; genuine whole-quantum theft is rare
        // enough that most quanta must show work.
        let busy = series.ops.iter().filter(|&&n| n > 0).count();
        assert!(
            busy * 2 > series.ops.len(),
            "{busy}/{} busy",
            series.ops.len()
        );
        assert!(series.op_cost >= Nanos(1));
    }

    #[test]
    fn native_run_counts_work() {
        // Short run to keep the suite fast: 20 quanta of 500 µs.
        let series = run_native(Nanos::from_micros(500), 20);
        assert_eq!(series.ops.len(), 20);
        assert!(series.n_max() > 0);
        // Most quanta did *some* work (a loaded host may steal whole
        // quanta occasionally — that IS the noise being measured).
        let busy = series.ops.iter().filter(|&&n| n > 0).count();
        assert!(busy >= 10, "only {busy}/20 quanta made progress");
        // The noise estimate is non-negative by construction and small
        // relative to the quantum for the median quantum.
        let noise = series.noise_estimate();
        let median = {
            let mut v = noise.clone();
            v.sort_unstable();
            v[v.len() / 2]
        };
        assert!(
            median <= series.quantum,
            "median noise {median} exceeds a whole quantum"
        );
    }
}
