//! Native host-noise capture: the FTQ loop as a *recorder*.
//!
//! The simulator measures noise by tracing kernel activity directly;
//! on a real host we only get the application's view — per-quantum gaps
//! in a spin loop. This module turns those gaps back into trace events
//! the unchanged analysis pipeline consumes:
//!
//! 1. **Calibrate** — time a batch of loop iterations; the gap
//!    threshold is `median + k·MAD` of the per-iteration deltas (the
//!    probe's own `Instant::now` cost is inside the median, so it is
//!    subtracted from every reported gap, not counted as noise).
//! 2. **Detect** — any iteration delta above the threshold is a gap:
//!    the OS ran something else on this CPU.
//! 3. **Attribute** — sample `/proc/interrupts`, `/proc/schedstat`,
//!    and `/proc/self/status` around the gap; the counter deltas pick
//!    the gap's class (decision table in [`classify`]).
//! 4. **Synthesize** — emit the same `Event` stream the simulated
//!    tracer produces (kernel enter/exit pairs, sched-switch pairs for
//!    preemptions) on one virtual CPU, so `analyze`/`info`/`serve`
//!    need no native-specific code path.
//!
//! Counter sampling happens strictly *after* a gap ends and its dead
//! time is excised from the loop clock, accumulated separately as
//! recorder self-overhead (reported, and benchmarked by
//! `capture_overhead`).

use std::time::Instant;

use osn_kernel::activity::Activity;
use osn_kernel::hooks::SwitchState;
use osn_kernel::ids::{CpuId, Tid};
use osn_kernel::time::Nanos;
use osn_trace::{Event, EventKind};

use serde::Serialize;

use crate::native::basic_op;
use crate::procfs::{counter_delta, ProcSnapshot};
use crate::series::FtqSeries;

/// The virtual CPU every synthesized event lands on.
pub const CAPTURE_CPU: CpuId = CpuId(0);
/// The FTQ thread's tid in the synthesized trace (kind `app`).
pub const CAPTURE_APP_TID: Tid = Tid(1);
/// The stand-in for whatever preempted us (kind `host`).
pub const CAPTURE_PREEMPTOR_TID: Tid = Tid(2);

/// What a detected gap was attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum GapClass {
    /// The periodic tick (local timer interrupt).
    Tick,
    /// A non-tick device interrupt.
    Interrupt,
    /// The scheduler ran someone else (involuntary context switch or
    /// CPU migration).
    Preemption,
    /// No sampled counter moved — SMM, hypervisor steal, or a source
    /// procfs does not count.
    Unattributed,
}

impl GapClass {
    pub fn name(self) -> &'static str {
        match self {
            GapClass::Tick => "tick",
            GapClass::Interrupt => "interrupt",
            GapClass::Preemption => "preemption",
            GapClass::Unattributed => "unattributed",
        }
    }
}

/// Counter movement across one gap's sampling window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterDeltas {
    /// Tick-timer interrupts on the CPU the thread ran on (or
    /// machine-wide when the CPU is unknown).
    pub timer_irqs: u64,
    /// Other device interrupts, same scope.
    pub other_irqs: u64,
    pub voluntary: u64,
    pub nonvoluntary: u64,
    /// The thread moved to a different CPU across the gap.
    pub migrated: bool,
    /// schedstat run-delay growth (ns) — corroboration, not a trigger.
    pub run_delay_ns: u64,
}

/// The classification decision table, in priority order. Pure function
/// of the deltas, so identical deltas always classify identically
/// (property-tested).
///
/// | evidence                         | class        |
/// |----------------------------------|--------------|
/// | involuntary switch or migration  | Preemption   |
/// | tick-timer interrupt fired       | Tick         |
/// | other device interrupt fired     | Interrupt    |
/// | nothing moved                    | Unattributed |
///
/// Preemption outranks the interrupt classes because a preemption is
/// usually *entered* through an interrupt: the switch counter is the
/// more specific signal.
pub fn classify(d: &CounterDeltas) -> GapClass {
    if d.nonvoluntary > 0 || d.migrated {
        GapClass::Preemption
    } else if d.timer_irqs > 0 {
        GapClass::Tick
    } else if d.other_irqs > 0 {
        GapClass::Interrupt
    } else {
        GapClass::Unattributed
    }
}

/// Counter deltas between two snapshots, scoped to the CPU the thread
/// landed on when both snapshots know it.
pub fn deltas_between(before: &ProcSnapshot, after: &ProcSnapshot) -> CounterDeltas {
    let migrated = match (before.cpu, after.cpu) {
        (Some(a), Some(b)) => a != b,
        _ => false,
    };
    let scoped = |cpu: Option<u32>| -> Option<(u64, u64, u64, u64)> {
        let c = cpu?;
        Some((
            before.interrupts.timer_on(c)?,
            after.interrupts.timer_on(c)?,
            before.interrupts.other_on(c)?,
            after.interrupts.other_on(c)?,
        ))
    };
    let (timer_irqs, other_irqs) = match scoped(after.cpu) {
        Some((t0, t1, o0, o1)) if !migrated => (counter_delta(t0, t1), counter_delta(o0, o1)),
        // Unknown or changed CPU: fall back to machine-wide deltas.
        _ => (
            counter_delta(
                before.interrupts.timer_total(),
                after.interrupts.timer_total(),
            ),
            counter_delta(
                before.interrupts.other_total(),
                after.interrupts.other_total(),
            ),
        ),
    };
    let run_delay = |s: &ProcSnapshot| -> u64 { s.sched.iter().map(|c| c.run_delay).sum() };
    CounterDeltas {
        timer_irqs,
        other_irqs,
        voluntary: counter_delta(before.ctxt.voluntary, after.ctxt.voluntary),
        nonvoluntary: counter_delta(before.ctxt.nonvoluntary, after.ctxt.nonvoluntary),
        migrated,
        run_delay_ns: counter_delta(run_delay(before), run_delay(after)),
    }
}

/// Capture parameters.
#[derive(Clone, Copy, Debug)]
pub struct CaptureConfig {
    /// Total wall-clock capture time.
    pub duration: Nanos,
    /// FTQ quantum.
    pub quantum: Nanos,
    /// `k` in the `median + k·MAD` gap threshold.
    pub threshold_k: f64,
    /// Lower bound on the gap threshold. Sub-µs loop jitter (cache and
    /// TLB effects) moves no procfs counter and would flood the
    /// capture with unattributable micro-gaps; the paper's per-event
    /// statistics start at µs scale.
    pub min_threshold: Nanos,
    /// Re-calibrate the iteration cost every this many quanta (DVFS
    /// drift guard); quanta straddling a calibration are discarded.
    pub recalibrate_every: usize,
}

impl Default for CaptureConfig {
    fn default() -> Self {
        CaptureConfig {
            duration: Nanos::from_secs(2),
            quantum: Nanos::from_millis(1),
            threshold_k: 8.0,
            min_threshold: Nanos(1_000),
            recalibrate_every: 512,
        }
    }
}

/// Everything a capture run measured (serialized by `capture --json`).
#[derive(Clone, Debug, Serialize)]
pub struct CaptureReport {
    pub quantum: Nanos,
    /// Quanta kept (calibration-straddling quanta are discarded).
    pub quanta: usize,
    /// Actual elapsed wall clock.
    pub duration: Nanos,
    /// Median per-iteration loop cost from the latest calibration.
    pub iter_cost: Nanos,
    /// Gap-detection threshold derived from the latest calibration.
    pub threshold: Nanos,
    pub gaps: u64,
    pub ticks: u64,
    pub interrupts: u64,
    pub preemptions: u64,
    pub unattributed: u64,
    /// Fraction of detected gaps that got a concrete class.
    pub classified_fraction: f64,
    /// Sum of gap durations with the expected iteration cost (the
    /// probe's own overhead) subtracted.
    pub noise_total: Nanos,
    /// Total loop dead time spent reading procfs after gaps — the
    /// recorder's self-overhead.
    pub probe_overhead: Nanos,
    pub probe_overhead_per_quantum: Nanos,
    /// procfs reads that failed mid-run.
    pub sample_errors: u64,
    pub recalibrations: u64,
    /// Whether `/proc/schedstat` was readable on this host.
    pub schedstat_available: bool,
    /// schedstat run-delay growth summed over all gap windows (ns).
    pub run_delay_ns: u64,
}

/// A completed capture: the report, the synthesized single-CPU event
/// stream, and the raw FTQ series.
pub struct Capture {
    pub report: CaptureReport,
    pub events: Vec<Event>,
    pub series: FtqSeries,
}

/// Calibrate the spin iteration: returns `(median, threshold)` over
/// `iters` timed iterations, threshold = `median + k·MAD` with a small
/// floor so ns-resolution clocks (MAD = 0) still get headroom.
fn calibrate_iteration(k: f64) -> (Nanos, Nanos) {
    const ITERS: usize = 4096;
    let mut deltas = Vec::with_capacity(ITERS);
    let mut acc = 0u64;
    let origin = Instant::now();
    let mut prev = origin.elapsed().as_nanos() as u64;
    for i in 0..ITERS {
        acc = basic_op(acc.wrapping_add(i as u64));
        let now = origin.elapsed().as_nanos() as u64;
        deltas.push(now.saturating_sub(prev));
        prev = now;
    }
    std::hint::black_box(acc);
    deltas.sort_unstable();
    let median = deltas[deltas.len() / 2].max(1);
    let mut devs: Vec<u64> = deltas.iter().map(|&d| d.abs_diff(median)).collect();
    devs.sort_unstable();
    let mad = devs[devs.len() / 2].max(25); // floor for coarse clocks
    let threshold = median + (k.max(1.0) * mad as f64) as u64;
    (Nanos(median), Nanos(threshold))
}

fn push_gap_events(events: &mut Vec<Event>, class: GapClass, start: u64, end: u64) {
    let ev = |t: u64, tid: Tid, kind: EventKind| Event {
        t: Nanos(t),
        cpu: CAPTURE_CPU,
        tid,
        kind,
    };
    match class {
        GapClass::Tick => {
            events.push(ev(
                start,
                CAPTURE_APP_TID,
                EventKind::KernelEnter(Activity::TimerInterrupt),
            ));
            events.push(ev(
                end,
                CAPTURE_APP_TID,
                EventKind::KernelExit(Activity::TimerInterrupt),
            ));
        }
        GapClass::Interrupt => {
            events.push(ev(
                start,
                CAPTURE_APP_TID,
                EventKind::KernelEnter(Activity::NetworkInterrupt),
            ));
            events.push(ev(
                end,
                CAPTURE_APP_TID,
                EventKind::KernelExit(Activity::NetworkInterrupt),
            ));
        }
        GapClass::Preemption => {
            events.push(ev(
                start,
                CAPTURE_APP_TID,
                EventKind::SchedSwitch {
                    prev: CAPTURE_APP_TID,
                    prev_state: SwitchState::Preempted,
                    next: CAPTURE_PREEMPTOR_TID,
                },
            ));
            events.push(ev(
                end,
                CAPTURE_PREEMPTOR_TID,
                EventKind::SchedSwitch {
                    prev: CAPTURE_PREEMPTOR_TID,
                    prev_state: SwitchState::BlockedWait,
                    next: CAPTURE_APP_TID,
                },
            ));
        }
        // No local counter moved: to the application this is stolen
        // time (SMM / hypervisor / unattributable), which the taxonomy
        // already categorizes as preemption-class noise.
        GapClass::Unattributed => {
            events.push(ev(
                start,
                CAPTURE_APP_TID,
                EventKind::KernelEnter(Activity::Steal),
            ));
            events.push(ev(
                end,
                CAPTURE_APP_TID,
                EventKind::KernelExit(Activity::Steal),
            ));
        }
    }
}

/// Run a native capture. Works without procfs (non-Linux dev hosts):
/// every gap is then `Unattributed` and `schedstat_available` is
/// false, which the CLI and CI surface as a degraded capture.
pub fn run_capture(cfg: CaptureConfig) -> Capture {
    let quantum = Nanos(cfg.quantum.as_nanos().max(10_000)); // ≥ 10 µs
    let total_quanta = (cfg.duration.as_nanos() / quantum.as_nanos()).max(1) as usize;
    let recal_every = cfg.recalibrate_every.max(2);

    let clamp = |t: Nanos| t.max(cfg.min_threshold);
    let (mut iter_cost, mut threshold) = calibrate_iteration(cfg.threshold_k);
    threshold = clamp(threshold);
    let mut recalibrations = 1u64;

    let mut baseline = ProcSnapshot::read().ok();
    let schedstat_available = ProcSnapshot::schedstat_available();

    let mut events = Vec::new();
    // The synthesized trace opens with the idle→app switch that puts
    // the FTQ thread Running on the virtual CPU.
    events.push(Event {
        t: Nanos::ZERO,
        cpu: CAPTURE_CPU,
        tid: CAPTURE_APP_TID,
        kind: EventKind::SchedSwitch {
            prev: Tid::IDLE,
            prev_state: SwitchState::Preempted,
            next: CAPTURE_APP_TID,
        },
    });

    let mut ops = Vec::with_capacity(total_quanta);
    let (mut gaps, mut ticks, mut interrupts, mut preemptions, mut unattributed) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut noise_total = 0u64;
    let mut probe_overhead = 0u64;
    let mut sample_errors = 0u64;
    let mut run_delay_ns = 0u64;
    let mut acc = 0u64;
    // The last event timestamp, to keep synthesized events strictly
    // ordered even if the clock reads equal nanoseconds twice.
    let mut last_event_t = 0u64;

    let origin = Instant::now();
    let mut quantum_index = 0usize;
    while quantum_index < total_quanta {
        if quantum_index > 0 && quantum_index.is_multiple_of(recal_every) {
            // DVFS guard: re-derive the iteration cost; every quantum
            // the calibration window overlaps is discarded, not
            // recorded as ops (frequency drift must not read as
            // noise).
            let (c, t) = calibrate_iteration(cfg.threshold_k);
            iter_cost = c;
            threshold = clamp(t);
            recalibrations += 1;
            let now = origin.elapsed().as_nanos() as u64;
            let next = (now / quantum.as_nanos() + 1) as usize;
            quantum_index = next.max(quantum_index + 1);
            continue;
        }
        let deadline = (quantum_index as u64 + 1) * quantum.as_nanos();
        let mut n = 0u64;
        let mut t_prev = origin.elapsed().as_nanos() as u64;
        while t_prev < deadline {
            acc = basic_op(acc.wrapping_add(n));
            n += 1;
            let t_now = origin.elapsed().as_nanos() as u64;
            let delta = t_now.saturating_sub(t_prev);
            if delta > threshold.as_nanos() {
                // A gap: the loop lost [t_prev, t_now] minus one
                // expected iteration.
                let gap_start = t_prev + iter_cost.as_nanos();
                let gap_end = t_now.max(gap_start + 1);
                gaps += 1;
                noise_total += gap_end - gap_start;

                let class = match ProcSnapshot::read() {
                    Ok(after) => {
                        let class = match &baseline {
                            Some(before) => {
                                let d = deltas_between(before, &after);
                                run_delay_ns += d.run_delay_ns;
                                classify(&d)
                            }
                            None => GapClass::Unattributed,
                        };
                        baseline = Some(after);
                        class
                    }
                    Err(_) => {
                        sample_errors += 1;
                        GapClass::Unattributed
                    }
                };
                match class {
                    GapClass::Tick => ticks += 1,
                    GapClass::Interrupt => interrupts += 1,
                    GapClass::Preemption => preemptions += 1,
                    GapClass::Unattributed => unattributed += 1,
                }
                let s = gap_start.max(last_event_t + 1);
                let e = gap_end.max(s + 1);
                push_gap_events(&mut events, class, s, e);
                last_event_t = e;

                // Excise the sampling dead time from the loop clock so
                // it reads as self-overhead, not as further noise.
                let after_sample = origin.elapsed().as_nanos() as u64;
                probe_overhead += after_sample.saturating_sub(t_now);
                last_event_t = last_event_t.max(after_sample);
                t_prev = after_sample;
            } else {
                t_prev = t_now;
            }
        }
        ops.push(n);
        quantum_index += 1;
    }
    let duration = Nanos(origin.elapsed().as_nanos() as u64);
    std::hint::black_box(acc);

    let quanta = ops.len();
    let classified = ticks + interrupts + preemptions;
    let report = CaptureReport {
        quantum,
        quanta,
        duration,
        iter_cost,
        threshold,
        gaps,
        ticks,
        interrupts,
        preemptions,
        unattributed,
        classified_fraction: if gaps == 0 {
            1.0
        } else {
            classified as f64 / gaps as f64
        },
        noise_total: Nanos(noise_total),
        probe_overhead: Nanos(probe_overhead),
        probe_overhead_per_quantum: Nanos(probe_overhead / quanta.max(1) as u64),
        sample_errors,
        recalibrations,
        schedstat_available,
        run_delay_ns,
    };
    let series = FtqSeries {
        origin: Nanos::ZERO,
        quantum,
        op_cost: iter_cost,
        ops,
    };
    Capture {
        report,
        events,
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procfs::{parse_interrupts, parse_schedstat, parse_status_switches};

    fn snapshot(timer: u64, other: u64, nonvol: u64, cpu: Option<u32>) -> ProcSnapshot {
        ProcSnapshot {
            interrupts: parse_interrupts(&format!(
                "            CPU0\nLOC:       {timer}   Local timer interrupts\n 24:       {other}   PCI-MSI eth0\n"
            )),
            sched: parse_schedstat("version 15\nts 1\ncpu0 0 0 0 0 0 0 10 20 30\n"),
            ctxt: parse_status_switches(&format!(
                "voluntary_ctxt_switches: 1\nnonvoluntary_ctxt_switches: {nonvol}\n"
            )),
            cpu,
        }
    }

    #[test]
    fn decision_table_priority_order() {
        // Everything moved: preemption wins.
        let d = CounterDeltas {
            timer_irqs: 2,
            other_irqs: 1,
            nonvoluntary: 1,
            ..Default::default()
        };
        assert_eq!(classify(&d), GapClass::Preemption);
        // Migration alone is preemption.
        let d = CounterDeltas {
            migrated: true,
            ..Default::default()
        };
        assert_eq!(classify(&d), GapClass::Preemption);
        // Tick outranks device interrupts.
        let d = CounterDeltas {
            timer_irqs: 1,
            other_irqs: 3,
            ..Default::default()
        };
        assert_eq!(classify(&d), GapClass::Tick);
        let d = CounterDeltas {
            other_irqs: 1,
            ..Default::default()
        };
        assert_eq!(classify(&d), GapClass::Interrupt);
        assert_eq!(classify(&CounterDeltas::default()), GapClass::Unattributed);
    }

    #[test]
    fn deltas_between_fixture_snapshots() {
        let before = snapshot(100, 50, 3, Some(0));
        let after = snapshot(102, 50, 3, Some(0));
        let d = deltas_between(&before, &after);
        assert_eq!(d.timer_irqs, 2);
        assert_eq!(d.other_irqs, 0);
        assert_eq!(d.nonvoluntary, 0);
        assert!(!d.migrated);
        assert_eq!(classify(&d), GapClass::Tick);
    }

    #[test]
    fn migration_falls_back_to_machine_wide_deltas() {
        let mut before = snapshot(100, 50, 3, Some(0));
        let mut after = snapshot(101, 50, 3, Some(1));
        let d = deltas_between(&before, &after);
        assert!(d.migrated);
        assert_eq!(classify(&d), GapClass::Preemption);
        // Unknown CPU on either side: not a migration.
        before.cpu = None;
        after.cpu = None;
        let d = deltas_between(&before, &after);
        assert!(!d.migrated);
        assert_eq!(d.timer_irqs, 1);
    }

    #[test]
    fn counter_reset_reads_as_fresh_delta() {
        let before = snapshot(u64::MAX - 5, 50, 3, Some(0));
        let after = snapshot(4, 50, 3, Some(0));
        let d = deltas_between(&before, &after);
        assert_eq!(d.timer_irqs, 4, "reset counter: new value is the delta");
    }

    /// The acceptance gate: over a fixture-driven stream of gap
    /// windows shaped like a real host (ticks dominate, some device
    /// IRQs, occasional preemptions, rare silent gaps), ≥95 % of gaps
    /// classify to a concrete class.
    #[test]
    fn fixture_driven_classification_rate_is_at_least_95_percent() {
        let mut timer = 1_000u64;
        let mut other = 500u64;
        let mut nonvol = 7u64;
        let mut prev = snapshot(timer, other, nonvol, Some(0));
        let mut classified = 0u64;
        let total = 100u64;
        for i in 0..total {
            // 2 % of gaps move no counter at all.
            match i % 50 {
                13 => {}
                n if n % 10 == 3 => other += 1,
                n if n % 25 == 7 => nonvol += 1,
                _ => timer += 1,
            }
            let next = snapshot(timer, other, nonvol, Some(0));
            if classify(&deltas_between(&prev, &next)) != GapClass::Unattributed {
                classified += 1;
            }
            prev = next;
        }
        let fraction = classified as f64 / total as f64;
        assert!(
            fraction >= 0.95,
            "only {classified}/{total} gaps classified"
        );
    }

    #[test]
    fn synthesized_events_are_ordered_and_paired() {
        let mut events = Vec::new();
        push_gap_events(&mut events, GapClass::Tick, 100, 200);
        push_gap_events(&mut events, GapClass::Preemption, 300, 450);
        push_gap_events(&mut events, GapClass::Unattributed, 500, 510);
        assert_eq!(events.len(), 6);
        assert!(events.windows(2).all(|w| w[0].t <= w[1].t));
        assert!(matches!(
            events[0].kind,
            EventKind::KernelEnter(Activity::TimerInterrupt)
        ));
        assert!(matches!(
            events[2].kind,
            EventKind::SchedSwitch {
                prev: CAPTURE_APP_TID,
                ..
            }
        ));
        assert!(matches!(
            events[4].kind,
            EventKind::KernelEnter(Activity::Steal)
        ));
    }

    #[test]
    fn short_capture_produces_coherent_report() {
        let cap = run_capture(CaptureConfig {
            duration: Nanos::from_millis(30),
            quantum: Nanos::from_millis(1),
            ..CaptureConfig::default()
        });
        assert!(cap.report.quanta > 0);
        assert_eq!(cap.series.ops.len(), cap.report.quanta);
        assert!(cap.report.iter_cost > Nanos::ZERO);
        assert!(cap.report.threshold > cap.report.iter_cost);
        assert_eq!(
            cap.report.gaps,
            cap.report.ticks
                + cap.report.interrupts
                + cap.report.preemptions
                + cap.report.unattributed
        );
        // Opening switch + one enter/exit or switch pair per gap.
        assert_eq!(cap.events.len(), 1 + 2 * cap.report.gaps as usize);
        assert!(cap.events.windows(2).all(|w| w[0].t <= w[1].t));
    }

    #[test]
    fn calibration_threshold_has_headroom() {
        let (median, threshold) = calibrate_iteration(8.0);
        assert!(median >= Nanos(1));
        assert!(threshold.as_nanos() >= median.as_nanos() + 8 * 25);
    }
}
