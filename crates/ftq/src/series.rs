//! FTQ sample series and the noise estimate derived from them.
//!
//! FTQ "measures the amount of work done in a fixed time quantum in
//! terms of basic operations. ... we can indirectly estimate the amount
//! of OS noise, in terms of basic operations, from the difference
//! `Nmax − Ni`" (§III). The estimate is *discretized*: partially
//! completed operations are lost, so "FTQ slightly overestimates the
//! OS noise" (§III-C).

use osn_kernel::time::Nanos;

use serde::{Deserialize, Serialize};

/// A completed FTQ run: operations counted per quantum.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FtqSeries {
    /// Start time of quantum 0.
    pub origin: Nanos,
    /// Quantum length `T`.
    pub quantum: Nanos,
    /// Cost of one basic operation.
    pub op_cost: Nanos,
    /// Operations completed in each quantum (`N_i`).
    pub ops: Vec<u64>,
}

impl FtqSeries {
    /// `N_max`: the best quantum observed.
    pub fn n_max(&self) -> u64 {
        self.ops.iter().copied().max().unwrap_or(0)
    }

    /// The indirect noise estimate per quantum:
    /// `(N_max − N_i) × op_cost`.
    pub fn noise_estimate(&self) -> Vec<Nanos> {
        let nmax = self.n_max();
        self.ops
            .iter()
            .map(|&n| self.op_cost * (nmax - n))
            .collect()
    }

    /// Total estimated noise over the run.
    pub fn total_noise(&self) -> Nanos {
        self.noise_estimate().into_iter().sum()
    }

    /// Quantum start times (x-axis of Fig 1a).
    pub fn times(&self) -> Vec<Nanos> {
        (0..self.ops.len())
            .map(|i| self.origin + self.quantum * i as u64)
            .collect()
    }

    /// The quanta (index, estimate) whose estimate exceeds `threshold`
    /// — the "spikes" of Fig 1a.
    pub fn spikes(&self, threshold: Nanos) -> Vec<(usize, Nanos)> {
        self.noise_estimate()
            .into_iter()
            .enumerate()
            .filter(|(_, n)| *n > threshold)
            .collect()
    }

    /// A window of the series (Fig 1c's zoom).
    pub fn window(&self, from_quantum: usize, to_quantum: usize) -> FtqSeries {
        let to = to_quantum.min(self.ops.len());
        let from = from_quantum.min(to);
        FtqSeries {
            origin: self.origin + self.quantum * from as u64,
            quantum: self.quantum,
            op_cost: self.op_cost,
            ops: self.ops[from..to].to_vec(),
        }
    }
}

/// §III-C comparison between the FTQ estimate and the tracer's direct
/// measurement, per quantum.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FtqComparison {
    /// Per-quantum `(ftq_estimate, traced_noise)`.
    pub per_quantum: Vec<(Nanos, Nanos)>,
}

impl FtqComparison {
    pub fn new(ftq: &FtqSeries, traced: &[Nanos]) -> FtqComparison {
        let n = ftq.ops.len().min(traced.len());
        let est = ftq.noise_estimate();
        FtqComparison {
            per_quantum: (0..n).map(|i| (est[i], traced[i])).collect(),
        }
    }

    /// Totals: `(ftq_total, traced_total)`.
    pub fn totals(&self) -> (Nanos, Nanos) {
        let f = self.per_quantum.iter().map(|(a, _)| *a).sum();
        let t = self.per_quantum.iter().map(|(_, b)| *b).sum();
        (f, t)
    }

    /// Pearson correlation between the two series (quantifies "the
    /// data output from these two methods are very similar").
    pub fn correlation(&self) -> f64 {
        let n = self.per_quantum.len();
        if n < 2 {
            return 1.0;
        }
        let xs: Vec<f64> = self
            .per_quantum
            .iter()
            .map(|(a, _)| a.as_nanos() as f64)
            .collect();
        let ys: Vec<f64> = self
            .per_quantum
            .iter()
            .map(|(_, b)| b.as_nanos() as f64)
            .collect();
        let mx = xs.iter().sum::<f64>() / n as f64;
        let my = ys.iter().sum::<f64>() / n as f64;
        let mut cov = 0.0;
        let mut vx = 0.0;
        let mut vy = 0.0;
        for i in 0..n {
            let dx = xs[i] - mx;
            let dy = ys[i] - my;
            cov += dx * dy;
            vx += dx * dx;
            vy += dy * dy;
        }
        if vx == 0.0 || vy == 0.0 {
            // Both flat → identical shape; one flat → no correlation.
            return if vx == vy { 1.0 } else { 0.0 };
        }
        cov / (vx.sqrt() * vy.sqrt())
    }

    /// Fraction of quanta where FTQ's estimate ≥ the traced noise
    /// (FTQ discretization overestimates; see §III-C).
    pub fn overestimate_fraction(&self) -> f64 {
        if self.per_quantum.is_empty() {
            return 0.0;
        }
        let over = self.per_quantum.iter().filter(|(f, t)| f >= t).count();
        over as f64 / self.per_quantum.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(ops: Vec<u64>) -> FtqSeries {
        FtqSeries {
            origin: Nanos(0),
            quantum: Nanos::from_millis(1),
            op_cost: Nanos(100),
            ops,
        }
    }

    #[test]
    fn noise_estimate_from_missing_ops() {
        let s = series(vec![1000, 990, 1000, 950]);
        assert_eq!(s.n_max(), 1000);
        assert_eq!(
            s.noise_estimate(),
            vec![Nanos(0), Nanos(1000), Nanos(0), Nanos(5000)]
        );
        assert_eq!(s.total_noise(), Nanos(6000));
    }

    #[test]
    fn spikes_above_threshold() {
        let s = series(vec![1000, 990, 1000, 950]);
        let spikes = s.spikes(Nanos(2000));
        assert_eq!(spikes, vec![(3, Nanos(5000))]);
    }

    #[test]
    fn window_slices() {
        let s = series(vec![10, 20, 30, 40, 50]);
        let w = s.window(1, 3);
        assert_eq!(w.ops, vec![20, 30]);
        assert_eq!(w.origin, Nanos::from_millis(1));
        let oob = s.window(4, 99);
        assert_eq!(oob.ops, vec![50]);
    }

    #[test]
    fn times_are_quantum_spaced() {
        let s = series(vec![1, 2, 3]);
        let t = s.times();
        assert_eq!(
            t,
            vec![Nanos(0), Nanos::from_millis(1), Nanos::from_millis(2)]
        );
    }

    #[test]
    fn perfect_correlation() {
        let s = series(vec![100, 90, 100, 80]);
        let traced: Vec<Nanos> = s.noise_estimate();
        let cmp = FtqComparison::new(&s, &traced);
        assert!((cmp.correlation() - 1.0).abs() < 1e-12);
        assert_eq!(cmp.overestimate_fraction(), 1.0);
        let (f, t) = cmp.totals();
        assert_eq!(f, t);
    }

    #[test]
    fn overestimate_detected() {
        let s = series(vec![100, 90]);
        // Tracer saw slightly less noise than FTQ's discretized guess.
        let cmp = FtqComparison::new(&s, &[Nanos(0), Nanos(900)]);
        assert_eq!(cmp.overestimate_fraction(), 1.0);
        let (f, t) = cmp.totals();
        assert!(f > t);
    }

    #[test]
    fn empty_and_degenerate() {
        let s = series(vec![]);
        assert_eq!(s.n_max(), 0);
        assert_eq!(s.total_noise(), Nanos::ZERO);
        let cmp = FtqComparison::new(&s, &[]);
        assert_eq!(cmp.correlation(), 1.0);
        assert_eq!(cmp.overestimate_fraction(), 0.0);
    }
}
