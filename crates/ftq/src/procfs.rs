//! Parsers for the `/proc` counter files the native capture samples
//! around each detected gap.
//!
//! All parsers take `&str` so they are unit-testable against committed
//! fixture files, and all tolerate the realities of procfs reads:
//! counters that wrapped or reset, CPUs that went offline (missing
//! columns), CPUs that came online mid-run (extra columns), and reads
//! truncated mid-write. A malformed line never panics — it parses to
//! whatever prefix was valid and the rest is dropped.

use std::io;

/// One snapshot of `/proc/interrupts`, folded to the two counters the
/// gap classifier needs: per-CPU tick-timer interrupts and per-CPU
/// everything-else device interrupts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InterruptsSnapshot {
    /// CPU number of each column, from the `CPU0 CPU1 ...` header.
    /// Non-contiguous after CPU hotplug (e.g. `[0, 2, 3]`).
    pub cpu_ids: Vec<u32>,
    /// Tick-timer interrupts per column (x86 `LOC`, arm64 `arch_timer`,
    /// legacy IO-APIC `timer`).
    pub timer: Vec<u64>,
    /// All other device interrupts per column.
    pub other: Vec<u64>,
}

impl InterruptsSnapshot {
    pub fn timer_total(&self) -> u64 {
        self.timer.iter().sum()
    }

    pub fn other_total(&self) -> u64 {
        self.other.iter().sum()
    }

    fn column_of(&self, cpu: u32) -> Option<usize> {
        self.cpu_ids.iter().position(|&c| c == cpu)
    }

    /// Timer-interrupt count on one CPU; `None` if that CPU has no
    /// column (offline / hotplugged away).
    pub fn timer_on(&self, cpu: u32) -> Option<u64> {
        self.column_of(cpu).map(|i| self.timer[i])
    }

    pub fn other_on(&self, cpu: u32) -> Option<u64> {
        self.column_of(cpu).map(|i| self.other[i])
    }
}

/// Whether an interrupt row is the periodic tick source. The label is
/// the token before the colon (`LOC`, `17`), the description is
/// everything after the counters.
fn is_timer_row(label: &str, description: &str) -> bool {
    if label.eq_ignore_ascii_case("LOC") {
        return true;
    }
    let d = description.to_ascii_lowercase();
    d.contains("timer") // "Local timer interrupts", "arch_timer", "IO-APIC 2-edge timer"
}

/// Rows with a single machine-wide count instead of per-CPU columns.
fn is_scalar_row(label: &str) -> bool {
    matches!(label, "ERR" | "MIS")
}

/// Parse the text of `/proc/interrupts`.
pub fn parse_interrupts(text: &str) -> InterruptsSnapshot {
    let mut lines = text.lines();
    let Some(header) = lines.next() else {
        return InterruptsSnapshot::default();
    };
    let cpu_ids: Vec<u32> = header
        .split_whitespace()
        .filter_map(|t| t.strip_prefix("CPU")?.parse().ok())
        .collect();
    let ncols = cpu_ids.len();
    let mut snap = InterruptsSnapshot {
        cpu_ids,
        timer: vec![0; ncols],
        other: vec![0; ncols],
    };
    if ncols == 0 {
        return snap;
    }
    for line in lines {
        let Some((label, rest)) = line.split_once(':') else {
            continue; // truncated mid-write: no complete row here
        };
        let label = label.trim();
        if label.is_empty() || is_scalar_row(label) {
            continue;
        }
        let mut counts = Vec::with_capacity(ncols);
        let mut tokens = rest.split_whitespace();
        for t in tokens.by_ref() {
            match t.parse::<u64>() {
                Ok(n) if counts.len() < ncols => counts.push(n),
                _ => {
                    // First non-numeric token starts the description.
                    // (Chip name / hwirq / action, e.g. "IO-APIC 2-edge
                    // timer".)
                    let mut description = t.to_string();
                    for rest in tokens.by_ref() {
                        description.push(' ');
                        description.push_str(rest);
                    }
                    let into = if is_timer_row(label, &description) {
                        &mut snap.timer
                    } else {
                        &mut snap.other
                    };
                    // Rows may have fewer columns than the header
                    // (hotplug drift, truncation): missing columns
                    // count 0.
                    for (i, n) in counts.iter().enumerate() {
                        into[i] += n;
                    }
                    counts.clear();
                    break;
                }
            }
        }
        // Row ended inside the counter columns (truncated mid-write,
        // or a description-less row): no description to classify by;
        // treat as a device interrupt.
        for (i, n) in counts.iter().enumerate() {
            snap.other[i] += n;
        }
    }
    snap
}

/// One CPU's line of `/proc/schedstat`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedstatCpu {
    pub cpu: u32,
    /// Cumulative time tasks spent runnable-but-waiting on this CPU
    /// (ns) — the direct preemption-pressure corroborator.
    pub run_delay: u64,
    /// Timeslices handed out on this CPU.
    pub pcount: u64,
}

/// Parse the text of `/proc/schedstat` (`cpuN` lines; domain lines and
/// the version/timestamp header are skipped). The last two fields of a
/// cpu line are run_delay and pcount in every schedstat version this
/// targets (≥ 15).
pub fn parse_schedstat(text: &str) -> Vec<SchedstatCpu> {
    let mut out = Vec::new();
    for line in text.lines() {
        let mut tokens = line.split_whitespace();
        let Some(name) = tokens.next() else { continue };
        let Some(cpu) = name.strip_prefix("cpu").and_then(|n| n.parse().ok()) else {
            continue;
        };
        let fields: Vec<u64> = tokens.filter_map(|t| t.parse().ok()).collect();
        // A full line has 9 statistics; a truncated one with fewer
        // than the trailing (run_delay, pcount) pair is dropped.
        if fields.len() < 9 {
            continue;
        }
        out.push(SchedstatCpu {
            cpu,
            run_delay: fields[fields.len() - 2],
            pcount: fields[fields.len() - 1],
        });
    }
    out
}

/// The two context-switch counters of `/proc/self/status`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CtxtSwitches {
    pub voluntary: u64,
    pub nonvoluntary: u64,
}

/// Parse `voluntary_ctxt_switches` / `nonvoluntary_ctxt_switches` out
/// of `/proc/self/status` text. Missing lines (truncated read) leave
/// the corresponding counter 0.
pub fn parse_status_switches(text: &str) -> CtxtSwitches {
    let mut out = CtxtSwitches::default();
    for line in text.lines() {
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let Ok(n) = value.trim().parse::<u64>() else {
            continue;
        };
        match key.trim() {
            "voluntary_ctxt_switches" => out.voluntary = n,
            "nonvoluntary_ctxt_switches" => out.nonvoluntary = n,
            _ => {}
        }
    }
    out
}

/// The CPU a task last ran on: field 39 of `/proc/self/stat`. The comm
/// field may itself contain spaces and parentheses, so fields are
/// counted from after the *last* `)`.
pub fn parse_stat_cpu(text: &str) -> Option<u32> {
    let after_comm = &text[text.rfind(')')? + 1..];
    // after_comm starts at field 3 (state); processor is field 39.
    after_comm
        .split_whitespace()
        .nth(39 - 3)
        .and_then(|t| t.parse().ok())
}

/// Monotonic-counter delta that survives a reset (CPU hotplug, counter
/// wrap): a decrease means the counter restarted, so the new value *is*
/// the delta since.
pub fn counter_delta(old: u64, new: u64) -> u64 {
    if new >= old {
        new - old
    } else {
        new
    }
}

/// One coherent sample of every counter source the classifier uses.
#[derive(Clone, Debug, Default)]
pub struct ProcSnapshot {
    pub interrupts: InterruptsSnapshot,
    /// Empty when `/proc/schedstat` is unavailable (unbuilt kernel
    /// config, non-Linux host).
    pub sched: Vec<SchedstatCpu>,
    pub ctxt: CtxtSwitches,
    /// CPU this thread last ran on, if `/proc/self/stat` parsed.
    pub cpu: Option<u32>,
}

impl ProcSnapshot {
    /// Read a live snapshot. Errors only if `/proc/interrupts` or
    /// `/proc/self/status` is unreadable (i.e. not a Linux procfs at
    /// all); a missing `/proc/schedstat` degrades to `sched: []`.
    pub fn read() -> io::Result<ProcSnapshot> {
        let interrupts = std::fs::read_to_string("/proc/interrupts")?;
        let status = std::fs::read_to_string("/proc/self/status")?;
        let sched = std::fs::read_to_string("/proc/schedstat").unwrap_or_default();
        let stat = std::fs::read_to_string("/proc/self/stat").unwrap_or_default();
        Ok(ProcSnapshot {
            interrupts: parse_interrupts(&interrupts),
            sched: parse_schedstat(&sched),
            ctxt: parse_status_switches(&status),
            cpu: parse_stat_cpu(&stat),
        })
    }

    /// Whether the host exposes `/proc/schedstat` (CI skip gate).
    pub fn schedstat_available() -> bool {
        std::path::Path::new("/proc/schedstat").exists()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const X86: &str = include_str!("../fixtures/interrupts_x86.txt");
    const ARM: &str = include_str!("../fixtures/interrupts_arm64.txt");
    const HOTPLUG: &str = include_str!("../fixtures/interrupts_hotplug.txt");
    const TRUNCATED: &str = include_str!("../fixtures/interrupts_truncated.txt");
    const SCHEDSTAT: &str = include_str!("../fixtures/schedstat.txt");
    const SCHEDSTAT_TRUNC: &str = include_str!("../fixtures/schedstat_truncated.txt");
    const STATUS: &str = include_str!("../fixtures/self_status.txt");
    const STAT: &str = include_str!("../fixtures/self_stat.txt");

    #[test]
    fn x86_fixture_separates_timer_from_device_rows() {
        let s = parse_interrupts(X86);
        assert_eq!(s.cpu_ids, vec![0, 1]);
        // LOC row + IO-APIC edge timer row are both tick sources.
        assert_eq!(s.timer_on(0), Some(1_000_100 + 42));
        assert_eq!(s.timer_on(1), Some(999_900));
        // eth0 + nvme + CAL; ERR/MIS scalar rows are skipped.
        assert_eq!(s.other_on(0), Some(5_000 + 120 + 777));
        assert!(s.timer_total() > s.other_total());
    }

    #[test]
    fn arm64_fixture_finds_arch_timer() {
        let s = parse_interrupts(ARM);
        assert_eq!(s.cpu_ids, vec![0, 1, 2, 3]);
        assert_eq!(s.timer_on(3), Some(88_021));
        assert_eq!(s.other_on(0), Some(14_002 + 31));
    }

    #[test]
    fn hotplug_fixture_keeps_column_identity() {
        // CPU1 went offline: header is CPU0 CPU2 CPU3 and one stale
        // row still carries four columns while another carries two.
        let s = parse_interrupts(HOTPLUG);
        assert_eq!(s.cpu_ids, vec![0, 2, 3]);
        assert_eq!(s.timer_on(1), None, "offline CPU has no column");
        assert_eq!(s.timer_on(2), Some(2_000));
        // The short row contributes 0 to its missing columns; the
        // stale four-column row keeps its first three under the new
        // header (best-effort column drift).
        assert_eq!(s.other_on(3), Some(0));
        assert_eq!(s.other_on(0), Some(900 + 10));
    }

    #[test]
    fn truncated_fixture_parses_valid_prefix_without_panicking() {
        let s = parse_interrupts(TRUNCATED);
        assert_eq!(s.cpu_ids, vec![0, 1]);
        // The complete LOC row parsed; the row cut mid-counter kept
        // its valid columns (as device interrupts: no description
        // survived to classify by).
        assert_eq!(s.timer_on(0), Some(500));
        assert_eq!(s.other_on(0), Some(77));
        assert_eq!(s.other_on(1), Some(0));
    }

    #[test]
    fn schedstat_fixture_takes_trailing_fields() {
        let s = parse_schedstat(SCHEDSTAT);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].cpu, 0);
        assert_eq!(s[0].run_delay, 223344);
        assert_eq!(s[0].pcount, 5566);
        assert_eq!(s[1].cpu, 1);
    }

    #[test]
    fn schedstat_truncated_line_is_dropped() {
        let s = parse_schedstat(SCHEDSTAT_TRUNC);
        // cpu0 is complete, cpu1 was cut mid-write.
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].cpu, 0);
    }

    #[test]
    fn status_fixture_yields_both_switch_counters() {
        let c = parse_status_switches(STATUS);
        assert_eq!(c.voluntary, 143);
        assert_eq!(c.nonvoluntary, 17);
    }

    #[test]
    fn stat_fixture_survives_hostile_comm() {
        // comm is "a) x (b" — fields must count from the LAST ')'.
        assert_eq!(parse_stat_cpu(STAT), Some(3));
        assert_eq!(parse_stat_cpu("no parens here"), None);
    }

    #[test]
    fn counter_delta_handles_wrap_and_reset() {
        assert_eq!(counter_delta(10, 15), 5);
        assert_eq!(counter_delta(10, 10), 0);
        // Counter reset (hotplug) — the new value is the delta.
        assert_eq!(counter_delta(1_000_000, 3), 3);
    }

    #[test]
    fn empty_inputs_parse_to_empty() {
        assert_eq!(parse_interrupts(""), InterruptsSnapshot::default());
        assert!(parse_schedstat("").is_empty());
        assert_eq!(parse_status_switches(""), CtxtSwitches::default());
    }
}
