//! FWQ — Fixed Work Quantum, FTQ's companion microbenchmark (Sottile &
//! Minnich, CLUSTER'04).
//!
//! Where FTQ fixes the *time* quantum and counts work, FWQ fixes the
//! *work* per iteration and measures how long it takes: iteration
//! wall-times above the minimum are the OS noise that landed in that
//! iteration. FWQ is simpler to interpret (no discretization error)
//! but loses FTQ's fixed time base.

use osn_kernel::time::Nanos;
use osn_kernel::workload::{Action, Outcome, Workload, WorkloadCtx};
use osn_trace::{EventKind, Trace};

use serde::{Deserialize, Serialize};

/// Mark id used for FWQ per-iteration samples.
pub const FWQ_MARK: u32 = 0xF8;

/// FWQ parameters.
#[derive(Clone, Copy, Debug)]
pub struct FwqParams {
    /// Fixed work per iteration.
    pub work: Nanos,
    /// Number of iterations.
    pub samples: u32,
}

impl Default for FwqParams {
    fn default() -> Self {
        FwqParams {
            work: Nanos::from_millis(1),
            samples: 3_000,
        }
    }
}

/// The simulated FWQ benchmark: computes `work`, reads the clock, and
/// records the iteration's wall time.
pub struct FwqWorkload {
    params: FwqParams,
    iter: u32,
    started: Option<Nanos>,
    state: FwqState,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FwqState {
    Work,
    Sample,
    Done,
}

impl FwqWorkload {
    pub fn new(params: FwqParams) -> Self {
        FwqWorkload {
            params,
            iter: 0,
            started: None,
            state: FwqState::Work,
        }
    }
}

impl Workload for FwqWorkload {
    fn name(&self) -> &'static str {
        "fwq"
    }

    fn cache_factor(&self) -> f64 {
        0.6
    }

    fn next(&mut self, ctx: &mut WorkloadCtx<'_>) -> Action {
        loop {
            match self.state {
                FwqState::Work => {
                    if self.iter >= self.params.samples {
                        self.state = FwqState::Done;
                        continue;
                    }
                    self.started = Some(ctx.now);
                    self.state = FwqState::Sample;
                    return Action::Compute {
                        work: self.params.work,
                    };
                }
                FwqState::Sample => {
                    debug_assert!(matches!(ctx.outcome, Outcome::Done));
                    let started = self.started.expect("work started");
                    let wall = ctx.now - started;
                    self.iter += 1;
                    self.state = FwqState::Work;
                    return Action::Mark {
                        mark: FWQ_MARK,
                        value: wall.as_nanos(),
                    };
                }
                FwqState::Done => return Action::Exit,
            }
        }
    }
}

/// A completed FWQ run: wall time per fixed-work iteration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FwqSeries {
    pub work: Nanos,
    /// Wall time of each iteration.
    pub walls: Vec<Nanos>,
}

impl FwqSeries {
    /// Per-iteration noise: wall time above the fixed work. (Unlike
    /// FTQ there is no discretization: the baseline is exact.)
    pub fn noise(&self) -> Vec<Nanos> {
        self.walls
            .iter()
            .map(|w| w.saturating_sub(self.work))
            .collect()
    }

    pub fn total_noise(&self) -> Nanos {
        self.noise().into_iter().sum()
    }

    /// Iterations whose noise exceeds `threshold`.
    pub fn spikes(&self, threshold: Nanos) -> Vec<(usize, Nanos)> {
        self.noise()
            .into_iter()
            .enumerate()
            .filter(|(_, n)| *n > threshold)
            .collect()
    }
}

/// Rebuild the FWQ series from a trace's marks.
pub fn fwq_series_from_trace(trace: &Trace, params: &FwqParams) -> Option<FwqSeries> {
    let walls: Vec<Nanos> = trace
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::AppMark { mark, value } if mark == FWQ_MARK => Some(Nanos(value)),
            _ => None,
        })
        .collect();
    if walls.is_empty() {
        None
    } else {
        Some(FwqSeries {
            work: params.work,
            walls,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_kernel::config::NodeConfig;
    use osn_kernel::node::Node;
    use osn_trace::session::TraceSession;

    #[test]
    fn fwq_measures_exact_noise() {
        let params = FwqParams {
            work: Nanos::from_millis(1),
            samples: 100,
        };
        let cfg = NodeConfig::default()
            .with_cpus(1)
            .with_seed(5)
            .with_horizon(Nanos::from_millis(200));
        let mut node = Node::new(cfg);
        node.spawn_process("fwq", Box::new(FwqWorkload::new(params)));
        let (session, mut tracer) = TraceSession::with_defaults(1);
        node.run(&mut tracer);
        let trace = session.stop();
        let series = fwq_series_from_trace(&trace, &params).expect("series");
        assert_eq!(series.walls.len(), 100);
        // Every iteration takes at least the fixed work.
        assert!(series.walls.iter().all(|w| *w >= params.work));
        // ~10 ticks in 100 ms of work: some iterations are noisy,
        // most are perfectly clean.
        let noise = series.noise();
        let clean = noise.iter().filter(|n| n.is_zero()).count();
        assert!(clean > 50, "only {clean} clean iterations");
        assert!(series.total_noise() > Nanos::ZERO);
        assert!(!series.spikes(Nanos(500)).is_empty());
    }

    #[test]
    fn empty_trace_gives_no_series() {
        assert!(fwq_series_from_trace(&Trace::default(), &FwqParams::default()).is_none());
    }

    #[test]
    fn noise_is_wall_minus_work() {
        let s = FwqSeries {
            work: Nanos(1000),
            walls: vec![Nanos(1000), Nanos(1500), Nanos(999)],
        };
        assert_eq!(s.noise(), vec![Nanos(0), Nanos(500), Nanos(0)]);
        assert_eq!(s.total_noise(), Nanos(500));
        assert_eq!(s.spikes(Nanos(100)), vec![(1, Nanos(500))]);
    }
}
