//! `osn-ftq`: the Fixed Time Quantum microbenchmark (Sottile & Minnich)
//! — the indirect noise-measurement baseline the paper validates
//! LTT NG-NOISE against (§III-C, Figs 1 and 9).
//!
//! Six pieces:
//! * [`sim`] — FTQ as a simulated workload whose per-quantum samples are
//!   recovered from the trace's user-space marks;
//! * [`fwq`] — the Fixed Work Quantum companion benchmark;
//! * [`native`] — the real benchmark running on the host;
//! * [`series`] — the `N_max − N_i` noise estimate and the §III-C
//!   FTQ-vs-tracer comparison;
//! * [`capture`] — the native loop as a *recorder*: per-quantum gap
//!   detection plus procfs counter deltas, synthesizing the simulator's
//!   event stream from real host noise;
//! * [`procfs`] — fixture-testable parsers for the `/proc` counter
//!   files the capture samples.

pub mod capture;
pub mod fwq;
pub mod native;
pub mod procfs;
pub mod series;
pub mod sim;

pub use capture::{
    classify, deltas_between, run_capture, Capture, CaptureConfig, CaptureReport, CounterDeltas,
    GapClass, CAPTURE_APP_TID, CAPTURE_CPU, CAPTURE_PREEMPTOR_TID,
};
pub use fwq::{fwq_series_from_trace, FwqParams, FwqSeries, FwqWorkload, FWQ_MARK};
pub use procfs::ProcSnapshot;
pub use series::{FtqComparison, FtqSeries};
pub use sim::{series_from_trace, FtqParams, FtqWorkload, FTQ_MARK};
