//! `osn-ftq`: the Fixed Time Quantum microbenchmark (Sottile & Minnich)
//! — the indirect noise-measurement baseline the paper validates
//! LTT NG-NOISE against (§III-C, Figs 1 and 9).
//!
//! Four pieces:
//! * [`sim`] — FTQ as a simulated workload whose per-quantum samples are
//!   recovered from the trace's user-space marks;
//! * [`fwq`] — the Fixed Work Quantum companion benchmark;
//! * [`native`] — the real benchmark running on the host;
//! * [`series`] — the `N_max − N_i` noise estimate and the §III-C
//!   FTQ-vs-tracer comparison.

pub mod fwq;
pub mod native;
pub mod series;
pub mod sim;

pub use fwq::{fwq_series_from_trace, FwqParams, FwqSeries, FwqWorkload, FWQ_MARK};
pub use series::{FtqComparison, FtqSeries};
pub use sim::{series_from_trace, FtqParams, FtqWorkload, FTQ_MARK};
