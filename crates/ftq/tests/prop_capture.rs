//! Property tests for the capture classifier: classification is a pure
//! function of the counter deltas — identical deltas always yield the
//! same class, and every delta combination lands in exactly one class
//! consistent with the decision table's priority order.

use proptest::prelude::*;

use osn_ftq::capture::{classify, CounterDeltas, GapClass};

fn deltas(
    timer: u64,
    other: u64,
    vol: u64,
    nonvol: u64,
    migrated: bool,
    run_delay: u64,
) -> CounterDeltas {
    CounterDeltas {
        timer_irqs: timer,
        other_irqs: other,
        voluntary: vol,
        nonvoluntary: nonvol,
        migrated,
        run_delay_ns: run_delay,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Identical counter deltas classify identically: rebuilding the
    /// same deltas from scratch (not cloning) gives the same class on
    /// every evaluation.
    #[test]
    fn classification_is_deterministic(
        timer in 0u64..16,
        other in 0u64..16,
        vol in 0u64..8,
        nonvol in 0u64..8,
        migrated in any::<bool>(),
        run_delay in 0u64..1_000_000,
    ) {
        let a = deltas(timer, other, vol, nonvol, migrated, run_delay);
        let b = deltas(timer, other, vol, nonvol, migrated, run_delay);
        let first = classify(&a);
        prop_assert_eq!(first, classify(&b));
        prop_assert_eq!(first, classify(&a), "re-evaluation drifted");
    }

    /// The class respects the decision table: preemption evidence wins
    /// over everything, ticks over device interrupts, and only
    /// counter-silent gaps are unattributed. Voluntary switches and
    /// run-delay growth alone never classify (they are corroboration).
    #[test]
    fn classification_matches_decision_table(
        timer in 0u64..16,
        other in 0u64..16,
        vol in 0u64..8,
        nonvol in 0u64..8,
        migrated in any::<bool>(),
        run_delay in 0u64..1_000_000,
    ) {
        let class = classify(&deltas(timer, other, vol, nonvol, migrated, run_delay));
        let expect = if nonvol > 0 || migrated {
            GapClass::Preemption
        } else if timer > 0 {
            GapClass::Tick
        } else if other > 0 {
            GapClass::Interrupt
        } else {
            GapClass::Unattributed
        };
        prop_assert_eq!(class, expect);
    }
}
