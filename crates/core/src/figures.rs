//! Figure-level experiments: the FTQ validation of §III-C (Fig 1),
//! the FTQ execution-trace decomposition (Fig 2), and the noise
//! disambiguation demonstrations of §V (Figs 9 and 10).

use osn_analysis::chart::NoiseChart;
use osn_analysis::disambiguate::{
    composite_interruptions, confusable_pairs, Composite, ConfusablePair,
};
use osn_analysis::noise::{Interruption, NoiseAnalysis};
use osn_ftq::series::{FtqComparison, FtqSeries};
use osn_ftq::sim::{series_from_trace, FtqParams, FtqWorkload};
use osn_kernel::config::NodeConfig;
use osn_kernel::ids::Tid;
use osn_kernel::node::{Node, RunResult};
use osn_kernel::time::Nanos;
use osn_trace::session::TraceSession;
use osn_trace::Trace;

use crate::experiment::AppRun;

/// A completed FTQ experiment: both the indirect (FTQ) and direct
/// (LTT NG-NOISE) views of the same run.
pub struct FtqExperiment {
    pub params: FtqParams,
    pub trace: Trace,
    pub result: RunResult,
    pub ftq_tid: Tid,
    pub analysis: NoiseAnalysis,
    /// Fig 1a: the FTQ sample series.
    pub series: FtqSeries,
    /// Fig 1b: the synthetic OS noise chart.
    pub chart: NoiseChart,
    /// §III-C: per-quantum comparison of the two.
    pub comparison: FtqComparison,
}

/// Run FTQ under tracing (Fig 1 experiment).
pub fn run_ftq(params: FtqParams, node_cfg: NodeConfig) -> FtqExperiment {
    let cpus = node_cfg.cpus as usize;
    let mut node = Node::new(node_cfg);
    let tid = node.spawn_process("ftq", Box::new(FtqWorkload::new(params)));
    let (session, mut tracer) = TraceSession::new(cpus, 1 << 21, osn_trace::EventMask::ALL);
    let result = node.run(&mut tracer);
    let trace = session.stop();
    let analysis = NoiseAnalysis::analyze(&trace, &result.tasks, result.end_time);
    let series = series_from_trace(&trace, &params).expect("FTQ produced samples");
    let chart = NoiseChart::build(&analysis, tid);
    let traced = chart.bucket(series.origin, series.quantum, series.ops.len());
    let comparison = FtqComparison::new(&series, &traced);
    FtqExperiment {
        params,
        trace,
        result,
        ftq_tid: tid,
        analysis,
        series,
        chart,
        comparison,
    }
}

/// The default Fig 1 configuration: FTQ alone on the paper's node.
pub fn fig1_config(samples: u32) -> (FtqParams, NodeConfig) {
    let params = FtqParams {
        samples,
        ..FtqParams::default()
    };
    let horizon = params.quantum * (samples as u64 + 20);
    let node = NodeConfig::default().with_horizon(horizon);
    (params, node)
}

/// Fig 2's interruption: the paper's exemplar contains a timer
/// interrupt, its softirq, the two schedule halves, and a daemon
/// preemption. Prefer an interruption with a preemption component and
/// a timer tick; fall back to the largest multi-component one.
pub fn fig2_interruption(exp: &FtqExperiment) -> Option<&Interruption> {
    use osn_analysis::noise::Component;
    use osn_kernel::activity::Activity;
    let interruptions = &exp.analysis.tasks.get(&exp.ftq_tid)?.interruptions;
    let preempted = interruptions
        .iter()
        .filter(|i| {
            i.contains_activity(Activity::TimerInterrupt)
                && i.components
                    .iter()
                    .any(|(c, _)| matches!(c, Component::Preemption { .. }))
        })
        .max_by_key(|i| i.components.len());
    preempted.or_else(|| {
        interruptions
            .iter()
            .filter(|i| i.components.len() >= 3)
            .max_by_key(|i| i.duration())
    })
}

/// §V-B / Fig 9: quanta whose single FTQ spike hides multiple distinct
/// event classes *within one interruption*.
pub fn fig9_composites(exp: &FtqExperiment) -> Vec<Composite> {
    let interruptions = exp.analysis.interruptions_of(&[exp.ftq_tid]);
    composite_interruptions(&interruptions, 2)
}

/// §V-B / Fig 9, quantum-level: FTQ folds *all* events inside one
/// iteration into a single spike ("micro benchmarks are not able to
/// distinguish two unrelated events if they happen in the same
/// iteration"). Returns, per quantum that contains two or more
/// separate interruptions of *different* dominant classes, the quantum
/// index and the interruptions' (class, noise) pairs.
pub fn fig9_quantum_composites(
    exp: &FtqExperiment,
) -> Vec<(usize, Vec<(osn_analysis::EventClass, Nanos)>)> {
    use osn_analysis::disambiguate::dominant_class;
    let origin = exp.series.origin;
    let quantum = exp.series.quantum;
    let nq = exp.series.ops.len();
    let mut per_quantum: Vec<Vec<(osn_analysis::EventClass, Nanos)>> = vec![Vec::new(); nq];
    if let Some(tn) = exp.analysis.tasks.get(&exp.ftq_tid) {
        for i in &tn.interruptions {
            if i.start < origin {
                continue;
            }
            let idx = ((i.start - origin) / quantum) as usize;
            if idx >= nq {
                continue;
            }
            if let Some(class) = dominant_class(i) {
                per_quantum[idx].push((class, i.noise()));
            }
        }
    }
    per_quantum
        .into_iter()
        .enumerate()
        .filter(|(_, events)| events.len() >= 2 && events.iter().any(|(c, _)| *c != events[0].0))
        .collect()
}

/// §V-A / Fig 10: near-identical interruptions with different causes
/// in an application run.
pub fn fig10_pairs(run: &AppRun, tolerance: Nanos, limit: usize) -> Vec<ConfusablePair> {
    let interruptions = run.analysis.interruptions_of(&run.ranks);
    confusable_pairs(&interruptions, tolerance, limit)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_ftq() -> FtqExperiment {
        let (params, node) = fig1_config(300);
        let node = node.with_cpus(2).with_seed(21);
        run_ftq(params, node)
    }

    #[test]
    fn fig1_series_and_chart_agree() {
        let exp = quick_ftq();
        assert_eq!(exp.series.ops.len(), 300);
        // The two methods see similar total noise (§III-C: "the data
        // output from these two methods are very similar").
        let (ftq_total, traced_total) = exp.comparison.totals();
        assert!(traced_total > Nanos::ZERO);
        let ratio = ftq_total.as_nanos() as f64 / traced_total.as_nanos().max(1) as f64;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "ftq {ftq_total} vs traced {traced_total}"
        );
        // And per-quantum shapes correlate strongly.
        let corr = exp.comparison.correlation();
        assert!(corr > 0.8, "correlation {corr}");
    }

    #[test]
    fn fig1_ftq_overestimates_on_average() {
        let exp = quick_ftq();
        // "FTQ slightly overestimates the OS noise, for FTQ does not
        // account for partially completed basic operations."
        let frac = exp.comparison.overestimate_fraction();
        assert!(frac > 0.5, "overestimate fraction {frac}");
    }

    #[test]
    fn fig9_finds_composites_with_dense_buffer_faults() {
        // Page the sample buffer every 10 quanta so faults land on the
        // 10 ms tick boundaries: composite interruptions appear.
        let params = FtqParams {
            samples: 400,
            quanta_per_page: 10,
            ..FtqParams::default()
        };
        let node = NodeConfig::default()
            .with_cpus(2)
            .with_seed(33)
            .with_horizon(Nanos::from_millis(600));
        let exp = run_ftq(params, node);
        let composites = fig9_composites(&exp);
        assert!(!composites.is_empty(), "no composite interruptions found");
    }
}
