//! Single-application experiment driver: spawn, trace, analyze.

use osn_analysis::NoiseAnalysis;
use osn_kernel::config::NodeConfig;
use osn_kernel::ids::Tid;
use osn_kernel::node::{Node, RunResult};
use osn_kernel::time::Nanos;
use osn_trace::session::{EventMask, TraceSession};
use osn_trace::Trace;
use osn_workloads::App;

use serde::{Deserialize, Serialize};

/// Configuration of one traced application run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentConfig {
    pub app: App,
    /// MPI ranks (the paper: "8 MPI tasks (one task per core)").
    pub nranks: usize,
    /// Target application duration.
    pub duration: Nanos,
    pub node: NodeConfig,
    /// Per-CPU ring capacity (records).
    pub ring_capacity: usize,
}

impl ExperimentConfig {
    /// The paper's setup for one app: 8 ranks on 8 CPUs.
    pub fn paper(app: App, duration: Nanos) -> Self {
        let node = NodeConfig::default().with_horizon(duration * 3);
        ExperimentConfig {
            app,
            nranks: node.cpus as usize,
            duration,
            node,
            ring_capacity: 1 << 21,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.node.seed = seed;
        self
    }
}

/// A completed traced run of one application.
pub struct AppRun {
    pub app: App,
    pub config: ExperimentConfig,
    pub trace: Trace,
    pub result: RunResult,
    /// Tids of the application's ranks.
    pub ranks: Vec<Tid>,
    pub analysis: NoiseAnalysis,
}

impl AppRun {
    /// The wall basis for per-rank frequencies: the longest rank
    /// extent.
    pub fn wall(&self) -> Nanos {
        wall_of(&self.analysis, &self.ranks)
    }

    /// The *observed process* for the paper's per-process tables: the
    /// rank that spends the most time running on the network-IRQ CPU
    /// (the paper's per-process rates — 100 tick ev/s, net-IRQ rates
    /// equal to the node's RPC response rate — correspond to tracing
    /// the process co-located with the interrupt CPU).
    pub fn observed_rank(&self) -> Tid {
        observed_rank_of(&self.analysis, &self.ranks, self.config.node.net_irq_cpu)
    }
}

/// [`AppRun::wall`] against an arbitrary analysis of the same run (the
/// report's reference path recomputes the analysis independently).
pub fn wall_of(analysis: &NoiseAnalysis, ranks: &[Tid]) -> Nanos {
    ranks
        .iter()
        .filter_map(|t| analysis.tasks.get(t))
        .map(|tn| tn.wall)
        .max()
        .unwrap_or(Nanos::ZERO)
}

/// [`AppRun::observed_rank`] against an arbitrary analysis.
pub fn observed_rank_of(
    analysis: &NoiseAnalysis,
    ranks: &[Tid],
    irq_cpu: osn_kernel::ids::CpuId,
) -> Tid {
    use osn_analysis::timeline::Phase;
    ranks
        .iter()
        .copied()
        .max_by_key(|tid| {
            analysis
                .timelines
                .get(*tid)
                .map(|tl| tl.time_where(|p| p == Phase::Running(irq_cpu)).as_nanos())
                .unwrap_or(0)
        })
        .unwrap_or(Tid::IDLE)
}

/// Run one application under full tracing and analyze the trace.
pub fn run_app(config: ExperimentConfig) -> AppRun {
    let mut node = Node::new(config.node.clone());
    let job = node.spawn_job(
        config.app.name(),
        osn_workloads::ranks(config.app, config.nranks, config.duration),
    );
    for (i, helper) in osn_workloads::helpers(config.app, config.duration)
        .into_iter()
        .enumerate()
    {
        node.spawn_process(&format!("python.{i}"), helper);
    }
    let (session, mut tracer) = TraceSession::new(
        config.node.cpus as usize,
        config.ring_capacity,
        EventMask::ALL,
    );
    let result = node.run(&mut tracer);
    let trace = session.stop();
    let ranks = result.job_ranks(job);
    let analysis = NoiseAnalysis::analyze(&trace, &result.tasks, result.end_time);
    AppRun {
        app: config.app,
        config,
        trace,
        result,
        ranks,
        analysis,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_amg_run_produces_analysis() {
        let mut config = ExperimentConfig::paper(App::Amg, Nanos::from_millis(300));
        config.node.cpus = 4;
        config.nranks = 4;
        let run = run_app(config);
        assert_eq!(run.ranks.len(), 4);
        assert!(
            run.trace.len() > 100,
            "trace has {} events",
            run.trace.len()
        );
        assert_eq!(run.trace.total_lost(), 0, "ring too small");
        assert!(run.analysis.nesting_report.is_clean());
        // Every rank accumulated some noise.
        for tid in &run.ranks {
            let tn = run.analysis.tasks.get(tid).expect("rank analyzed");
            assert!(tn.total_noise() > Nanos::ZERO, "{tid} saw no noise");
        }
        assert!(run.wall() > Nanos::from_millis(100));
        // Page faults happened (AMG's signature).
        assert!(run.result.stats.faults > 100);
    }
}
