//! `osn-core`: the high-level experiment API tying the whole
//! reproduction together — run a traced application, run the full
//! Sequoia campaign, and assemble every table and figure of
//! *"A Quantitative Analysis of OS Noise"* (IPDPS 2011).
//!
//! ```no_run
//! use osn_core::campaign::{campaign_report, CampaignConfig};
//! use osn_kernel::time::Nanos;
//!
//! let config = CampaignConfig::paper(Nanos::from_secs(10));
//! let (_runs, report) = campaign_report(&config);
//! println!("{}", report.render_breakdown());
//! ```

pub mod campaign;
pub mod capture;
pub mod cluster;
pub mod experiment;
pub mod figures;
pub mod report;
pub mod scale;
pub mod store;

pub use campaign::{campaign_report, run_campaign, CampaignConfig};
pub use capture::{capture_meta, capture_to_store, write_capture};
pub use cluster::{
    parse_duration, parse_inject_spec, parse_tier, run_cluster, run_cluster_opts,
    run_cluster_stored, run_cluster_stored_opts, ClusterConfig, ClusterInjections, ClusterOutcome,
    ClusterReport, ClusterScalePoint, Injection, RankSummary, RunOpts, SamplePlan, Tier, TierMeta,
    TierValidation,
};
pub use experiment::{run_app, AppRun, ExperimentConfig};
pub use figures::{
    fig10_pairs, fig1_config, fig2_interruption, fig9_composites, run_ftq, FtqExperiment,
};
pub use report::{AppReport, PaperReport};
pub use scale::{ScaleModel, ScalePoint};
pub use store::{
    analyze_store, load_campaign, load_run, persist_campaign, persist_run, record_app,
    recovered_report, streamed_campaign_report, streamed_report, StoredRunMeta,
};

// Re-export the building blocks so downstream users need one import.
pub use osn_analysis as analysis;
pub use osn_ftq as ftq;
pub use osn_kernel as kernel;
pub use osn_paraver as paraver;
pub use osn_trace as trace;
pub use osn_workloads as workloads;
