//! Paper-report assembly: every table and figure of the evaluation,
//! computed from traced runs, plus text renderers for the bench
//! binaries and EXPERIMENTS.md.

use std::fmt::Write as _;

use osn_analysis::breakdown::Breakdown;
use osn_analysis::histogram::Histogram;
use osn_analysis::stats::{class_samples, class_stats, job_stats, EventClass, EventStats};
use osn_analysis::NoiseAnalysis;
use osn_kernel::activity::NoiseCategory;
use osn_kernel::time::Nanos;
use osn_workloads::App;

use serde::{Deserialize, Serialize};

use crate::experiment::{observed_rank_of, wall_of, AppRun};

/// Everything the paper reports about one application.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AppReport {
    pub app: App,
    pub nranks: usize,
    /// Application wall time (longest rank).
    pub wall: Nanos,
    /// Fig 3: noise fraction per category.
    pub breakdown: Vec<(NoiseCategory, f64)>,
    /// Total noise / runnable time.
    pub noise_ratio: f64,
    /// Tables I–VI rows: per-event-class statistics of the *observed
    /// process* — rank 0, which starts on the network-IRQ CPU. The
    /// paper's per-process rates (100 tick ev/s; net-IRQ rates equal to
    /// the node's RPC response rate) are consistent with analyzing the
    /// process co-located with the interrupt CPU.
    pub classes: Vec<(EventClass, EventStats)>,
    /// Histograms for Figs 4 (page faults), 6 (rebalance), 8 (timer
    /// softirq).
    pub fault_hist: Histogram,
    pub rebalance_hist: Histogram,
    pub timer_softirq_hist: Histogram,
}

/// Histogram shapes of Figs 4, 6 and 8.
const FAULT_BINS: usize = 60;
const REBALANCE_BINS: usize = 40;
const TIMER_SOFTIRQ_BINS: usize = 40;
const HIST_PCT: f64 = 99.0;

impl AppReport {
    /// Assemble the report from the run's (sharded-engine) analysis
    /// via the fused single statistics pass — one walk over the
    /// interruption components instead of the breakdown + ten
    /// class-stats + three histogram-sample passes of
    /// [`AppReport::build_reference`].
    pub fn build(run: &AppRun) -> AppReport {
        Self::build_with(run, &run.analysis)
    }

    /// The fused assembly against an independently supplied analysis
    /// (the throughput bench re-times the whole analyze+report phase).
    pub fn build_with(run: &AppRun, analysis: &NoiseAnalysis) -> AppReport {
        Self::from_analysis(run.app, &run.ranks, run.config.node.net_irq_cpu, analysis)
    }

    /// The fused assembly from bare parts — no [`AppRun`] (and hence no
    /// materialized trace) needed. This is the out-of-core entry point:
    /// `osn-store` streaming analysis reports through here.
    pub fn from_analysis(
        app: App,
        ranks: &[osn_kernel::ids::Tid],
        net_irq_cpu: osn_kernel::ids::CpuId,
        analysis: &NoiseAnalysis,
    ) -> AppReport {
        let nranks = ranks.len().max(1);
        let observed = [observed_rank_of(analysis, ranks, net_irq_cpu)];
        let js = job_stats(analysis, ranks, &observed);
        AppReport {
            app,
            nranks,
            wall: wall_of(analysis, ranks),
            breakdown: js.breakdown.fractions(),
            noise_ratio: js.breakdown.noise_ratio(),
            classes: js.classes,
            fault_hist: Histogram::build(&js.fault_samples, FAULT_BINS, HIST_PCT),
            rebalance_hist: Histogram::build(&js.rebalance_samples, REBALANCE_BINS, HIST_PCT),
            timer_softirq_hist: Histogram::build(
                &js.timer_softirq_samples,
                TIMER_SOFTIRQ_BINS,
                HIST_PCT,
            ),
        }
    }

    /// The retained multi-pass assembly (the pre-fusion seed path),
    /// over an independently supplied analysis — the differential-test
    /// oracle and benchmark baseline.
    pub fn build_reference(run: &AppRun, analysis: &NoiseAnalysis) -> AppReport {
        let nranks = run.ranks.len().max(1);
        let b = Breakdown::compute(analysis, &run.ranks);
        let observed = [observed_rank_of(
            analysis,
            &run.ranks,
            run.config.node.net_irq_cpu,
        )];
        let classes = EventClass::ALL
            .iter()
            .map(|class| (*class, class_stats(analysis, &observed, *class)))
            .collect();
        let hist = |class: EventClass, bins: usize| {
            Histogram::build(&class_samples(analysis, &run.ranks, class), bins, HIST_PCT)
        };
        AppReport {
            app: run.app,
            nranks,
            wall: wall_of(analysis, &run.ranks),
            breakdown: b.fractions(),
            noise_ratio: b.noise_ratio(),
            classes,
            fault_hist: hist(EventClass::PageFault, FAULT_BINS),
            rebalance_hist: hist(EventClass::RebalanceDomains, REBALANCE_BINS),
            timer_softirq_hist: hist(EventClass::RunTimerSoftirq, TIMER_SOFTIRQ_BINS),
        }
    }

    pub fn stats(&self, class: EventClass) -> EventStats {
        self.classes
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, s)| *s)
            .unwrap_or_else(EventStats::empty)
    }

    pub fn fraction(&self, cat: NoiseCategory) -> f64 {
        self.breakdown
            .iter()
            .find(|(c, _)| *c == cat)
            .map(|(_, f)| *f)
            .unwrap_or(0.0)
    }
}

/// The full paper report (all five Sequoia applications).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PaperReport {
    pub apps: Vec<AppReport>,
}

impl PaperReport {
    pub fn build(runs: &[AppRun]) -> PaperReport {
        PaperReport {
            apps: runs.iter().map(AppReport::build).collect(),
        }
    }

    /// Rebuild the full report through the retained sequential engine:
    /// every run is re-analyzed with
    /// [`NoiseAnalysis::analyze_reference`] and assembled with the
    /// multi-pass [`AppReport::build_reference`]. The differential test
    /// asserts this is bit-identical to [`PaperReport::build`].
    pub fn build_reference(runs: &[AppRun]) -> PaperReport {
        PaperReport {
            apps: runs
                .iter()
                .map(|run| {
                    let analysis = NoiseAnalysis::analyze_reference(
                        &run.trace,
                        &run.result.tasks,
                        run.result.end_time,
                    );
                    AppReport::build_reference(run, &analysis)
                })
                .collect(),
        }
    }

    pub fn app(&self, app: App) -> Option<&AppReport> {
        self.apps.iter().find(|a| a.app == app)
    }

    /// Render one of the paper's statistics tables (I, II, III, IV, V
    /// or VI, depending on the class).
    pub fn render_table(&self, class: EventClass) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<8} {:>12} {:>12} {:>14} {:>10}",
            "", "freq(ev/sec)", "avg(nsec)", "max(nsec)", "min(nsec)"
        );
        for report in &self.apps {
            let s = report.stats(class);
            let _ = writeln!(
                out,
                "{:<8} {:>12.0} {:>12} {:>14} {:>10}",
                report.app.name().to_uppercase(),
                s.freq_per_sec,
                s.avg.as_nanos(),
                s.max.as_nanos(),
                s.min.as_nanos()
            );
        }
        out
    }

    /// Render the Fig 3 breakdown as a percentage table.
    pub fn render_breakdown(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{:<8}", "");
        for cat in NoiseCategory::NOISE {
            let _ = write!(out, " {:>12}", cat.name());
        }
        let _ = writeln!(out, " {:>12}", "noise/run");
        for report in &self.apps {
            let _ = write!(out, "{:<8}", report.app.name().to_uppercase());
            for cat in NoiseCategory::NOISE {
                let _ = write!(out, " {:>11.1}%", report.fraction(cat) * 100.0);
            }
            let _ = writeln!(out, " {:>11.3}%", report.noise_ratio * 100.0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_app, ExperimentConfig};

    fn tiny_run(app: App) -> AppRun {
        let mut config = ExperimentConfig::paper(app, Nanos::from_millis(250));
        config.node.cpus = 4;
        config.nranks = 4;
        run_app(config)
    }

    #[test]
    fn report_builds_and_renders() {
        let run = tiny_run(App::Sphot);
        let report = PaperReport::build(std::slice::from_ref(&run));
        let app = report.app(App::Sphot).expect("sphot present");
        // Timer ticks at ~100/s per rank.
        let timer = app.stats(EventClass::TimerInterrupt);
        assert!(
            (40.0..=200.0).contains(&timer.freq_per_sec),
            "tick freq {}",
            timer.freq_per_sec
        );
        // Fractions sum to ~1.
        let total: f64 = app.breakdown.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-6, "fractions sum {total}");
        // Render paths don't panic and contain the app name.
        assert!(report.render_table(EventClass::PageFault).contains("SPHOT"));
        assert!(report.render_breakdown().contains("SPHOT"));
        // Serializes.
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("Sphot"));
    }
}
