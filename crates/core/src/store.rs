//! On-disk runs: persist traced experiments as `osn-store` files and
//! analyze them back — either fully materialized or out-of-core.
//!
//! Two producer paths write a store:
//!
//! * [`persist_run`] — serialize a completed in-memory [`AppRun`];
//! * [`record_app`] — run the experiment with a *spilling* trace
//!   session, so per-CPU rings stream to disk while the node runs and
//!   the trace is never resident in memory.
//!
//! Two consumer paths read one back:
//!
//! * [`load_run`] — materialize the trace and re-analyze, recovering a
//!   full [`AppRun`] (byte-identical analysis to the original run);
//! * [`streamed_report`] — out-of-core: each CPU's chunks decode once,
//!   columnar and straight off the memory map, into the pairing state
//!   machine ([`analyze_store`]), holding at most one decoded chunk
//!   per CPU, and report through [`AppReport::from_analysis`].
//!   Differentially proven bit-identical to the in-memory path.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

use osn_analysis::NoiseAnalysis;
use osn_kernel::ids::{CpuId, Tid};
use osn_kernel::node::{Node, RunResult};
use osn_store::{read_store, SpillWriter, StoreOptions, StoreReader, StoreSummary, StoreWriter};
use osn_trace::columns::code as columns_code;
use osn_trace::session::{EventMask, TraceSession};
use osn_trace::Event;

use serde::{Deserialize, Serialize};

use crate::experiment::{AppRun, ExperimentConfig};
use crate::report::{AppReport, PaperReport};

pub use osn_store as format;
pub use osn_store::{RecoveryReport, StoreOptions as Options, StoreReader as Reader};

/// How often the background spill thread sweeps the rings while the
/// node runs. The simulation produces events far faster than wall
/// time, so this is a ring-pressure knob, not a latency one.
const SPILL_POLL: Duration = Duration::from_micros(100);

/// Everything about a run except its events, stored as the footer's
/// JSON metadata blob: enough to re-analyze the trace without re-running
/// the simulation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StoredRunMeta {
    pub config: ExperimentConfig,
    pub result: RunResult,
    /// Tids of the application's ranks (the job table is not
    /// persisted, so rank membership is).
    pub ranks: Vec<Tid>,
    /// Where the events came from: `"native"` for host captures,
    /// absent/`None` for simulator output (pre-existing stores carry
    /// no key and deserialize to `None`).
    pub source: Option<String>,
}

/// `StoredRunMeta.source` value written by `osnoise capture`.
pub const SOURCE_NATIVE: &str = "native";

impl StoredRunMeta {
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("run metadata serializes")
    }

    pub fn from_bytes(bytes: &[u8]) -> io::Result<StoredRunMeta> {
        serde_json::from_slice(bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("run metadata: {e}")))
    }

    /// Whether this store was captured on a real host rather than
    /// produced by the simulator.
    pub fn is_native(&self) -> bool {
        self.source.as_deref() == Some(SOURCE_NATIVE)
    }
}

/// Persist a completed in-memory run as a store file (trace, loss
/// counters, and [`StoredRunMeta`] footer blob).
pub fn persist_run(run: &AppRun, path: &Path, opts: StoreOptions) -> io::Result<StoreSummary> {
    let meta = StoredRunMeta {
        config: run.config.clone(),
        result: run.result.clone(),
        ranks: run.ranks.clone(),
        source: None,
    };
    osn_store::writer::write_store(path, &run.trace, &meta.to_bytes(), opts)
}

/// Run one application with the trace *spilling to disk as it runs*:
/// a background thread drains the per-CPU rings into chunked store
/// writes, so memory holds only ring + chunk buffers, never the trace.
/// Returns the run metadata and the written-file summary; analyze the
/// file with [`streamed_report`] or [`load_run`].
pub fn record_app(
    config: ExperimentConfig,
    path: &Path,
    opts: StoreOptions,
) -> io::Result<(StoredRunMeta, StoreSummary)> {
    let ncpus = config.node.cpus as usize;
    let writer = StoreWriter::create(path, ncpus.max(1), opts)?;
    let spill = SpillWriter::new(writer);

    let mut node = Node::new(config.node.clone());
    let job = node.spawn_job(
        config.app.name(),
        osn_workloads::ranks(config.app, config.nranks, config.duration),
    );
    for (i, helper) in osn_workloads::helpers(config.app, config.duration)
        .into_iter()
        .enumerate()
    {
        node.spawn_process(&format!("python.{i}"), helper);
    }
    let (mut session, mut tracer) = TraceSession::new(ncpus, config.ring_capacity, EventMask::ALL);
    session.spill(Box::new(spill.clone()), Some(SPILL_POLL));
    let result = node.run(&mut tracer);
    let lost = session.stop_spill()?;
    let ranks = result.job_ranks(job);
    let meta = StoredRunMeta {
        config,
        result,
        ranks,
        source: None,
    };
    let summary = spill.finish(&lost, meta.to_bytes())?;
    Ok((meta, summary))
}

/// Materialize a stored run: read the trace back (byte-identical to
/// the in-memory original), parse the metadata, and re-analyze.
pub fn load_run(path: &Path) -> io::Result<AppRun> {
    let (trace, meta_bytes) = read_store(path)?;
    let meta = StoredRunMeta::from_bytes(&meta_bytes)?;
    let analysis = NoiseAnalysis::analyze(&trace, &meta.result.tasks, meta.result.end_time);
    Ok(AppRun {
        app: meta.config.app,
        config: meta.config,
        trace,
        result: meta.result,
        ranks: meta.ranks,
        analysis,
    })
}

/// Out-of-core analysis of an open store, single-decode and columnar:
/// each CPU's chunks are decoded exactly once — straight out of the
/// memory map — into a reused [`osn_trace::EventColumns`] block that
/// feeds both the enter/exit pairing state machine
/// ([`osn_analysis::ColumnPairing`]) and the scheduler-event extraction
/// for timelines, so at most one decoded chunk per CPU is resident
/// (`reader.stats()` proves the bound) and no full `Event` stream is
/// ever materialized.
///
/// Output is bit-identical to `NoiseAnalysis::analyze` on the
/// materialized trace: per-CPU chunk sequences replay each CPU's
/// stream exactly, pairing per CPU plus the reference shard merge
/// reproduces the global instance order, and the scheduler filter
/// commutes with the `(t, cpu)` merge.
pub fn analyze_store(reader: &StoreReader, result: &RunResult) -> io::Result<NoiseAnalysis> {
    let errors_before = reader.stats().decode_errors;
    let ncpus = reader.ncpus();
    let workers = osn_analysis::default_workers(ncpus.max(result.tasks.len()));

    let per_cpu = osn_analysis::parallel_map(ncpus, workers, |c| {
        let mut pairing = osn_analysis::ColumnPairing::new();
        let mut sched: Vec<Event> = Vec::new();
        let mut cursor = reader.column_chunks(CpuId(c as u16));
        while let Some(block) = cursor.next_chunk() {
            // A corrupt chunk poisons the cursor (recorded in
            // `stats().decode_errors`, surfaced below); analyze what
            // decoded so the error path still terminates cleanly.
            let Ok(cols) = block else { break };
            pairing.feed_columns(cols);
            for i in 0..cols.len() {
                let code = cols.code[i];
                if code == columns_code::SWITCH || code == columns_code::WAKEUP {
                    sched.push(cols.event(i));
                }
            }
        }
        let (instances, report) = pairing.finish();
        ((instances, report), sched)
    });
    let (shards, sched_streams): (Vec<_>, Vec<_>) = per_cpu.into_iter().unzip();
    let (instances, nesting_report) = osn_analysis::nesting::merge_shards(shards);
    let sched = osn_trace::merge_streams(sched_streams);
    let timelines = osn_analysis::timeline::build_timelines_events(
        &sched,
        &result.tasks,
        result.end_time,
        workers,
    );
    let analysis = NoiseAnalysis::from_parts(
        instances,
        nesting_report,
        timelines,
        &result.tasks,
        result.end_time,
        workers,
    );

    // Cursors poison (end early) on a corrupt chunk; surface that as
    // an error instead of a silently truncated analysis.
    let errors = reader.stats().decode_errors - errors_before;
    if errors > 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{errors} chunk(s) failed to decode during streamed analysis"),
        ));
    }
    Ok(analysis)
}

/// Fully out-of-core report of one stored run: open, stream-analyze,
/// and assemble the paper report without ever materializing the trace.
pub fn streamed_report(path: &Path) -> io::Result<(AppReport, StoredRunMeta)> {
    let reader = StoreReader::open(path)?;
    let meta = StoredRunMeta::from_bytes(reader.metadata())?;
    let analysis = analyze_store(&reader, &meta.result)?;
    let report = AppReport::from_analysis(
        meta.config.app,
        &meta.ranks,
        meta.config.node.net_irq_cpu,
        &analysis,
    );
    Ok((report, meta))
}

/// [`streamed_report`] for possibly-damaged files: open through
/// [`StoreReader::recover`] (a torn final chunk is dropped and charged
/// to the loss counters) and report what was salvaged alongside the
/// recovery summary.
pub fn recovered_report(path: &Path) -> io::Result<(AppReport, StoredRunMeta, RecoveryReport)> {
    let (reader, recovery) = StoreReader::recover(path)?;
    let meta = StoredRunMeta::from_bytes(reader.metadata())?;
    let analysis = analyze_store(&reader, &meta.result)?;
    let report = AppReport::from_analysis(
        meta.config.app,
        &meta.ranks,
        meta.config.node.net_irq_cpu,
        &analysis,
    );
    Ok((report, meta, recovery))
}

/// Persist a whole campaign: one `<app>.osn` per run under `dir`
/// (created if missing). Returns the written paths in run order.
pub fn persist_campaign(
    runs: &[AppRun],
    dir: &Path,
    opts: StoreOptions,
) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(runs.len());
    for run in runs {
        let path = dir.join(format!("{}.osn", run.app.name()));
        persist_run(run, &path, opts)?;
        paths.push(path);
    }
    Ok(paths)
}

/// Reload a persisted campaign (every `*.osn` under `dir`, sorted by
/// file name for determinism) and materialize each run.
pub fn load_campaign(dir: &Path) -> io::Result<Vec<AppRun>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "osn"))
        .collect();
    paths.sort();
    paths.iter().map(|p| load_run(p)).collect()
}

/// The fully streamed campaign report: every `*.osn` under `dir` is
/// analyzed out-of-core and assembled into a [`PaperReport`], app order
/// following file-name order.
pub fn streamed_campaign_report(dir: &Path) -> io::Result<PaperReport> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "osn"))
        .collect();
    paths.sort();
    let apps = paths
        .iter()
        .map(|p| streamed_report(p).map(|(r, _)| r))
        .collect::<io::Result<Vec<_>>>()?;
    Ok(PaperReport { apps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_kernel::time::Nanos;
    use osn_workloads::App;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("osn-core-store-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tiny_config(app: App) -> ExperimentConfig {
        let mut config = ExperimentConfig::paper(app, Nanos::from_millis(150));
        config.node.cpus = 2;
        config.nranks = 2;
        config
    }

    #[test]
    fn persist_then_load_roundtrips() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("sphot.osn");
        let run = crate::experiment::run_app(tiny_config(App::Sphot));
        persist_run(&run, &path, StoreOptions::default()).unwrap();
        let loaded = load_run(&path).unwrap();
        assert_eq!(loaded.trace.events, run.trace.events);
        assert_eq!(loaded.trace.lost, run.trace.lost);
        assert_eq!(loaded.ranks, run.ranks);
        assert_eq!(loaded.result.end_time, run.result.end_time);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_app_matches_run_app() {
        let dir = tmpdir("record");
        let path = dir.join("amg.osn");
        let config = tiny_config(App::Amg);
        let (meta, summary) = record_app(config.clone(), &path, StoreOptions::default()).unwrap();
        assert!(summary.events > 0);
        let reference = crate::experiment::run_app(config);
        let loaded = load_run(&path).unwrap();
        assert_eq!(loaded.trace.events, reference.trace.events);
        assert_eq!(meta.ranks, reference.ranks);
        assert_eq!(meta.result.end_time, reference.result.end_time);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
