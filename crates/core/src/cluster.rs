//! `osn-cluster`: a mechanistic multi-node campaign.
//!
//! Where [`crate::scale::ScaleModel`] *extrapolates* the amplification
//! of OS noise by a bulk-synchronous collective (resampling one node's
//! empirical window distribution), this module *runs* it: N independent
//! [`osn_kernel`] nodes are instantiated with per-node RNG streams
//! derived from one campaign seed, simulated in parallel across host
//! threads, and coupled with the barrier model of
//! [`osn_analysis::collective`] — each phase ends when the slowest
//! rank arrives, skew carries across phases, and the critical rank's
//! noise decomposition says which noise class paid for the barrier.
//!
//! Rank start offsets are staggered (seed-derived, uniform in
//! `[0, duration/8)`) so periodic noise is *not* phase-aligned across
//! nodes — the condition under which the paper's amplification
//! argument holds. Setting [`ClusterConfig::stagger`] to `false`
//! simulates the perfectly co-scheduled cluster instead, where
//! synchronized ticks hit every rank in the same window and the
//! barrier amplifies almost nothing.
//!
//! Determinism contract: a fixed [`ClusterConfig`] yields a
//! byte-identical [`ClusterReport`] regardless of `workers` (node
//! results are gathered by index; the coupling and report are
//! sequential folds in rank order).

use std::io;
use std::path::{Path, PathBuf};

use osn_analysis::chart::NoiseChart;
use osn_analysis::collective::{
    couple, BspParams, CollectiveBreakdown, CollectiveRun, DelayWindow, InjectedClass, RankFaults,
    RankSeries, RankStats,
};
use osn_kernel::activity::NoiseCategory;
use osn_kernel::perturb::{DvfsSpec, KernelPerturbations, NumaSpec, StealSpec};
use osn_kernel::rng::{derive_indexed_seed, derive_seed};
use osn_kernel::time::Nanos;
use osn_store::StoreOptions;
use osn_workloads::App;

use serde::{Deserialize, Serialize};

use crate::experiment::{observed_rank_of, run_app, AppRun, ExperimentConfig};
use crate::scale::ScaleModel;
use crate::store::{analyze_store, record_app, StoredRunMeta};

/// Label under which per-node seeds derive from the campaign seed.
const NODE_SEED_LABEL: &str = "cluster-node";
/// Label under which per-node start offsets derive from the campaign
/// seed.
const STAGGER_LABEL: &str = "cluster-stagger";
/// Label under which per-rank network-jitter seeds derive from the
/// campaign seed.
const JITTER_LABEL: &str = "cluster-jitter";
/// Monte-Carlo trials for the analytic comparison column.
const ANALYTIC_TRIALS: u32 = 4_000;
/// Staggered start offsets are uniform in `[0, duration / STAGGER_DIV)`.
const STAGGER_DIV: u64 = 8;

/// One injected perturbation. Kernel-tier variants (`Dvfs`, `Steal`,
/// `Numa`) lower into [`KernelPerturbations`] on the target node's
/// config and show up as new activity/signature rows in that node's
/// trace; cluster-tier variants (`Crash`, `Straggler`, `Partition`,
/// `Jitter`) act on the BSP coupling via [`RankFaults`] and show up as
/// [`InjectedClass`] rows in the barrier decomposition. Every schedule
/// derives from the campaign seed — byte-identical across worker
/// counts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Injection {
    /// DVFS/thermal throttling: kernel costs scaled by `factor` for a
    /// `duty` fraction of every `period`, on one node or all.
    Dvfs {
        node: Option<usize>,
        period: Nanos,
        duty: f64,
        factor: f64,
    },
    /// Hypervisor steal-time windows preempting the running task.
    Steal {
        node: Option<usize>,
        mean_interval: Nanos,
        mean_duration: Nanos,
    },
    /// NUMA-asymmetric page-fault costs: CPUs `>= split_cpu` pay
    /// `factor`× per fault.
    Numa {
        node: Option<usize>,
        split_cpu: u16,
        factor: f64,
    },
    /// Node crash at `at`, restarting (from where it left off) after
    /// `down`.
    Crash { node: usize, at: Nanos, down: Nanos },
    /// Persistent straggler: the node's compute demand is scaled.
    Straggler { node: usize, factor: f64 },
    /// Network partition over `[at, at + duration)`: the node's
    /// barrier arrivals inside the window are delayed by `delay`.
    Partition {
        node: usize,
        at: Nanos,
        duration: Nanos,
        delay: Nanos,
    },
    /// Per-phase exponential network jitter on barrier arrival.
    Jitter { node: Option<usize>, mean: Nanos },
}

impl Injection {
    /// Whether a node-filtered injection applies to node `index`.
    fn applies(node: &Option<usize>, index: usize) -> bool {
        node.is_none_or(|n| n == index)
    }
}

/// The campaign's injection set. A wrapper struct (rather than a bare
/// `Vec`) so deserialization can treat the whole block as optional:
/// configs serialized before injection existed read back as "nothing
/// injected".
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct ClusterInjections {
    pub specs: Vec<Injection>,
}

impl serde::Deserialize for ClusterInjections {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        if v.is_null() {
            return Ok(Self::default());
        }
        let m = v
            .as_map()
            .ok_or_else(|| serde::DeError::expected("map", "ClusterInjections"))?;
        let specs = serde::__private::field(m, "specs");
        if specs.is_null() {
            return Ok(Self::default());
        }
        Ok(ClusterInjections {
            specs: serde::Deserialize::from_value(specs)?,
        })
    }
}

impl ClusterInjections {
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// Parse a duration with an `ns`/`us`/`ms`/`s` suffix (e.g. `200us`,
/// `1.5ms`, `50000ns`).
fn parse_duration(s: &str) -> Result<Nanos, String> {
    let s = s.trim();
    let (num, mult) = if let Some(v) = s.strip_suffix("ns") {
        (v, 1.0)
    } else if let Some(v) = s.strip_suffix("us") {
        (v, 1e3)
    } else if let Some(v) = s.strip_suffix("ms") {
        (v, 1e6)
    } else if let Some(v) = s.strip_suffix('s') {
        (v, 1e9)
    } else {
        return Err(format!("duration `{s}` needs a ns/us/ms/s suffix"));
    };
    let value: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("bad duration value `{s}`"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!("duration `{s}` out of range"));
    }
    Ok(Nanos((value * mult).round() as u64))
}

/// Parse an `--inject` spec: `;`-separated injections, each
/// `kind:key=value,key=value`. Kinds and keys (durations take
/// ns/us/ms/s suffixes; `node` is optional where listed):
///
/// * `dvfs:period=10ms,duty=0.2,factor=3[,node=N]`
/// * `steal:interval=5ms,duration=200us[,node=N]`
/// * `numa:split=4,factor=2.5[,node=N]`
/// * `crash:node=N,at=100ms,down=50ms`
/// * `straggler:node=N,factor=1.5`
/// * `partition:node=N,at=50ms,dur=100ms,delay=2ms`
/// * `jitter:mean=50us[,node=N]`
pub fn parse_inject_spec(spec: &str) -> Result<Vec<Injection>, String> {
    spec.split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_one_injection)
        .collect()
}

fn parse_one_injection(s: &str) -> Result<Injection, String> {
    let (kind, args) = s.split_once(':').unwrap_or((s, ""));
    let kind = kind.trim();
    let mut pairs: Vec<(&str, &str)> = Vec::new();
    for item in args.split(',').map(str::trim).filter(|a| !a.is_empty()) {
        let (k, v) = item
            .split_once('=')
            .ok_or_else(|| format!("`{item}` in `{s}` is not key=value"))?;
        pairs.push((k.trim(), v.trim()));
    }
    let mut used: Vec<&str> = Vec::new();
    let mut get = |key: &'static str| -> Option<&str> {
        used.push(key);
        pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    };
    let req = |v: Option<&str>, key: &str| {
        v.map(str::to_owned)
            .ok_or_else(|| format!("`{kind}` needs `{key}=`"))
    };
    let dur = |v: String| parse_duration(&v);
    let num =
        |v: String| -> Result<f64, String> { v.parse().map_err(|_| format!("bad number `{v}`")) };
    let idx = |v: String| -> Result<usize, String> {
        v.parse().map_err(|_| format!("bad node index `{v}`"))
    };

    let parsed = match kind {
        "dvfs" => Injection::Dvfs {
            node: get("node").map(str::to_owned).map(idx).transpose()?,
            period: dur(req(get("period"), "period")?)?,
            duty: num(req(get("duty"), "duty")?)?,
            factor: num(req(get("factor"), "factor")?)?,
        },
        "steal" => Injection::Steal {
            node: get("node").map(str::to_owned).map(idx).transpose()?,
            mean_interval: dur(req(get("interval"), "interval")?)?,
            mean_duration: dur(req(get("duration"), "duration")?)?,
        },
        "numa" => Injection::Numa {
            node: get("node").map(str::to_owned).map(idx).transpose()?,
            split_cpu: req(get("split"), "split")?
                .parse()
                .map_err(|_| "bad `split=` cpu index".to_string())?,
            factor: num(req(get("factor"), "factor")?)?,
        },
        "crash" => Injection::Crash {
            node: idx(req(get("node"), "node")?)?,
            at: dur(req(get("at"), "at")?)?,
            down: dur(req(get("down"), "down")?)?,
        },
        "straggler" => Injection::Straggler {
            node: idx(req(get("node"), "node")?)?,
            factor: num(req(get("factor"), "factor")?)?,
        },
        "partition" => Injection::Partition {
            node: idx(req(get("node"), "node")?)?,
            at: dur(req(get("at"), "at")?)?,
            duration: dur(req(get("dur"), "dur")?)?,
            delay: dur(req(get("delay"), "delay")?)?,
        },
        "jitter" => Injection::Jitter {
            node: get("node").map(str::to_owned).map(idx).transpose()?,
            mean: dur(req(get("mean"), "mean")?)?,
        },
        other => {
            return Err(format!(
                "unknown injection kind `{other}` (dvfs, steal, numa, crash, straggler, partition, jitter)"
            ))
        }
    };
    if let Some((k, _)) = pairs.iter().find(|(k, _)| !used.contains(k)) {
        return Err(format!("unknown key `{k}` for `{kind}`"));
    }
    Ok(parsed)
}

/// Configuration of one mechanistic cluster campaign.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterConfig {
    pub app: App,
    /// Simulated nodes (one BSP rank per node, as in the paper's
    /// scale discussion).
    pub nodes: usize,
    /// Per-node simulated duration.
    pub duration: Nanos,
    /// Compute granularity between barriers.
    pub granularity: Nanos,
    /// Campaign seed; node `i` runs with
    /// `derive_indexed_seed(seed, "cluster-node", i)`.
    pub seed: u64,
    /// CPUs per node (None = the paper's 8).
    pub cpus: Option<u16>,
    /// Cap on simulated phases (0 = as many as the traces allow).
    pub max_phases: usize,
    /// Stagger node start offsets (the default). Real cluster nodes
    /// boot at arbitrary points of their periodic-noise cycles; with
    /// `false`, every rank starts its trace at 0 and periodic noise is
    /// phase-aligned across the whole cluster — the perfectly
    /// co-scheduled ablation, where tick noise does *not* amplify.
    pub stagger: bool,
    /// Host worker threads for the node simulations (None =
    /// `available_parallelism`). Does not affect results.
    pub workers: Option<usize>,
    /// Injected perturbations (empty = the healthy cluster; absent in
    /// old serialized configs, which read back as empty).
    #[serde(default)]
    pub inject: ClusterInjections,
}

impl ClusterConfig {
    pub fn new(app: App, nodes: usize, duration: Nanos) -> ClusterConfig {
        ClusterConfig {
            app,
            nodes,
            duration,
            granularity: Nanos::from_millis(1),
            seed: 0x0511_2011,
            cpus: None,
            max_phases: 0,
            stagger: true,
            workers: None,
            inject: ClusterInjections::default(),
        }
    }

    /// The seed node `index` runs with.
    pub fn node_seed(&self, index: usize) -> u64 {
        derive_indexed_seed(self.seed, NODE_SEED_LABEL, index as u64)
    }

    /// The trace position node `index`'s BSP rank starts at. Seed- and
    /// index-derived, uniform in `[0, duration / 8)`, so node clocks
    /// are decorrelated deterministically. All zero when `stagger` is
    /// off.
    pub fn node_start(&self, index: usize) -> Nanos {
        if !self.stagger {
            return Nanos::ZERO;
        }
        let span = (self.duration.as_nanos() / STAGGER_DIV).max(1);
        // Widening multiply instead of `% span`: maps the full u64 draw
        // uniformly into [0, span) with no modulo bias (span is nowhere
        // near a divisor of 2^64 for realistic durations).
        Nanos(osn_kernel::perturb::bounded(
            derive_indexed_seed(self.seed, STAGGER_LABEL, index as u64),
            span,
        ))
    }

    /// The single-node experiment for node `index`, with any
    /// kernel-tier injections that target it lowered into its
    /// [`KernelPerturbations`].
    pub fn node_experiment(&self, index: usize) -> ExperimentConfig {
        let mut config =
            ExperimentConfig::paper(self.app, self.duration).with_seed(self.node_seed(index));
        if let Some(cpus) = self.cpus {
            config.node.cpus = cpus;
            config.nranks = cpus as usize;
        }
        let perturb = self.node_perturb(index);
        if !perturb.is_empty() {
            config.node.perturb = perturb;
        }
        config
    }

    /// The kernel-tier perturbations node `index` runs with.
    pub fn node_perturb(&self, index: usize) -> KernelPerturbations {
        let mut p = KernelPerturbations::default();
        for inj in &self.inject.specs {
            match inj {
                Injection::Dvfs {
                    node,
                    period,
                    duty,
                    factor,
                } if Injection::applies(node, index) => p.dvfs.push(DvfsSpec {
                    cpu: None,
                    period: *period,
                    duty: *duty,
                    factor: *factor,
                }),
                Injection::Steal {
                    node,
                    mean_interval,
                    mean_duration,
                } if Injection::applies(node, index) => p.steal.push(StealSpec {
                    cpu: None,
                    mean_interval: *mean_interval,
                    mean_duration: *mean_duration,
                }),
                Injection::Numa {
                    node,
                    split_cpu,
                    factor,
                } if Injection::applies(node, index) => {
                    p.numa = Some(NumaSpec {
                        split_cpu: *split_cpu,
                        factor: *factor,
                    })
                }
                _ => {}
            }
        }
        p
    }

    /// The cluster-tier faults rank `index` couples with. A pure
    /// function of `(config, index)` — byte-identical across worker
    /// counts.
    pub fn rank_faults(&self, index: usize) -> RankFaults {
        let mut f = RankFaults::default();
        for inj in &self.inject.specs {
            match inj {
                Injection::Crash { node, at, down } if *node == index => {
                    f.outages.push((*at, *at + *down));
                }
                Injection::Straggler { node, factor } if *node == index => {
                    f.slow_factor *= factor;
                }
                Injection::Partition {
                    node,
                    at,
                    duration,
                    delay,
                } if *node == index => f.delays.push(DelayWindow {
                    start: *at,
                    end: *at + *duration,
                    delay: *delay,
                }),
                Injection::Jitter { node, mean } if Injection::applies(node, index) => {
                    f.jitter_mean += *mean;
                    f.jitter_seed = derive_indexed_seed(self.seed, JITTER_LABEL, index as u64);
                }
                _ => {}
            }
        }
        f
    }

    fn bsp(&self) -> BspParams {
        BspParams {
            max_phases: self.max_phases,
            ..BspParams::new(self.granularity)
        }
    }
}

/// One point of the mechanistic amplification curve, with the analytic
/// expectation on the same granularity for comparison.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterScalePoint {
    pub nodes: usize,
    pub phases: usize,
    /// Mean per-phase critical-path noise (mechanistic `E[max_N W]`).
    pub mean_max_noise: Nanos,
    pub slowdown: f64,
    pub efficiency: f64,
    /// `ScaleModel::expected_max_noise` on node 0's windows at this N.
    pub analytic_expected_max: Nanos,
    pub analytic_slowdown: f64,
    /// Which noise class paid the most barrier time at this scale.
    pub dominant: Option<NoiseCategory>,
    /// Barrier-paid noise by category at this scale.
    pub barrier_paid: Vec<(NoiseCategory, Nanos)>,
}

/// The serializable cluster campaign report. Byte-identical for a
/// fixed config regardless of worker threads.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterReport {
    pub app: App,
    pub nodes: usize,
    pub seed: u64,
    pub node_seeds: Vec<u64>,
    /// Per-node staggered start offsets (all zero when `stagger` was
    /// off).
    pub node_starts: Vec<Nanos>,
    pub duration: Nanos,
    pub granularity: Nanos,
    /// Phases completed at full scale.
    pub phases: usize,
    pub ideal: Nanos,
    pub elapsed: Nanos,
    pub slowdown: f64,
    pub efficiency: f64,
    /// Mechanistic mean per-phase max noise at full scale.
    pub mean_max_noise: Nanos,
    /// Mean single-node window noise (the N=1 baseline).
    pub single_node_mean_noise: Nanos,
    /// Analytic expectation at full scale, same granularity.
    pub analytic_expected_max: Nanos,
    /// mechanistic / analytic (1.0 = perfect agreement). Expect
    /// slightly < 1: the full dynamics absorb noise in barrier slack,
    /// which the analytic model cannot. (With `stagger` off the gap
    /// widens dramatically — phase-aligned periodic noise does not
    /// amplify.)
    pub mechanistic_over_analytic: f64,
    /// Mean per-phase max noise of the *fixed-grid* coupling — the
    /// run with the analytic model's sampling assumptions (no skew,
    /// no elongation, no absorption). Differentially comparable to
    /// `analytic_expected_max` within Monte-Carlo tolerance.
    pub grid_mean_max_noise: Nanos,
    /// grid / analytic on pooled windows (the tight differential).
    pub grid_over_analytic: f64,
    /// Analytic expectation from the *pooled* windows of all nodes
    /// (removes node-to-node sampling variation from the grid
    /// comparison).
    pub pooled_expected_max: Nanos,
    /// Which class paid for the barrier, full scale.
    pub barrier_paid: Vec<(NoiseCategory, Nanos)>,
    /// Which *injected* fault class paid for the barrier, full scale
    /// (all zero when nothing was injected).
    pub barrier_injected: Vec<(InjectedClass, Nanos)>,
    /// Per-rank compute/self-noise/wait/critical accounting.
    pub ranks: Vec<RankStats>,
    /// Amplification at power-of-two sub-scales of the same campaign.
    pub curve: Vec<ClusterScalePoint>,
}

/// A completed cluster campaign: the per-node runs, the coupled
/// collective run, its breakdown, and the serializable report.
pub struct ClusterOutcome {
    pub config: ClusterConfig,
    pub nodes: Vec<AppRun>,
    pub collective: CollectiveRun,
    pub breakdown: CollectiveBreakdown,
    pub report: ClusterReport,
}

/// Run `n` independent jobs on at most `workers` threads, gathering
/// results by index (completion order never shows in the output).
fn indexed_parallel<T: Send>(n: usize, workers: usize, job: impl Fn(usize) -> T + Sync) -> Vec<T> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    let workers = workers.min(n).max(1);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let job = &job;
            scope.spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                if tx.send((idx, job(idx))).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut out: Vec<Option<T>> = Vec::new();
    out.resize_with(n, || None);
    for (idx, value) in rx {
        out[idx] = Some(value);
    }
    out.into_iter()
        .map(|v| v.expect("worker panicked"))
        .collect()
}

fn worker_count(config: &ClusterConfig) -> usize {
    config.workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Extract one node's BSP rank input: the observed rank's noise chart,
/// the trace horizon, and the staggered start offset.
fn rank_series(run: &AppRun, start: Nanos) -> RankSeries {
    RankSeries::new(
        NoiseChart::build(&run.analysis, run.observed_rank()),
        run.result.end_time,
    )
    .with_start(start)
}

/// Build [`ScaleModel`]'s window distribution from a rank series
/// directly (shared by the in-memory and the stored path, so both
/// produce the same analytic column). Windows are bucketed from the
/// rank's staggered start, so the analytic model resamples exactly the
/// windows the fixed-grid coupling walks.
fn model_from_series(series: &RankSeries, granularity: Nanos) -> ScaleModel {
    let nwindows = (series.horizon.saturating_sub(series.start) / granularity) as usize;
    ScaleModel::from_windows(
        granularity,
        series.chart.bucket(series.start, granularity, nwindows),
    )
}

/// The power-of-two sub-scales reported by the curve (always includes
/// 1 and `n`).
fn curve_scales(n: usize) -> Vec<usize> {
    let mut scales = Vec::new();
    let mut k = 1;
    while k < n {
        scales.push(k);
        k *= 2;
    }
    if n > 0 {
        scales.push(n);
    }
    scales
}

/// Couple the rank series at every sub-scale and assemble the report.
fn build_report(config: &ClusterConfig, series: &[RankSeries]) -> ClusterReport {
    let params = config.bsp();
    // Analytic model: node 0's fixed-grid windows, the same input
    // `ScaleModel::from_run` would build.
    let model = series
        .first()
        .map(|s| model_from_series(s, config.granularity))
        .unwrap_or_else(|| ScaleModel::from_windows(config.granularity, Vec::new()));
    let mc_seed = derive_seed(config.seed, "cluster-analytic");
    let g = config.granularity.as_nanos() as f64;

    let mut curve = Vec::new();
    let mut full: Option<CollectiveBreakdown> = None;
    for k in curve_scales(config.nodes) {
        let run = couple(&series[..k], &params);
        let b = CollectiveBreakdown::build(&run);
        let analytic = model.expected_max_noise(k as u64, ANALYTIC_TRIALS, mc_seed);
        curve.push(ClusterScalePoint {
            nodes: k,
            phases: b.nphases,
            mean_max_noise: b.mean_max_noise,
            slowdown: b.slowdown,
            efficiency: b.efficiency,
            analytic_expected_max: analytic,
            analytic_slowdown: (g + analytic.as_nanos() as f64) / g,
            dominant: b.dominant(),
            barrier_paid: b.barrier_paid.clone(),
        });
        if k == config.nodes {
            full = Some(b);
        }
    }
    let full = full.unwrap_or_else(|| CollectiveBreakdown::build(&couple(&[], &params)));
    let analytic_expected_max =
        model.expected_max_noise(config.nodes.max(1) as u64, ANALYTIC_TRIALS, mc_seed);
    let mech = full.mean_max_noise.as_nanos() as f64;
    let ana = analytic_expected_max.as_nanos() as f64;

    // The tight differential: fixed-grid coupling vs the analytic
    // expectation over the pooled windows of all nodes. Both estimate
    // E[max_N W] over the same empirical distribution; they differ
    // only by Monte-Carlo error and with/without-replacement sampling.
    let grid = CollectiveBreakdown::build(&couple(series, &params.fixed_grid()));
    let pooled_windows: Vec<Nanos> = series
        .iter()
        .flat_map(|s| model_from_series(s, config.granularity).windows)
        .collect();
    let pooled = ScaleModel::from_windows(config.granularity, pooled_windows);
    let pooled_expected_max =
        pooled.expected_max_noise(config.nodes.max(1) as u64, ANALYTIC_TRIALS, mc_seed);
    let grid_mean = grid.mean_max_noise.as_nanos() as f64;
    let pooled_ana = pooled_expected_max.as_nanos() as f64;
    ClusterReport {
        app: config.app,
        nodes: config.nodes,
        seed: config.seed,
        node_seeds: (0..config.nodes).map(|i| config.node_seed(i)).collect(),
        node_starts: (0..config.nodes).map(|i| config.node_start(i)).collect(),
        duration: config.duration,
        granularity: config.granularity,
        phases: full.nphases,
        ideal: full.ideal,
        elapsed: full.elapsed,
        slowdown: full.slowdown,
        efficiency: full.efficiency,
        mean_max_noise: full.mean_max_noise,
        single_node_mean_noise: model.mean_window_noise(),
        analytic_expected_max,
        mechanistic_over_analytic: if ana > 0.0 { mech / ana } else { 1.0 },
        grid_mean_max_noise: grid.mean_max_noise,
        grid_over_analytic: if pooled_ana > 0.0 {
            grid_mean / pooled_ana
        } else {
            1.0
        },
        pooled_expected_max,
        barrier_paid: full.barrier_paid,
        barrier_injected: full.barrier_injected,
        ranks: full.ranks,
        curve,
    }
}

/// Run the full mechanistic cluster campaign in memory: N node
/// simulations in parallel, then the BSP coupling and report.
pub fn run_cluster(config: &ClusterConfig) -> ClusterOutcome {
    let nodes = indexed_parallel(config.nodes, worker_count(config), |i| {
        run_app(config.node_experiment(i))
    });
    let series: Vec<RankSeries> = nodes
        .iter()
        .enumerate()
        .map(|(i, run)| rank_series(run, config.node_start(i)).with_faults(config.rank_faults(i)))
        .collect();
    let collective = couple(&series, &config.bsp());
    let breakdown = CollectiveBreakdown::build(&collective);
    let report = build_report(config, &series);
    ClusterOutcome {
        config: config.clone(),
        nodes,
        collective,
        breakdown,
        report,
    }
}

/// Run the cluster with every node *spilling* its trace to
/// `dir/node-<i>.osn` while it runs (the [`record_app`] path: the
/// traces are never memory-resident), then rebuild the rank series by
/// streamed out-of-core analysis of each store file. The report is
/// byte-identical to [`run_cluster`]'s on the same config.
pub fn run_cluster_stored(
    config: &ClusterConfig,
    dir: &Path,
    opts: StoreOptions,
) -> io::Result<(ClusterReport, Vec<PathBuf>)> {
    std::fs::create_dir_all(dir)?;
    let paths: Vec<PathBuf> = (0..config.nodes)
        .map(|i| dir.join(format!("node-{i}.osn")))
        .collect();
    let recorded = indexed_parallel(config.nodes, worker_count(config), |i| {
        record_app(config.node_experiment(i), &paths[i], opts)
    });
    for r in &recorded {
        if let Err(e) = r {
            return Err(io::Error::new(e.kind(), e.to_string()));
        }
    }
    let series = paths
        .iter()
        .enumerate()
        .map(|(i, path)| {
            stored_rank_series(path, config.node_start(i))
                .map(|s| s.with_faults(config.rank_faults(i)))
        })
        .collect::<io::Result<Vec<_>>>()?;
    Ok((build_report(config, &series), paths))
}

/// Rebuild one node's rank series from its store file, out-of-core.
fn stored_rank_series(path: &Path, start: Nanos) -> io::Result<RankSeries> {
    let reader = crate::store::Reader::open(path)?;
    let meta = StoredRunMeta::from_bytes(reader.metadata())?;
    let analysis = analyze_store(&reader, &meta.result)?;
    let observed = observed_rank_of(&analysis, &meta.ranks, meta.config.node.net_irq_cpu);
    Ok(
        RankSeries::new(NoiseChart::build(&analysis, observed), meta.result.end_time)
            .with_start(start),
    )
}

impl ClusterReport {
    /// Human-readable campaign summary.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} cluster — {} nodes, {} phases of {}, seed {:#x}",
            self.app.name().to_uppercase(),
            self.nodes,
            self.phases,
            self.granularity,
            self.seed,
        );
        let _ = writeln!(
            out,
            "  ideal {}  elapsed {}  slowdown {:.4}x  efficiency {:.2}%",
            self.ideal,
            self.elapsed,
            self.slowdown,
            self.efficiency * 100.0
        );
        let _ = writeln!(
            out,
            "  mean max noise/phase {} (analytic {}, mech/analytic {:.3})",
            self.mean_max_noise, self.analytic_expected_max, self.mechanistic_over_analytic
        );
        let _ = writeln!(
            out,
            "  fixed-grid differential: {} vs pooled analytic {} (ratio {:.3})",
            self.grid_mean_max_noise, self.pooled_expected_max, self.grid_over_analytic
        );
        let _ = writeln!(out, "\n  amplification curve (mechanistic vs analytic):");
        for p in &self.curve {
            let _ = writeln!(
                out,
                "    {:>5} nodes: {:>8.4}x slowdown ({:>8.4}x analytic)  E[max W] {:>10} ({:>10})  dominant {}",
                p.nodes,
                p.slowdown,
                p.analytic_slowdown,
                p.mean_max_noise.to_string(),
                p.analytic_expected_max.to_string(),
                p.dominant.map(|c| c.name()).unwrap_or("-"),
            );
        }
        let _ = writeln!(out, "\n  barrier paid by noise class (full scale):");
        let total = self.barrier_paid.iter().map(|(_, d)| *d).sum::<Nanos>();
        for (cat, d) in &self.barrier_paid {
            let share = if total.is_zero() {
                0.0
            } else {
                d.as_nanos() as f64 / total.as_nanos() as f64 * 100.0
            };
            let _ = writeln!(
                out,
                "    {:<12} {:>12}  {:>5.1}%",
                cat.name(),
                d.to_string(),
                share
            );
        }
        let injected_total = self.barrier_injected.iter().map(|(_, d)| *d).sum::<Nanos>();
        if !injected_total.is_zero() {
            let _ = writeln!(out, "\n  barrier paid by injected fault class:");
            for (class, d) in &self.barrier_injected {
                let share = d.as_nanos() as f64 / injected_total.as_nanos() as f64 * 100.0;
                let _ = writeln!(
                    out,
                    "    {:<12} {:>12}  {:>5.1}%",
                    class.name(),
                    d.to_string(),
                    share
                );
            }
        }
        let _ = writeln!(out, "\n  per-rank accounting:");
        for r in &self.ranks {
            let _ = writeln!(
                out,
                "    rank {:>3}: compute {}  self-noise {}  wait {}  critical in {}/{} phases",
                r.rank, r.compute, r.self_noise, r.wait, r.critical_phases, self.phases
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(nodes: usize) -> ClusterConfig {
        let mut config = ClusterConfig::new(App::Sphot, nodes, Nanos::from_millis(400));
        config.cpus = Some(2);
        config.seed = 77;
        config
    }

    #[test]
    fn cluster_runs_and_amplifies() {
        let outcome = run_cluster(&tiny(3));
        let r = &outcome.report;
        assert_eq!(r.nodes, 3);
        assert!(r.phases > 100, "{} phases", r.phases);
        assert!(r.slowdown >= 1.0);
        // Amplification: the 3-node barrier pays at least the mean
        // single-node window noise.
        assert!(r.mean_max_noise >= r.single_node_mean_noise);
        // Curve covers 1, 2, 3 and is monotone in expected max noise.
        let scales: Vec<usize> = r.curve.iter().map(|p| p.nodes).collect();
        assert_eq!(scales, vec![1, 2, 3]);
        assert!(r.curve[0].mean_max_noise <= r.curve[2].mean_max_noise);
        // Per-rank accounting closes.
        for rank in &r.ranks {
            assert_eq!(rank.compute + rank.self_noise + rank.wait, r.elapsed);
        }
        // Render mentions the dominant class section.
        assert!(r.render().contains("barrier paid by noise class"));
    }

    #[test]
    fn node_seeds_are_distinct_and_reported() {
        let config = tiny(4);
        let outcome = run_cluster(&config);
        let seeds = &outcome.report.node_seeds;
        assert_eq!(seeds.len(), 4);
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), 4);
        for (i, s) in seeds.iter().enumerate() {
            assert_eq!(*s, config.node_seed(i));
        }
        // Distinct seeds produce distinct traces.
        assert_ne!(outcome.nodes[0].trace.len(), 0, "node 0 produced no events");
        assert_ne!(
            outcome.nodes[0].trace.events, outcome.nodes[1].trace.events,
            "nodes 0 and 1 are identical — seed derivation broken"
        );
    }

    #[test]
    fn max_phases_is_honored() {
        let mut config = tiny(2);
        config.max_phases = 25;
        let outcome = run_cluster(&config);
        assert_eq!(outcome.report.phases, 25);
    }

    #[test]
    fn parse_inject_spec_covers_every_kind() {
        let spec = "dvfs:period=10ms,duty=0.2,factor=3,node=1; \
                    steal:interval=5ms,duration=200us; \
                    numa:split=4,factor=2.5; \
                    crash:node=1,at=100ms,down=50ms; \
                    straggler:node=2,factor=1.5; \
                    partition:node=0,at=50ms,dur=100ms,delay=2ms; \
                    jitter:mean=50us";
        let specs = parse_inject_spec(spec).unwrap();
        assert_eq!(specs.len(), 7);
        assert_eq!(
            specs[0],
            Injection::Dvfs {
                node: Some(1),
                period: Nanos::from_millis(10),
                duty: 0.2,
                factor: 3.0,
            }
        );
        assert_eq!(
            specs[1],
            Injection::Steal {
                node: None,
                mean_interval: Nanos::from_millis(5),
                mean_duration: Nanos::from_micros(200),
            }
        );
        assert_eq!(
            specs[3],
            Injection::Crash {
                node: 1,
                at: Nanos::from_millis(100),
                down: Nanos::from_millis(50),
            }
        );
        assert_eq!(
            specs[5],
            Injection::Partition {
                node: 0,
                at: Nanos::from_millis(50),
                duration: Nanos::from_millis(100),
                delay: Nanos::from_millis(2),
            }
        );
    }

    #[test]
    fn parse_inject_spec_rejects_malformed_input() {
        assert!(parse_inject_spec("meteor:node=1").is_err(), "unknown kind");
        assert!(
            parse_inject_spec("crash:at=1ms,down=1ms").is_err(),
            "missing node"
        );
        assert!(
            parse_inject_spec("jitter:mean=50").is_err(),
            "missing duration suffix"
        );
        assert!(
            parse_inject_spec("straggler:node=0,factor=1.5,bogus=1").is_err(),
            "unknown key"
        );
        assert!(
            parse_inject_spec("steal:interval").is_err(),
            "key without value"
        );
    }

    #[test]
    fn kernel_injections_lower_into_node_configs() {
        let mut config = tiny(3);
        config.inject.specs =
            parse_inject_spec("steal:interval=5ms,duration=200us,node=1; numa:split=1,factor=2.0")
                .unwrap();
        // Node 0: only the unfiltered NUMA spec.
        let n0 = config.node_experiment(0).node.perturb;
        assert!(n0.steal.is_empty());
        assert_eq!(n0.numa.unwrap().split_cpu, 1);
        // Node 1: steal too.
        let n1 = config.node_experiment(1).node.perturb;
        assert_eq!(n1.steal.len(), 1);
        assert_eq!(n1.steal[0].mean_interval, Nanos::from_millis(5));
        // No injection at all: the node config stays default.
        let healthy = tiny(3).node_experiment(1).node.perturb;
        assert!(healthy.is_empty());
    }

    #[test]
    fn cluster_faults_lower_into_rank_faults() {
        let mut config = tiny(4);
        config.inject.specs = parse_inject_spec(
            "crash:node=1,at=10ms,down=5ms; straggler:node=2,factor=1.5; jitter:mean=20us",
        )
        .unwrap();
        let f1 = config.rank_faults(1);
        assert_eq!(
            f1.outages,
            vec![(Nanos::from_millis(10), Nanos::from_millis(15))]
        );
        assert_eq!(f1.slow_factor, 1.0);
        let f2 = config.rank_faults(2);
        assert_eq!(f2.slow_factor, 1.5);
        assert!(f2.outages.is_empty());
        // Jitter applies to all ranks, decorrelated by per-rank seeds.
        assert_eq!(f1.jitter_mean, Nanos::from_micros(20));
        assert_ne!(f1.jitter_seed, f2.jitter_seed);
        // Healthy config: empty faults on every rank.
        assert!(tiny(4).rank_faults(1).is_empty());
    }

    #[test]
    fn injected_cluster_attributes_each_class() {
        let mut config = tiny(3);
        config.max_phases = 200;
        config.inject.specs = parse_inject_spec(
            "crash:node=1,at=20ms,down=10ms; straggler:node=2,factor=1.2; \
             partition:node=0,at=50ms,dur=150ms,delay=500us; jitter:mean=10us",
        )
        .unwrap();
        let outcome = run_cluster(&config);
        let injected = &outcome.report.barrier_injected;
        for class in osn_analysis::collective::InjectedClass::ALL {
            let row = injected
                .iter()
                .find(|(c, _)| *c == class)
                .map(|(_, d)| *d)
                .unwrap();
            assert!(
                !row.is_zero(),
                "injected class {} paid nothing at the barrier",
                class.name()
            );
        }
        assert!(outcome.report.render().contains("injected fault class"));
        // The healthy campaign pays nothing on those rows and keeps
        // its render free of the injected section.
        let healthy = run_cluster(&{
            let mut c = tiny(3);
            c.max_phases = 200;
            c
        });
        assert!(healthy
            .report
            .barrier_injected
            .iter()
            .all(|(_, d)| d.is_zero()));
        assert!(!healthy.report.render().contains("injected fault class"));
    }

    /// Cluster configs serialized before the `inject` field existed
    /// must still deserialize (to the empty injection set).
    #[test]
    fn inject_field_defaults_on_old_configs() {
        let config = tiny(2);
        let json = serde_json::to_string(&config).unwrap();
        let idx = json.find(",\"inject\":").expect("inject serialized last");
        let stripped = format!("{}}}", &json[..idx]);
        let back: ClusterConfig = serde_json::from_str(&stripped).unwrap();
        assert!(back.inject.is_empty());
        // And the full form round-trips.
        let mut with = tiny(2);
        with.inject.specs = parse_inject_spec("straggler:node=0,factor=2").unwrap();
        let json = serde_json::to_string(&with).unwrap();
        let back: ClusterConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.inject, with.inject);
    }
}
