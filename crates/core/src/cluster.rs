//! `osn-cluster`: a mechanistic multi-node campaign.
//!
//! Where [`crate::scale::ScaleModel`] *extrapolates* the amplification
//! of OS noise by a bulk-synchronous collective (resampling one node's
//! empirical window distribution), this module *runs* it: N independent
//! [`osn_kernel`] nodes are instantiated with per-node RNG streams
//! derived from one campaign seed, simulated in parallel across host
//! threads, and coupled with the barrier model of
//! [`osn_analysis::collective`] — each phase ends when the slowest
//! rank arrives, skew carries across phases, and the critical rank's
//! noise decomposition says which noise class paid for the barrier.
//!
//! Rank start offsets are staggered (seed-derived, uniform in
//! `[0, duration/8)`) so periodic noise is *not* phase-aligned across
//! nodes — the condition under which the paper's amplification
//! argument holds. Setting [`ClusterConfig::stagger`] to `false`
//! simulates the perfectly co-scheduled cluster instead, where
//! synchronized ticks hit every rank in the same window and the
//! barrier amplifies almost nothing.
//!
//! Determinism contract: a fixed [`ClusterConfig`] yields a
//! byte-identical [`ClusterReport`] regardless of `workers` (node
//! results are gathered by index; the coupling and report are
//! sequential folds in rank order).

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use osn_analysis::chart::NoiseChart;
use osn_analysis::collective::{
    BspParams, CollectiveBreakdown, DelayWindow, InjectedClass, NoiseSurrogate, RankFaults,
    RankSeries, RankStats, SyntheticRank,
};
use osn_kernel::activity::NoiseCategory;
use osn_kernel::perturb::{DvfsSpec, KernelPerturbations, NumaSpec, StealSpec};
use osn_kernel::rng::derive_indexed_seed;
use osn_kernel::time::Nanos;
use osn_store::StoreOptions;
use osn_workloads::App;

use serde::{Deserialize, Serialize};

use crate::experiment::{observed_rank_of, run_app, AppRun, ExperimentConfig};
use crate::scale::ScaleModel;
use crate::store::{analyze_store, record_app, StoredRunMeta};

/// Label under which per-node seeds derive from the campaign seed.
const NODE_SEED_LABEL: &str = "cluster-node";
/// Label under which per-node start offsets derive from the campaign
/// seed.
const STAGGER_LABEL: &str = "cluster-stagger";
/// Label under which per-rank network-jitter seeds derive from the
/// campaign seed.
const JITTER_LABEL: &str = "cluster-jitter";
/// Staggered start offsets are uniform in `[0, duration / STAGGER_DIV)`.
const STAGGER_DIV: u64 = 8;
/// Label under which per-node sampling priorities derive (tiered mode).
const SAMPLE_LABEL: &str = "tier-sample";
/// Label under which synthetic-rank draw seeds derive (tiered mode).
const SYNTH_LABEL: &str = "tier-synth";
/// Label under which validation-twin draw seeds derive (tiered mode).
const VALIDATE_LABEL: &str = "tier-validate";
/// `--tier auto` runs campaigns up to this size fully mechanistically.
const AUTO_SAMPLE: usize = 128;
/// Floor on the mechanistic sample of a tiered campaign.
const MIN_SAMPLE: usize = 8;
/// Sub-scales at which the surrogate is validated against its own
/// mechanistic sample are capped here.
const VALIDATE_CAP: usize = 256;
/// The pooled-window analytic column reads at most this many ranks
/// (pooling all 100k ranks' windows would dwarf the report's own
/// memory cap for no statistical gain).
const POOL_CAP: usize = 256;

/// One injected perturbation. Kernel-tier variants (`Dvfs`, `Steal`,
/// `Numa`) lower into [`KernelPerturbations`] on the target node's
/// config and show up as new activity/signature rows in that node's
/// trace; cluster-tier variants (`Crash`, `Straggler`, `Partition`,
/// `Jitter`) act on the BSP coupling via [`RankFaults`] and show up as
/// [`InjectedClass`] rows in the barrier decomposition. Every schedule
/// derives from the campaign seed — byte-identical across worker
/// counts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Injection {
    /// DVFS/thermal throttling: kernel costs scaled by `factor` for a
    /// `duty` fraction of every `period`, on one node or all.
    Dvfs {
        node: Option<usize>,
        period: Nanos,
        duty: f64,
        factor: f64,
    },
    /// Hypervisor steal-time windows preempting the running task.
    Steal {
        node: Option<usize>,
        mean_interval: Nanos,
        mean_duration: Nanos,
    },
    /// NUMA-asymmetric page-fault costs: CPUs `>= split_cpu` pay
    /// `factor`× per fault.
    Numa {
        node: Option<usize>,
        split_cpu: u16,
        factor: f64,
    },
    /// Node crash at `at`, restarting (from where it left off) after
    /// `down`.
    Crash { node: usize, at: Nanos, down: Nanos },
    /// Persistent straggler: the node's compute demand is scaled.
    Straggler { node: usize, factor: f64 },
    /// Network partition over `[at, at + duration)`: the node's
    /// barrier arrivals inside the window are delayed by `delay`.
    Partition {
        node: usize,
        at: Nanos,
        duration: Nanos,
        delay: Nanos,
    },
    /// Per-phase exponential network jitter on barrier arrival.
    Jitter { node: Option<usize>, mean: Nanos },
}

impl Injection {
    /// Whether a node-filtered injection applies to node `index`.
    fn applies(node: &Option<usize>, index: usize) -> bool {
        node.is_none_or(|n| n == index)
    }
}

/// The campaign's injection set. A wrapper struct (rather than a bare
/// `Vec`) so deserialization can treat the whole block as optional:
/// configs serialized before injection existed read back as "nothing
/// injected".
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct ClusterInjections {
    pub specs: Vec<Injection>,
}

impl serde::Deserialize for ClusterInjections {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        if v.is_null() {
            return Ok(Self::default());
        }
        let m = v
            .as_map()
            .ok_or_else(|| serde::DeError::expected("map", "ClusterInjections"))?;
        let specs = serde::__private::field(m, "specs");
        if specs.is_null() {
            return Ok(Self::default());
        }
        Ok(ClusterInjections {
            specs: serde::Deserialize::from_value(specs)?,
        })
    }
}

impl ClusterInjections {
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// Simulation tier of a cluster campaign: how many nodes run the full
/// mechanistic kernel simulation versus being synthesized from a noise
/// surrogate fitted to the mechanistic sample.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub enum Tier {
    /// Every node is simulated mechanistically (the pre-tiered
    /// behaviour, and the default).
    #[default]
    Mechanistic,
    /// Mechanistic up to `AUTO_SAMPLE` nodes; larger campaigns run a
    /// `AUTO_SAMPLE`-node mechanistic sample and synthesize the rest.
    Auto,
    /// A fixed mechanistic fraction of the campaign (clamped to at
    /// least `MIN_SAMPLE` nodes). `fraction: 1.0` is byte-identical
    /// to `Mechanistic`.
    Sampled { fraction: f64 },
}

/// Hand-written so configs serialized before the field existed (it
/// reads back as `Null`) default to the old mechanistic behaviour.
impl serde::Deserialize for Tier {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        if v.is_null() {
            return Ok(Tier::Mechanistic);
        }
        if let serde::Value::Str(s) = v {
            return match s.as_str() {
                "Mechanistic" => Ok(Tier::Mechanistic),
                "Auto" => Ok(Tier::Auto),
                other => Err(serde::DeError::unknown_variant(other, "Tier")),
            };
        }
        let m = v
            .as_map()
            .ok_or_else(|| serde::DeError::expected("string or map", "Tier"))?;
        let inner = serde::__private::field(m, "Sampled");
        let inner = inner
            .as_map()
            .ok_or_else(|| serde::DeError::expected("Sampled variant body", "Tier"))?;
        Ok(Tier::Sampled {
            fraction: serde::Deserialize::from_value(serde::__private::field(inner, "fraction"))?,
        })
    }
}

/// Parse a `--tier` spec: `mechanistic` (or `mech`), `auto`,
/// `sampled` (auto sizing) or `sampled:<fraction>` with the fraction
/// in `(0, 1]`.
pub fn parse_tier(s: &str) -> Result<Tier, String> {
    let s = s.trim();
    match s {
        "mechanistic" | "mech" => return Ok(Tier::Mechanistic),
        "auto" | "sampled" => return Ok(Tier::Auto),
        _ => {}
    }
    if let Some(frac) = s.strip_prefix("sampled:") {
        let fraction: f64 = frac
            .trim()
            .parse()
            .map_err(|_| format!("bad sample fraction `{frac}`"))?;
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(format!("sample fraction {fraction} not in (0, 1]"));
        }
        return Ok(Tier::Sampled { fraction });
    }
    Err(format!(
        "unknown tier `{s}` (mechanistic, auto, sampled:<fraction>)"
    ))
}

/// Parse a duration with an `ns`/`us`/`ms`/`s` suffix (e.g. `200us`,
/// `1.5ms`, `50000ns`).
pub fn parse_duration(s: &str) -> Result<Nanos, String> {
    let s = s.trim();
    let (num, mult) = if let Some(v) = s.strip_suffix("ns") {
        (v, 1.0)
    } else if let Some(v) = s.strip_suffix("us") {
        (v, 1e3)
    } else if let Some(v) = s.strip_suffix("ms") {
        (v, 1e6)
    } else if let Some(v) = s.strip_suffix('s') {
        (v, 1e9)
    } else {
        return Err(format!("duration `{s}` needs a ns/us/ms/s suffix"));
    };
    let value: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("bad duration value `{s}`"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!("duration `{s}` out of range"));
    }
    Ok(Nanos((value * mult).round() as u64))
}

/// Parse an `--inject` spec: `;`-separated injections, each
/// `kind:key=value,key=value`. Kinds and keys (durations take
/// ns/us/ms/s suffixes; `node` is optional where listed):
///
/// * `dvfs:period=10ms,duty=0.2,factor=3[,node=N]`
/// * `steal:interval=5ms,duration=200us[,node=N]`
/// * `numa:split=4,factor=2.5[,node=N]`
/// * `crash:node=N,at=100ms,down=50ms`
/// * `straggler:node=N,factor=1.5`
/// * `partition:node=N,at=50ms,dur=100ms,delay=2ms`
/// * `jitter:mean=50us[,node=N]`
pub fn parse_inject_spec(spec: &str) -> Result<Vec<Injection>, String> {
    spec.split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_one_injection)
        .collect()
}

fn parse_one_injection(s: &str) -> Result<Injection, String> {
    let (kind, args) = s.split_once(':').unwrap_or((s, ""));
    let kind = kind.trim();
    let mut pairs: Vec<(&str, &str)> = Vec::new();
    for item in args.split(',').map(str::trim).filter(|a| !a.is_empty()) {
        let (k, v) = item
            .split_once('=')
            .ok_or_else(|| format!("`{item}` in `{s}` is not key=value"))?;
        pairs.push((k.trim(), v.trim()));
    }
    let mut used: Vec<&str> = Vec::new();
    let mut get = |key: &'static str| -> Option<&str> {
        used.push(key);
        pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    };
    let req = |v: Option<&str>, key: &str| {
        v.map(str::to_owned)
            .ok_or_else(|| format!("`{kind}` needs `{key}=`"))
    };
    let dur = |v: String| parse_duration(&v);
    let num =
        |v: String| -> Result<f64, String> { v.parse().map_err(|_| format!("bad number `{v}`")) };
    let idx = |v: String| -> Result<usize, String> {
        v.parse().map_err(|_| format!("bad node index `{v}`"))
    };

    let parsed = match kind {
        "dvfs" => Injection::Dvfs {
            node: get("node").map(str::to_owned).map(idx).transpose()?,
            period: dur(req(get("period"), "period")?)?,
            duty: num(req(get("duty"), "duty")?)?,
            factor: num(req(get("factor"), "factor")?)?,
        },
        "steal" => Injection::Steal {
            node: get("node").map(str::to_owned).map(idx).transpose()?,
            mean_interval: dur(req(get("interval"), "interval")?)?,
            mean_duration: dur(req(get("duration"), "duration")?)?,
        },
        "numa" => Injection::Numa {
            node: get("node").map(str::to_owned).map(idx).transpose()?,
            split_cpu: req(get("split"), "split")?
                .parse()
                .map_err(|_| "bad `split=` cpu index".to_string())?,
            factor: num(req(get("factor"), "factor")?)?,
        },
        "crash" => Injection::Crash {
            node: idx(req(get("node"), "node")?)?,
            at: dur(req(get("at"), "at")?)?,
            down: dur(req(get("down"), "down")?)?,
        },
        "straggler" => Injection::Straggler {
            node: idx(req(get("node"), "node")?)?,
            factor: num(req(get("factor"), "factor")?)?,
        },
        "partition" => Injection::Partition {
            node: idx(req(get("node"), "node")?)?,
            at: dur(req(get("at"), "at")?)?,
            duration: dur(req(get("dur"), "dur")?)?,
            delay: dur(req(get("delay"), "delay")?)?,
        },
        "jitter" => Injection::Jitter {
            node: get("node").map(str::to_owned).map(idx).transpose()?,
            mean: dur(req(get("mean"), "mean")?)?,
        },
        other => {
            return Err(format!(
                "unknown injection kind `{other}` (dvfs, steal, numa, crash, straggler, partition, jitter)"
            ))
        }
    };
    if let Some((k, _)) = pairs.iter().find(|(k, _)| !used.contains(k)) {
        return Err(format!("unknown key `{k}` for `{kind}`"));
    }
    Ok(parsed)
}

/// Configuration of one mechanistic cluster campaign.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterConfig {
    pub app: App,
    /// Simulated nodes (one BSP rank per node, as in the paper's
    /// scale discussion).
    pub nodes: usize,
    /// Per-node simulated duration.
    pub duration: Nanos,
    /// Compute granularity between barriers.
    pub granularity: Nanos,
    /// Campaign seed; node `i` runs with
    /// `derive_indexed_seed(seed, "cluster-node", i)`.
    pub seed: u64,
    /// CPUs per node (None = the paper's 8).
    pub cpus: Option<u16>,
    /// Cap on simulated phases (0 = as many as the traces allow).
    pub max_phases: usize,
    /// Stagger node start offsets (the default). Real cluster nodes
    /// boot at arbitrary points of their periodic-noise cycles; with
    /// `false`, every rank starts its trace at 0 and periodic noise is
    /// phase-aligned across the whole cluster — the perfectly
    /// co-scheduled ablation, where tick noise does *not* amplify.
    pub stagger: bool,
    /// Host worker threads for the node simulations (None =
    /// `available_parallelism`). Does not affect results.
    pub workers: Option<usize>,
    /// Injected perturbations (empty = the healthy cluster; absent in
    /// old serialized configs, which read back as empty).
    #[serde(default)]
    pub inject: ClusterInjections,
    /// Simulation tier (absent in old serialized configs, which read
    /// back as fully mechanistic).
    #[serde(default)]
    pub tier: Tier,
}

impl ClusterConfig {
    pub fn new(app: App, nodes: usize, duration: Nanos) -> ClusterConfig {
        ClusterConfig {
            app,
            nodes,
            duration,
            granularity: Nanos::from_millis(1),
            seed: 0x0511_2011,
            cpus: None,
            max_phases: 0,
            stagger: true,
            workers: None,
            inject: ClusterInjections::default(),
            tier: Tier::Mechanistic,
        }
    }

    /// How many nodes the campaign simulates mechanistically.
    pub fn sample_size(&self) -> usize {
        let n = self.nodes;
        match self.tier {
            Tier::Mechanistic => n,
            Tier::Auto => n.min(AUTO_SAMPLE),
            Tier::Sampled { fraction } => {
                let m = (fraction * n as f64).round() as usize;
                m.clamp(MIN_SAMPLE.min(n), n)
            }
        }
    }

    /// The stratified mechanistic sample. Nodes are ordered by their
    /// staggered start offset and split into strata so the sample
    /// covers the whole stagger phase (the surrogate must see ranks at
    /// every alignment of the periodic comb); within a stratum the
    /// pick order is a seed-derived hash — deterministic, and
    /// independent of worker count. Nodes targeted by kernel-tier
    /// injections are forced into the sample: their traces differ
    /// mechanistically and no surrogate fitted to healthy nodes can
    /// synthesize them. (Cluster-tier faults need no forcing — they
    /// apply at coupling time to mechanistic and synthetic ranks
    /// alike.)
    pub fn sample_plan(&self) -> SamplePlan {
        let n = self.nodes;
        let m = self.sample_size();
        if m >= n {
            return SamplePlan::full(n);
        }
        let mut forced: Vec<usize> = self
            .inject
            .specs
            .iter()
            .filter_map(|inj| match inj {
                Injection::Dvfs { node: Some(i), .. }
                | Injection::Steal { node: Some(i), .. }
                | Injection::Numa { node: Some(i), .. }
                    if *i < n =>
                {
                    Some(*i)
                }
                _ => None,
            })
            .collect();
        forced.sort_unstable();
        forced.dedup();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (self.node_start(i), i));
        let strata = m.clamp(1, 8);
        let mut chosen: Vec<usize> = Vec::with_capacity(m + forced.len());
        for s in 0..strata {
            let slice = &order[s * n / strata..(s + 1) * n / strata];
            let quota = (s + 1) * m / strata - s * m / strata;
            let mut stratum = slice.to_vec();
            stratum.sort_by_key(|&i| {
                (
                    forced.binary_search(&i).is_err(),
                    derive_indexed_seed(self.seed, SAMPLE_LABEL, i as u64),
                    i,
                )
            });
            chosen.extend(stratum.into_iter().take(quota));
        }
        chosen.extend(forced);
        chosen.sort_unstable();
        chosen.dedup();
        SamplePlan {
            mechanistic: chosen,
            strata,
        }
    }

    /// The seed node `index` runs with.
    pub fn node_seed(&self, index: usize) -> u64 {
        derive_indexed_seed(self.seed, NODE_SEED_LABEL, index as u64)
    }

    /// The trace position node `index`'s BSP rank starts at. Seed- and
    /// index-derived, uniform in `[0, duration / 8)`, so node clocks
    /// are decorrelated deterministically. All zero when `stagger` is
    /// off.
    pub fn node_start(&self, index: usize) -> Nanos {
        if !self.stagger {
            return Nanos::ZERO;
        }
        let span = (self.duration.as_nanos() / STAGGER_DIV).max(1);
        // Widening multiply instead of `% span`: maps the full u64 draw
        // uniformly into [0, span) with no modulo bias (span is nowhere
        // near a divisor of 2^64 for realistic durations).
        Nanos(osn_kernel::perturb::bounded(
            derive_indexed_seed(self.seed, STAGGER_LABEL, index as u64),
            span,
        ))
    }

    /// The single-node experiment for node `index`, with any
    /// kernel-tier injections that target it lowered into its
    /// [`KernelPerturbations`].
    pub fn node_experiment(&self, index: usize) -> ExperimentConfig {
        let mut config =
            ExperimentConfig::paper(self.app, self.duration).with_seed(self.node_seed(index));
        if let Some(cpus) = self.cpus {
            config.node.cpus = cpus;
            config.nranks = cpus as usize;
        }
        let perturb = self.node_perturb(index);
        if !perturb.is_empty() {
            config.node.perturb = perturb;
        }
        config
    }

    /// The kernel-tier perturbations node `index` runs with.
    pub fn node_perturb(&self, index: usize) -> KernelPerturbations {
        let mut p = KernelPerturbations::default();
        for inj in &self.inject.specs {
            match inj {
                Injection::Dvfs {
                    node,
                    period,
                    duty,
                    factor,
                } if Injection::applies(node, index) => p.dvfs.push(DvfsSpec {
                    cpu: None,
                    period: *period,
                    duty: *duty,
                    factor: *factor,
                }),
                Injection::Steal {
                    node,
                    mean_interval,
                    mean_duration,
                } if Injection::applies(node, index) => p.steal.push(StealSpec {
                    cpu: None,
                    mean_interval: *mean_interval,
                    mean_duration: *mean_duration,
                }),
                Injection::Numa {
                    node,
                    split_cpu,
                    factor,
                } if Injection::applies(node, index) => {
                    p.numa = Some(NumaSpec {
                        split_cpu: *split_cpu,
                        factor: *factor,
                    })
                }
                _ => {}
            }
        }
        p
    }

    /// The cluster-tier faults rank `index` couples with. A pure
    /// function of `(config, index)` — byte-identical across worker
    /// counts.
    pub fn rank_faults(&self, index: usize) -> RankFaults {
        let mut f = RankFaults::default();
        for inj in &self.inject.specs {
            match inj {
                Injection::Crash { node, at, down } if *node == index => {
                    f.outages.push((*at, *at + *down));
                }
                Injection::Straggler { node, factor } if *node == index => {
                    f.slow_factor *= factor;
                }
                Injection::Partition {
                    node,
                    at,
                    duration,
                    delay,
                } if *node == index => f.delays.push(DelayWindow {
                    start: *at,
                    end: *at + *duration,
                    delay: *delay,
                }),
                Injection::Jitter { node, mean } if Injection::applies(node, index) => {
                    f.jitter_mean += *mean;
                    f.jitter_seed = derive_indexed_seed(self.seed, JITTER_LABEL, index as u64);
                }
                _ => {}
            }
        }
        f
    }

    fn bsp(&self) -> BspParams {
        BspParams {
            max_phases: self.max_phases,
            ..BspParams::new(self.granularity)
        }
    }
}

/// Which nodes of a campaign run mechanistically. A pure function of
/// the config (computed before any parallelism), so tiered campaigns
/// keep the byte-identical-across-workers contract.
#[derive(Clone, Debug, PartialEq)]
pub struct SamplePlan {
    /// Sorted global node indices simulated mechanistically.
    pub mechanistic: Vec<usize>,
    /// Stagger-phase strata the sample was drawn from.
    pub strata: usize,
}

impl SamplePlan {
    /// The untiered plan: every node mechanistic.
    pub fn full(n: usize) -> SamplePlan {
        SamplePlan {
            mechanistic: (0..n).collect(),
            strata: 1,
        }
    }

    /// Whether every one of the campaign's `n` nodes is mechanistic.
    pub fn is_full(&self, n: usize) -> bool {
        self.mechanistic.len() == n
    }
}

/// One surrogate-validation point: the mechanistic sample's first `v`
/// ranks coupled as-is versus `v` synthetic twins drawn at the same
/// starts and faults.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TierValidation {
    pub nodes: usize,
    pub mechanistic_mean_max: Nanos,
    pub surrogate_mean_max: Nanos,
    /// surrogate / mechanistic mean per-phase max noise (1.0 = the
    /// surrogate amplifies exactly like the ground truth).
    pub ratio: f64,
}

/// Tier metadata embedded in the report so tiered runs are
/// self-describing (absent when the campaign was fully mechanistic).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TierMeta {
    /// `"auto"` or `"sampled"`.
    pub mode: String,
    /// Achieved mechanistic fraction (after clamping and forcing).
    pub sample_fraction: f64,
    pub strata: usize,
    pub mechanistic_nodes: usize,
    pub synthetic_nodes: usize,
    /// Global node indices of the mechanistic sample (the report's
    /// `node_seeds`, `node_starts` and `ranks` rows follow this
    /// order).
    pub mechanistic_indices: Vec<usize>,
    /// Surrogate-vs-mechanistic amplification at sub-scales of the
    /// sample.
    pub validation: Vec<TierValidation>,
}

/// Streamed accounting over the synthetic rank population: the
/// per-rank [`RankStats`] rows are folded into count/mean/M2/max plus
/// a fixed-size log2 sketch instead of being materialized in the
/// report (at 100k ranks the row vector would dominate it).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RankSummary {
    pub count: usize,
    pub mean_self_noise: Nanos,
    pub stddev_self_noise: Nanos,
    pub max_self_noise: Nanos,
    pub mean_wait: Nanos,
    /// Phases in which a synthetic rank paced the barrier.
    pub critical_phases: usize,
    /// log2 sketch of per-rank self-noise: bucket 0 counts noise-free
    /// ranks, bucket k ranks with self-noise in `[2^(k-1), 2^k)` ns.
    /// Trailing zero buckets are trimmed.
    pub self_noise_log2: Vec<u64>,
}

impl RankSummary {
    fn fold<'a>(rows: impl Iterator<Item = &'a RankStats>) -> RankSummary {
        let (mut count, mut mean, mut m2) = (0usize, 0.0f64, 0.0f64);
        let (mut max, mut wait_sum) = (Nanos::ZERO, 0u128);
        let mut critical = 0usize;
        let mut hist = [0u64; 65];
        for r in rows {
            count += 1;
            let v = r.self_noise.as_nanos() as f64;
            let delta = v - mean;
            mean += delta / count as f64;
            m2 += delta * (v - mean);
            max = max.max(r.self_noise);
            wait_sum += r.wait.as_nanos() as u128;
            critical += r.critical_phases;
            let n = r.self_noise.as_nanos();
            let bucket = if n == 0 {
                0
            } else {
                64 - n.leading_zeros() as usize
            };
            hist[bucket] += 1;
        }
        let variance = if count > 1 {
            m2 / (count - 1) as f64
        } else {
            0.0
        };
        let last = hist.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
        RankSummary {
            count,
            mean_self_noise: Nanos(if count == 0 { 0 } else { mean.round() as u64 }),
            stddev_self_noise: Nanos(variance.sqrt().round() as u64),
            max_self_noise: max,
            mean_wait: Nanos(if count == 0 {
                0
            } else {
                (wait_sum / count as u128) as u64
            }),
            critical_phases: critical,
            self_noise_log2: hist[..last].to_vec(),
        }
    }
}

/// One point of the mechanistic amplification curve, with the analytic
/// expectation on the same granularity for comparison.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterScalePoint {
    pub nodes: usize,
    pub phases: usize,
    /// Mean per-phase critical-path noise (mechanistic `E[max_N W]`).
    pub mean_max_noise: Nanos,
    pub slowdown: f64,
    pub efficiency: f64,
    /// `ScaleModel::expected_max_noise` on node 0's windows at this N.
    pub analytic_expected_max: Nanos,
    pub analytic_slowdown: f64,
    /// Which noise class paid the most barrier time at this scale.
    pub dominant: Option<NoiseCategory>,
    /// Barrier-paid noise by category at this scale.
    pub barrier_paid: Vec<(NoiseCategory, Nanos)>,
}

/// The serializable cluster campaign report. Byte-identical for a
/// fixed config regardless of worker threads.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterReport {
    pub app: App,
    pub nodes: usize,
    pub seed: u64,
    /// Seeds of the mechanistically simulated nodes (all nodes when
    /// untiered; the sample — see `tier.mechanistic_indices` — when
    /// tiered).
    pub node_seeds: Vec<u64>,
    /// Staggered start offsets of the same nodes (all zero when
    /// `stagger` was off).
    pub node_starts: Vec<Nanos>,
    pub duration: Nanos,
    pub granularity: Nanos,
    /// Phases completed at full scale.
    pub phases: usize,
    pub ideal: Nanos,
    pub elapsed: Nanos,
    pub slowdown: f64,
    pub efficiency: f64,
    /// Mechanistic mean per-phase max noise at full scale.
    pub mean_max_noise: Nanos,
    /// Mean single-node window noise (the N=1 baseline).
    pub single_node_mean_noise: Nanos,
    /// Analytic expectation at full scale, same granularity.
    pub analytic_expected_max: Nanos,
    /// mechanistic / analytic (1.0 = perfect agreement). Expect
    /// slightly < 1: the full dynamics absorb noise in barrier slack,
    /// which the analytic model cannot. (With `stagger` off the gap
    /// widens dramatically — phase-aligned periodic noise does not
    /// amplify.)
    pub mechanistic_over_analytic: f64,
    /// Mean per-phase max noise of the *fixed-grid* coupling — the
    /// run with the analytic model's sampling assumptions (no skew,
    /// no elongation, no absorption). Differentially comparable to
    /// `analytic_expected_max` within Monte-Carlo tolerance.
    pub grid_mean_max_noise: Nanos,
    /// grid / analytic on pooled windows (the tight differential).
    pub grid_over_analytic: f64,
    /// Analytic expectation from the *pooled* windows of all nodes
    /// (removes node-to-node sampling variation from the grid
    /// comparison).
    pub pooled_expected_max: Nanos,
    /// Which class paid for the barrier, full scale.
    pub barrier_paid: Vec<(NoiseCategory, Nanos)>,
    /// Which *injected* fault class paid for the barrier, full scale
    /// (all zero when nothing was injected).
    pub barrier_injected: Vec<(InjectedClass, Nanos)>,
    /// Per-rank compute/self-noise/wait/critical accounting
    /// (mechanistic ranks only when tiered; `RankStats::rank` is the
    /// global rank index either way).
    pub ranks: Vec<RankStats>,
    /// Folded accounting of the synthetic rank population (tiered
    /// campaigns only).
    pub synthetic_ranks: Option<RankSummary>,
    /// Tier metadata (absent when fully mechanistic — including
    /// `sampled:1.0`, which is byte-identical to mechanistic).
    pub tier: Option<TierMeta>,
    /// Amplification at power-of-two sub-scales of the same campaign.
    pub curve: Vec<ClusterScalePoint>,
}

/// A completed cluster campaign: the sampling plan, the mechanistic
/// node runs (in `plan.mechanistic` order), and the serializable
/// report.
pub struct ClusterOutcome {
    pub config: ClusterConfig,
    pub plan: SamplePlan,
    pub nodes: Vec<AppRun>,
    pub report: ClusterReport,
}

/// Run `n` independent jobs on at most `workers` threads, gathering
/// results by index (completion order never shows in the output).
fn indexed_parallel<T: Send>(n: usize, workers: usize, job: impl Fn(usize) -> T + Sync) -> Vec<T> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    let workers = workers.min(n).max(1);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let job = &job;
            scope.spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                if tx.send((idx, job(idx))).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut out: Vec<Option<T>> = Vec::new();
    out.resize_with(n, || None);
    for (idx, value) in rx {
        out[idx] = Some(value);
    }
    out.into_iter()
        .map(|v| v.expect("worker panicked"))
        .collect()
}

fn worker_count(config: &ClusterConfig) -> usize {
    config.workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Extract one node's BSP rank input on the bare trace clock: the
/// observed rank's noise chart and the trace horizon. Start offsets
/// and faults are applied at assembly.
fn bare_series(run: &AppRun) -> RankSeries {
    RankSeries::new(
        NoiseChart::build(&run.analysis, run.observed_rank()),
        run.result.end_time,
    )
}

/// Build [`ScaleModel`]'s window distribution from a rank series
/// directly (shared by the in-memory and the stored path, so both
/// produce the same analytic column). Windows are bucketed from the
/// rank's staggered start, so the analytic model resamples exactly the
/// windows the fixed-grid coupling walks. Works for synthetic ranks
/// too (their windows are closed-form surrogate queries).
fn model_from_series(series: &RankSeries, granularity: Nanos) -> ScaleModel {
    ScaleModel::from_windows(granularity, series.windows(granularity))
}

/// Fit the surrogate (when the plan leaves synthetic ranks) and build
/// the full rank population: mechanistic sample members keep their
/// simulated series, every other rank is a synthetic draw against the
/// shared surrogate. Start offsets and cluster-tier faults apply to
/// both kinds identically — staggering and fault injection survive
/// synthesis mechanically.
fn assemble_series(
    config: &ClusterConfig,
    plan: &SamplePlan,
    sample: Vec<RankSeries>,
) -> (Vec<RankSeries>, Option<Arc<NoiseSurrogate>>) {
    let surrogate = (!plan.is_full(config.nodes))
        .then(|| Arc::new(NoiseSurrogate::fit(&sample, config.granularity)));
    let mut mech: BTreeMap<usize, RankSeries> =
        plan.mechanistic.iter().copied().zip(sample).collect();
    let series = (0..config.nodes)
        .map(|i| {
            let s = match mech.remove(&i) {
                Some(s) => s,
                None => RankSeries::synthetic(SyntheticRank::new(
                    surrogate
                        .clone()
                        .expect("synthetic rank outside a tiered plan"),
                    derive_indexed_seed(config.seed, SYNTH_LABEL, i as u64),
                )),
            };
            s.with_start(config.node_start(i))
                .with_faults(config.rank_faults(i))
        })
        .collect();
    (series, surrogate)
}

/// Validate the surrogate against its own ground truth: at power-of-2
/// prefixes of the mechanistic sample, couple the sampled ranks as-is
/// versus synthetic twins drawn at the same starts and faults. The
/// twins use a draw-seed label distinct from the campaign's synthetic
/// ranks, so validation never shares draws with the population it
/// vouches for.
fn validate_surrogate(
    config: &ClusterConfig,
    plan: &SamplePlan,
    series: &[RankSeries],
    surrogate: &Arc<NoiseSurrogate>,
    params: &BspParams,
) -> Vec<TierValidation> {
    let cap = plan.mechanistic.len().min(VALIDATE_CAP);
    let mut scales = Vec::new();
    let mut v = 4;
    while v <= cap {
        scales.push(v);
        v *= 2;
    }
    if scales.last() != Some(&cap) && cap >= 4 {
        scales.push(cap);
    }
    scales
        .into_iter()
        .map(|v| {
            let indices = &plan.mechanistic[..v];
            let mech: Vec<RankSeries> = indices.iter().map(|&i| series[i].clone()).collect();
            let twins: Vec<RankSeries> = indices
                .iter()
                .map(|&i| {
                    RankSeries::synthetic(SyntheticRank::new(
                        surrogate.clone(),
                        derive_indexed_seed(config.seed, VALIDATE_LABEL, i as u64),
                    ))
                    .with_start(config.node_start(i))
                    .with_faults(config.rank_faults(i))
                })
                .collect();
            let m = CollectiveBreakdown::from_ranks(&mech, params).mean_max_noise;
            let s = CollectiveBreakdown::from_ranks(&twins, params).mean_max_noise;
            TierValidation {
                nodes: v,
                mechanistic_mean_max: m,
                surrogate_mean_max: s,
                ratio: if m.is_zero() {
                    1.0
                } else {
                    s.as_nanos() as f64 / m.as_nanos() as f64
                },
            }
        })
        .collect()
}

/// The power-of-two sub-scales reported by the curve (always includes
/// 1 and `n`).
fn curve_scales(n: usize) -> Vec<usize> {
    let mut scales = Vec::new();
    let mut k = 1;
    while k < n {
        scales.push(k);
        k *= 2;
    }
    if n > 0 {
        scales.push(n);
    }
    scales
}

/// Couple the rank series at every sub-scale and assemble the report.
/// Every coupling goes through the streamed
/// [`CollectiveBreakdown::from_ranks`] fold — nothing O(ranks×phases)
/// is materialized — and the analytic columns use the exact
/// order-statistics estimator, whose cost is independent of the node
/// count (Monte-Carlo resampling at 100k nodes would dwarf the
/// coupling itself).
fn build_report(
    config: &ClusterConfig,
    plan: &SamplePlan,
    series: &[RankSeries],
    surrogate: Option<&Arc<NoiseSurrogate>>,
) -> ClusterReport {
    let params = config.bsp();
    let tiered = !plan.is_full(config.nodes);
    // Analytic model: node 0's fixed-grid windows, the same input
    // `ScaleModel::from_run` would build.
    let model = series
        .first()
        .map(|s| model_from_series(s, config.granularity))
        .unwrap_or_else(|| ScaleModel::from_windows(config.granularity, Vec::new()));
    let g = config.granularity.as_nanos() as f64;

    // The sub-scale curve solves and the fixed-grid differential are
    // pure functions of `(series, params)`, independent of each other
    // — and at 10k+ ranks they dominate the non-simulation wall time,
    // so they fan out on the same worker pool as the node sims. Jobs
    // gather by index, keeping reports byte-identical at any worker
    // count.
    let scales = curve_scales(config.nodes);
    let mut breakdowns = indexed_parallel(scales.len() + 1, worker_count(config), |j| {
        if j < scales.len() {
            CollectiveBreakdown::from_ranks(&series[..scales[j]], &params)
        } else {
            CollectiveBreakdown::from_ranks(series, &params.fixed_grid())
        }
    });
    let grid = breakdowns.pop().expect("fixed-grid job");
    let mut curve = Vec::new();
    for (&k, b) in scales.iter().zip(&breakdowns) {
        let analytic = model.expected_max_noise_exact(k as u64);
        curve.push(ClusterScalePoint {
            nodes: k,
            phases: b.nphases,
            mean_max_noise: b.mean_max_noise,
            slowdown: b.slowdown,
            efficiency: b.efficiency,
            analytic_expected_max: analytic,
            analytic_slowdown: (g + analytic.as_nanos() as f64) / g,
            dominant: b.dominant(),
            barrier_paid: b.barrier_paid.clone(),
        });
    }
    // `curve_scales` ends at the campaign's full scale, so the last
    // breakdown doubles as the headline numbers.
    let full = breakdowns
        .pop()
        .unwrap_or_else(|| CollectiveBreakdown::from_ranks(&[], &params));
    let analytic_expected_max = model.expected_max_noise_exact(config.nodes.max(1) as u64);
    let mech = full.mean_max_noise.as_nanos() as f64;
    let ana = analytic_expected_max.as_nanos() as f64;

    // The tight differential: fixed-grid coupling (solved above) vs
    // the analytic expectation over pooled windows. Both estimate
    // E[max_N W] over the same empirical distribution; they differ
    // only by with/without-replacement sampling. Pooling is capped —
    // beyond a few hundred ranks more windows no longer move the
    // estimate.
    let pooled_windows: Vec<Nanos> = series
        .iter()
        .take(POOL_CAP)
        .flat_map(|s| s.windows(config.granularity))
        .collect();
    let pooled = ScaleModel::from_windows(config.granularity, pooled_windows);
    let pooled_expected_max = pooled.expected_max_noise_exact(config.nodes.max(1) as u64);
    let grid_mean = grid.mean_max_noise.as_nanos() as f64;
    let pooled_ana = pooled_expected_max.as_nanos() as f64;

    let (node_seeds, node_starts) = if tiered {
        (
            plan.mechanistic
                .iter()
                .map(|&i| config.node_seed(i))
                .collect(),
            plan.mechanistic
                .iter()
                .map(|&i| config.node_start(i))
                .collect(),
        )
    } else {
        (
            (0..config.nodes).map(|i| config.node_seed(i)).collect(),
            (0..config.nodes).map(|i| config.node_start(i)).collect(),
        )
    };
    let (ranks, synthetic_ranks, tier) = if tiered {
        let surrogate = surrogate.expect("tiered plan without a surrogate");
        let validation = validate_surrogate(config, plan, series, surrogate, &params);
        let mut mech_rows = Vec::with_capacity(plan.mechanistic.len());
        let mut synth_rows = Vec::with_capacity(series.len() - plan.mechanistic.len());
        let mut next_mech = plan.mechanistic.iter().copied().peekable();
        for row in full.ranks {
            if next_mech.peek() == Some(&row.rank) {
                next_mech.next();
                mech_rows.push(row);
            } else {
                synth_rows.push(row);
            }
        }
        let meta = TierMeta {
            mode: match config.tier {
                Tier::Auto => "auto".to_string(),
                _ => "sampled".to_string(),
            },
            sample_fraction: plan.mechanistic.len() as f64 / config.nodes.max(1) as f64,
            strata: plan.strata,
            mechanistic_nodes: plan.mechanistic.len(),
            synthetic_nodes: config.nodes - plan.mechanistic.len(),
            mechanistic_indices: plan.mechanistic.clone(),
            validation,
        };
        (
            mech_rows,
            Some(RankSummary::fold(synth_rows.iter())),
            Some(meta),
        )
    } else {
        (full.ranks, None, None)
    };

    ClusterReport {
        app: config.app,
        nodes: config.nodes,
        seed: config.seed,
        node_seeds,
        node_starts,
        duration: config.duration,
        granularity: config.granularity,
        phases: full.nphases,
        ideal: full.ideal,
        elapsed: full.elapsed,
        slowdown: full.slowdown,
        efficiency: full.efficiency,
        mean_max_noise: full.mean_max_noise,
        single_node_mean_noise: model.mean_window_noise(),
        analytic_expected_max,
        mechanistic_over_analytic: if ana > 0.0 { mech / ana } else { 1.0 },
        grid_mean_max_noise: grid.mean_max_noise,
        grid_over_analytic: if pooled_ana > 0.0 {
            grid_mean / pooled_ana
        } else {
            1.0
        },
        pooled_expected_max,
        barrier_paid: full.barrier_paid,
        barrier_injected: full.barrier_injected,
        ranks,
        synthetic_ranks,
        tier,
        curve,
    }
}

/// Runtime options that do not affect results (progress reporting).
#[derive(Clone, Copy, Debug, Default)]
pub struct RunOpts {
    /// Print a progress line to stderr after every `n` completed node
    /// simulations; `Some(0)` picks a stride of ~10% of the campaign.
    pub progress_every: Option<usize>,
}

fn progress_stride(opts: RunOpts, total: usize) -> Option<usize> {
    opts.progress_every
        .map(|every| {
            if every == 0 {
                (total / 10).max(1)
            } else {
                every
            }
        })
        .filter(|_| total > 1)
}

/// Run the cluster campaign in memory: the plan's mechanistic nodes
/// simulate in parallel, the rest of the population (if any) is
/// synthesized from the fitted surrogate, then the BSP coupling and
/// report.
pub fn run_cluster(config: &ClusterConfig) -> ClusterOutcome {
    run_cluster_opts(config, RunOpts::default())
}

/// [`run_cluster`] with runtime options.
pub fn run_cluster_opts(config: &ClusterConfig, opts: RunOpts) -> ClusterOutcome {
    let plan = config.sample_plan();
    let total = plan.mechanistic.len();
    let stride = progress_stride(opts, total);
    let done = AtomicUsize::new(0);
    let nodes = indexed_parallel(total, worker_count(config), |k| {
        let run = run_app(config.node_experiment(plan.mechanistic[k]));
        if let Some(stride) = stride {
            let d = done.fetch_add(1, Ordering::Relaxed) + 1;
            if d.is_multiple_of(stride) || d == total {
                eprintln!("cluster: {d}/{total} mechanistic node simulations done");
            }
        }
        run
    });
    let sample: Vec<RankSeries> = nodes.iter().map(bare_series).collect();
    let (series, surrogate) = assemble_series(config, &plan, sample);
    let report = build_report(config, &plan, &series, surrogate.as_ref());
    ClusterOutcome {
        config: config.clone(),
        plan,
        nodes,
        report,
    }
}

/// Run the cluster with every node *spilling* its trace to
/// `dir/node-<i>.osn` while it runs (the [`record_app`] path: the
/// traces are never memory-resident), then rebuild the rank series by
/// streamed out-of-core analysis of each store file. The report is
/// byte-identical to [`run_cluster`]'s on the same config.
pub fn run_cluster_stored(
    config: &ClusterConfig,
    dir: &Path,
    opts: StoreOptions,
) -> io::Result<(ClusterReport, Vec<PathBuf>)> {
    run_cluster_stored_opts(config, dir, opts, RunOpts::default())
}

/// [`run_cluster_stored`] with runtime options. Only the plan's
/// mechanistic nodes are recorded (synthetic ranks have no trace), so
/// a tiered 100k-rank campaign spills a sample-sized store.
pub fn run_cluster_stored_opts(
    config: &ClusterConfig,
    dir: &Path,
    opts: StoreOptions,
    run_opts: RunOpts,
) -> io::Result<(ClusterReport, Vec<PathBuf>)> {
    std::fs::create_dir_all(dir)?;
    let plan = config.sample_plan();
    let total = plan.mechanistic.len();
    let paths: Vec<PathBuf> = plan
        .mechanistic
        .iter()
        .map(|i| dir.join(format!("node-{i}.osn")))
        .collect();
    let stride = progress_stride(run_opts, total);
    let done = AtomicUsize::new(0);
    let recorded = indexed_parallel(total, worker_count(config), |k| {
        let r = record_app(config.node_experiment(plan.mechanistic[k]), &paths[k], opts);
        if let Some(stride) = stride {
            let d = done.fetch_add(1, Ordering::Relaxed) + 1;
            if d.is_multiple_of(stride) || d == total {
                eprintln!("cluster: {d}/{total} mechanistic node recordings done");
            }
        }
        r
    });
    for r in &recorded {
        if let Err(e) = r {
            return Err(io::Error::new(e.kind(), e.to_string()));
        }
    }
    let sample = paths
        .iter()
        .map(|path| stored_rank_series(path))
        .collect::<io::Result<Vec<_>>>()?;
    let (series, surrogate) = assemble_series(config, &plan, sample);
    Ok((
        build_report(config, &plan, &series, surrogate.as_ref()),
        paths,
    ))
}

/// Rebuild one node's bare rank series from its store file,
/// out-of-core.
fn stored_rank_series(path: &Path) -> io::Result<RankSeries> {
    let reader = crate::store::Reader::open(path)?;
    let meta = StoredRunMeta::from_bytes(reader.metadata())?;
    let analysis = analyze_store(&reader, &meta.result)?;
    let observed = observed_rank_of(&analysis, &meta.ranks, meta.config.node.net_irq_cpu);
    Ok(RankSeries::new(
        NoiseChart::build(&analysis, observed),
        meta.result.end_time,
    ))
}

impl ClusterReport {
    /// Human-readable campaign summary.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} cluster — {} nodes, {} phases of {}, seed {:#x}",
            self.app.name().to_uppercase(),
            self.nodes,
            self.phases,
            self.granularity,
            self.seed,
        );
        let _ = writeln!(
            out,
            "  ideal {}  elapsed {}  slowdown {:.4}x  efficiency {:.2}%",
            self.ideal,
            self.elapsed,
            self.slowdown,
            self.efficiency * 100.0
        );
        let _ = writeln!(
            out,
            "  mean max noise/phase {} (analytic {}, mech/analytic {:.3})",
            self.mean_max_noise, self.analytic_expected_max, self.mechanistic_over_analytic
        );
        let _ = writeln!(
            out,
            "  fixed-grid differential: {} vs pooled analytic {} (ratio {:.3})",
            self.grid_mean_max_noise, self.pooled_expected_max, self.grid_over_analytic
        );
        if let Some(t) = &self.tier {
            let _ = writeln!(
                out,
                "  tier: {} — {} mechanistic + {} synthetic ranks ({:.1}% sampled, {} strata)",
                t.mode,
                t.mechanistic_nodes,
                t.synthetic_nodes,
                t.sample_fraction * 100.0,
                t.strata,
            );
            for v in &t.validation {
                let _ = writeln!(
                    out,
                    "    surrogate validation @ {:>4} ranks: {} vs mechanistic {} (ratio {:.3})",
                    v.nodes, v.surrogate_mean_max, v.mechanistic_mean_max, v.ratio
                );
            }
        }
        let _ = writeln!(out, "\n  amplification curve (mechanistic vs analytic):");
        for p in &self.curve {
            let _ = writeln!(
                out,
                "    {:>5} nodes: {:>8.4}x slowdown ({:>8.4}x analytic)  E[max W] {:>10} ({:>10})  dominant {}",
                p.nodes,
                p.slowdown,
                p.analytic_slowdown,
                p.mean_max_noise.to_string(),
                p.analytic_expected_max.to_string(),
                p.dominant.map(|c| c.name()).unwrap_or("-"),
            );
        }
        let _ = writeln!(out, "\n  barrier paid by noise class (full scale):");
        let total = self.barrier_paid.iter().map(|(_, d)| *d).sum::<Nanos>();
        for (cat, d) in &self.barrier_paid {
            let share = if total.is_zero() {
                0.0
            } else {
                d.as_nanos() as f64 / total.as_nanos() as f64 * 100.0
            };
            let _ = writeln!(
                out,
                "    {:<12} {:>12}  {:>5.1}%",
                cat.name(),
                d.to_string(),
                share
            );
        }
        let injected_total = self.barrier_injected.iter().map(|(_, d)| *d).sum::<Nanos>();
        if !injected_total.is_zero() {
            let _ = writeln!(out, "\n  barrier paid by injected fault class:");
            for (class, d) in &self.barrier_injected {
                let share = d.as_nanos() as f64 / injected_total.as_nanos() as f64 * 100.0;
                let _ = writeln!(
                    out,
                    "    {:<12} {:>12}  {:>5.1}%",
                    class.name(),
                    d.to_string(),
                    share
                );
            }
        }
        let _ = writeln!(out, "\n  per-rank accounting:");
        for r in &self.ranks {
            let _ = writeln!(
                out,
                "    rank {:>3}: compute {}  self-noise {}  wait {}  critical in {}/{} phases",
                r.rank, r.compute, r.self_noise, r.wait, r.critical_phases, self.phases
            );
        }
        if let Some(s) = &self.synthetic_ranks {
            let _ = writeln!(
                out,
                "    synthetic ({} ranks): self-noise mean {} ± {} (max {})  wait mean {}  critical in {}/{} phases",
                s.count,
                s.mean_self_noise,
                s.stddev_self_noise,
                s.max_self_noise,
                s.mean_wait,
                s.critical_phases,
                self.phases,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(nodes: usize) -> ClusterConfig {
        let mut config = ClusterConfig::new(App::Sphot, nodes, Nanos::from_millis(400));
        config.cpus = Some(2);
        config.seed = 77;
        config
    }

    #[test]
    fn cluster_runs_and_amplifies() {
        let outcome = run_cluster(&tiny(3));
        let r = &outcome.report;
        assert_eq!(r.nodes, 3);
        assert!(r.phases > 100, "{} phases", r.phases);
        assert!(r.slowdown >= 1.0);
        // Amplification: the 3-node barrier pays at least the mean
        // single-node window noise.
        assert!(r.mean_max_noise >= r.single_node_mean_noise);
        // Curve covers 1, 2, 3 and is monotone in expected max noise.
        let scales: Vec<usize> = r.curve.iter().map(|p| p.nodes).collect();
        assert_eq!(scales, vec![1, 2, 3]);
        assert!(r.curve[0].mean_max_noise <= r.curve[2].mean_max_noise);
        // Per-rank accounting closes.
        for rank in &r.ranks {
            assert_eq!(rank.compute + rank.self_noise + rank.wait, r.elapsed);
        }
        // Render mentions the dominant class section.
        assert!(r.render().contains("barrier paid by noise class"));
    }

    #[test]
    fn node_seeds_are_distinct_and_reported() {
        let config = tiny(4);
        let outcome = run_cluster(&config);
        let seeds = &outcome.report.node_seeds;
        assert_eq!(seeds.len(), 4);
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), 4);
        for (i, s) in seeds.iter().enumerate() {
            assert_eq!(*s, config.node_seed(i));
        }
        // Distinct seeds produce distinct traces.
        assert_ne!(outcome.nodes[0].trace.len(), 0, "node 0 produced no events");
        assert_ne!(
            outcome.nodes[0].trace.events, outcome.nodes[1].trace.events,
            "nodes 0 and 1 are identical — seed derivation broken"
        );
    }

    #[test]
    fn max_phases_is_honored() {
        let mut config = tiny(2);
        config.max_phases = 25;
        let outcome = run_cluster(&config);
        assert_eq!(outcome.report.phases, 25);
    }

    #[test]
    fn parse_inject_spec_covers_every_kind() {
        let spec = "dvfs:period=10ms,duty=0.2,factor=3,node=1; \
                    steal:interval=5ms,duration=200us; \
                    numa:split=4,factor=2.5; \
                    crash:node=1,at=100ms,down=50ms; \
                    straggler:node=2,factor=1.5; \
                    partition:node=0,at=50ms,dur=100ms,delay=2ms; \
                    jitter:mean=50us";
        let specs = parse_inject_spec(spec).unwrap();
        assert_eq!(specs.len(), 7);
        assert_eq!(
            specs[0],
            Injection::Dvfs {
                node: Some(1),
                period: Nanos::from_millis(10),
                duty: 0.2,
                factor: 3.0,
            }
        );
        assert_eq!(
            specs[1],
            Injection::Steal {
                node: None,
                mean_interval: Nanos::from_millis(5),
                mean_duration: Nanos::from_micros(200),
            }
        );
        assert_eq!(
            specs[3],
            Injection::Crash {
                node: 1,
                at: Nanos::from_millis(100),
                down: Nanos::from_millis(50),
            }
        );
        assert_eq!(
            specs[5],
            Injection::Partition {
                node: 0,
                at: Nanos::from_millis(50),
                duration: Nanos::from_millis(100),
                delay: Nanos::from_millis(2),
            }
        );
    }

    #[test]
    fn parse_inject_spec_rejects_malformed_input() {
        assert!(parse_inject_spec("meteor:node=1").is_err(), "unknown kind");
        assert!(
            parse_inject_spec("crash:at=1ms,down=1ms").is_err(),
            "missing node"
        );
        assert!(
            parse_inject_spec("jitter:mean=50").is_err(),
            "missing duration suffix"
        );
        assert!(
            parse_inject_spec("straggler:node=0,factor=1.5,bogus=1").is_err(),
            "unknown key"
        );
        assert!(
            parse_inject_spec("steal:interval").is_err(),
            "key without value"
        );
    }

    #[test]
    fn kernel_injections_lower_into_node_configs() {
        let mut config = tiny(3);
        config.inject.specs =
            parse_inject_spec("steal:interval=5ms,duration=200us,node=1; numa:split=1,factor=2.0")
                .unwrap();
        // Node 0: only the unfiltered NUMA spec.
        let n0 = config.node_experiment(0).node.perturb;
        assert!(n0.steal.is_empty());
        assert_eq!(n0.numa.unwrap().split_cpu, 1);
        // Node 1: steal too.
        let n1 = config.node_experiment(1).node.perturb;
        assert_eq!(n1.steal.len(), 1);
        assert_eq!(n1.steal[0].mean_interval, Nanos::from_millis(5));
        // No injection at all: the node config stays default.
        let healthy = tiny(3).node_experiment(1).node.perturb;
        assert!(healthy.is_empty());
    }

    #[test]
    fn cluster_faults_lower_into_rank_faults() {
        let mut config = tiny(4);
        config.inject.specs = parse_inject_spec(
            "crash:node=1,at=10ms,down=5ms; straggler:node=2,factor=1.5; jitter:mean=20us",
        )
        .unwrap();
        let f1 = config.rank_faults(1);
        assert_eq!(
            f1.outages,
            vec![(Nanos::from_millis(10), Nanos::from_millis(15))]
        );
        assert_eq!(f1.slow_factor, 1.0);
        let f2 = config.rank_faults(2);
        assert_eq!(f2.slow_factor, 1.5);
        assert!(f2.outages.is_empty());
        // Jitter applies to all ranks, decorrelated by per-rank seeds.
        assert_eq!(f1.jitter_mean, Nanos::from_micros(20));
        assert_ne!(f1.jitter_seed, f2.jitter_seed);
        // Healthy config: empty faults on every rank.
        assert!(tiny(4).rank_faults(1).is_empty());
    }

    #[test]
    fn injected_cluster_attributes_each_class() {
        let mut config = tiny(3);
        config.max_phases = 200;
        config.inject.specs = parse_inject_spec(
            "crash:node=1,at=20ms,down=10ms; straggler:node=2,factor=1.2; \
             partition:node=0,at=50ms,dur=150ms,delay=500us; jitter:mean=10us",
        )
        .unwrap();
        let outcome = run_cluster(&config);
        let injected = &outcome.report.barrier_injected;
        for class in osn_analysis::collective::InjectedClass::ALL {
            let row = injected
                .iter()
                .find(|(c, _)| *c == class)
                .map(|(_, d)| *d)
                .unwrap();
            assert!(
                !row.is_zero(),
                "injected class {} paid nothing at the barrier",
                class.name()
            );
        }
        assert!(outcome.report.render().contains("injected fault class"));
        // The healthy campaign pays nothing on those rows and keeps
        // its render free of the injected section.
        let healthy = run_cluster(&{
            let mut c = tiny(3);
            c.max_phases = 200;
            c
        });
        assert!(healthy
            .report
            .barrier_injected
            .iter()
            .all(|(_, d)| d.is_zero()));
        assert!(!healthy.report.render().contains("injected fault class"));
    }

    #[test]
    fn parse_tier_covers_the_grammar() {
        assert_eq!(parse_tier("mechanistic").unwrap(), Tier::Mechanistic);
        assert_eq!(parse_tier("mech").unwrap(), Tier::Mechanistic);
        assert_eq!(parse_tier("auto").unwrap(), Tier::Auto);
        assert_eq!(parse_tier("sampled").unwrap(), Tier::Auto);
        assert_eq!(
            parse_tier("sampled:0.25").unwrap(),
            Tier::Sampled { fraction: 0.25 }
        );
        assert_eq!(
            parse_tier(" sampled:1.0 ").unwrap(),
            Tier::Sampled { fraction: 1.0 }
        );
        assert!(parse_tier("sampled:0").is_err());
        assert!(parse_tier("sampled:1.5").is_err());
        assert!(parse_tier("sampled:x").is_err());
        assert!(parse_tier("quantum").is_err());
    }

    #[test]
    fn tier_field_defaults_on_old_configs_and_round_trips() {
        let config = tiny(2);
        let json = serde_json::to_string(&config).unwrap();
        let idx = json.find(",\"tier\":").expect("tier serialized");
        let tail = json[idx + 1..].find(',').map(|j| idx + 1 + j);
        let stripped = match tail {
            Some(j) => format!("{}{}", &json[..idx], &json[j..]),
            None => format!("{}}}", &json[..idx]),
        };
        let back: ClusterConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.tier, Tier::Mechanistic);
        for tier in [
            Tier::Mechanistic,
            Tier::Auto,
            Tier::Sampled { fraction: 0.25 },
        ] {
            let mut with = tiny(2);
            with.tier = tier;
            let json = serde_json::to_string(&with).unwrap();
            let back: ClusterConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(back.tier, tier);
        }
    }

    #[test]
    fn sample_plan_is_stratified_deterministic_and_forced() {
        let mut config = tiny(64);
        config.tier = Tier::Sampled { fraction: 0.25 };
        let plan = config.sample_plan();
        assert_eq!(plan.mechanistic.len(), 16);
        assert_eq!(plan.strata, 8);
        assert!(
            plan.mechanistic.windows(2).all(|w| w[0] < w[1]),
            "sorted unique"
        );
        assert!(plan.mechanistic.iter().all(|&i| i < 64));
        assert_eq!(plan, config.sample_plan(), "plan must be deterministic");
        // Sample floor: tiny fractions clamp to MIN_SAMPLE.
        config.tier = Tier::Sampled { fraction: 0.01 };
        assert_eq!(config.sample_plan().mechanistic.len(), 8);
        // A kernel-tier injection forces its node into the sample.
        config.tier = Tier::Sampled { fraction: 0.25 };
        config.inject.specs =
            parse_inject_spec("steal:interval=5ms,duration=200us,node=63").unwrap();
        assert!(config.sample_plan().mechanistic.contains(&63));
        // A cluster-tier fault does not (it applies to synthetic ranks
        // too).
        config.inject.specs = parse_inject_spec("crash:node=62,at=1ms,down=1ms").unwrap();
        let plan = config.sample_plan();
        assert_eq!(plan.mechanistic.len(), 16);
        // Full-coverage tiers collapse to the identity plan.
        config.tier = Tier::Sampled { fraction: 1.0 };
        assert_eq!(config.sample_plan(), SamplePlan::full(64));
        config.tier = Tier::Auto;
        assert_eq!(config.sample_plan(), SamplePlan::full(64));
        config.tier = Tier::Mechanistic;
        assert_eq!(config.sample_plan(), SamplePlan::full(64));
    }

    #[test]
    fn tiered_run_reports_tier_metadata() {
        let mut config = tiny(12);
        config.tier = Tier::Sampled { fraction: 0.5 };
        config.max_phases = 60;
        let outcome = run_cluster(&config);
        let r = &outcome.report;
        // 0.5 * 12 = 6 clamps up to the MIN_SAMPLE floor of 8.
        assert_eq!(outcome.plan.mechanistic.len(), 8);
        let t = r.tier.as_ref().expect("tier metadata");
        assert_eq!(t.mechanistic_nodes, 8);
        assert_eq!(t.synthetic_nodes, 4);
        assert_eq!(t.mechanistic_indices, outcome.plan.mechanistic);
        assert!(!t.validation.is_empty(), "validation scales 4 and 8");
        assert_eq!(t.validation.last().unwrap().nodes, 8);
        let s = r.synthetic_ranks.as_ref().expect("synthetic summary");
        assert_eq!(s.count, 4);
        assert_eq!(r.ranks.len(), 8);
        // Mechanistic rank rows carry global indices from the plan.
        let rows: Vec<usize> = r.ranks.iter().map(|x| x.rank).collect();
        assert_eq!(rows, outcome.plan.mechanistic);
        assert_eq!(r.node_seeds.len(), 8);
        assert!(r.render().contains("tier: sampled"));
        assert!(r.render().contains("synthetic (4 ranks)"));
        // An untiered run of the same campaign carries no tier rows.
        let mech = run_cluster(&{
            let mut c = tiny(12);
            c.max_phases = 60;
            c
        });
        assert!(mech.report.tier.is_none());
        assert!(mech.report.synthetic_ranks.is_none());
        assert_eq!(mech.report.ranks.len(), 12);
    }

    /// Cluster configs serialized before the `inject` field existed
    /// must still deserialize (to the empty injection set).
    #[test]
    fn inject_field_defaults_on_old_configs() {
        let config = tiny(2);
        let json = serde_json::to_string(&config).unwrap();
        let idx = json.find(",\"inject\":").expect("inject serialized last");
        let stripped = format!("{}}}", &json[..idx]);
        let back: ClusterConfig = serde_json::from_str(&stripped).unwrap();
        assert!(back.inject.is_empty());
        // And the full form round-trips.
        let mut with = tiny(2);
        with.inject.specs = parse_inject_spec("straggler:node=0,factor=2").unwrap();
        let json = serde_json::to_string(&with).unwrap();
        let back: ClusterConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.inject, with.inject);
    }
}
