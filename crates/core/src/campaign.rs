//! Multi-application campaigns: run the whole Sequoia suite (each app
//! on its own simulated node, as in the paper's one-app-at-a-time
//! experiments), in parallel across host threads.

use osn_kernel::time::Nanos;
use osn_workloads::App;

use crate::experiment::{run_app, AppRun, ExperimentConfig};
use crate::report::PaperReport;

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    pub apps: Vec<App>,
    pub duration: Nanos,
    pub seed: u64,
    /// Ranks per app (defaults to one per CPU).
    pub nranks: Option<usize>,
    pub cpus: Option<u16>,
}

impl CampaignConfig {
    pub fn paper(duration: Nanos) -> Self {
        CampaignConfig {
            apps: App::ALL.to_vec(),
            duration,
            seed: 0x0511_2011,
            nranks: None,
            cpus: None,
        }
    }

    fn experiment(&self, app: App) -> ExperimentConfig {
        let mut config = ExperimentConfig::paper(app, self.duration).with_seed(self.seed);
        if let Some(cpus) = self.cpus {
            config.node.cpus = cpus;
            config.nranks = cpus as usize;
        }
        if let Some(nranks) = self.nranks {
            config.nranks = nranks;
        }
        config
    }
}

/// Run every app of the campaign, one host thread per app (the
/// simulations are independent nodes).
pub fn run_campaign(config: &CampaignConfig) -> Vec<AppRun> {
    let mut runs: Vec<Option<AppRun>> = Vec::new();
    runs.resize_with(config.apps.len(), || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for app in &config.apps {
            let exp = config.experiment(*app);
            handles.push(scope.spawn(move || run_app(exp)));
        }
        for (slot, handle) in runs.iter_mut().zip(handles) {
            *slot = Some(handle.join().expect("app run panicked"));
        }
    });
    runs.into_iter().map(|r| r.expect("filled")).collect()
}

/// Convenience: run the campaign and build the paper report.
pub fn campaign_report(config: &CampaignConfig) -> (Vec<AppRun>, PaperReport) {
    let runs = run_campaign(config);
    let report = PaperReport::build(&runs);
    (runs, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_app_campaign_runs_in_parallel() {
        let config = CampaignConfig {
            apps: vec![App::Sphot, App::Lammps],
            duration: Nanos::from_millis(200),
            seed: 5,
            nranks: Some(2),
            cpus: Some(2),
        };
        let (runs, report) = campaign_report(&config);
        assert_eq!(runs.len(), 2);
        assert_eq!(report.apps.len(), 2);
        assert_eq!(runs[0].app, App::Sphot);
        assert_eq!(runs[1].app, App::Lammps);
        for run in &runs {
            assert!(!run.trace.is_empty());
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let config = CampaignConfig {
            apps: vec![App::Sphot],
            duration: Nanos::from_millis(150),
            seed: 9,
            nranks: Some(2),
            cpus: Some(2),
        };
        let a = run_campaign(&config);
        let b = run_campaign(&config);
        assert_eq!(a[0].trace.len(), b[0].trace.len());
        assert_eq!(a[0].result.end_time, b[0].result.end_time);
        assert_eq!(a[0].trace.events, b[0].trace.events);
    }
}
