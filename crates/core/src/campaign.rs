//! Multi-application campaigns: run the whole Sequoia suite (each app
//! on its own simulated node, as in the paper's one-app-at-a-time
//! experiments), in parallel across host threads.

use osn_kernel::time::Nanos;
use osn_workloads::App;

use crate::experiment::{run_app, AppRun, ExperimentConfig};
use crate::report::PaperReport;

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    pub apps: Vec<App>,
    pub duration: Nanos,
    pub seed: u64,
    /// Ranks per app (defaults to one per CPU).
    pub nranks: Option<usize>,
    pub cpus: Option<u16>,
}

impl CampaignConfig {
    pub fn paper(duration: Nanos) -> Self {
        CampaignConfig {
            apps: App::ALL.to_vec(),
            duration,
            seed: 0x0511_2011,
            nranks: None,
            cpus: None,
        }
    }

    fn experiment(&self, app: App) -> ExperimentConfig {
        let mut config = ExperimentConfig::paper(app, self.duration).with_seed(self.seed);
        if let Some(cpus) = self.cpus {
            config.node.cpus = cpus;
            config.nranks = cpus as usize;
        }
        if let Some(nranks) = self.nranks {
            config.nranks = nranks;
        }
        config
    }
}

/// Run every app of the campaign in parallel (the simulations are
/// independent nodes), on at most `available_parallelism()` host
/// threads: workers pull the next app index off a shared counter, so a
/// campaign larger than the host never oversubscribes it. Results come
/// back in `config.apps` order regardless of completion order.
pub fn run_campaign(config: &CampaignConfig) -> Vec<AppRun> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    let napps = config.apps.len();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(napps)
        .max(1);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, AppRun)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= napps {
                    break;
                }
                let exp = config.experiment(config.apps[idx]);
                if tx.send((idx, run_app(exp))).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut runs: Vec<Option<AppRun>> = Vec::new();
    runs.resize_with(napps, || None);
    for (idx, run) in rx {
        runs[idx] = Some(run);
    }
    runs.into_iter()
        .map(|r| r.expect("worker panicked"))
        .collect()
}

/// Convenience: run the campaign and build the paper report.
pub fn campaign_report(config: &CampaignConfig) -> (Vec<AppRun>, PaperReport) {
    let runs = run_campaign(config);
    let report = PaperReport::build(&runs);
    (runs, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_app_campaign_runs_in_parallel() {
        let config = CampaignConfig {
            apps: vec![App::Sphot, App::Lammps],
            duration: Nanos::from_millis(200),
            seed: 5,
            nranks: Some(2),
            cpus: Some(2),
        };
        let (runs, report) = campaign_report(&config);
        assert_eq!(runs.len(), 2);
        assert_eq!(report.apps.len(), 2);
        assert_eq!(runs[0].app, App::Sphot);
        assert_eq!(runs[1].app, App::Lammps);
        for run in &runs {
            assert!(!run.trace.is_empty());
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let config = CampaignConfig {
            apps: vec![App::Sphot],
            duration: Nanos::from_millis(150),
            seed: 9,
            nranks: Some(2),
            cpus: Some(2),
        };
        let a = run_campaign(&config);
        let b = run_campaign(&config);
        assert_eq!(a[0].trace.len(), b[0].trace.len());
        assert_eq!(a[0].result.end_time, b[0].result.end_time);
        assert_eq!(a[0].trace.events, b[0].trace.events);
    }
}
