//! Noise amplification at scale — the paper's stated future work:
//! "We plan to use LTT NG-NOISE ... to quantify how our findings affect
//! the scalability of those applications on large machines with
//! hundreds of thousands of cores."
//!
//! # Model
//!
//! A bulk-synchronous application with one rank per node computes for a
//! granularity `g` between barriers. Each rank's iteration takes
//! `g + W`, where `W` is the OS noise falling into its window; the
//! barrier completes when the *slowest* rank arrives, so the expected
//! iteration time is `g + E[max of N samples of W]` — the classic
//! amplification of Petrini et al. (SC'03) and Tsafrir et al. (ICS'05),
//! here driven by the *measured* per-window noise distribution instead
//! of an assumed one.
//!
//! `W`'s distribution is built empirically by slicing the traced run of
//! the observed process into `g`-sized windows and summing interruption
//! noise per window — exactly what the synthetic OS noise chart
//! provides. Scaling to `N` nodes resamples `N` windows per iteration
//! (nodes are independent and identically disturbed, the paper's
//! "inherently redundant across nodes" premise) and averages the
//! maximum over many Monte-Carlo iterations.

use osn_kernel::rng::Stream;
use osn_kernel::time::Nanos;

use serde::{Deserialize, Serialize};

use crate::analysis::chart::NoiseChart;
use crate::experiment::AppRun;

/// Empirical per-window noise model for one application at one
/// granularity.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScaleModel {
    /// Compute granularity between barriers.
    pub granularity: Nanos,
    /// Noise observed in each `granularity` window of the traced run.
    pub windows: Vec<Nanos>,
}

/// One point of the scalability curve.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ScalePoint {
    pub nodes: u64,
    /// Expected per-iteration noise `E[max_N W]`.
    pub expected_max_noise: Nanos,
    /// Iteration slowdown factor `(g + E[max_N W]) / g`.
    pub slowdown: f64,
    /// Parallel efficiency `g / (g + E[max_N W])`.
    pub efficiency: f64,
}

impl ScaleModel {
    /// Build the empirical window distribution from a traced run's
    /// observed process.
    pub fn from_run(run: &AppRun, granularity: Nanos) -> ScaleModel {
        let observed = run.observed_rank();
        let chart = NoiseChart::build(&run.analysis, observed);
        let span = run.result.end_time;
        let nwindows = (span / granularity) as usize;
        let windows = chart.bucket(Nanos::ZERO, granularity, nwindows);
        ScaleModel {
            granularity,
            windows,
        }
    }

    /// Build directly from window samples (tests, synthetic studies).
    pub fn from_windows(granularity: Nanos, windows: Vec<Nanos>) -> ScaleModel {
        ScaleModel {
            granularity,
            windows,
        }
    }

    /// Mean single-node noise per window.
    pub fn mean_window_noise(&self) -> Nanos {
        if self.windows.is_empty() {
            return Nanos::ZERO;
        }
        Nanos(self.windows.iter().map(|n| n.as_nanos()).sum::<u64>() / self.windows.len() as u64)
    }

    /// Monte-Carlo estimate of `E[max over `nodes` samples]` by
    /// resampling the empirical distribution.
    pub fn expected_max_noise(&self, nodes: u64, trials: u32, seed: u64) -> Nanos {
        if self.windows.is_empty() || nodes == 0 {
            return Nanos::ZERO;
        }
        let mut rng = Stream::new(seed, "scale-mc");
        let n = self.windows.len() as u64;
        let mut total = 0u128;
        for _ in 0..trials {
            let mut worst = 0u64;
            for _ in 0..nodes {
                let pick = self.windows[rng.uniform_range(0, n) as usize];
                worst = worst.max(pick.as_nanos());
            }
            total += worst as u128;
        }
        Nanos((total / trials as u128) as u64)
    }

    /// Exact `E[max over `nodes` samples]` under the empirical
    /// distribution, via order statistics: with the `m` window values
    /// sorted ascending, `P[max <= v_k] = (k/m)^N`, so
    /// `E[max] = Σ_k v_k ((k/m)^N − ((k−1)/m)^N)`. Deterministic (no
    /// Monte-Carlo seed) and O(m log m), independent of `nodes` — the
    /// estimator the tiered cluster reports use so 100k-rank analytic
    /// columns cost the same as 64-rank ones.
    pub fn expected_max_noise_exact(&self, nodes: u64) -> Nanos {
        if self.windows.is_empty() || nodes == 0 {
            return Nanos::ZERO;
        }
        let mut sorted: Vec<u64> = self.windows.iter().map(|n| n.as_nanos()).collect();
        sorted.sort_unstable();
        let m = sorted.len() as f64;
        let n = nodes as f64;
        let mut acc = 0.0f64;
        let mut cdf_prev = 0.0f64;
        for (k, v) in sorted.iter().enumerate() {
            let cdf = ((k + 1) as f64 / m).powf(n);
            acc += *v as f64 * (cdf - cdf_prev);
            cdf_prev = cdf;
        }
        Nanos(acc.round() as u64)
    }

    /// One curve point.
    pub fn at(&self, nodes: u64, trials: u32, seed: u64) -> ScalePoint {
        let expected_max_noise = self.expected_max_noise(nodes, trials, seed);
        let g = self.granularity.as_nanos() as f64;
        let w = expected_max_noise.as_nanos() as f64;
        ScalePoint {
            nodes,
            expected_max_noise,
            slowdown: (g + w) / g,
            efficiency: g / (g + w),
        }
    }

    /// One curve point from the exact estimator.
    pub fn at_exact(&self, nodes: u64) -> ScalePoint {
        let expected_max_noise = self.expected_max_noise_exact(nodes);
        let g = self.granularity.as_nanos() as f64;
        let w = expected_max_noise.as_nanos() as f64;
        ScalePoint {
            nodes,
            expected_max_noise,
            slowdown: (g + w) / g,
            efficiency: g / (g + w),
        }
    }

    /// The full curve over a list of node counts.
    pub fn curve(&self, nodes: &[u64], trials: u32, seed: u64) -> Vec<ScalePoint> {
        nodes.iter().map(|n| self.at(*n, trials, seed)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(windows: Vec<u64>) -> ScaleModel {
        ScaleModel::from_windows(
            Nanos::from_millis(1),
            windows.into_iter().map(Nanos).collect(),
        )
    }

    #[test]
    fn single_node_matches_mean() {
        let m = model(vec![100, 200, 300]);
        assert_eq!(m.mean_window_noise(), Nanos(200));
        let one = m.expected_max_noise(1, 20_000, 7);
        // E[max of 1] == mean, within MC error.
        assert!(one.as_nanos().abs_diff(200) < 10, "{one}");
    }

    #[test]
    fn amplification_grows_with_nodes_and_saturates() {
        // 10% of windows carry a big 100 µs hit, the rest are clean:
        // at scale, *some* node hits it almost every iteration.
        let mut windows = vec![0u64; 90];
        windows.extend(vec![100_000u64; 10]);
        let m = model(windows);
        let n1 = m.expected_max_noise(1, 4_000, 1);
        let n8 = m.expected_max_noise(8, 4_000, 1);
        let n64 = m.expected_max_noise(64, 4_000, 1);
        let n4096 = m.expected_max_noise(4096, 4_000, 1);
        assert!(n1 < n8 && n8 < n64, "{n1} {n8} {n64}");
        // Saturation at the distribution maximum.
        assert!(n4096 <= Nanos(100_000));
        assert!(n4096 > Nanos(99_000), "{n4096}");
        // Single node: ~10% chance → ~10 µs expected.
        assert!(n1.as_nanos().abs_diff(10_000) < 2_000, "{n1}");
    }

    #[test]
    fn slowdown_and_efficiency_are_consistent() {
        let m = model(vec![50_000; 10]); // constant 50 µs per 1 ms window
        let p = m.at(1024, 1_000, 3);
        assert!((p.slowdown - 1.05).abs() < 0.001, "{}", p.slowdown);
        assert!((p.efficiency - 1.0 / 1.05).abs() < 0.001);
        assert!((p.slowdown * p.efficiency - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_model_is_noise_free() {
        let m = model(vec![]);
        assert_eq!(m.expected_max_noise(1_000, 100, 1), Nanos::ZERO);
        let p = m.at(1_000, 100, 1);
        assert_eq!(p.slowdown, 1.0);
    }

    #[test]
    fn exact_estimator_agrees_with_monte_carlo() {
        let m = model((0..100).map(|i| i * 997).collect());
        for nodes in [1u64, 8, 64, 1024] {
            let mc = m.expected_max_noise(nodes, 20_000, 11).as_nanos() as f64;
            let exact = m.expected_max_noise_exact(nodes).as_nanos() as f64;
            let tol = (exact * 0.02).max(500.0);
            assert!(
                (mc - exact).abs() <= tol,
                "nodes {nodes}: mc {mc} exact {exact}"
            );
        }
        // Exact special cases: E[max of 1] = mean; huge N saturates at
        // the distribution maximum; empty model is zero.
        let mean = m.mean_window_noise().as_nanos() as f64;
        let e1 = m.expected_max_noise_exact(1).as_nanos() as f64;
        assert!((e1 - mean).abs() <= 1.0, "{e1} vs {mean}");
        assert_eq!(m.expected_max_noise_exact(1 << 40), Nanos(99 * 997));
        assert_eq!(model(vec![]).expected_max_noise_exact(64), Nanos::ZERO);
        assert_eq!(m.expected_max_noise_exact(0), Nanos::ZERO);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = model((0..100).collect());
        assert_eq!(
            m.expected_max_noise(64, 500, 42),
            m.expected_max_noise(64, 500, 42)
        );
    }

    #[test]
    fn fine_granularity_amplifies_more() {
        // The same absolute noise hurts fine-grained apps more: the
        // paper's resonance discussion. Identical windows, smaller g.
        let windows: Vec<Nanos> = (0..100).map(|i| Nanos(i * 500)).collect();
        let fine = ScaleModel::from_windows(Nanos::from_micros(100), windows.clone());
        let coarse = ScaleModel::from_windows(Nanos::from_millis(10), windows);
        let f = fine.at(1024, 2_000, 9);
        let c = coarse.at(1024, 2_000, 9);
        assert!(f.slowdown > c.slowdown);
    }
}
