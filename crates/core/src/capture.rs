//! Native capture → `.osn` glue: run the `osn-ftq` host recorder and
//! persist its synthesized event stream as a self-describing store the
//! unchanged `analyze`/`info`/`serve` pipeline consumes.
//!
//! The store is shaped exactly like a simulated single-CPU run:
//! per-CPU chunks through [`SpillWriter`], a [`StoredRunMeta`] footer
//! whose task table carries the FTQ thread (kind `app`) and the
//! preemptor stand-in (kind `host`), and `source: "native"` so
//! consumers can tell a real-host capture from simulator output.

use std::io;
use std::path::Path;

use osn_ftq::capture::{
    run_capture, Capture, CaptureConfig, CaptureReport, CAPTURE_APP_TID, CAPTURE_CPU,
    CAPTURE_PREEMPTOR_TID,
};
use osn_kernel::config::NodeConfig;
use osn_kernel::node::{NodeStats, RunResult};
use osn_kernel::task::TaskMeta;
use osn_kernel::time::Nanos;
use osn_store::{SpillWriter, StoreOptions, StoreSummary, StoreWriter};
use osn_trace::CaptureSession;
use osn_workloads::App;

use crate::experiment::ExperimentConfig;
use crate::store::{StoredRunMeta, SOURCE_NATIVE};

/// The metadata a finished capture persists: a one-CPU "experiment"
/// whose app is [`App::Native`].
pub fn capture_meta(report: &CaptureReport, events: u64) -> StoredRunMeta {
    let node = NodeConfig {
        cpus: 1,
        cpus_per_package: 1,
        ..NodeConfig::default()
    }
    .with_horizon(report.duration);
    let config = ExperimentConfig {
        app: App::Native,
        nranks: 1,
        duration: report.duration,
        node,
        ring_capacity: 1 << 16,
    };
    let busy = report
        .duration
        .as_nanos()
        .saturating_sub(report.noise_total.as_nanos() + report.probe_overhead.as_nanos());
    let tasks = vec![
        TaskMeta {
            tid: CAPTURE_APP_TID,
            name: "ftq.0".into(),
            kind: "app".into(),
            job: None,
            rank: 0,
            user_time: Nanos(busy),
            faults: 0,
        },
        TaskMeta {
            tid: CAPTURE_PREEMPTOR_TID,
            name: "host".into(),
            kind: "host".into(),
            job: None,
            rank: 0,
            user_time: Nanos::ZERO,
            faults: 0,
        },
    ];
    let stats = NodeStats {
        ticks: report.ticks,
        net_irqs: report.interrupts,
        switches: 1 + 2 * report.preemptions,
        events_processed: events,
        ..NodeStats::default()
    };
    StoredRunMeta {
        config,
        result: RunResult {
            end_time: report.duration,
            tasks,
            stats,
        },
        ranks: vec![CAPTURE_APP_TID],
        source: Some(SOURCE_NATIVE.into()),
    }
}

/// Run a native capture and write it to `path` as a `.osn` store.
/// Returns the capture (report + raw series) alongside the persisted
/// metadata and the writer's summary.
pub fn capture_to_store(
    cfg: CaptureConfig,
    path: &Path,
    opts: StoreOptions,
) -> io::Result<(Capture, StoredRunMeta, StoreSummary)> {
    let capture = run_capture(cfg);
    write_capture(&capture, path, opts).map(|(meta, summary)| (capture, meta, summary))
}

/// Persist an already-run capture (separated from [`capture_to_store`]
/// so benches can time the write path without re-spinning the loop).
pub fn write_capture(
    capture: &Capture,
    path: &Path,
    opts: StoreOptions,
) -> io::Result<(StoredRunMeta, StoreSummary)> {
    let writer = StoreWriter::create(path, 1, opts)?;
    let spill = SpillWriter::new(writer);
    let mut session = CaptureSession::new(Box::new(spill.clone()), CAPTURE_CPU);
    for event in &capture.events {
        session.push(*event);
    }
    let written = session.finish()?;
    let meta = capture_meta(&capture.report, written.appended);
    let summary = spill.finish(&[written.dropped], meta.to_bytes())?;
    Ok((meta, summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{load_run, streamed_report};
    use osn_kernel::time::Nanos;

    fn short_capture() -> Capture {
        run_capture(CaptureConfig {
            duration: Nanos::from_millis(40),
            quantum: Nanos::from_millis(1),
            ..CaptureConfig::default()
        })
    }

    #[test]
    fn captured_store_round_trips_through_both_consumer_paths() {
        let dir = std::env::temp_dir().join(format!("osn-capture-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("native.osn");

        let capture = short_capture();
        let (meta, summary) = write_capture(&capture, &path, StoreOptions::default()).unwrap();
        assert!(meta.is_native());
        assert_eq!(meta.config.app.name(), "native");
        assert_eq!(summary.events, capture.events.len() as u64);

        // The materializing path re-analyzes without native-specific
        // code: the FTQ thread is just an "app" task.
        let run = load_run(&path).unwrap();
        assert_eq!(run.result.tasks.len(), 2);
        assert_eq!(run.trace.len(), capture.events.len());

        // The out-of-core path agrees and reports the same app.
        let (report, smeta) = streamed_report(&path).unwrap();
        assert!(smeta.is_native());
        assert_eq!(report.app.name(), "native");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn capture_meta_marks_source_and_counts() {
        let capture = short_capture();
        let meta = capture_meta(&capture.report, capture.events.len() as u64);
        assert_eq!(meta.source.as_deref(), Some("native"));
        assert_eq!(meta.ranks, vec![CAPTURE_APP_TID]);
        assert_eq!(meta.config.node.cpus, 1);
        assert_eq!(meta.result.stats.ticks, capture.report.ticks);
        // Round-trips through the JSON footer encoding.
        let back = StoredRunMeta::from_bytes(&meta.to_bytes()).unwrap();
        assert!(back.is_native());
    }

    #[test]
    fn simulated_metadata_without_source_reads_as_non_native() {
        // Pre-existing stores carry no `source` key at all: strip it
        // from the JSON to emulate one.
        let capture = short_capture();
        let mut meta = capture_meta(&capture.report, 0);
        meta.source = None;
        let json = String::from_utf8(meta.to_bytes()).unwrap();
        let stripped = json.replace(",\"source\":null", "");
        assert_ne!(json, stripped, "source key should have been present");
        let back = StoredRunMeta::from_bytes(stripped.as_bytes()).unwrap();
        assert!(!back.is_native());
        assert_eq!(back.ranks, meta.ranks);
    }
}
