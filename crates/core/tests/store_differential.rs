//! Differential test for the on-disk store: persisting a real two-app
//! campaign and re-analyzing it *out of core* (per-CPU chunk streams,
//! at most one decoded chunk resident per CPU) must produce a
//! byte-identical `PaperReport` to the in-memory pipeline — and the
//! reader's chunk accounting must prove the memory bound held.

use osn_core::campaign::{run_campaign, CampaignConfig};
use osn_core::report::{AppReport, PaperReport};
use osn_core::store::{self, Options};
use osn_kernel::time::Nanos;
use osn_workloads::App;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("osn-store-diff-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn streamed_analysis_matches_in_memory() {
    let config = CampaignConfig {
        apps: vec![App::Sphot, App::Amg],
        duration: Nanos::from_millis(250),
        seed: 0x0511_2011,
        nranks: Some(4),
        cpus: Some(4),
    };
    let runs = run_campaign(&config);
    let dir = tmpdir("campaign");

    // Small chunks so the trace is *much* larger than the reader's
    // per-CPU residency bound: many chunks per CPU, not one.
    let opts = Options::default().with_chunk_capacity(64);
    let paths = store::persist_campaign(&runs, &dir, opts).unwrap();
    assert_eq!(paths.len(), runs.len());

    let mut streamed_apps = Vec::new();
    for (run, path) in runs.iter().zip(&paths) {
        // Full materialization is byte-identical to the original trace.
        let reader = store::Reader::open(path).unwrap();
        let trace = reader.read_trace().unwrap();
        assert_eq!(trace.events, run.trace.events, "{}: events", run.app.name());
        assert_eq!(trace.lost, run.trace.lost, "{}: lost", run.app.name());

        // Out-of-core path: fresh reader so the chunk gauge is clean.
        let reader = store::Reader::open(path).unwrap();
        let ncpus = reader.ncpus();
        let total_chunks = reader.chunks().len();
        assert!(
            total_chunks > 2 * ncpus,
            "{}: only {total_chunks} chunks for {ncpus} cpus — trace too small to prove the bound",
            run.app.name()
        );
        let meta = osn_core::StoredRunMeta::from_bytes(reader.metadata()).unwrap();
        let streamed = store::analyze_store(&reader, &meta.result).unwrap();

        // Memory bound: every chunk was visited, but never more than
        // one per CPU was decoded at once.
        let stats = reader.stats();
        assert_eq!(stats.resident, 0, "{}: chunks leaked", run.app.name());
        assert!(
            stats.peak_resident <= ncpus,
            "{}: peak {} resident chunks exceeds the {} per-CPU bound",
            run.app.name(),
            stats.peak_resident,
            ncpus
        );
        assert!(
            stats.decoded >= total_chunks,
            "{}: decoded {} < {} chunks",
            run.app.name(),
            stats.decoded,
            total_chunks
        );
        assert_eq!(stats.decode_errors, 0);

        // Every intermediate layer matches the in-memory analysis.
        assert_eq!(
            streamed.instances,
            run.analysis.instances,
            "{}: instance lists differ",
            run.app.name()
        );
        assert_eq!(streamed.nesting_report, run.analysis.nesting_report);
        assert_eq!(streamed.tasks.len(), run.analysis.tasks.len());
        for (tid, tn) in &streamed.tasks {
            let rn = &run.analysis.tasks[tid];
            assert_eq!(
                tn.interruptions,
                rn.interruptions,
                "{}: interruptions of {tid} differ",
                run.app.name()
            );
            assert_eq!(tn.runnable_time, rn.runnable_time);
            assert_eq!(tn.running_time, rn.running_time);
            assert_eq!(tn.wall, rn.wall);
        }

        streamed_apps.push(AppReport::from_analysis(
            meta.config.app,
            &meta.ranks,
            meta.config.node.net_irq_cpu,
            &streamed,
        ));
    }

    // End to end: the streamed report equals the in-memory report,
    // byte for byte, through serialization.
    let in_memory = PaperReport::build(&runs);
    let streamed = PaperReport {
        apps: streamed_apps,
    };
    assert_eq!(
        serde_json::to_string(&streamed).unwrap(),
        serde_json::to_string(&in_memory).unwrap(),
        "paper reports differ"
    );

    // The one-call campaign paths agree too (file-name order is app
    // order here: amg < sphot alphabetically, so reorder in-memory).
    let report = store::streamed_campaign_report(&dir).unwrap();
    let mut sorted: Vec<AppReport> = in_memory.apps.clone();
    sorted.sort_by_key(|a| a.app.name());
    assert_eq!(
        serde_json::to_string(&report.apps).unwrap(),
        serde_json::to_string(&sorted).unwrap(),
    );
    let reloaded = store::load_campaign(&dir).unwrap();
    assert_eq!(reloaded.len(), runs.len());
    for run in &reloaded {
        assert!(!run.trace.is_empty());
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Byte-identity must not depend on how the stream is cut into chunks.
/// Capacity 1 puts every event in its own chunk (maximal pairing
/// resumption across chunk boundaries), 2 exercises odd/even splits of
/// enter/exit pairs, and 63 lands chunk cuts at arbitrary offsets
/// inside nests. All three must serialize to the same report as the
/// in-memory path — and as each other.
#[test]
fn chunk_capacity_does_not_change_the_report() {
    let config = CampaignConfig {
        apps: vec![App::Sphot],
        duration: Nanos::from_millis(120),
        seed: 0x0511_2011,
        nranks: Some(2),
        cpus: Some(2),
    };
    let runs = run_campaign(&config);
    let run = &runs[0];
    let in_memory = serde_json::to_string(&AppReport::build_with(run, &run.analysis)).unwrap();
    let dir = tmpdir("capacity");

    for capacity in [1usize, 2, 63] {
        let path = dir.join(format!("sphot-{capacity}.osn"));
        let opts = Options::default().with_chunk_capacity(capacity);
        store::persist_run(run, &path, opts).unwrap();

        let reader = store::Reader::open(&path).unwrap();
        assert!(
            reader.chunks().len() as u64 >= reader.events() / capacity as u64,
            "capacity {capacity}: chunking did not take effect"
        );
        let meta = osn_core::StoredRunMeta::from_bytes(reader.metadata()).unwrap();
        let streamed = store::analyze_store(&reader, &meta.result).unwrap();
        assert_eq!(reader.stats().decode_errors, 0);
        let report = AppReport::from_analysis(
            meta.config.app,
            &meta.ranks,
            meta.config.node.net_irq_cpu,
            &streamed,
        );
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            in_memory,
            "capacity {capacity}: streamed report differs from in-memory"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
