//! Differential validation of the mechanistic cluster engine.
//!
//! Three contracts:
//!
//! 1. **Mechanistic vs analytic.** The fixed-grid coupling (the
//!    analytic model's sampling assumptions, run mechanistically) must
//!    agree with `ScaleModel`'s Monte-Carlo `E[max_N W]` over the
//!    pooled windows within statistical tolerance, and the full
//!    mechanistic run must land in the same ballpark — above the
//!    single-node mean (amplification is real) and near the analytic
//!    expectation (the model explains what the simulation pays).
//!
//! 2. **Determinism.** A fixed campaign seed yields a byte-identical
//!    serialized report regardless of worker-thread count.
//!
//! 3. **Stored path.** Spilling every node to an `.osn` store during
//!    the run and re-deriving the report out-of-core is byte-identical
//!    to the in-memory path.

use osn_core::cluster::{run_cluster, run_cluster_stored, ClusterConfig};
use osn_core::store::Options;
use osn_kernel::time::Nanos;
use osn_workloads::App;

fn config(app: App, nodes: usize, seed: u64) -> ClusterConfig {
    let mut config = ClusterConfig::new(app, nodes, Nanos::from_millis(600));
    config.cpus = Some(2);
    config.seed = seed;
    config
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("osn-cluster-diff-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn mechanistic_amplification_matches_scale_model() {
    // AMG is the noisy workload — the amplification signal is largest.
    let seeds = [77u64, 1234, 0xDEAD];
    let mut ratios = Vec::new();
    for seed in seeds {
        let r = run_cluster(&config(App::Amg, 6, seed)).report;
        assert!(r.phases > 300, "seed {seed}: only {} phases", r.phases);

        // Tight differential: grid coupling vs pooled-window analytic
        // model. Same windows, same max-over-N statistic; they differ
        // only by Monte-Carlo error and sampling with/without
        // replacement.
        assert!(
            (0.7..=1.4).contains(&r.grid_over_analytic),
            "seed {seed}: grid/analytic {} out of tolerance (grid {}, analytic {})",
            r.grid_over_analytic,
            r.grid_mean_max_noise,
            r.pooled_expected_max,
        );
        ratios.push(r.grid_over_analytic);

        // The full mechanistic dynamics (skew, elongation, slack
        // absorption, staggered starts) must amplify — the barrier
        // pays at least the mean single-node window noise — and stay
        // in the analytic ballpark.
        assert!(
            r.mean_max_noise >= r.single_node_mean_noise,
            "seed {seed}: no amplification ({} < {})",
            r.mean_max_noise,
            r.single_node_mean_noise,
        );
        let mech_over_pooled =
            r.mean_max_noise.as_nanos() as f64 / r.pooled_expected_max.as_nanos().max(1) as f64;
        assert!(
            (0.5..=2.0).contains(&mech_over_pooled),
            "seed {seed}: mechanistic {} vs pooled analytic {} (ratio {mech_over_pooled})",
            r.mean_max_noise,
            r.pooled_expected_max,
        );

        // The analytic amplification curve is monotone in N, and the
        // mechanistic curve ends above where it starts.
        for pair in r.curve.windows(2) {
            assert!(
                pair[1].analytic_expected_max >= pair[0].analytic_expected_max,
                "seed {seed}: analytic curve not monotone",
            );
        }
        let first = r.curve.first().unwrap();
        let last = r.curve.last().unwrap();
        assert!(
            last.mean_max_noise >= first.mean_max_noise,
            "seed {seed}: mechanistic curve fell from {} to {}",
            first.mean_max_noise,
            last.mean_max_noise,
        );
    }
    // Across seeds the estimator is unbiased: the mean ratio is within
    // a few percent of 1.
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        (0.85..=1.15).contains(&mean),
        "mean grid/analytic ratio {mean} biased (per-seed: {ratios:?})",
    );
}

#[test]
fn aligned_starts_suppress_amplification() {
    // The co-scheduled ablation: with stagger off, every node's
    // periodic noise hits the same phase window, so the max over ranks
    // amplifies far less than independent sampling predicts.
    let staggered = config(App::Amg, 6, 77);
    let mut aligned = staggered.clone();
    aligned.stagger = false;
    let s = run_cluster(&staggered).report;
    let a = run_cluster(&aligned).report;
    assert!(a.node_starts.iter().all(|t| t.is_zero()));
    assert!(s.node_starts.iter().any(|t| !t.is_zero()));
    assert!(
        a.grid_over_analytic < 0.8 * s.grid_over_analytic,
        "aligned {} vs staggered {}: co-scheduling should suppress amplification",
        a.grid_over_analytic,
        s.grid_over_analytic,
    );
}

#[test]
fn report_is_byte_identical_across_worker_counts() {
    let mut reports = Vec::new();
    for workers in [1usize, 4, 8] {
        let mut c = config(App::Sphot, 4, 42);
        c.workers = Some(workers);
        let json = serde_json::to_string(&run_cluster(&c).report).unwrap();
        reports.push((workers, json));
    }
    for (workers, json) in &reports[1..] {
        assert_eq!(
            json, &reports[0].1,
            "report differs between 1 and {workers} workers",
        );
    }
}

/// Injection schedules derive from the campaign seed, never from
/// worker scheduling: a faulted campaign (one injection of every
/// class, kernel and cluster tier) is byte-identical across worker
/// counts, for several seeds.
#[test]
fn injected_report_is_byte_identical_across_worker_counts() {
    for seed in [7u64, 1234, 0xDEAD] {
        let mut reports = Vec::new();
        for workers in [1usize, 4, 8] {
            let mut c = config(App::Sphot, 4, seed);
            c.max_phases = 150;
            c.inject.specs = osn_core::parse_inject_spec(
                "steal:interval=5ms,duration=100us,node=1; \
                 dvfs:period=20ms,duty=0.3,factor=2,node=2; \
                 numa:split=1,factor=2,node=3; \
                 crash:node=1,at=50ms,down=20ms; \
                 straggler:node=2,factor=1.2; \
                 partition:node=3,at=100ms,dur=100ms,delay=300us; \
                 jitter:mean=10us",
            )
            .unwrap();
            c.workers = Some(workers);
            let json = serde_json::to_string(&run_cluster(&c).report).unwrap();
            reports.push((workers, json));
        }
        for (workers, json) in &reports[1..] {
            assert_eq!(
                json, &reports[0].1,
                "seed {seed}: injected report differs between 1 and {workers} workers",
            );
        }
    }
}

#[test]
fn stored_path_report_matches_in_memory() {
    let c = config(App::Sphot, 3, 9);
    let in_memory = serde_json::to_string(&run_cluster(&c).report).unwrap();
    let dir = tmpdir("stored");
    let (stored, paths) = run_cluster_stored(&c, &dir, Options::default()).unwrap();
    assert_eq!(paths.len(), 3);
    for p in &paths {
        assert!(p.exists(), "{} missing", p.display());
    }
    assert_eq!(serde_json::to_string(&stored).unwrap(), in_memory);
    std::fs::remove_dir_all(&dir).ok();
}
