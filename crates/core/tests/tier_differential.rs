//! Differential validation of the tiered cluster engine.
//!
//! Four contracts:
//!
//! 1. **Degenerate tier.** `sampled:1.0` leaves no rank to synthesize,
//!    so its serialized report is byte-identical to the mechanistic
//!    path's.
//!
//! 2. **Surrogate fidelity.** At sub-scales where both tiers are
//!    affordable, a `sampled:0.25` campaign's amplification must land
//!    within [0.9, 1.1] of the full-mechanistic ground truth — across
//!    node counts and seeds.
//!
//! 3. **Determinism.** Tiered reports are byte-identical across
//!    worker-thread counts (the sampling plan and every synthetic draw
//!    are pure functions of the config).
//!
//! 4. **Injection composition.** Cluster-tier faults attribute
//!    correctly whether they land on a mechanistic or a synthetic
//!    rank.

use osn_core::cluster::{parse_inject_spec, run_cluster, ClusterConfig, Tier};
use osn_kernel::time::Nanos;
use osn_workloads::App;

fn config(app: App, nodes: usize, seed: u64) -> ClusterConfig {
    let mut config = ClusterConfig::new(app, nodes, Nanos::from_millis(600));
    config.cpus = Some(2);
    config.seed = seed;
    config
}

#[test]
fn sampled_full_fraction_is_byte_identical_to_mechanistic() {
    let mut mech = config(App::Sphot, 6, 41);
    mech.tier = Tier::Mechanistic;
    let mut full = config(App::Sphot, 6, 41);
    full.tier = Tier::Sampled { fraction: 1.0 };
    let a = serde_json::to_string(&run_cluster(&mech).report).unwrap();
    let b = serde_json::to_string(&run_cluster(&full).report).unwrap();
    assert_eq!(a, b, "sampled:1.0 must collapse to the mechanistic path");
}

#[test]
fn sampled_quarter_amplification_matches_mechanistic() {
    // The load-bearing tolerance of the tiered engine: at every
    // sub-scale where full mechanistic is affordable, the sampled
    // campaign's mean per-phase critical noise must agree with ground
    // truth within 10%.
    //
    // UMT is the fidelity workload: it is the heaviest faulter in the
    // suite (3554 faults/s) but never triggers anon-reclaim storms, so
    // its per-node noise mass is not dominated by single sub-Pareto
    // (alpha < 1) draws. AMG's 69 ms reclaim tail makes per-realization
    // agreement information-theoretically unreachable for any sampled
    // estimator (one unsampled storm moves ground truth by 2x); that
    // envelope boundary is documented in DESIGN.md.
    let seeds = [7u64, 17, 55];
    for nodes in [64usize, 128, 256] {
        for seed in seeds {
            let mech = run_cluster(&config(App::Umt, nodes, seed)).report;
            let mut sampled_config = config(App::Umt, nodes, seed);
            sampled_config.tier = Tier::Sampled { fraction: 0.25 };
            let sampled = run_cluster(&sampled_config).report;
            let t = sampled.tier.as_ref().expect("tiered report metadata");
            assert_eq!(t.mechanistic_nodes, nodes / 4);
            assert_eq!(t.synthetic_nodes, nodes - nodes / 4);
            let ratio = sampled.mean_max_noise.as_nanos() as f64
                / mech.mean_max_noise.as_nanos().max(1) as f64;
            assert!(
                (0.9..=1.1).contains(&ratio),
                "{nodes} nodes, seed {seed}: sampled/mechanistic amplification \
                 {ratio:.4} out of [0.9, 1.1] (sampled {}, mechanistic {})",
                sampled.mean_max_noise,
                mech.mean_max_noise,
            );
            // The embedded self-validation (surrogate twins vs the
            // mechanistic sample) must agree too. Sub-scales below 16
            // ranks are skipped: E[max] over so few draws is noisy
            // enough that twin scatter alone spans +-30%.
            for v in t.validation.iter().filter(|v| v.nodes >= 16) {
                assert!(
                    (0.85..=1.15).contains(&v.ratio),
                    "{nodes} nodes, seed {seed}: self-validation @ {} ranks \
                     ratio {:.4} (surrogate {}, mechanistic {})",
                    v.nodes,
                    v.ratio,
                    v.surrogate_mean_max,
                    v.mechanistic_mean_max,
                );
            }
        }
    }
}

#[test]
fn tiered_report_is_byte_identical_across_worker_counts() {
    let mut reports = Vec::new();
    for workers in [1usize, 4, 8] {
        let mut c = config(App::Amg, 48, 99);
        c.tier = Tier::Sampled { fraction: 0.25 };
        c.workers = Some(workers);
        reports.push(serde_json::to_string(&run_cluster(&c).report).unwrap());
    }
    assert_eq!(reports[0], reports[1], "1 vs 4 workers");
    assert_eq!(reports[0], reports[2], "1 vs 8 workers");
}

#[test]
fn crash_attributes_on_mechanistic_and_synthetic_ranks() {
    // Build a tiered campaign, then crash (i) a rank inside the
    // mechanistic sample and (ii) a synthetic rank. Both must show up
    // as Crash barrier time, and the crashed rank must pace the
    // barrier while it is down.
    let mut base = config(App::Sphot, 32, 7);
    base.tier = Tier::Sampled { fraction: 0.25 };
    let plan = base.sample_plan();
    let mech_rank = plan.mechanistic[0];
    let synth_rank = (0..32)
        .find(|i| !plan.mechanistic.contains(i))
        .expect("some rank is synthetic");

    for (tag, victim) in [("mechanistic", mech_rank), ("synthetic", synth_rank)] {
        let mut c = base.clone();
        c.inject.specs =
            parse_inject_spec(&format!("crash:node={victim},at=100ms,down=80ms")).unwrap();
        // Cluster-tier faults never change the sampling plan.
        assert_eq!(c.sample_plan(), plan, "{tag}: plan moved under injection");
        let r = run_cluster(&c).report;
        let crash = r
            .barrier_injected
            .iter()
            .find(|(class, _)| class.name() == "crash")
            .map(|(_, d)| *d)
            .unwrap();
        assert!(
            crash >= Nanos::from_millis(70),
            "{tag} rank {victim}: crash paid only {crash} at the barrier"
        );
        // The outage pays on the victim's side of the ledger: a
        // mechanistic victim appears in its rank row, a synthetic one
        // in the folded summary.
        if victim == mech_rank {
            let row = r.ranks.iter().find(|x| x.rank == victim).unwrap();
            assert!(
                row.self_noise >= Nanos::from_millis(70),
                "{tag}: victim row self-noise {}",
                row.self_noise
            );
        } else {
            let s = r.synthetic_ranks.as_ref().unwrap();
            assert!(
                s.max_self_noise >= Nanos::from_millis(70),
                "{tag}: synthetic max self-noise {}",
                s.max_self_noise
            );
        }
    }
}
