//! Differential test for the parallel sharded analysis engine: on a
//! real two-app paper campaign, the sharded/fused pipeline must produce
//! a bit-identical `PaperReport` to the retained sequential reference
//! (global reconstruction, single-walk timelines, quadratic gather,
//! multi-pass statistics).

use osn_analysis::NoiseAnalysis;
use osn_core::campaign::{run_campaign, CampaignConfig};
use osn_core::report::PaperReport;
use osn_kernel::time::Nanos;
use osn_workloads::App;

#[test]
fn parallel_engine_matches_sequential_reference() {
    let config = CampaignConfig {
        apps: vec![App::Sphot, App::Amg],
        duration: Nanos::from_millis(250),
        seed: 0x0511_2011,
        nranks: Some(4),
        cpus: Some(4),
    };
    let runs = run_campaign(&config);

    for run in &runs {
        let reference =
            NoiseAnalysis::analyze_reference(&run.trace, &run.result.tasks, run.result.end_time);

        // Intermediate layers are already identical, not just the final
        // report: instances, anomaly counts, and per-task noise.
        assert_eq!(
            run.analysis.instances,
            reference.instances,
            "{}: instance lists differ",
            run.app.name()
        );
        assert_eq!(
            run.analysis.nesting_report,
            reference.nesting_report,
            "{}: nesting reports differ",
            run.app.name()
        );
        assert_eq!(
            run.analysis.tasks.len(),
            reference.tasks.len(),
            "{}: analyzed task sets differ",
            run.app.name()
        );
        for (tid, tn) in &run.analysis.tasks {
            let rn = reference
                .tasks
                .get(tid)
                .unwrap_or_else(|| panic!("{}: {tid} missing in reference", run.app.name()));
            assert_eq!(
                tn.interruptions,
                rn.interruptions,
                "{}: interruptions of {tid} differ",
                run.app.name()
            );
            assert_eq!(tn.runnable_time, rn.runnable_time);
            assert_eq!(tn.running_time, rn.running_time);
            assert_eq!(tn.wall, rn.wall);
        }
        // Enough work happened for the comparison to mean something.
        assert!(
            !run.analysis.instances.is_empty(),
            "{}: empty instance list",
            run.app.name()
        );
    }

    // End to end: the fused single-pass report equals the multi-pass
    // reference report, bit for bit, through serialization.
    let fused = PaperReport::build(&runs);
    let reference = PaperReport::build_reference(&runs);
    let fused_json = serde_json::to_string(&fused).expect("serialize fused");
    let reference_json = serde_json::to_string(&reference).expect("serialize reference");
    assert_eq!(fused_json, reference_json, "paper reports differ");
}
