//! Differential validation of deterministic perturbation injection.
//!
//! Two contracts:
//!
//! 1. **Additivity.** Injection disabled is a strict no-op: a node
//!    configured with an explicitly empty [`KernelPerturbations`] is
//!    byte-identical to the default configuration — the injection
//!    hooks draw no randomness and push no events when off.
//!
//! 2. **Attribution.** Each injected class surfaces as the right new
//!    row: hypervisor steal time appears as the `steal` activity in
//!    the trace and as the `Steal` class in the noise signature, and
//!    signature drift against the healthy baseline flags it as an
//!    appearing class — across several seeds.

use osn_analysis::signature::NoiseSignature;
use osn_analysis::stats::EventClass;
use osn_core::{run_app, ExperimentConfig};
use osn_kernel::activity::Activity;
use osn_kernel::prelude::{DvfsSpec, KernelPerturbations, StealSpec};
use osn_kernel::time::Nanos;
use osn_workloads::App;

fn base(seed: u64) -> ExperimentConfig {
    let mut config = ExperimentConfig::paper(App::Sphot, Nanos::from_millis(300)).with_seed(seed);
    config.node.cpus = 2;
    config.nranks = 2;
    config
}

#[test]
fn empty_perturbations_are_byte_identical_to_default() {
    for seed in [7u64, 77, 0xBEEF] {
        let healthy = run_app(base(seed));
        let mut explicit = base(seed);
        explicit.node.perturb = KernelPerturbations::default();
        let empty = run_app(explicit);
        assert_eq!(
            healthy.trace.events, empty.trace.events,
            "seed {seed}: an empty injection config must not alter the trace"
        );
        assert_eq!(healthy.trace.lost, empty.trace.lost);
        assert_eq!(healthy.result.end_time, empty.result.end_time);
    }
}

#[test]
fn steal_injection_appears_as_new_signature_row() {
    for seed in [7u64, 77, 0xBEEF] {
        let healthy = run_app(base(seed));
        let mut cfg = base(seed);
        cfg.node.perturb.steal.push(StealSpec {
            cpu: None,
            mean_interval: Nanos::from_millis(2),
            mean_duration: Nanos::from_micros(100),
        });
        let stolen = run_app(cfg);

        // The trace carries the new activity...
        let has_steal = stolen
            .trace
            .events
            .iter()
            .any(|e| matches!(e.kind, osn_trace::EventKind::KernelEnter(Activity::Steal)));
        assert!(has_steal, "seed {seed}: no steal frames in the trace");
        assert!(
            !healthy
                .trace
                .events
                .iter()
                .any(|e| matches!(e.kind, osn_trace::EventKind::KernelEnter(Activity::Steal))),
            "seed {seed}: healthy run must not contain steal frames"
        );

        // ...the signature grows the Steal row...
        let sig = NoiseSignature::build(&stolen.analysis, &stolen.ranks);
        let sig_healthy = NoiseSignature::build(&healthy.analysis, &healthy.ranks);
        let steal_row = sig.entry(EventClass::Steal);
        assert!(
            steal_row.is_some_and(|e| e.share > 0.0),
            "seed {seed}: Steal signature row empty"
        );
        assert!(
            sig_healthy
                .entry(EventClass::Steal)
                .is_none_or(|e| e.share == 0.0),
            "seed {seed}: healthy signature must have no Steal noise"
        );

        // ...and drift against the healthy baseline flags it as an
        // appearing class (infinite frequency ratio).
        let drifts = sig.drift(&sig_healthy, 1.5);
        let steal_drift = drifts.iter().find(|d| d.class == EventClass::Steal);
        assert!(
            steal_drift.is_some_and(|d| d.freq_ratio.is_infinite()),
            "seed {seed}: drift did not attribute the appearing Steal class: {drifts:?}"
        );
    }
}

#[test]
fn dvfs_injection_inflates_kernel_costs() {
    for seed in [7u64, 77, 0xBEEF] {
        let healthy = run_app(base(seed));
        let mut cfg = base(seed);
        // Permanent 4x throttle (duty 1.0): every kernel activity
        // costs 4x, so total noise must rise sharply.
        cfg.node.perturb.dvfs.push(DvfsSpec {
            cpu: None,
            period: Nanos::from_millis(10),
            duty: 1.0,
            factor: 4.0,
        });
        let throttled = run_app(cfg);
        let sig = NoiseSignature::build(&throttled.analysis, &throttled.ranks);
        let sig_healthy = NoiseSignature::build(&healthy.analysis, &healthy.ranks);
        assert!(
            sig.total_noise > sig_healthy.total_noise * 2,
            "seed {seed}: 4x throttle raised total noise only from {} to {}",
            sig_healthy.total_noise,
            sig.total_noise
        );
    }
}
