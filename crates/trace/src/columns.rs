//! Structure-of-arrays event storage: one CPU's records as parallel
//! columns instead of a `Vec<Event>`.
//!
//! The analysis hot passes never need a whole [`Event`] at once — the
//! nesting reconstructor reads `(t, code, activity, ctx)`, the timeline
//! builder only cares about scheduler records, and the stats passes
//! consume instance durations. Keeping each field in its own flat vec
//! lets those passes run tight branch-light loops over contiguous
//! memory, and lets the chunked-store decoder fill the columns straight
//! from a delta/varint payload without materializing intermediate
//! `Event` structs.
//!
//! The column encoding is exactly the wire tuple of
//! [`crate::wire::pack_record`]: `(code, tid, a, b)` plus the
//! timestamp. A block holds records of *one* CPU in stream order, so
//! the CPU id lives once on the block, not per record.

use osn_kernel::ids::{CpuId, Tid};
use osn_kernel::time::Nanos;

use crate::event::Event;
use crate::wire::{pack_record, unpack_record};

pub use crate::wire::code;

/// One CPU's events as parallel columns, in stream (time) order.
///
/// All five vecs are the same length; record `i` is
/// `(t[i], code[i], tid[i], a[i], b[i])` in the
/// [`pack_record`]/[`unpack_record`] encoding. Every constructor in
/// this crate and every store decode path validates records before
/// they land in a block, so accessors may assume the tuple decodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventColumns {
    /// CPU the block's records belong to.
    pub cpu: CpuId,
    /// Timestamps, nondecreasing.
    pub t: Vec<u64>,
    /// Record codes (see [`code`]).
    pub code: Vec<u16>,
    /// The wire tuple's tid field (context, prev, or woken task
    /// depending on `code` — see [`pack_record`]).
    pub tid: Vec<u32>,
    /// First payload word.
    pub a: Vec<u64>,
    /// Second payload word.
    pub b: Vec<u64>,
}

impl Default for EventColumns {
    fn default() -> EventColumns {
        EventColumns::new(CpuId(0))
    }
}

impl EventColumns {
    /// An empty block for `cpu`.
    pub fn new(cpu: CpuId) -> EventColumns {
        EventColumns {
            cpu,
            t: Vec::new(),
            code: Vec::new(),
            tid: Vec::new(),
            a: Vec::new(),
            b: Vec::new(),
        }
    }

    /// An empty block with room for `n` records.
    pub fn with_capacity(cpu: CpuId, n: usize) -> EventColumns {
        EventColumns {
            cpu,
            t: Vec::with_capacity(n),
            code: Vec::with_capacity(n),
            tid: Vec::with_capacity(n),
            a: Vec::with_capacity(n),
            b: Vec::with_capacity(n),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.t.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Drop all records, keeping the capacity (decode-buffer reuse).
    pub fn clear(&mut self) {
        self.t.clear();
        self.code.clear();
        self.tid.clear();
        self.a.clear();
        self.b.clear();
    }

    /// Reserve room for `n` more records.
    pub fn reserve(&mut self, n: usize) {
        self.t.reserve(n);
        self.code.reserve(n);
        self.tid.reserve(n);
        self.a.reserve(n);
        self.b.reserve(n);
    }

    /// Append one raw wire tuple. The caller must have validated it
    /// (store decoders do; [`EventColumns::push_event`] packs from an
    /// already-typed event).
    #[inline]
    pub fn push_raw(&mut self, t: u64, code: u16, tid: u32, a: u64, b: u64) {
        self.t.push(t);
        self.code.push(code);
        self.tid.push(tid);
        self.a.push(a);
        self.b.push(b);
    }

    /// Append a typed event (must belong to this block's CPU).
    #[inline]
    pub fn push_event(&mut self, e: &Event) {
        debug_assert_eq!(e.cpu, self.cpu, "event from the wrong cpu");
        let (code, tid, a, b) = pack_record(e);
        self.push_raw(e.t.as_nanos(), code, tid, a, b);
    }

    /// Rebuild record `i` as a typed [`Event`].
    #[inline]
    pub fn event(&self, i: usize) -> Event {
        let (ctx, kind) = unpack_record(self.code[i], self.tid[i], self.a[i], self.b[i])
            .expect("column records are validated on construction");
        Event {
            t: Nanos(self.t[i]),
            cpu: self.cpu,
            tid: ctx,
            kind,
        }
    }

    /// Iterate the block as typed events, in stream order.
    pub fn events(&self) -> impl Iterator<Item = Event> + '_ {
        (0..self.len()).map(move |i| self.event(i))
    }

    /// The context tid of record `i` (the task the CPU was in):
    /// the waker for wakeups, the wire tid otherwise — the inverse of
    /// what [`pack_record`] does to [`Event::tid`].
    #[inline]
    pub fn ctx_tid(&self, i: usize) -> Tid {
        if self.code[i] == code::WAKEUP {
            Tid(self.a[i] as u32)
        } else {
            Tid(self.tid[i])
        }
    }

    /// Heap footprint of the columns (capacity-based).
    pub fn heap_bytes(&self) -> usize {
        self.t.capacity() * 8
            + self.code.capacity() * 2
            + self.tid.capacity() * 4
            + self.a.capacity() * 8
            + self.b.capacity() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use osn_kernel::activity::{Activity, SoftirqVec};
    use osn_kernel::hooks::SwitchState;

    fn sample_events() -> Vec<Event> {
        let mk = |t: u64, tid: u32, kind: EventKind| Event {
            t: Nanos(t),
            cpu: CpuId(3),
            tid: Tid(tid),
            kind,
        };
        vec![
            mk(1, 1, EventKind::KernelEnter(Activity::TimerInterrupt)),
            mk(2, 1, EventKind::KernelExit(Activity::TimerInterrupt)),
            mk(3, 0, EventKind::SoftirqRaise(SoftirqVec::NetRx)),
            mk(
                4,
                5,
                EventKind::SchedSwitch {
                    prev: Tid(5),
                    prev_state: SwitchState::BlockedIo,
                    next: Tid(6),
                },
            ),
            mk(
                5,
                9,
                EventKind::Wakeup {
                    tid: Tid(7),
                    waker: Tid(9),
                },
            ),
            mk(
                6,
                7,
                EventKind::Migrate {
                    tid: Tid(7),
                    from: CpuId(3),
                    to: CpuId(0),
                },
            ),
            mk(
                7,
                8,
                EventKind::AppMark {
                    mark: 11,
                    value: u64::MAX - 3,
                },
            ),
            mk(8, 8, EventKind::TaskExit { tid: Tid(8) }),
        ]
    }

    #[test]
    fn roundtrip_all_kinds() {
        let events = sample_events();
        let mut cols = EventColumns::with_capacity(CpuId(3), events.len());
        for e in &events {
            cols.push_event(e);
        }
        assert_eq!(cols.len(), events.len());
        assert!(!cols.is_empty());
        let back: Vec<Event> = cols.events().collect();
        assert_eq!(back, events);
    }

    #[test]
    fn ctx_tid_matches_event_tid() {
        let events = sample_events();
        let mut cols = EventColumns::new(CpuId(3));
        for e in &events {
            cols.push_event(e);
        }
        for (i, e) in events.iter().enumerate() {
            assert_eq!(cols.ctx_tid(i), e.tid, "record {i}");
        }
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut cols = EventColumns::with_capacity(CpuId(0), 64);
        cols.push_raw(1, code::MARK, 0, 0, 0);
        let bytes = cols.heap_bytes();
        cols.clear();
        assert!(cols.is_empty());
        assert_eq!(cols.heap_bytes(), bytes);
    }
}
