//! The capture-session sink: the single-producer path from a native
//! host recorder into any [`EventSink`].
//!
//! The simulated tracer fills per-CPU rings drained by a background
//! thread ([`crate::session::TraceSession`]); a native capture has one
//! recording thread whose events must reach the store without a ring,
//! a consumer thread, or allocation in the hot loop. `CaptureSession`
//! batches pushed events and forwards full batches to the sink; an
//! append error is latched (events after it are counted as dropped,
//! not silently lost) and surfaced at [`CaptureSession::finish`].

use std::io;

use osn_kernel::ids::CpuId;

use crate::event::Event;
use crate::session::EventSink;

/// Default events per flushed batch.
pub const DEFAULT_BATCH: usize = 1024;

/// Counters describing what a finished capture session wrote.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CaptureSessionSummary {
    /// Events handed to the sink successfully.
    pub appended: u64,
    /// Events discarded after the sink started failing.
    pub dropped: u64,
}

/// Batches one thread's capture events into an [`EventSink`].
pub struct CaptureSession {
    sink: Box<dyn EventSink>,
    cpu: CpuId,
    buf: Vec<Event>,
    batch: usize,
    appended: u64,
    dropped: u64,
    error: Option<io::Error>,
}

impl CaptureSession {
    pub fn new(sink: Box<dyn EventSink>, cpu: CpuId) -> CaptureSession {
        CaptureSession::with_batch(sink, cpu, DEFAULT_BATCH)
    }

    pub fn with_batch(sink: Box<dyn EventSink>, cpu: CpuId, batch: usize) -> CaptureSession {
        let batch = batch.max(1);
        CaptureSession {
            sink,
            cpu,
            buf: Vec::with_capacity(batch),
            batch,
            appended: 0,
            dropped: 0,
            error: None,
        }
    }

    /// Buffer one event; flushes automatically when the batch fills.
    /// Never fails the caller mid-capture: sink errors are latched and
    /// reported by [`CaptureSession::finish`].
    pub fn push(&mut self, event: Event) {
        if self.error.is_some() {
            self.dropped += 1;
            return;
        }
        self.buf.push(event);
        if self.buf.len() >= self.batch {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        match self.sink.append(self.cpu, &self.buf) {
            Ok(()) => self.appended += self.buf.len() as u64,
            Err(e) => {
                self.dropped += self.buf.len() as u64;
                self.error = Some(e);
            }
        }
        self.buf.clear();
    }

    /// Flush the tail and return the session counters; the first sink
    /// error (if any) comes back as `Err` with the counters intact via
    /// [`io::Error`]'s message.
    pub fn finish(mut self) -> io::Result<CaptureSessionSummary> {
        self.flush();
        let summary = CaptureSessionSummary {
            appended: self.appended,
            dropped: self.dropped,
        };
        match self.error {
            Some(e) => Err(io::Error::new(
                e.kind(),
                format!("capture sink failed after {} events: {e}", summary.appended),
            )),
            None => Ok(summary),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_kernel::ids::Tid;
    use osn_kernel::time::Nanos;
    use std::sync::{Arc, Mutex};

    use crate::event::EventKind;

    #[derive(Clone, Default)]
    struct MemSink {
        batches: Arc<Mutex<Vec<(CpuId, usize)>>>,
        fail_after: Option<usize>,
    }

    impl EventSink for MemSink {
        fn append(&mut self, cpu: CpuId, events: &[Event]) -> io::Result<()> {
            let mut batches = self.batches.lock().unwrap();
            if let Some(limit) = self.fail_after {
                if batches.len() >= limit {
                    return Err(io::Error::other("sink full"));
                }
            }
            batches.push((cpu, events.len()));
            Ok(())
        }
    }

    fn mark(t: u64) -> Event {
        Event {
            t: Nanos(t),
            cpu: CpuId(0),
            tid: Tid(1),
            kind: EventKind::AppMark { mark: 1, value: t },
        }
    }

    #[test]
    fn batches_and_flushes_tail() {
        let sink = MemSink::default();
        let batches = sink.batches.clone();
        let mut session = CaptureSession::with_batch(Box::new(sink), CpuId(0), 4);
        for t in 0..10 {
            session.push(mark(t));
        }
        let summary = session.finish().unwrap();
        assert_eq!(summary.appended, 10);
        assert_eq!(summary.dropped, 0);
        // Two full batches of 4 plus the tail of 2.
        assert_eq!(
            &*batches.lock().unwrap(),
            &[(CpuId(0), 4), (CpuId(0), 4), (CpuId(0), 2)]
        );
    }

    #[test]
    fn sink_error_is_latched_and_counted() {
        let sink = MemSink {
            fail_after: Some(1),
            ..MemSink::default()
        };
        let batches = sink.batches.clone();
        let mut session = CaptureSession::with_batch(Box::new(sink), CpuId(0), 2);
        for t in 0..7 {
            session.push(mark(t));
        }
        let err = session.finish().unwrap_err();
        assert!(err.to_string().contains("after 2 events"), "{err}");
        assert_eq!(batches.lock().unwrap().len(), 1, "no appends after failure");
    }

    #[test]
    fn empty_session_finishes_clean() {
        let session = CaptureSession::new(Box::new(MemSink::default()), CpuId(3));
        assert_eq!(session.finish().unwrap(), CaptureSessionSummary::default());
    }
}
