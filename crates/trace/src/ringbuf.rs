//! Lock-free single-producer/single-consumer ring buffer.
//!
//! LTTng's defining implementation property — the reason its overhead is
//! low enough to measure noise without adding it — is per-CPU lockless
//! buffering: each CPU's probe writes to its own buffer with no shared
//! locks, and a consumer drains asynchronously. This module is that
//! structure: a fixed-capacity SPSC ring with acquire/release
//! publication, split into owning [`Producer`]/[`Consumer`] halves so
//! the single-producer and single-consumer contracts are enforced by
//! the type system.
//!
//! Full-buffer behaviour is *discard* (new records dropped and counted),
//! matching the tracer configuration the paper runs: overwriting old
//! events would corrupt the noise statistics, losing new ones under
//! overload is detectable via the loss counter.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::utils::CachePadded;

struct Shared<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the producer writes (only the producer advances it).
    tail: CachePadded<AtomicUsize>,
    /// Next slot the consumer reads (only the consumer advances it).
    head: CachePadded<AtomicUsize>,
    /// Records discarded because the ring was full.
    lost: AtomicU64,
}

// SAFETY: slots are transferred between exactly one producer and one
// consumer with release/acquire ordering on tail/head; a slot is only
// accessed by the side that owns it at that point in the protocol.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

/// Producer half. `!Clone`; exactly one exists per ring.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Cached head to avoid an acquire load on every push.
    cached_head: usize,
}

/// Consumer half. `!Clone`; exactly one exists per ring.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Cached tail to avoid an acquire load on every pop.
    cached_tail: usize,
}

/// Create a ring with capacity rounded up to a power of two (min 2).
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buf = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let shared = Arc::new(Shared {
        buf,
        mask: cap - 1,
        tail: CachePadded::new(AtomicUsize::new(0)),
        head: CachePadded::new(AtomicUsize::new(0)),
        lost: AtomicU64::new(0),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            cached_head: 0,
        },
        Consumer {
            shared,
            cached_tail: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Append a record. Returns `false` (and counts a loss) if the
    /// ring is full.
    #[inline]
    pub fn push(&mut self, value: T) -> bool {
        let s = &*self.shared;
        let tail = s.tail.load(Ordering::Relaxed);
        if tail.wrapping_sub(self.cached_head) > s.mask {
            // Possibly full: refresh the consumer position.
            self.cached_head = s.head.load(Ordering::Acquire);
            if tail.wrapping_sub(self.cached_head) > s.mask {
                s.lost.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
        // SAFETY: the slot at `tail` is not visible to the consumer
        // until the release store below, and the producer is unique.
        unsafe {
            (*s.buf[tail & s.mask].get()).write(value);
        }
        s.tail.store(tail.wrapping_add(1), Ordering::Release);
        true
    }

    /// Records lost so far.
    pub fn lost(&self) -> u64 {
        self.shared.lost.load(Ordering::Relaxed)
    }

    /// Number of records currently buffered (approximate under
    /// concurrency).
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.tail
            .load(Ordering::Relaxed)
            .wrapping_sub(s.head.load(Ordering::Acquire))
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }
}

impl<T> Consumer<T> {
    /// Take the oldest record, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        let s = &*self.shared;
        let head = s.head.load(Ordering::Relaxed);
        if head == self.cached_tail {
            self.cached_tail = s.tail.load(Ordering::Acquire);
            if head == self.cached_tail {
                return None;
            }
        }
        // SAFETY: head < tail (acquire-observed), so the slot was
        // fully written and released by the producer; the consumer is
        // unique and takes ownership of the value.
        let value = unsafe { (*s.buf[head & s.mask].get()).assume_init_read() };
        s.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Drain everything currently visible into `out`; returns the count.
    pub fn drain_into(&mut self, out: &mut Vec<T>) -> usize {
        let mut n = 0;
        while let Some(v) = self.pop() {
            out.push(v);
            n += 1;
        }
        n
    }

    /// Records lost so far (producer-side counter).
    pub fn lost(&self) -> u64 {
        self.shared.lost.load(Ordering::Relaxed)
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        // Drop any unconsumed records (MaybeUninit does not drop).
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (mut p, mut c) = ring::<u32>(8);
        for i in 0..5 {
            assert!(p.push(i));
        }
        for i in 0..5 {
            assert_eq!(c.pop(), Some(i));
        }
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let (p, _c) = ring::<u8>(100);
        assert_eq!(p.capacity(), 128);
        let (p, _c) = ring::<u8>(0);
        assert_eq!(p.capacity(), 2);
    }

    #[test]
    fn full_ring_discards_and_counts() {
        let (mut p, mut c) = ring::<u64>(4);
        for i in 0..4 {
            assert!(p.push(i));
        }
        assert!(!p.push(99), "5th push must fail on a 4-ring");
        assert!(!p.push(100));
        assert_eq!(p.lost(), 2);
        assert_eq!(c.lost(), 2);
        // Old records intact (discard, not overwrite).
        assert_eq!(c.pop(), Some(0));
        // Space freed: pushes work again.
        assert!(p.push(4));
        let rest: Vec<u64> = std::iter::from_fn(|| c.pop()).collect();
        assert_eq!(rest, vec![1, 2, 3, 4]);
    }

    #[test]
    fn drain_into_collects_all() {
        let (mut p, mut c) = ring::<u32>(16);
        for i in 0..10 {
            p.push(i);
        }
        let mut out = Vec::new();
        assert_eq!(c.drain_into(&mut out), 10);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert_eq!(c.drain_into(&mut out), 0);
    }

    #[test]
    fn wraparound_many_times() {
        let (mut p, mut c) = ring::<usize>(4);
        for round in 0..1000 {
            for i in 0..3 {
                assert!(p.push(round * 3 + i));
            }
            for i in 0..3 {
                assert_eq!(c.pop(), Some(round * 3 + i));
            }
        }
        assert_eq!(p.lost(), 0);
    }

    #[test]
    fn concurrent_producer_consumer() {
        // Hammer the ring from two real threads; every pushed value
        // must arrive exactly once, in order.
        let (mut p, mut c) = ring::<u64>(1024);
        const N: u64 = 200_000;
        let producer = std::thread::spawn(move || {
            let mut pushed = 0u64;
            let mut i = 0u64;
            while i < N {
                if p.push(i) {
                    pushed += 1;
                    i += 1;
                } else {
                    std::thread::yield_now();
                    // Retry the same value: full ring, not lost data.
                }
            }
            pushed
        });
        let mut seen = Vec::with_capacity(N as usize);
        while seen.len() < N as usize {
            match c.pop() {
                Some(v) => seen.push(v),
                None => std::thread::yield_now(),
            }
        }
        let pushed = producer.join().unwrap();
        assert_eq!(pushed, N);
        assert!(seen.windows(2).all(|w| w[1] == w[0] + 1), "order broken");
        assert_eq!(seen[0], 0);
        assert_eq!(*seen.last().unwrap(), N - 1);
    }

    #[test]
    fn drop_with_unconsumed_items_is_safe() {
        // Box values so leaks/double-frees would be visible to miri
        // and asan; plain drop coverage otherwise.
        let (mut p, c) = ring::<Box<u32>>(8);
        for i in 0..6 {
            p.push(Box::new(i));
        }
        drop(c);
        drop(p);
    }
}
