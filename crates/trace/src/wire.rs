//! Binary trace serialization (the on-disk format, CTF-lite).
//!
//! Fixed 32-byte little-endian records behind a small header, followed
//! by a whole-image checksum:
//!
//! ```text
//! header:  magic "OSNTRACE" | u32 version | u32 ncpus
//!          ncpus × u64 lost-counters | u64 event count
//! record:  u64 t | u16 cpu | u16 code | u32 tid | u64 a | u64 b
//! trailer: u64 fnv1a-64 over every preceding byte   (version ≥ 2)
//! ```
//!
//! Fixed-size records keep the producer path branch-free and make the
//! file seekable; the `code`/`a`/`b` encoding is append-only versioned.
//! Version 1 files (no trailing checksum) are still readable behind an
//! explicit fallback in [`decode`]; anything else is rejected with
//! [`WireError::VersionMismatch`] instead of being parsed as garbage.
//!
//! The `(code, tid, a, b)` kind packing is shared with the chunked
//! store format (`osn-store`) via [`pack_record`]/[`unpack_record`].

use bytes::{Buf, BufMut, Bytes, BytesMut};

use osn_kernel::activity::Activity;
use osn_kernel::hooks::SwitchState;
use osn_kernel::ids::{CpuId, Tid};
use osn_kernel::time::Nanos;

use crate::event::{Event, EventKind, Trace};

pub const MAGIC: &[u8; 8] = b"OSNTRACE";
/// Current format: v2 = v1 plus a trailing fnv1a-64 image checksum.
pub const VERSION: u32 = 2;
/// Oldest version still decodable (explicit fallback, no checksum).
pub const LEGACY_VERSION: u32 = 1;
pub const RECORD_BYTES: usize = 32;
/// Trailing checksum size for `VERSION` ≥ 2 images.
pub const CHECKSUM_BYTES: usize = 8;

/// Decoding errors.
#[derive(Debug, PartialEq, Eq)]
pub enum WireError {
    BadMagic,
    /// The image's version is neither current nor the legacy fallback.
    VersionMismatch {
        found: u32,
        supported: u32,
    },
    /// The trailing image checksum does not match the payload.
    ChecksumMismatch,
    Truncated,
    BadCode(u16),
    BadActivity(u16),
    BadState(u16),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad magic"),
            WireError::VersionMismatch { found, supported } => {
                write!(f, "unsupported version {found} (supported ≤ {supported})")
            }
            WireError::ChecksumMismatch => write!(f, "image checksum mismatch"),
            WireError::Truncated => write!(f, "truncated stream"),
            WireError::BadCode(c) => write!(f, "unknown record code {c}"),
            WireError::BadActivity(c) => write!(f, "unknown activity code {c}"),
            WireError::BadState(c) => write!(f, "unknown switch state {c}"),
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a 64-bit hash — the integrity check for wire images and store
/// chunks. Not cryptographic; it exists to catch torn writes and bit
/// rot, like CTF's packet checksums.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Record codes of the `(code, tid, a, b)` wire tuple. Public so
/// columnar consumers ([`crate::columns::EventColumns`]) can dispatch
/// on the raw code column without rebuilding [`EventKind`] values.
pub mod code {
    /// `KernelEnter` — `a` is the activity code.
    pub const ENTER: u16 = 1;
    /// `KernelExit` — `a` is the activity code.
    pub const EXIT: u16 = 2;
    /// `SoftirqRaise` — `a` is the softirq's activity code.
    pub const RAISE: u16 = 3;
    /// `SchedSwitch` — `tid` is prev, `a` packs `(prev_state, next)`.
    pub const SWITCH: u16 = 4;
    /// `Wakeup` — `tid` is the woken task, `a` the waker.
    pub const WAKEUP: u16 = 5;
    /// `Migrate` — `tid` is the task, `a` packs `(from, to)`.
    pub const MIGRATE: u16 = 6;
    /// `AppMark` — `a` is the mark, `b` the value.
    pub const MARK: u16 = 7;
    /// `TaskExit` — `tid` is the exiting task.
    pub const TASK_EXIT: u16 = 8;
}

/// Pack an event's kind into the fixed `(code, tid, a, b)` wire tuple
/// shared by the whole-trace format and the chunked store.
pub fn pack_record(e: &Event) -> (u16, u32, u64, u64) {
    match e.kind {
        EventKind::KernelEnter(act) => (code::ENTER, e.tid.0, act.code() as u64, 0),
        EventKind::KernelExit(act) => (code::EXIT, e.tid.0, act.code() as u64, 0),
        EventKind::SoftirqRaise(vec) => (
            code::RAISE,
            e.tid.0,
            Activity::Softirq(vec).code() as u64,
            0,
        ),
        EventKind::SchedSwitch {
            prev,
            prev_state,
            next,
        } => (
            code::SWITCH,
            prev.0,
            ((prev_state.code() as u64) << 32) | next.0 as u64,
            0,
        ),
        EventKind::Wakeup { tid, waker } => (code::WAKEUP, tid.0, waker.0 as u64, 0),
        EventKind::Migrate { tid, from, to } => (
            code::MIGRATE,
            tid.0,
            ((from.0 as u64) << 16) | to.0 as u64,
            0,
        ),
        EventKind::AppMark { mark, value } => (code::MARK, e.tid.0, mark as u64, value),
        EventKind::TaskExit { tid } => (code::TASK_EXIT, tid.0, 0, 0),
    }
}

/// Reverse of [`pack_record`]: rebuild the context tid and kind from
/// the wire tuple.
pub fn unpack_record(c: u16, tid: u32, a: u64, b: u64) -> Result<(Tid, EventKind), WireError> {
    let tid = Tid(tid);
    let activity =
        |code: u64| Activity::from_code(code as u16).ok_or(WireError::BadActivity(code as u16));
    let kind = match c {
        code::ENTER => EventKind::KernelEnter(activity(a)?),
        code::EXIT => EventKind::KernelExit(activity(a)?),
        code::RAISE => match activity(a)? {
            Activity::Softirq(vec) => EventKind::SoftirqRaise(vec),
            _ => return Err(WireError::BadActivity(a as u16)),
        },
        code::SWITCH => {
            let state_code = (a >> 32) as u16;
            EventKind::SchedSwitch {
                prev: tid,
                prev_state: SwitchState::from_code(state_code)
                    .ok_or(WireError::BadState(state_code))?,
                next: Tid(a as u32),
            }
        }
        code::WAKEUP => EventKind::Wakeup {
            tid,
            waker: Tid(a as u32),
        },
        code::MIGRATE => EventKind::Migrate {
            tid,
            from: CpuId((a >> 16) as u16),
            to: CpuId(a as u16),
        },
        code::MARK => EventKind::AppMark {
            mark: a as u32,
            value: b,
        },
        code::TASK_EXIT => EventKind::TaskExit { tid },
        other => return Err(WireError::BadCode(other)),
    };
    // The context tid: for SWITCH the wire reuses the tid field as
    // `prev` (which equals the context), for WAKEUP as the woken task.
    let ctx_tid = match kind {
        EventKind::Wakeup { waker, .. } => waker,
        _ => tid,
    };
    Ok((ctx_tid, kind))
}

fn encode_record(buf: &mut BytesMut, e: &Event) {
    buf.put_u64_le(e.t.as_nanos());
    buf.put_u16_le(e.cpu.0);
    let (c, tid, a, b) = pack_record(e);
    buf.put_u16_le(c);
    buf.put_u32_le(tid);
    buf.put_u64_le(a);
    buf.put_u64_le(b);
}

fn decode_record(buf: &mut Bytes) -> Result<Event, WireError> {
    if buf.remaining() < RECORD_BYTES {
        return Err(WireError::Truncated);
    }
    let t = Nanos(buf.get_u64_le());
    let cpu = CpuId(buf.get_u16_le());
    let c = buf.get_u16_le();
    let tid = buf.get_u32_le();
    let a = buf.get_u64_le();
    let b = buf.get_u64_le();
    let (ctx_tid, kind) = unpack_record(c, tid, a, b)?;
    Ok(Event {
        t,
        cpu,
        tid: ctx_tid,
        kind,
    })
}

/// Exact number of bytes [`encode`] produces for `trace`.
pub fn encoded_len(trace: &Trace) -> usize {
    MAGIC.len() + 8 + trace.lost.len() * 8 + 8 + trace.events.len() * RECORD_BYTES + CHECKSUM_BYTES
}

/// Append the full wire image of `trace` to `buf` (header, lost
/// counters, every record, then the image checksum, batched in one
/// pass). Reserves the exact size up front so the emission loop never
/// reallocates.
pub fn encode_into(trace: &Trace, buf: &mut BytesMut) {
    buf.reserve(encoded_len(trace));
    let start = buf.len();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(trace.lost.len() as u32);
    for &l in &trace.lost {
        buf.put_u64_le(l);
    }
    buf.put_u64_le(trace.events.len() as u64);
    for e in &trace.events {
        encode_record(buf, e);
    }
    let sum = fnv1a64(&buf[start..]);
    buf.put_u64_le(sum);
}

/// Serialize a trace to bytes.
///
/// Batches the whole emission through a thread-local scratch
/// [`BytesMut`]: repeated encodes on one thread (campaign loops,
/// benchmarks) recycle the scratch's capacity instead of growing a
/// fresh buffer each call.
pub fn encode(trace: &Trace) -> Bytes {
    thread_local! {
        static SCRATCH: std::cell::RefCell<BytesMut> =
            std::cell::RefCell::new(BytesMut::new());
    }
    SCRATCH.with(|scratch| {
        let mut buf = scratch.borrow_mut();
        debug_assert!(buf.is_empty(), "scratch left dirty by a previous encode");
        encode_into(trace, &mut buf);
        buf.split().freeze()
    })
}

/// Deserialize a trace from bytes.
///
/// Current images (v2) are checksum-verified before any structural
/// parsing; legacy v1 images (pre-checksum) take an explicit fallback
/// path. Any other version is a typed [`WireError::VersionMismatch`].
pub fn decode(mut buf: Bytes) -> Result<Trace, WireError> {
    let full = buf.clone();
    if buf.remaining() < MAGIC.len() + 8 {
        return Err(WireError::Truncated);
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = buf.get_u32_le();
    match version {
        VERSION => {
            // Verify the trailing image checksum over everything that
            // precedes it before trusting any declared length.
            let body_len = full.len() - CHECKSUM_BYTES;
            let expect = u64::from_le_bytes(full[body_len..].try_into().unwrap());
            if fnv1a64(&full[..body_len]) != expect {
                return Err(WireError::ChecksumMismatch);
            }
        }
        LEGACY_VERSION => {} // pre-checksum fallback: structure checks only
        found => {
            return Err(WireError::VersionMismatch {
                found,
                supported: VERSION,
            })
        }
    }
    let ncpus = buf.get_u32_le() as usize;
    // Validate declared lengths against the actual payload before any
    // allocation: a corrupted (or hostile) header must not drive a
    // multi-gigabyte `Vec::with_capacity`.
    if ncpus
        .checked_mul(8)
        .and_then(|n| n.checked_add(8))
        .is_none_or(|need| buf.remaining() < need)
    {
        return Err(WireError::Truncated);
    }
    let lost: Vec<u64> = (0..ncpus).map(|_| buf.get_u64_le()).collect();
    let count = buf.get_u64_le();
    let count: usize = count.try_into().map_err(|_| WireError::Truncated)?;
    if count
        .checked_mul(RECORD_BYTES)
        .is_none_or(|need| buf.remaining() < need)
    {
        return Err(WireError::Truncated);
    }
    let mut events = Vec::with_capacity(count);
    for _ in 0..count {
        events.push(decode_record(&mut buf)?);
    }
    Ok(Trace::from_raw_parts(events, lost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_kernel::activity::{FaultKind, SoftirqVec};

    fn sample_trace() -> Trace {
        let mk = |t: u64, cpu: u16, tid: u32, kind: EventKind| Event {
            t: Nanos(t),
            cpu: CpuId(cpu),
            tid: Tid(tid),
            kind,
        };
        Trace::from_raw_parts(
            vec![
                mk(1, 0, 1, EventKind::KernelEnter(Activity::TimerInterrupt)),
                mk(
                    2,
                    0,
                    1,
                    EventKind::KernelEnter(Activity::PageFault(FaultKind::Cow)),
                ),
                mk(3, 0, 0, EventKind::SoftirqRaise(SoftirqVec::NetRx)),
                mk(
                    4,
                    1,
                    5,
                    EventKind::SchedSwitch {
                        prev: Tid(5),
                        prev_state: SwitchState::BlockedIo,
                        next: Tid(6),
                    },
                ),
                mk(
                    5,
                    1,
                    9,
                    EventKind::Wakeup {
                        tid: Tid(7),
                        waker: Tid(9),
                    },
                ),
                mk(
                    6,
                    1,
                    7,
                    EventKind::Migrate {
                        tid: Tid(7),
                        from: CpuId(1),
                        to: CpuId(3),
                    },
                ),
                mk(
                    7,
                    2,
                    8,
                    EventKind::AppMark {
                        mark: 11,
                        value: u64::MAX - 3,
                    },
                ),
                mk(8, 2, 8, EventKind::TaskExit { tid: Tid(8) }),
            ],
            vec![0, 5, 0],
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let trace = sample_trace();
        let bytes = encode(&trace);
        let back = decode(bytes).unwrap();
        assert_eq!(back.lost, trace.lost);
        assert_eq!(back.events, trace.events);
    }

    #[test]
    fn record_size_is_fixed() {
        let trace = sample_trace();
        let bytes = encode(&trace);
        let header = MAGIC.len() + 4 + 4 + trace.lost.len() * 8 + 8;
        assert_eq!(
            bytes.len(),
            header + trace.events.len() * RECORD_BYTES + CHECKSUM_BYTES
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let trace = sample_trace();
        let mut bytes = encode(&trace).to_vec();
        bytes[0] = b'X';
        assert_eq!(decode(Bytes::from(bytes)).unwrap_err(), WireError::BadMagic);
    }

    #[test]
    fn future_version_rejected_typed() {
        let trace = sample_trace();
        let mut bytes = encode(&trace).to_vec();
        bytes[8] = 99;
        assert_eq!(
            decode(Bytes::from(bytes)).unwrap_err(),
            WireError::VersionMismatch {
                found: 99,
                supported: VERSION
            }
        );
    }

    #[test]
    fn legacy_v1_decodes_via_fallback() {
        // A v1 image is exactly a v2 image with the version field
        // rewritten and the trailing checksum stripped.
        let trace = sample_trace();
        let mut bytes = encode(&trace).to_vec();
        bytes[8] = LEGACY_VERSION as u8;
        bytes.truncate(bytes.len() - CHECKSUM_BYTES);
        let back = decode(Bytes::from(bytes)).unwrap();
        assert_eq!(back.lost, trace.lost);
        assert_eq!(back.events, trace.events);
    }

    #[test]
    fn checksum_detects_payload_corruption() {
        let trace = sample_trace();
        let mut bytes = encode(&trace).to_vec();
        // Flip one bit inside the first record's timestamp.
        let rec0 = MAGIC.len() + 4 + 4 + trace.lost.len() * 8 + 8;
        bytes[rec0] ^= 0x40;
        assert_eq!(
            decode(Bytes::from(bytes)).unwrap_err(),
            WireError::ChecksumMismatch
        );
    }

    #[test]
    fn truncated_rejected() {
        let trace = sample_trace();
        let bytes = encode(&trace);
        // Cuts inside the header are structural truncation; a cut in
        // the body of a v2 image surfaces as a checksum failure (the
        // trailing 8 bytes are no longer the image checksum).
        for cut in [3, 12] {
            let sliced = bytes.slice(0..cut);
            assert_eq!(
                decode(sliced).unwrap_err(),
                WireError::Truncated,
                "cut={cut}"
            );
        }
        let sliced = bytes.slice(0..bytes.len() - 1);
        assert_eq!(decode(sliced).unwrap_err(), WireError::ChecksumMismatch);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let trace = Trace::from_raw_parts(vec![], vec![]);
        let back = decode(encode(&trace)).unwrap();
        assert!(back.events.is_empty());
        assert!(back.lost.is_empty());
    }

    #[test]
    fn all_activities_roundtrip() {
        let events: Vec<Event> = Activity::all()
            .into_iter()
            .enumerate()
            .flat_map(|(i, a)| {
                [
                    Event {
                        t: Nanos(i as u64 * 2),
                        cpu: CpuId(0),
                        tid: Tid(1),
                        kind: EventKind::KernelEnter(a),
                    },
                    Event {
                        t: Nanos(i as u64 * 2 + 1),
                        cpu: CpuId(0),
                        tid: Tid(1),
                        kind: EventKind::KernelExit(a),
                    },
                ]
            })
            .collect();
        let trace = Trace::from_raw_parts(events, vec![0]);
        let back = decode(encode(&trace)).unwrap();
        assert_eq!(back.events, trace.events);
    }

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}

/// Write a trace to a file in the wire format.
pub fn write_trace_file(path: &std::path::Path, trace: &Trace) -> std::io::Result<()> {
    std::fs::write(path, encode(trace))
}

/// Read a trace from a wire-format file.
pub fn read_trace_file(path: &std::path::Path) -> std::io::Result<Trace> {
    let raw = std::fs::read(path)?;
    decode(Bytes::from(raw)).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod file_tests {
    use super::*;
    use crate::EventKind;
    use osn_kernel::ids::{CpuId, Tid};
    use osn_kernel::time::Nanos;

    #[test]
    fn file_roundtrip() {
        let trace = Trace::from_raw_parts(
            vec![Event {
                t: Nanos(5),
                cpu: CpuId(0),
                tid: Tid(1),
                kind: EventKind::KernelEnter(Activity::TimerInterrupt),
            }],
            vec![0],
        );
        let dir = std::env::temp_dir().join("osn-wire-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        write_trace_file(&path, &trace).unwrap();
        let back = read_trace_file(&path).unwrap();
        assert_eq!(back.events, trace.events);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_corrupt_file_is_io_error() {
        let dir = std::env::temp_dir().join("osn-wire-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.trace");
        std::fs::write(&path, b"not a trace").unwrap();
        let err = read_trace_file(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }
}
