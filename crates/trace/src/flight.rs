//! Flight-recorder (overwrite) channels: LTTng's second buffering mode.
//!
//! The discard-mode SPSC ring ([`crate::ringbuf`]) never loses *old*
//! records — under overload it drops new ones and counts them. LTTng's
//! *overwrite* mode does the opposite: the tracer runs forever into a
//! bounded buffer and, when something interesting happens (a crash, an
//! SLA violation, a giant interruption), the operator *snapshots* the
//! most recent history.
//!
//! LTTng implements this with **sub-buffers**: the producer fills one
//! sub-buffer at a time; switching to the next one reclaims (discards)
//! the oldest unread sub-buffer if the consumer has not taken it. We
//! implement the same structure for a single-threaded producer with
//! explicit snapshots, which is how the simulator uses it.

use std::collections::VecDeque;

use crate::event::Event;

/// A bounded flight-recorder channel of `nsub` sub-buffers holding
/// `per_sub` records each. The most recent `nsub × per_sub` records
/// (rounded down to sub-buffer granularity) are always available to
/// [`FlightRecorder::snapshot`].
#[derive(Debug)]
pub struct FlightRecorder {
    /// Filled sub-buffers, oldest first.
    full: VecDeque<Vec<Event>>,
    /// The sub-buffer currently being written.
    current: Vec<Event>,
    per_sub: usize,
    nsub: usize,
    /// Whole sub-buffers discarded to make room (overwrite mode's
    /// loss accounting: old data, not new).
    pub overwritten_subbuffers: u64,
}

impl FlightRecorder {
    /// Create a recorder with `nsub` sub-buffers of `per_sub` records.
    pub fn new(nsub: usize, per_sub: usize) -> FlightRecorder {
        assert!(nsub >= 2, "need at least two sub-buffers");
        assert!(per_sub >= 1);
        FlightRecorder {
            full: VecDeque::with_capacity(nsub),
            current: Vec::with_capacity(per_sub),
            per_sub,
            nsub,
            overwritten_subbuffers: 0,
        }
    }

    /// Record one event; never fails, overwriting the oldest history
    /// when full.
    pub fn record(&mut self, event: Event) {
        if self.current.len() == self.per_sub {
            self.switch();
        }
        self.current.push(event);
    }

    /// Sub-buffer switch: seal the current buffer, reclaiming the
    /// oldest if the window is full.
    fn switch(&mut self) {
        // `nsub - 1` sealed buffers + the current one = nsub total.
        if self.full.len() == self.nsub - 1 {
            self.full.pop_front();
            self.overwritten_subbuffers += 1;
        }
        let sealed = std::mem::replace(&mut self.current, Vec::with_capacity(self.per_sub));
        self.full.push_back(sealed);
    }

    /// Total records currently retained.
    pub fn len(&self) -> usize {
        self.full.iter().map(Vec::len).sum::<usize>() + self.current.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retention capacity in records.
    pub fn capacity(&self) -> usize {
        self.nsub * self.per_sub
    }

    /// Snapshot the retained history, oldest first. The recorder keeps
    /// running; the snapshot is a copy (as `lttng snapshot record` is).
    pub fn snapshot(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.len());
        for sub in &self.full {
            out.extend_from_slice(sub);
        }
        out.extend_from_slice(&self.current);
        out
    }

    /// Drain the retained history, resetting the recorder.
    pub fn take(&mut self) -> Vec<Event> {
        let snap = self.snapshot();
        self.full.clear();
        self.current.clear();
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_kernel::activity::Activity;
    use osn_kernel::ids::{CpuId, Tid};
    use osn_kernel::time::Nanos;

    use crate::event::EventKind;

    fn ev(i: u64) -> Event {
        Event {
            t: Nanos(i),
            cpu: CpuId(0),
            tid: Tid(1),
            kind: EventKind::AppMark { mark: 0, value: i },
        }
    }

    fn values(events: &[Event]) -> Vec<u64> {
        events
            .iter()
            .map(|e| match e.kind {
                EventKind::AppMark { value, .. } => value,
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn retains_everything_until_full() {
        let mut fr = FlightRecorder::new(4, 8);
        for i in 0..20 {
            fr.record(ev(i));
        }
        assert_eq!(fr.len(), 20);
        assert_eq!(fr.overwritten_subbuffers, 0);
        assert_eq!(values(&fr.snapshot()), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn overwrites_oldest_subbuffer_granularity() {
        let mut fr = FlightRecorder::new(3, 4); // retains ≤ 12
        for i in 0..100 {
            fr.record(ev(i));
        }
        assert!(fr.len() <= fr.capacity());
        assert!(fr.overwritten_subbuffers > 0);
        let snap = values(&fr.snapshot());
        // The newest record is always present; history is contiguous.
        assert_eq!(*snap.last().unwrap(), 99);
        assert!(snap.windows(2).all(|w| w[1] == w[0] + 1));
        // At least (nsub-1) full sub-buffers of history retained.
        assert!(snap.len() >= 2 * 4);
    }

    #[test]
    fn snapshot_does_not_disturb_recording() {
        let mut fr = FlightRecorder::new(2, 4);
        for i in 0..6 {
            fr.record(ev(i));
        }
        let a = fr.snapshot();
        fr.record(ev(6));
        let b = fr.snapshot();
        assert_eq!(b.len(), a.len() + 1);
    }

    #[test]
    fn take_resets() {
        let mut fr = FlightRecorder::new(2, 4);
        for i in 0..5 {
            fr.record(ev(i));
        }
        let taken = fr.take();
        assert_eq!(taken.len(), 5);
        assert!(fr.is_empty());
        fr.record(ev(10));
        assert_eq!(fr.len(), 1);
    }

    #[test]
    fn capacity_accounting() {
        let fr = FlightRecorder::new(8, 128);
        assert_eq!(fr.capacity(), 1024);
        assert!(fr.is_empty());
    }

    /// Flight-recording an actual simulation and snapshotting around
    /// the largest FTQ spike: the post-mortem debugging workflow.
    #[test]
    fn flight_recorder_probe_on_a_real_run() {
        use osn_kernel::config::NodeConfig;
        use osn_kernel::hooks::Probe;
        use osn_kernel::node::Node;
        use osn_kernel::prelude::{BusyLoop, Workload};

        struct FlightProbe {
            recorder: FlightRecorder,
        }
        impl Probe for FlightProbe {
            fn kernel_enter(&mut self, t: Nanos, cpu: CpuId, tid: Tid, a: Activity) {
                self.recorder.record(Event {
                    t,
                    cpu,
                    tid,
                    kind: EventKind::KernelEnter(a),
                });
            }
            fn kernel_exit(&mut self, t: Nanos, cpu: CpuId, tid: Tid, a: Activity) {
                self.recorder.record(Event {
                    t,
                    cpu,
                    tid,
                    kind: EventKind::KernelExit(a),
                });
            }
        }

        let mut node = Node::new(
            NodeConfig::default()
                .with_cpus(1)
                .with_seed(3)
                .with_horizon(Nanos::from_secs(3)),
        );
        node.spawn_job(
            "w",
            vec![Box::new(BusyLoop::new(Nanos::from_secs(2))) as Box<dyn Workload>],
        );
        let mut probe = FlightProbe {
            recorder: FlightRecorder::new(4, 64),
        };
        node.run(&mut probe);
        // A 2 s run generates far more than 256 events; only the most
        // recent window is retained, and it is well-formed.
        assert!(probe.recorder.overwritten_subbuffers > 0);
        let snap = probe.recorder.snapshot();
        assert!(!snap.is_empty());
        assert!(snap.len() <= probe.recorder.capacity());
        assert!(snap.windows(2).all(|w| w[0].t <= w[1].t), "time-ordered");
    }
}
