//! Trace events: the records LTT NG-NOISE emits at every kernel
//! entry/exit point and scheduler tracepoint.

use osn_kernel::activity::{Activity, SoftirqVec};
use osn_kernel::hooks::SwitchState;
use osn_kernel::ids::{CpuId, Tid};

use crate::columns::EventColumns;
use osn_kernel::time::Nanos;

use serde::{Deserialize, Serialize};

/// The payload of one trace record.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum EventKind {
    /// A kernel activity began (interrupt, softirq, exception,
    /// syscall, scheduler half).
    KernelEnter(Activity),
    /// The matching end.
    KernelExit(Activity),
    /// A softirq vector was raised.
    SoftirqRaise(SoftirqVec),
    /// Context switch: `prev` left in `prev_state`, `next` came in.
    SchedSwitch {
        prev: Tid,
        prev_state: SwitchState,
        next: Tid,
    },
    /// `tid` became runnable on this CPU, woken by `waker`.
    Wakeup { tid: Tid, waker: Tid },
    /// Load balancer moved `tid` between CPUs.
    Migrate { tid: Tid, from: CpuId, to: CpuId },
    /// User-space tracepoint with an application-defined payload.
    AppMark { mark: u32, value: u64 },
    /// Task exit.
    TaskExit { tid: Tid },
}

/// One timestamped trace record. `tid` is the task context the CPU was
/// in when the event fired (`Tid::IDLE` for the idle loop).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Event {
    pub t: Nanos,
    pub cpu: CpuId,
    pub tid: Tid,
    pub kind: EventKind,
}

impl Event {
    /// Ordering key for merging per-CPU streams: time, then CPU (ties
    /// across CPUs are arbitrary but stable).
    #[inline]
    pub fn key(&self) -> (Nanos, u16) {
        (self.t, self.cpu.0)
    }
}

/// A complete collected trace: events in global `(t, cpu)` order plus
/// loss accounting, per-CPU / per-context position indexes, and
/// per-CPU [`EventColumns`] blocks.
///
/// The indexes and columns are built once at construction (or
/// inherited from the k-way collection merge) so that per-CPU and
/// per-context iteration — the access patterns of the sharded analysis
/// engine — cost O(own events) instead of a filter over the whole
/// trace, and the reconstruction hot loop can run over flat
/// structure-of-arrays columns instead of gathering 32-byte `Event`
/// structs through a position index.
///
/// Serde round-trips only `(events, lost)` — the derived indexes and
/// columns are rebuilt on deserialize, so they can never go stale or
/// bloat a serialized image.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    pub events: Vec<Event>,
    /// Records dropped per CPU because its ring buffer was full
    /// (discard mode, as the paper's low-interference configuration).
    pub lost: Vec<u64>,
    /// CPUs the trace covers: `max(lost.len(), 1 + highest cpu id)`.
    ncpus: usize,
    /// Positions (into `events`) of each CPU's records, in stream
    /// order.
    cpu_index: Vec<Vec<u32>>,
    /// Positions of each context tid's records, sorted by tid for
    /// binary-search lookup.
    ctx_index: CtxIndex,
    /// Per-CPU columnar blocks, same records as `cpu_index` points at.
    columns: Vec<EventColumns>,
}

/// The serialized shape of [`Trace`]: just the collected data, no
/// derived indexes.
#[derive(Serialize, Deserialize)]
struct TraceWire {
    events: Vec<Event>,
    lost: Vec<u64>,
}

impl Serialize for Trace {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("events".to_string(), self.events.to_value()),
            ("lost".to_string(), self.lost.to_value()),
        ])
    }
}

impl Deserialize for Trace {
    fn from_value(v: &serde::Value) -> Result<Trace, serde::DeError> {
        let w = TraceWire::from_value(v)?;
        Ok(Trace::from_raw_parts(w.events, w.lost))
    }
}

/// Positions of each context tid's records, sorted by tid.
type CtxIndex = Vec<(Tid, Vec<u32>)>;

fn build_indexes(
    events: &[Event],
    ncpus_hint: usize,
) -> (usize, Vec<Vec<u32>>, CtxIndex, Vec<EventColumns>) {
    let mut cpu_index: Vec<Vec<u32>> = Vec::with_capacity(ncpus_hint);
    let mut columns: Vec<EventColumns> = Vec::with_capacity(ncpus_hint);
    let mut by_ctx: std::collections::HashMap<Tid, Vec<u32>> = std::collections::HashMap::new();
    for (pos, e) in events.iter().enumerate() {
        let cpu = e.cpu.index();
        if cpu >= cpu_index.len() {
            cpu_index.resize_with(cpu + 1, Vec::new);
            columns.extend((columns.len()..=cpu).map(|c| EventColumns::new(CpuId(c as u16))));
        }
        cpu_index[cpu].push(pos as u32);
        columns[cpu].push_event(e);
        by_ctx.entry(e.tid).or_default().push(pos as u32);
    }
    let ncpus = ncpus_hint.max(cpu_index.len());
    cpu_index.resize_with(ncpus, Vec::new);
    columns.extend((columns.len()..ncpus).map(|c| EventColumns::new(CpuId(c as u16))));
    let mut ctx_index: Vec<(Tid, Vec<u32>)> = by_ctx.into_iter().collect();
    ctx_index.sort_unstable_by_key(|(tid, _)| tid.0);
    (ncpus, cpu_index, ctx_index, columns)
}

impl Trace {
    pub fn new(events: Vec<Event>, lost: Vec<u64>) -> Self {
        debug_assert!(
            events.windows(2).all(|w| w[0].key() <= w[1].key()),
            "trace must be sorted"
        );
        Trace::from_raw_parts(events, lost)
    }

    /// Build a trace without asserting global `(t, cpu)` order (wire
    /// decoding must round-trip arbitrary event vectors losslessly).
    pub fn from_raw_parts(events: Vec<Event>, lost: Vec<u64>) -> Self {
        let (ncpus, cpu_index, ctx_index, columns) = build_indexes(&events, lost.len());
        Trace {
            events,
            lost,
            ncpus,
            cpu_index,
            ctx_index,
            columns,
        }
    }

    /// Build a trace by k-way merging already time-sorted per-CPU
    /// streams (see [`crate::merge::merge_streams`]). This is the
    /// collection path: no global re-sort happens.
    pub fn from_streams(streams: Vec<Vec<Event>>, lost: Vec<u64>) -> Self {
        let nstreams = streams.len();
        let events = crate::merge::merge_streams(streams);
        let (ncpus, cpu_index, ctx_index, columns) =
            build_indexes(&events, lost.len().max(nstreams));
        Trace {
            events,
            lost,
            ncpus,
            cpu_index,
            ctx_index,
            columns,
        }
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn total_lost(&self) -> u64 {
        self.lost.iter().sum()
    }

    /// Number of CPUs the trace was collected from. Always at least
    /// `1 + highest cpu id seen`; known without scanning events.
    #[inline]
    pub fn ncpus(&self) -> usize {
        self.ncpus
    }

    /// Positions (into `events`) of one CPU's records.
    #[inline]
    pub fn cpu_positions(&self, cpu: CpuId) -> &[u32] {
        self.cpu_index
            .get(cpu.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterate over the events of one CPU, in stream order
    /// (index-backed: O(own events), not O(trace)).
    pub fn cpu_events(&self, cpu: CpuId) -> impl Iterator<Item = &Event> {
        self.cpu_positions(cpu)
            .iter()
            .map(move |&p| &self.events[p as usize])
    }

    /// One CPU's records as columnar [`EventColumns`], in stream order
    /// — the zero-gather input of the reconstruction hot loop. Empty
    /// block for CPUs beyond the trace's range.
    #[inline]
    pub fn cpu_columns(&self, cpu: CpuId) -> Option<&EventColumns> {
        self.columns.get(cpu.index())
    }

    /// Positions (into `events`) of one task context's records.
    #[inline]
    pub fn ctx_positions(&self, tid: Tid) -> &[u32] {
        match self.ctx_index.binary_search_by_key(&tid.0, |(t, _)| t.0) {
            Ok(i) => &self.ctx_index[i].1,
            Err(_) => &[],
        }
    }

    /// Iterate over events in a task's context (index-backed).
    pub fn task_events(&self, tid: Tid) -> impl Iterator<Item = &Event> {
        self.ctx_positions(tid)
            .iter()
            .map(move |&p| &self.events[p as usize])
    }

    /// The time span covered by the trace.
    pub fn span(&self) -> Option<(Nanos, Nanos)> {
        Some((self.events.first()?.t, self.events.last()?.t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, cpu: u16, kind: EventKind) -> Event {
        Event {
            t: Nanos(t),
            cpu: CpuId(cpu),
            tid: Tid(1),
            kind,
        }
    }

    #[test]
    fn trace_accessors() {
        let events = vec![
            ev(10, 0, EventKind::KernelEnter(Activity::TimerInterrupt)),
            ev(12, 1, EventKind::KernelEnter(Activity::TimerInterrupt)),
            ev(15, 0, EventKind::KernelExit(Activity::TimerInterrupt)),
        ];
        let trace = Trace::new(events, vec![0, 2]);
        assert_eq!(trace.len(), 3);
        assert!(!trace.is_empty());
        assert_eq!(trace.total_lost(), 2);
        assert_eq!(trace.cpu_events(CpuId(0)).count(), 2);
        assert_eq!(trace.cpu_events(CpuId(1)).count(), 1);
        assert_eq!(trace.span(), Some((Nanos(10), Nanos(15))));
        assert_eq!(trace.task_events(Tid(1)).count(), 3);
        assert_eq!(trace.task_events(Tid(9)).count(), 0);
    }

    #[test]
    fn empty_trace() {
        let trace = Trace::default();
        assert!(trace.is_empty());
        assert_eq!(trace.span(), None);
    }

    #[test]
    fn key_orders_by_time_then_cpu() {
        let a = ev(10, 1, EventKind::AppMark { mark: 0, value: 0 });
        let b = ev(10, 2, EventKind::AppMark { mark: 0, value: 0 });
        let c = ev(11, 0, EventKind::AppMark { mark: 0, value: 0 });
        assert!(a.key() < b.key());
        assert!(b.key() < c.key());
    }
}
