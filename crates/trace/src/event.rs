//! Trace events: the records LTT NG-NOISE emits at every kernel
//! entry/exit point and scheduler tracepoint.

use osn_kernel::activity::{Activity, SoftirqVec};
use osn_kernel::hooks::SwitchState;
use osn_kernel::ids::{CpuId, Tid};
use osn_kernel::time::Nanos;

use serde::{Deserialize, Serialize};

/// The payload of one trace record.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum EventKind {
    /// A kernel activity began (interrupt, softirq, exception,
    /// syscall, scheduler half).
    KernelEnter(Activity),
    /// The matching end.
    KernelExit(Activity),
    /// A softirq vector was raised.
    SoftirqRaise(SoftirqVec),
    /// Context switch: `prev` left in `prev_state`, `next` came in.
    SchedSwitch {
        prev: Tid,
        prev_state: SwitchState,
        next: Tid,
    },
    /// `tid` became runnable on this CPU, woken by `waker`.
    Wakeup { tid: Tid, waker: Tid },
    /// Load balancer moved `tid` between CPUs.
    Migrate { tid: Tid, from: CpuId, to: CpuId },
    /// User-space tracepoint with an application-defined payload.
    AppMark { mark: u32, value: u64 },
    /// Task exit.
    TaskExit { tid: Tid },
}

/// One timestamped trace record. `tid` is the task context the CPU was
/// in when the event fired (`Tid::IDLE` for the idle loop).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Event {
    pub t: Nanos,
    pub cpu: CpuId,
    pub tid: Tid,
    pub kind: EventKind,
}

impl Event {
    /// Ordering key for merging per-CPU streams: time, then CPU (ties
    /// across CPUs are arbitrary but stable).
    #[inline]
    pub fn key(&self) -> (Nanos, u16) {
        (self.t, self.cpu.0)
    }
}

/// A complete collected trace: events in global `(t, cpu)` order plus
/// loss accounting.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    pub events: Vec<Event>,
    /// Records dropped per CPU because its ring buffer was full
    /// (discard mode, as the paper's low-interference configuration).
    pub lost: Vec<u64>,
}

impl Trace {
    pub fn new(events: Vec<Event>, lost: Vec<u64>) -> Self {
        debug_assert!(
            events.windows(2).all(|w| w[0].key() <= w[1].key()),
            "trace must be sorted"
        );
        Trace { events, lost }
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn total_lost(&self) -> u64 {
        self.lost.iter().sum()
    }

    /// Iterate over the events of one CPU, in time order.
    pub fn cpu_events(&self, cpu: CpuId) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.cpu == cpu)
    }

    /// Iterate over events in a task's context.
    pub fn task_events(&self, tid: Tid) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.tid == tid)
    }

    /// The time span covered by the trace.
    pub fn span(&self) -> Option<(Nanos, Nanos)> {
        Some((self.events.first()?.t, self.events.last()?.t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, cpu: u16, kind: EventKind) -> Event {
        Event {
            t: Nanos(t),
            cpu: CpuId(cpu),
            tid: Tid(1),
            kind,
        }
    }

    #[test]
    fn trace_accessors() {
        let events = vec![
            ev(10, 0, EventKind::KernelEnter(Activity::TimerInterrupt)),
            ev(12, 1, EventKind::KernelEnter(Activity::TimerInterrupt)),
            ev(15, 0, EventKind::KernelExit(Activity::TimerInterrupt)),
        ];
        let trace = Trace::new(events, vec![0, 2]);
        assert_eq!(trace.len(), 3);
        assert!(!trace.is_empty());
        assert_eq!(trace.total_lost(), 2);
        assert_eq!(trace.cpu_events(CpuId(0)).count(), 2);
        assert_eq!(trace.cpu_events(CpuId(1)).count(), 1);
        assert_eq!(trace.span(), Some((Nanos(10), Nanos(15))));
        assert_eq!(trace.task_events(Tid(1)).count(), 3);
        assert_eq!(trace.task_events(Tid(9)).count(), 0);
    }

    #[test]
    fn empty_trace() {
        let trace = Trace::default();
        assert!(trace.is_empty());
        assert_eq!(trace.span(), None);
    }

    #[test]
    fn key_orders_by_time_then_cpu() {
        let a = ev(10, 1, EventKind::AppMark { mark: 0, value: 0 });
        let b = ev(10, 2, EventKind::AppMark { mark: 0, value: 0 });
        let c = ev(11, 0, EventKind::AppMark { mark: 0, value: 0 });
        assert!(a.key() < b.key());
        assert!(b.key() < c.key());
    }
}
