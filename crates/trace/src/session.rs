//! Trace sessions: wiring the [`Probe`] instrumentation surface to
//! per-CPU lock-free ring buffers with an asynchronous collector.
//!
//! A [`TraceSession`] owns one ring per CPU (LTTng's per-CPU buffer
//! architecture). The kernel side is a [`Tracer`], which implements
//! [`Probe`] and appends fixed-size records with no locking. Collection
//! runs either inline at `stop()` or continuously on a background
//! thread ([`TraceSession::start_collector`]), mirroring LTTng's
//! consumer daemon.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use osn_kernel::activity::{Activity, SoftirqVec};
use osn_kernel::hooks::{Probe, SwitchState};
use osn_kernel::ids::{CpuId, Tid};
use osn_kernel::time::Nanos;

use parking_lot::Mutex;

use crate::event::{Event, EventKind, Trace};
use crate::ringbuf::{ring, Consumer, Producer};

/// Which tracepoint families are enabled (LTTng channel/event enabling).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EventMask(pub u16);

impl EventMask {
    pub const KERNEL: EventMask = EventMask(1 << 0);
    pub const RAISE: EventMask = EventMask(1 << 1);
    pub const SCHED: EventMask = EventMask(1 << 2);
    pub const WAKEUP: EventMask = EventMask(1 << 3);
    pub const MIGRATE: EventMask = EventMask(1 << 4);
    pub const MARK: EventMask = EventMask(1 << 5);
    pub const TASK: EventMask = EventMask(1 << 6);

    /// Everything on — the paper's "collect all possible information".
    pub const ALL: EventMask = EventMask(0x7f);
    pub const NONE: EventMask = EventMask(0);

    #[inline]
    pub fn contains(self, other: EventMask) -> bool {
        self.0 & other.0 == other.0
    }

    #[must_use]
    pub fn with(self, other: EventMask) -> EventMask {
        EventMask(self.0 | other.0)
    }

    #[must_use]
    pub fn without(self, other: EventMask) -> EventMask {
        EventMask(self.0 & !other.0)
    }
}

impl Default for EventMask {
    fn default() -> Self {
        EventMask::ALL
    }
}

/// The producer side: implements [`Probe`] and writes into the per-CPU
/// rings. Hand `&mut Tracer` to [`osn_kernel::node::Node::run`].
pub struct Tracer {
    producers: Vec<Producer<Event>>,
    mask: EventMask,
}

impl Tracer {
    #[inline]
    fn emit(&mut self, cpu: CpuId, event: Event) {
        self.producers[cpu.index()].push(event);
    }

    /// Records lost across all CPUs so far.
    pub fn lost(&self) -> u64 {
        self.producers.iter().map(|p| p.lost()).sum()
    }
}

impl Probe for Tracer {
    fn kernel_enter(&mut self, t: Nanos, cpu: CpuId, tid: Tid, activity: Activity) {
        if self.mask.contains(EventMask::KERNEL) {
            self.emit(
                cpu,
                Event {
                    t,
                    cpu,
                    tid,
                    kind: EventKind::KernelEnter(activity),
                },
            );
        }
    }

    fn kernel_exit(&mut self, t: Nanos, cpu: CpuId, tid: Tid, activity: Activity) {
        if self.mask.contains(EventMask::KERNEL) {
            self.emit(
                cpu,
                Event {
                    t,
                    cpu,
                    tid,
                    kind: EventKind::KernelExit(activity),
                },
            );
        }
    }

    fn softirq_raise(&mut self, t: Nanos, cpu: CpuId, vec: SoftirqVec) {
        if self.mask.contains(EventMask::RAISE) {
            self.emit(
                cpu,
                Event {
                    t,
                    cpu,
                    tid: Tid::IDLE,
                    kind: EventKind::SoftirqRaise(vec),
                },
            );
        }
    }

    fn sched_switch(
        &mut self,
        t: Nanos,
        cpu: CpuId,
        prev: Tid,
        prev_state: SwitchState,
        next: Tid,
    ) {
        if self.mask.contains(EventMask::SCHED) {
            self.emit(
                cpu,
                Event {
                    t,
                    cpu,
                    tid: prev,
                    kind: EventKind::SchedSwitch {
                        prev,
                        prev_state,
                        next,
                    },
                },
            );
        }
    }

    fn wakeup(&mut self, t: Nanos, cpu: CpuId, tid: Tid, waker: Tid) {
        if self.mask.contains(EventMask::WAKEUP) {
            self.emit(
                cpu,
                Event {
                    t,
                    cpu,
                    tid: waker,
                    kind: EventKind::Wakeup { tid, waker },
                },
            );
        }
    }

    fn migrate(&mut self, t: Nanos, tid: Tid, from: CpuId, to: CpuId) {
        if self.mask.contains(EventMask::MIGRATE) {
            self.emit(
                from,
                Event {
                    t,
                    cpu: from,
                    tid,
                    kind: EventKind::Migrate { tid, from, to },
                },
            );
        }
    }

    fn app_mark(&mut self, t: Nanos, cpu: CpuId, tid: Tid, mark: u32, value: u64) {
        if self.mask.contains(EventMask::MARK) {
            self.emit(
                cpu,
                Event {
                    t,
                    cpu,
                    tid,
                    kind: EventKind::AppMark { mark, value },
                },
            );
        }
    }

    fn task_exit(&mut self, t: Nanos, cpu: CpuId, tid: Tid) {
        if self.mask.contains(EventMask::TASK) {
            self.emit(
                cpu,
                Event {
                    t,
                    cpu,
                    tid,
                    kind: EventKind::TaskExit { tid },
                },
            );
        }
    }
}

/// Destination for drained records when a session *spills* to disk
/// instead of accumulating in memory (LTTng's relayd role; the
/// `osn-store` `SpillWriter` implements this). Batches for one CPU
/// arrive in ring order, which is that CPU's time order.
pub trait EventSink: Send {
    fn append(&mut self, cpu: CpuId, events: &[Event]) -> std::io::Result<()>;
}

/// The consumer/owner side of a tracing setup.
pub struct TraceSession {
    consumers: Vec<Consumer<Event>>,
    ncpus: usize,
    collector: Option<CollectorHandle>,
    spill: Option<SpillState>,
}

struct CollectorHandle {
    stop: Arc<AtomicBool>,
    sink: Arc<Mutex<Vec<Vec<Event>>>>,
    handle: JoinHandle<Vec<Consumer<Event>>>,
}

enum SpillState {
    /// Sink stored; rings drain into it once, inline at `stop_spill`.
    Inline(Box<dyn EventSink>),
    /// A background spill collector owns the consumers and the sink.
    Running(SpillHandle),
}

type SpillJoin = (
    Vec<Consumer<Event>>,
    Box<dyn EventSink>,
    std::io::Result<()>,
);

struct SpillHandle {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<SpillJoin>,
}

impl TraceSession {
    /// Create a session with `per_cpu_capacity` record slots per CPU
    /// and the given tracepoint mask. Returns the session (consumer
    /// side) and the [`Tracer`] to pass to the simulator.
    pub fn new(ncpus: usize, per_cpu_capacity: usize, mask: EventMask) -> (TraceSession, Tracer) {
        let mut producers = Vec::with_capacity(ncpus);
        let mut consumers = Vec::with_capacity(ncpus);
        for _ in 0..ncpus {
            let (p, c) = ring::<Event>(per_cpu_capacity);
            producers.push(p);
            consumers.push(c);
        }
        (
            TraceSession {
                consumers,
                ncpus,
                collector: None,
                spill: None,
            },
            Tracer { producers, mask },
        )
    }

    /// Convenience: everything enabled, a generous buffer.
    pub fn with_defaults(ncpus: usize) -> (TraceSession, Tracer) {
        TraceSession::new(ncpus, 1 << 20, EventMask::ALL)
    }

    /// Spawn the background consumer thread (LTTng's consumer daemon):
    /// it drains all rings every `poll` interval so small rings survive
    /// long runs.
    pub fn start_collector(&mut self, poll: std::time::Duration) {
        assert!(self.collector.is_none(), "collector already running");
        let stop = Arc::new(AtomicBool::new(false));
        let sink: Arc<Mutex<Vec<Vec<Event>>>> =
            Arc::new(Mutex::new((0..self.ncpus).map(|_| Vec::new()).collect()));
        let mut consumers = std::mem::take(&mut self.consumers);
        let stop2 = Arc::clone(&stop);
        let sink2 = Arc::clone(&sink);
        let handle = std::thread::spawn(move || {
            loop {
                let mut drained = 0;
                {
                    let mut sink = sink2.lock();
                    for (i, c) in consumers.iter_mut().enumerate() {
                        drained += c.drain_into(&mut sink[i]);
                    }
                }
                if stop2.load(Ordering::Acquire) && drained == 0 {
                    break;
                }
                if drained == 0 {
                    std::thread::sleep(poll);
                }
            }
            consumers
        });
        self.collector = Some(CollectorHandle { stop, sink, handle });
    }

    /// Route drained records to `sink` instead of accumulating them in
    /// memory. With `poll = Some(d)` a background thread (the spill
    /// collector) drains every ring each `d` and appends to the sink
    /// while the run is still producing — constant memory regardless of
    /// run length. With `poll = None` the rings are swept into the sink
    /// once, at [`TraceSession::stop_spill`] (only sensible when the
    /// rings are large enough to hold the whole run).
    ///
    /// Mutually exclusive with [`TraceSession::start_collector`] /
    /// [`TraceSession::stop`]: a spilling session ends with
    /// `stop_spill`, and the sink's owner finalizes the sink itself.
    pub fn spill(&mut self, sink: Box<dyn EventSink>, poll: Option<std::time::Duration>) {
        assert!(self.collector.is_none(), "in-memory collector running");
        assert!(self.spill.is_none(), "spill already configured");
        let Some(poll) = poll else {
            self.spill = Some(SpillState::Inline(sink));
            return;
        };
        let stop = Arc::new(AtomicBool::new(false));
        let mut consumers = std::mem::take(&mut self.consumers);
        let stop2 = Arc::clone(&stop);
        let mut sink = sink;
        let handle = std::thread::spawn(move || {
            let mut scratch: Vec<Event> = Vec::new();
            // First sink error is sticky: the rings keep draining (so
            // the producer never wedges against full rings) but nothing
            // more is written, and the error surfaces at stop_spill.
            let mut status: std::io::Result<()> = Ok(());
            loop {
                let mut drained = 0;
                for (i, c) in consumers.iter_mut().enumerate() {
                    scratch.clear();
                    drained += c.drain_into(&mut scratch);
                    if !scratch.is_empty() && status.is_ok() {
                        status = sink.append(CpuId(i as u16), &scratch);
                    }
                }
                if stop2.load(Ordering::Acquire) && drained == 0 {
                    break;
                }
                if drained == 0 {
                    std::thread::sleep(poll);
                }
            }
            (consumers, sink, status)
        });
        self.spill = Some(SpillState::Running(SpillHandle { stop, handle }));
    }

    /// Finish a spilling session: join the spill collector (if any),
    /// sweep the rings one final time into the sink, and return the
    /// per-CPU loss counters. The sink itself stays with its owner —
    /// e.g. a store `SpillWriter` is finalized separately with the
    /// counters returned here.
    pub fn stop_spill(mut self) -> std::io::Result<Vec<u64>> {
        let spill = self.spill.take().expect("no spill configured; use stop()");
        let (mut consumers, mut sink, status) = match spill {
            SpillState::Running(h) => {
                h.stop.store(true, Ordering::Release);
                h.handle.join().expect("spill collector panicked")
            }
            SpillState::Inline(sink) => (std::mem::take(&mut self.consumers), sink, Ok(())),
        };
        status?;
        let mut scratch: Vec<Event> = Vec::new();
        for (i, c) in consumers.iter_mut().enumerate() {
            scratch.clear();
            c.drain_into(&mut scratch);
            if !scratch.is_empty() {
                sink.append(CpuId(i as u16), &scratch)?;
            }
        }
        Ok(consumers.iter().map(|c| c.lost()).collect())
    }

    /// Finish the session: drain every ring (joining the collector if
    /// one is running) and return the merged, time-sorted trace.
    pub fn stop(mut self) -> Trace {
        assert!(self.spill.is_none(), "spilling session: use stop_spill()");
        let per_cpu: Vec<Vec<Event>> = if let Some(col) = self.collector.take() {
            col.stop.store(true, Ordering::Release);
            let mut consumers = col.handle.join().expect("collector panicked");
            let mut per_cpu: Vec<Vec<Event>> = std::mem::take(&mut *col.sink.lock());
            // Final sweep for records published after the last poll.
            for (i, c) in consumers.iter_mut().enumerate() {
                c.drain_into(&mut per_cpu[i]);
            }
            self.consumers = consumers;
            per_cpu
        } else {
            let mut per_cpu: Vec<Vec<Event>> = (0..self.ncpus).map(|_| Vec::new()).collect();
            for (i, c) in self.consumers.iter_mut().enumerate() {
                c.drain_into(&mut per_cpu[i]);
            }
            per_cpu
        };

        let lost: Vec<u64> = self.consumers.iter().map(|c| c.lost()).collect();
        // Per-CPU streams are already in time order: a k-way merge
        // preserves the `(t, cpu)` key contract without the global
        // O(n log n) re-sort, and the intra-CPU FIFO order exactly.
        Trace::from_streams(per_cpu, lost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_operations() {
        let m = EventMask::KERNEL.with(EventMask::SCHED);
        assert!(m.contains(EventMask::KERNEL));
        assert!(m.contains(EventMask::SCHED));
        assert!(!m.contains(EventMask::WAKEUP));
        let m2 = m.without(EventMask::SCHED);
        assert!(!m2.contains(EventMask::SCHED));
        assert!(EventMask::ALL.contains(EventMask::MARK));
        assert!(!EventMask::NONE.contains(EventMask::KERNEL));
    }

    #[test]
    fn tracer_records_and_session_merges() {
        let (session, mut tracer) = TraceSession::new(2, 64, EventMask::ALL);
        tracer.kernel_enter(Nanos(5), CpuId(1), Tid(1), Activity::TimerInterrupt);
        tracer.kernel_enter(Nanos(3), CpuId(0), Tid(2), Activity::TimerInterrupt);
        tracer.kernel_exit(Nanos(9), CpuId(1), Tid(1), Activity::TimerInterrupt);
        tracer.kernel_exit(Nanos(7), CpuId(0), Tid(2), Activity::TimerInterrupt);
        let trace = session.stop();
        assert_eq!(trace.len(), 4);
        let ts: Vec<u64> = trace.events.iter().map(|e| e.t.as_nanos()).collect();
        assert_eq!(ts, vec![3, 5, 7, 9], "global time order");
        assert_eq!(trace.total_lost(), 0);
    }

    #[test]
    fn mask_filters_families() {
        let (session, mut tracer) = TraceSession::new(1, 64, EventMask::KERNEL);
        tracer.kernel_enter(Nanos(1), CpuId(0), Tid(1), Activity::TimerInterrupt);
        tracer.wakeup(Nanos(2), CpuId(0), Tid(2), Tid(1));
        tracer.app_mark(Nanos(3), CpuId(0), Tid(1), 1, 42);
        tracer.kernel_exit(Nanos(4), CpuId(0), Tid(1), Activity::TimerInterrupt);
        let trace = session.stop();
        assert_eq!(trace.len(), 2, "only KERNEL family recorded");
    }

    #[test]
    fn small_ring_counts_losses() {
        let (session, mut tracer) = TraceSession::new(1, 4, EventMask::ALL);
        for i in 0..10 {
            tracer.app_mark(Nanos(i), CpuId(0), Tid(1), 0, i);
        }
        assert!(tracer.lost() > 0);
        let trace = session.stop();
        assert_eq!(trace.len() as u64 + trace.total_lost(), 10);
    }

    /// Test sink: accumulates per-CPU batches in memory.
    struct VecSink(Arc<Mutex<Vec<Vec<Event>>>>);

    impl EventSink for VecSink {
        fn append(&mut self, cpu: CpuId, events: &[Event]) -> std::io::Result<()> {
            self.0.lock()[cpu.index()].extend_from_slice(events);
            Ok(())
        }
    }

    #[test]
    fn inline_spill_sweeps_rings_at_stop() {
        let streams: Arc<Mutex<Vec<Vec<Event>>>> = Arc::new(Mutex::new(vec![vec![], vec![]]));
        let (mut session, mut tracer) = TraceSession::new(2, 64, EventMask::ALL);
        session.spill(Box::new(VecSink(Arc::clone(&streams))), None);
        tracer.app_mark(Nanos(1), CpuId(0), Tid(1), 0, 10);
        tracer.app_mark(Nanos(2), CpuId(1), Tid(2), 0, 20);
        tracer.app_mark(Nanos(3), CpuId(0), Tid(1), 0, 30);
        let lost = session.stop_spill().unwrap();
        assert_eq!(lost, vec![0, 0]);
        let streams = streams.lock();
        assert_eq!(streams[0].len(), 2);
        assert_eq!(streams[1].len(), 1);
        assert!(streams[0].windows(2).all(|w| w[0].t <= w[1].t));
    }

    #[test]
    fn background_spill_keeps_small_rings_alive() {
        // Same setup as the collector test: ring of 64 slots, 10_000
        // events, but drained straight into a sink.
        let streams: Arc<Mutex<Vec<Vec<Event>>>> = Arc::new(Mutex::new(vec![vec![]]));
        let (mut session, mut tracer) = TraceSession::new(1, 64, EventMask::ALL);
        session.spill(
            Box::new(VecSink(Arc::clone(&streams))),
            Some(std::time::Duration::from_micros(50)),
        );
        let producer = std::thread::spawn(move || {
            for i in 0..10_000u64 {
                loop {
                    let before = tracer.lost();
                    tracer.app_mark(Nanos(i), CpuId(0), Tid(1), 0, i);
                    if tracer.lost() == before {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        });
        producer.join().unwrap();
        // (The spin-retry producer bumps the loss counter on every
        // rejected push, so only delivery is asserted here.)
        session.stop_spill().unwrap();
        let streams = streams.lock();
        assert_eq!(streams[0].len(), 10_000);
        assert!(streams[0].windows(2).all(|w| w[1].t.0 == w[0].t.0 + 1));
    }

    #[test]
    fn spill_surfaces_sink_errors() {
        struct FailSink;
        impl EventSink for FailSink {
            fn append(&mut self, _cpu: CpuId, _events: &[Event]) -> std::io::Result<()> {
                Err(std::io::Error::other("disk full"))
            }
        }
        let (mut session, mut tracer) = TraceSession::new(1, 64, EventMask::ALL);
        session.spill(Box::new(FailSink), None);
        tracer.app_mark(Nanos(1), CpuId(0), Tid(1), 0, 1);
        assert!(session.stop_spill().is_err());
    }

    #[test]
    fn background_collector_keeps_small_rings_alive() {
        // Ring of 64 slots, 10_000 events: without the collector most
        // would be lost; with it, all arrive.
        let (mut session, mut tracer) = TraceSession::new(1, 64, EventMask::ALL);
        session.start_collector(std::time::Duration::from_micros(50));
        let producer = std::thread::spawn(move || {
            for i in 0..10_000u64 {
                // Spin until accepted: the collector drains in parallel.
                loop {
                    let before = tracer.lost();
                    tracer.app_mark(Nanos(i), CpuId(0), Tid(1), 0, i);
                    if tracer.lost() == before {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        });
        producer.join().unwrap();
        let trace = session.stop();
        assert_eq!(trace.len(), 10_000);
        let values: Vec<u64> = trace
            .events
            .iter()
            .map(|e| match e.kind {
                EventKind::AppMark { value, .. } => value,
                _ => unreachable!(),
            })
            .collect();
        assert!(values.windows(2).all(|w| w[1] == w[0] + 1));
    }
}
