//! Trace sessions: wiring the [`Probe`] instrumentation surface to
//! per-CPU lock-free ring buffers with an asynchronous collector.
//!
//! A [`TraceSession`] owns one ring per CPU (LTTng's per-CPU buffer
//! architecture). The kernel side is a [`Tracer`], which implements
//! [`Probe`] and appends fixed-size records with no locking. Collection
//! runs either inline at `stop()` or continuously on a background
//! thread ([`TraceSession::start_collector`]), mirroring LTTng's
//! consumer daemon.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use osn_kernel::activity::{Activity, SoftirqVec};
use osn_kernel::hooks::{Probe, SwitchState};
use osn_kernel::ids::{CpuId, Tid};
use osn_kernel::time::Nanos;

use parking_lot::Mutex;

use crate::event::{Event, EventKind, Trace};
use crate::ringbuf::{ring, Consumer, Producer};

/// Which tracepoint families are enabled (LTTng channel/event enabling).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EventMask(pub u16);

impl EventMask {
    pub const KERNEL: EventMask = EventMask(1 << 0);
    pub const RAISE: EventMask = EventMask(1 << 1);
    pub const SCHED: EventMask = EventMask(1 << 2);
    pub const WAKEUP: EventMask = EventMask(1 << 3);
    pub const MIGRATE: EventMask = EventMask(1 << 4);
    pub const MARK: EventMask = EventMask(1 << 5);
    pub const TASK: EventMask = EventMask(1 << 6);

    /// Everything on — the paper's "collect all possible information".
    pub const ALL: EventMask = EventMask(0x7f);
    pub const NONE: EventMask = EventMask(0);

    #[inline]
    pub fn contains(self, other: EventMask) -> bool {
        self.0 & other.0 == other.0
    }

    #[must_use]
    pub fn with(self, other: EventMask) -> EventMask {
        EventMask(self.0 | other.0)
    }

    #[must_use]
    pub fn without(self, other: EventMask) -> EventMask {
        EventMask(self.0 & !other.0)
    }
}

impl Default for EventMask {
    fn default() -> Self {
        EventMask::ALL
    }
}

/// The producer side: implements [`Probe`] and writes into the per-CPU
/// rings. Hand `&mut Tracer` to [`osn_kernel::node::Node::run`].
pub struct Tracer {
    producers: Vec<Producer<Event>>,
    mask: EventMask,
}

impl Tracer {
    #[inline]
    fn emit(&mut self, cpu: CpuId, event: Event) {
        self.producers[cpu.index()].push(event);
    }

    /// Records lost across all CPUs so far.
    pub fn lost(&self) -> u64 {
        self.producers.iter().map(|p| p.lost()).sum()
    }
}

impl Probe for Tracer {
    fn kernel_enter(&mut self, t: Nanos, cpu: CpuId, tid: Tid, activity: Activity) {
        if self.mask.contains(EventMask::KERNEL) {
            self.emit(
                cpu,
                Event {
                    t,
                    cpu,
                    tid,
                    kind: EventKind::KernelEnter(activity),
                },
            );
        }
    }

    fn kernel_exit(&mut self, t: Nanos, cpu: CpuId, tid: Tid, activity: Activity) {
        if self.mask.contains(EventMask::KERNEL) {
            self.emit(
                cpu,
                Event {
                    t,
                    cpu,
                    tid,
                    kind: EventKind::KernelExit(activity),
                },
            );
        }
    }

    fn softirq_raise(&mut self, t: Nanos, cpu: CpuId, vec: SoftirqVec) {
        if self.mask.contains(EventMask::RAISE) {
            self.emit(
                cpu,
                Event {
                    t,
                    cpu,
                    tid: Tid::IDLE,
                    kind: EventKind::SoftirqRaise(vec),
                },
            );
        }
    }

    fn sched_switch(
        &mut self,
        t: Nanos,
        cpu: CpuId,
        prev: Tid,
        prev_state: SwitchState,
        next: Tid,
    ) {
        if self.mask.contains(EventMask::SCHED) {
            self.emit(
                cpu,
                Event {
                    t,
                    cpu,
                    tid: prev,
                    kind: EventKind::SchedSwitch {
                        prev,
                        prev_state,
                        next,
                    },
                },
            );
        }
    }

    fn wakeup(&mut self, t: Nanos, cpu: CpuId, tid: Tid, waker: Tid) {
        if self.mask.contains(EventMask::WAKEUP) {
            self.emit(
                cpu,
                Event {
                    t,
                    cpu,
                    tid: waker,
                    kind: EventKind::Wakeup { tid, waker },
                },
            );
        }
    }

    fn migrate(&mut self, t: Nanos, tid: Tid, from: CpuId, to: CpuId) {
        if self.mask.contains(EventMask::MIGRATE) {
            self.emit(
                from,
                Event {
                    t,
                    cpu: from,
                    tid,
                    kind: EventKind::Migrate { tid, from, to },
                },
            );
        }
    }

    fn app_mark(&mut self, t: Nanos, cpu: CpuId, tid: Tid, mark: u32, value: u64) {
        if self.mask.contains(EventMask::MARK) {
            self.emit(
                cpu,
                Event {
                    t,
                    cpu,
                    tid,
                    kind: EventKind::AppMark { mark, value },
                },
            );
        }
    }

    fn task_exit(&mut self, t: Nanos, cpu: CpuId, tid: Tid) {
        if self.mask.contains(EventMask::TASK) {
            self.emit(
                cpu,
                Event {
                    t,
                    cpu,
                    tid,
                    kind: EventKind::TaskExit { tid },
                },
            );
        }
    }
}

/// The consumer/owner side of a tracing setup.
pub struct TraceSession {
    consumers: Vec<Consumer<Event>>,
    ncpus: usize,
    collector: Option<CollectorHandle>,
}

struct CollectorHandle {
    stop: Arc<AtomicBool>,
    sink: Arc<Mutex<Vec<Vec<Event>>>>,
    handle: JoinHandle<Vec<Consumer<Event>>>,
}

impl TraceSession {
    /// Create a session with `per_cpu_capacity` record slots per CPU
    /// and the given tracepoint mask. Returns the session (consumer
    /// side) and the [`Tracer`] to pass to the simulator.
    pub fn new(ncpus: usize, per_cpu_capacity: usize, mask: EventMask) -> (TraceSession, Tracer) {
        let mut producers = Vec::with_capacity(ncpus);
        let mut consumers = Vec::with_capacity(ncpus);
        for _ in 0..ncpus {
            let (p, c) = ring::<Event>(per_cpu_capacity);
            producers.push(p);
            consumers.push(c);
        }
        (
            TraceSession {
                consumers,
                ncpus,
                collector: None,
            },
            Tracer { producers, mask },
        )
    }

    /// Convenience: everything enabled, a generous buffer.
    pub fn with_defaults(ncpus: usize) -> (TraceSession, Tracer) {
        TraceSession::new(ncpus, 1 << 20, EventMask::ALL)
    }

    /// Spawn the background consumer thread (LTTng's consumer daemon):
    /// it drains all rings every `poll` interval so small rings survive
    /// long runs.
    pub fn start_collector(&mut self, poll: std::time::Duration) {
        assert!(self.collector.is_none(), "collector already running");
        let stop = Arc::new(AtomicBool::new(false));
        let sink: Arc<Mutex<Vec<Vec<Event>>>> =
            Arc::new(Mutex::new((0..self.ncpus).map(|_| Vec::new()).collect()));
        let mut consumers = std::mem::take(&mut self.consumers);
        let stop2 = Arc::clone(&stop);
        let sink2 = Arc::clone(&sink);
        let handle = std::thread::spawn(move || {
            loop {
                let mut drained = 0;
                {
                    let mut sink = sink2.lock();
                    for (i, c) in consumers.iter_mut().enumerate() {
                        drained += c.drain_into(&mut sink[i]);
                    }
                }
                if stop2.load(Ordering::Acquire) && drained == 0 {
                    break;
                }
                if drained == 0 {
                    std::thread::sleep(poll);
                }
            }
            consumers
        });
        self.collector = Some(CollectorHandle { stop, sink, handle });
    }

    /// Finish the session: drain every ring (joining the collector if
    /// one is running) and return the merged, time-sorted trace.
    pub fn stop(mut self) -> Trace {
        let per_cpu: Vec<Vec<Event>> = if let Some(col) = self.collector.take() {
            col.stop.store(true, Ordering::Release);
            let mut consumers = col.handle.join().expect("collector panicked");
            let mut per_cpu: Vec<Vec<Event>> = std::mem::take(&mut *col.sink.lock());
            // Final sweep for records published after the last poll.
            for (i, c) in consumers.iter_mut().enumerate() {
                c.drain_into(&mut per_cpu[i]);
            }
            self.consumers = consumers;
            per_cpu
        } else {
            let mut per_cpu: Vec<Vec<Event>> = (0..self.ncpus).map(|_| Vec::new()).collect();
            for (i, c) in self.consumers.iter_mut().enumerate() {
                c.drain_into(&mut per_cpu[i]);
            }
            per_cpu
        };

        let lost: Vec<u64> = self.consumers.iter().map(|c| c.lost()).collect();
        // Per-CPU streams are already in time order: a k-way merge
        // preserves the `(t, cpu)` key contract without the global
        // O(n log n) re-sort, and the intra-CPU FIFO order exactly.
        Trace::from_streams(per_cpu, lost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_operations() {
        let m = EventMask::KERNEL.with(EventMask::SCHED);
        assert!(m.contains(EventMask::KERNEL));
        assert!(m.contains(EventMask::SCHED));
        assert!(!m.contains(EventMask::WAKEUP));
        let m2 = m.without(EventMask::SCHED);
        assert!(!m2.contains(EventMask::SCHED));
        assert!(EventMask::ALL.contains(EventMask::MARK));
        assert!(!EventMask::NONE.contains(EventMask::KERNEL));
    }

    #[test]
    fn tracer_records_and_session_merges() {
        let (session, mut tracer) = TraceSession::new(2, 64, EventMask::ALL);
        tracer.kernel_enter(Nanos(5), CpuId(1), Tid(1), Activity::TimerInterrupt);
        tracer.kernel_enter(Nanos(3), CpuId(0), Tid(2), Activity::TimerInterrupt);
        tracer.kernel_exit(Nanos(9), CpuId(1), Tid(1), Activity::TimerInterrupt);
        tracer.kernel_exit(Nanos(7), CpuId(0), Tid(2), Activity::TimerInterrupt);
        let trace = session.stop();
        assert_eq!(trace.len(), 4);
        let ts: Vec<u64> = trace.events.iter().map(|e| e.t.as_nanos()).collect();
        assert_eq!(ts, vec![3, 5, 7, 9], "global time order");
        assert_eq!(trace.total_lost(), 0);
    }

    #[test]
    fn mask_filters_families() {
        let (session, mut tracer) = TraceSession::new(1, 64, EventMask::KERNEL);
        tracer.kernel_enter(Nanos(1), CpuId(0), Tid(1), Activity::TimerInterrupt);
        tracer.wakeup(Nanos(2), CpuId(0), Tid(2), Tid(1));
        tracer.app_mark(Nanos(3), CpuId(0), Tid(1), 1, 42);
        tracer.kernel_exit(Nanos(4), CpuId(0), Tid(1), Activity::TimerInterrupt);
        let trace = session.stop();
        assert_eq!(trace.len(), 2, "only KERNEL family recorded");
    }

    #[test]
    fn small_ring_counts_losses() {
        let (session, mut tracer) = TraceSession::new(1, 4, EventMask::ALL);
        for i in 0..10 {
            tracer.app_mark(Nanos(i), CpuId(0), Tid(1), 0, i);
        }
        assert!(tracer.lost() > 0);
        let trace = session.stop();
        assert_eq!(trace.len() as u64 + trace.total_lost(), 10);
    }

    #[test]
    fn background_collector_keeps_small_rings_alive() {
        // Ring of 64 slots, 10_000 events: without the collector most
        // would be lost; with it, all arrive.
        let (mut session, mut tracer) = TraceSession::new(1, 64, EventMask::ALL);
        session.start_collector(std::time::Duration::from_micros(50));
        let producer = std::thread::spawn(move || {
            for i in 0..10_000u64 {
                // Spin until accepted: the collector drains in parallel.
                loop {
                    let before = tracer.lost();
                    tracer.app_mark(Nanos(i), CpuId(0), Tid(1), 0, i);
                    if tracer.lost() == before {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        });
        producer.join().unwrap();
        let trace = session.stop();
        assert_eq!(trace.len(), 10_000);
        let values: Vec<u64> = trace
            .events
            .iter()
            .map(|e| match e.kind {
                EventKind::AppMark { value, .. } => value,
                _ => unreachable!(),
            })
            .collect();
        assert!(values.windows(2).all(|w| w[1] == w[0] + 1));
    }
}
