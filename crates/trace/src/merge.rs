//! K-way merge of per-CPU event streams.
//!
//! Collection used to concatenate the per-CPU ring-buffer streams and
//! re-sort globally — O(n log n) over the whole trace even though every
//! stream is already time-ordered. The merge below is O(n log k) with
//! k = number of streams, and reproduces the stable-sort order exactly:
//! the global contract is `(t, cpu)` order ([`Event::key`]), and within
//! one `(t, cpu)` key all records come from the same stream, whose FIFO
//! order the merge preserves.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use osn_kernel::time::Nanos;

use crate::event::Event;

/// Merge already time-sorted streams into one `(t, cpu)`-ordered
/// vector. Equivalent to concatenating the streams in order and
/// stable-sorting by [`Event::key`], for any input where each stream is
/// internally sorted by key.
pub fn merge_streams(mut streams: Vec<Vec<Event>>) -> Vec<Event> {
    streams.retain(|s| !s.is_empty());
    match streams.len() {
        0 => return Vec::new(),
        1 => return streams.pop().expect("one stream"),
        _ => {}
    }
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    // Heap entries: (t, cpu, stream-index). The stream index both
    // breaks key ties the way a stable sort of the concatenation would
    // (earlier stream first) and locates the cursor to advance.
    let mut cursors = vec![0usize; streams.len()];
    let mut heap: BinaryHeap<Reverse<(Nanos, u16, usize)>> =
        BinaryHeap::with_capacity(streams.len());
    for (i, s) in streams.iter().enumerate() {
        let (t, cpu) = s[0].key();
        heap.push(Reverse((t, cpu, i)));
    }
    while let Some(Reverse((_, _, i))) = heap.pop() {
        let cur = cursors[i];
        out.push(streams[i][cur]);
        let next = cur + 1;
        cursors[i] = next;
        if next < streams[i].len() {
            let (t, cpu) = streams[i][next].key();
            heap.push(Reverse((t, cpu, i)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use osn_kernel::ids::{CpuId, Tid};

    fn ev(t: u64, cpu: u16) -> Event {
        Event {
            t: Nanos(t),
            cpu: CpuId(cpu),
            tid: Tid(1),
            kind: EventKind::AppMark { mark: 0, value: 0 },
        }
    }

    #[test]
    fn merge_matches_stable_sort() {
        let streams = vec![
            vec![ev(1, 0), ev(5, 0), ev(5, 0), ev(9, 0)],
            vec![ev(2, 1), ev(5, 1), ev(6, 1)],
            vec![],
            vec![ev(5, 2)],
        ];
        let mut expect: Vec<Event> = streams.iter().flatten().copied().collect();
        expect.sort_by_key(|e| e.key());
        assert_eq!(merge_streams(streams), expect);
    }

    #[test]
    fn merge_empty_and_single() {
        assert!(merge_streams(vec![]).is_empty());
        assert!(merge_streams(vec![vec![], vec![]]).is_empty());
        let one = vec![ev(3, 0), ev(4, 0)];
        assert_eq!(merge_streams(vec![one.clone()]), one);
    }
}
