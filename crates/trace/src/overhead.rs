//! Instrumentation-overhead measurement (paper §III-A).
//!
//! "A concern about LTT NG-NOISE was the overhead introduced by the
//! instrumentation. ... The result ... is an overhead in the order of
//! 0.28% (average among all the LLNL Sequoia applications we tested)."
//!
//! This module measures exactly that: run the same workload twice — once
//! with probes free (tracing off) and once with a per-event probe cost —
//! and compare completion times.

use osn_kernel::config::NodeConfig;
use osn_kernel::hooks::NullProbe;
use osn_kernel::node::{Node, RunResult};
use osn_kernel::time::Nanos;

use serde::{Deserialize, Serialize};

/// Per-tracepoint cost representative of LTTng-class tracers
/// (~119 ns/event on 2010-era hardware per Desnoyers & Dagenais).
pub const LTTNG_CLASS_OVERHEAD: Nanos = Nanos(120);

/// Result of one overhead measurement.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct OverheadReport {
    /// Wall time with probes free.
    pub base: Nanos,
    /// Wall time with per-event probe cost charged.
    pub traced: Nanos,
    /// Relative slowdown: `(traced - base) / base`.
    pub overhead_fraction: f64,
}

impl OverheadReport {
    pub fn percent(&self) -> f64 {
        self.overhead_fraction * 100.0
    }
}

/// Measure tracer overhead for a workload scenario.
///
/// `build` must construct the same node + job for a given config; it is
/// called twice with identical seeds and differing only in
/// `probe_overhead`.
pub fn measure_overhead(
    cfg: &NodeConfig,
    per_event: Nanos,
    build: impl Fn(NodeConfig) -> Node,
) -> OverheadReport {
    let base_cfg = {
        let mut c = cfg.clone();
        c.probe_overhead = Nanos::ZERO;
        c
    };
    let traced_cfg = {
        let mut c = cfg.clone();
        c.probe_overhead = per_event;
        c
    };
    let base = run_wall(build(base_cfg));
    let traced = run_wall(build(traced_cfg));
    let overhead_fraction = if base.is_zero() {
        0.0
    } else {
        (traced.as_nanos() as f64 - base.as_nanos() as f64) / base.as_nanos() as f64
    };
    OverheadReport {
        base,
        traced,
        overhead_fraction,
    }
}

fn run_wall(mut node: Node) -> Nanos {
    let result: RunResult = node.run(&mut NullProbe);
    result.end_time
}

/// Average the overhead over several seeds. A single comparison is
/// dominated by timing butterfly effects (the probe cost perturbs
/// event interleavings, which re-rolls every stochastic kernel-cost
/// draw downstream); the paper's 0.28 % figure is itself a multi-run
/// average across applications.
pub fn measure_overhead_avg(
    cfg: &NodeConfig,
    per_event: Nanos,
    seeds: &[u64],
    build: impl Fn(NodeConfig) -> Node,
) -> OverheadReport {
    assert!(!seeds.is_empty());
    let mut base_total = 0u64;
    let mut traced_total = 0u64;
    for &seed in seeds {
        let mut seeded = cfg.clone();
        seeded.seed = seed;
        let r = measure_overhead(&seeded, per_event, &build);
        base_total += r.base.as_nanos();
        traced_total += r.traced.as_nanos();
    }
    let base = Nanos(base_total / seeds.len() as u64);
    let traced = Nanos(traced_total / seeds.len() as u64);
    let overhead_fraction = if base.is_zero() {
        0.0
    } else {
        (traced.as_nanos() as f64 - base.as_nanos() as f64) / base.as_nanos() as f64
    };
    OverheadReport {
        base,
        traced,
        overhead_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_kernel::prelude::*;

    #[test]
    fn overhead_is_small_and_positive_for_compute_bound_work() {
        let cfg = NodeConfig::default()
            .with_cpus(2)
            .with_horizon(Nanos::from_secs(5))
            .with_seed(77);
        let report = measure_overhead(&cfg, LTTNG_CLASS_OVERHEAD, |c| {
            let mut node = Node::new(c);
            node.spawn_job(
                "w",
                vec![
                    Box::new(BusyLoop::new(Nanos::from_secs(1))),
                    Box::new(BusyLoop::new(Nanos::from_secs(1))),
                ],
            );
            node
        });
        assert!(report.traced > report.base);
        // The paper's figure: "in the order of 0.28%". A pure compute
        // workload with only ticks should be well below 1%.
        assert!(
            report.percent() < 1.0,
            "overhead {:.4}% too high",
            report.percent()
        );
        assert!(report.percent() > 0.0);
    }

    #[test]
    fn zero_cost_probes_are_free() {
        let cfg = NodeConfig::default()
            .with_cpus(1)
            .with_horizon(Nanos::from_secs(2))
            .with_seed(3);
        let report = measure_overhead(&cfg, Nanos::ZERO, |c| {
            let mut node = Node::new(c);
            node.spawn_job("w", vec![Box::new(BusyLoop::new(Nanos::from_millis(200)))]);
            node
        });
        assert_eq!(report.base, report.traced);
        assert_eq!(report.overhead_fraction, 0.0);
    }
}
