//! `osn-trace`: the LTT NG-NOISE tracer.
//!
//! This crate is the simulator-side equivalent of the paper's extended
//! LTTng: it implements the kernel's instrumentation surface
//! ([`osn_kernel::hooks::Probe`]) with per-CPU lock-free ring buffers,
//! nanosecond timestamps, a background consumer, a compact binary wire
//! format, and the instrumentation-overhead experiment of §III-A.
//!
//! ```
//! use osn_kernel::prelude::*;
//! use osn_trace::session::TraceSession;
//!
//! let cfg = NodeConfig::default().with_horizon(Nanos::from_millis(30));
//! let mut node = Node::new(cfg);
//! node.spawn_job("demo", vec![Box::new(BusyLoop::new(Nanos::from_millis(20)))]);
//! let (session, mut tracer) = TraceSession::with_defaults(8);
//! let _result = node.run(&mut tracer);
//! let trace = session.stop();
//! assert!(trace.len() > 0);
//! assert_eq!(trace.total_lost(), 0);
//! ```

pub mod capture;
pub mod columns;
pub mod event;
pub mod flight;
pub mod merge;
pub mod overhead;
pub mod ringbuf;
pub mod session;
pub mod wire;

pub use capture::{CaptureSession, CaptureSessionSummary};
pub use columns::EventColumns;
pub use event::{Event, EventKind, Trace};
pub use flight::FlightRecorder;
pub use merge::merge_streams;
pub use session::{EventMask, EventSink, TraceSession, Tracer};
