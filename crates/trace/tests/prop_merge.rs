//! Property test for the k-way stream merge: for any set of streams
//! each internally sorted by `(t, cpu)`, merging must equal
//! concatenating the streams in order and stable-sorting by the same
//! key — the contract `TraceSession::stop` relies on.

use proptest::prelude::*;

use osn_kernel::ids::{CpuId, Tid};
use osn_kernel::time::Nanos;
use osn_trace::{merge_streams, Event, EventKind};

proptest! {
    #[test]
    fn merge_equals_stable_sort(
        raw in prop::collection::vec(
            // Narrow (t, cpu) ranges to force plenty of key collisions
            // within and across streams.
            prop::collection::vec((0u64..40, 0u16..4), 0..50),
            0..6,
        ),
    ) {
        let mut uid = 0u64;
        let streams: Vec<Vec<Event>> = raw
            .into_iter()
            .map(|stream| {
                let mut events: Vec<Event> = stream
                    .into_iter()
                    .map(|(t, cpu)| {
                        // Unique payload per record so reorderings of
                        // equal keys are visible to the comparison.
                        uid += 1;
                        Event {
                            t: Nanos(t),
                            cpu: CpuId(cpu),
                            tid: Tid(1),
                            kind: EventKind::AppMark { mark: 0, value: uid },
                        }
                    })
                    .collect();
                events.sort_by_key(|e| e.key());
                events
            })
            .collect();

        let mut expect: Vec<Event> = streams.iter().flatten().copied().collect();
        expect.sort_by_key(|e| e.key());
        prop_assert_eq!(merge_streams(streams), expect);
    }
}
