//! Property tests for the binary wire format: lossless round-trips for
//! arbitrary valid traces, and panic-free rejection of arbitrary bytes.

use proptest::prelude::*;

use osn_kernel::activity::Activity;
use osn_kernel::hooks::SwitchState;
use osn_kernel::ids::{CpuId, Tid};
use osn_kernel::time::Nanos;
use osn_trace::wire::{decode, encode};
use osn_trace::{Event, EventKind, Trace};

fn activity_strategy() -> impl Strategy<Value = Activity> {
    (1u16..=21).prop_map(|code| Activity::from_code(code).expect("valid code range"))
}

fn switch_state_strategy() -> impl Strategy<Value = SwitchState> {
    (0u16..=5).prop_map(|code| SwitchState::from_code(code).expect("valid state range"))
}

fn kind_strategy() -> impl Strategy<Value = EventKind> {
    prop_oneof![
        activity_strategy().prop_map(EventKind::KernelEnter),
        activity_strategy().prop_map(EventKind::KernelExit),
        (any::<u32>(), switch_state_strategy(), any::<u32>()).prop_map(|(p, s, n)| {
            EventKind::SchedSwitch {
                prev: Tid(p),
                prev_state: s,
                next: Tid(n),
            }
        }),
        (any::<u32>(), any::<u32>()).prop_map(|(t, w)| EventKind::Wakeup {
            tid: Tid(t),
            waker: Tid(w),
        }),
        (any::<u32>(), any::<u16>(), any::<u16>()).prop_map(|(t, f, o)| EventKind::Migrate {
            tid: Tid(t),
            from: CpuId(f),
            to: CpuId(o),
        }),
        (any::<u32>(), any::<u64>()).prop_map(|(m, v)| EventKind::AppMark { mark: m, value: v }),
        any::<u32>().prop_map(|t| EventKind::TaskExit { tid: Tid(t) }),
    ]
}

fn event_strategy() -> impl Strategy<Value = Event> {
    (any::<u64>(), any::<u16>(), any::<u32>(), kind_strategy()).prop_map(|(t, cpu, tid, kind)| {
        // Wakeup records re-derive their context tid from the waker
        // (the wire stores only two ids); normalize so round-trips are
        // exact equality.
        let ctx = match kind {
            EventKind::Wakeup { waker, .. } => waker,
            EventKind::SchedSwitch { prev, .. } => prev,
            EventKind::TaskExit { tid } => tid,
            EventKind::Migrate { tid, .. } => tid,
            EventKind::SoftirqRaise(_) => Tid::IDLE,
            _ => Tid(tid),
        };
        Event {
            t: Nanos(t),
            cpu: CpuId(cpu),
            tid: ctx,
            kind,
        }
    })
}

proptest! {
    #[test]
    fn roundtrip_is_lossless(
        events in prop::collection::vec(event_strategy(), 0..200),
        lost in prop::collection::vec(any::<u64>(), 0..16),
    ) {
        let trace = Trace::from_raw_parts(events, lost);
        let decoded = decode(encode(&trace)).expect("own encoding must decode");
        prop_assert_eq!(decoded.events, trace.events);
        prop_assert_eq!(decoded.lost, trace.lost);
    }

    /// Decoding attacker-controlled bytes must never panic: it returns
    /// a structured error or a valid trace.
    #[test]
    fn decode_arbitrary_bytes_never_panics(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode(bytes::Bytes::from(data));
    }

    /// Flipping any single byte of a valid encoding either still
    /// decodes (payload bytes) or errors cleanly — never panics.
    #[test]
    fn corrupted_encoding_never_panics(
        events in prop::collection::vec(event_strategy(), 1..20),
        flip_at in any::<prop::sample::Index>(),
        xor in 1u8..,
    ) {
        let trace = Trace::from_raw_parts(events, vec![0]);
        let mut bytes = encode(&trace).to_vec();
        let idx = flip_at.index(bytes.len());
        bytes[idx] ^= xor;
        let _ = decode(bytes::Bytes::from(bytes));
    }
}
