//! Property tests for the lock-free SPSC ring buffer: it must behave
//! exactly like a bounded FIFO queue under any operation sequence.

use proptest::prelude::*;

use osn_trace::ringbuf::ring;

#[derive(Debug, Clone)]
enum Op {
    Push(u32),
    Pop,
    Drain,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<u32>().prop_map(Op::Push),
        2 => Just(Op::Pop),
        1 => Just(Op::Drain),
    ]
}

proptest! {
    /// Sequential consistency with a model bounded queue.
    #[test]
    fn behaves_like_bounded_fifo(
        capacity in 1usize..64,
        ops in prop::collection::vec(op_strategy(), 0..400),
    ) {
        let (mut producer, mut consumer) = ring::<u32>(capacity);
        let real_cap = producer.capacity();
        prop_assert!(real_cap >= capacity);
        let mut model: std::collections::VecDeque<u32> = Default::default();
        let mut model_lost = 0u64;
        for op in ops {
            match op {
                Op::Push(v) => {
                    let accepted = producer.push(v);
                    if model.len() < real_cap {
                        prop_assert!(accepted);
                        model.push_back(v);
                    } else {
                        prop_assert!(!accepted);
                        model_lost += 1;
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(consumer.pop(), model.pop_front());
                }
                Op::Drain => {
                    let mut out = Vec::new();
                    consumer.drain_into(&mut out);
                    let expected: Vec<u32> = model.drain(..).collect();
                    prop_assert_eq!(out, expected);
                }
            }
            prop_assert_eq!(producer.lost(), model_lost);
            prop_assert_eq!(producer.len(), model.len());
        }
        // Drain the rest: order preserved.
        let mut rest = Vec::new();
        consumer.drain_into(&mut rest);
        let expected: Vec<u32> = model.into_iter().collect();
        prop_assert_eq!(rest, expected);
    }

    /// Concurrent: every accepted record arrives exactly once, in order.
    #[test]
    fn concurrent_delivery_is_exact(
        capacity in 2usize..128,
        count in 1usize..2000,
    ) {
        let (mut producer, mut consumer) = ring::<usize>(capacity);
        let handle = std::thread::spawn(move || {
            let mut accepted = Vec::new();
            for i in 0..count {
                if producer.push(i) {
                    accepted.push(i);
                }
                if i % 7 == 0 {
                    std::thread::yield_now();
                }
            }
            accepted
        });
        let mut received = Vec::new();
        loop {
            match consumer.pop() {
                Some(v) => received.push(v),
                None => {
                    if handle.is_finished() {
                        consumer.drain_into(&mut received);
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }
        let accepted = handle.join().unwrap();
        prop_assert_eq!(received, accepted);
    }
}
