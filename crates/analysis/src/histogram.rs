//! Duration histograms for the paper's time-distribution figures
//! (Figs 4, 6, 8).
//!
//! "Time distributions may have a very long tail that could make
//! visualization difficult. To improve the visualization, we cut all
//! the distributions in the histograms at the 99th percentile."

use osn_kernel::time::Nanos;

use serde::{Deserialize, Serialize};

/// A linear-bin histogram over durations, optionally cut at a
/// percentile.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Left edge of bin 0.
    pub lo: Nanos,
    /// Bin width.
    pub width: Nanos,
    pub counts: Vec<u64>,
    /// Samples above the cut (not binned).
    pub overflow: u64,
    /// Total samples offered.
    pub total: u64,
}

impl Histogram {
    /// Build a histogram with `bins` linear bins spanning
    /// `[min, cut]`, where `cut` is the `pct` percentile (the paper
    /// uses 99).
    ///
    /// ```
    /// use osn_analysis::Histogram;
    /// use osn_kernel::time::Nanos;
    ///
    /// let samples: Vec<Nanos> = (0..100).map(|i| Nanos(2_000 + i * 10)).collect();
    /// let h = Histogram::build(&samples, 10, 99.0);
    /// assert_eq!(h.counts.iter().sum::<u64>() + h.overflow, 100);
    /// ```
    pub fn build(samples: &[Nanos], bins: usize, pct: f64) -> Histogram {
        assert!(bins > 0, "need at least one bin");
        if samples.is_empty() {
            return Histogram {
                lo: Nanos::ZERO,
                width: Nanos(1),
                counts: vec![0; bins],
                overflow: 0,
                total: 0,
            };
        }
        let mut sorted: Vec<Nanos> = samples.to_vec();
        sorted.sort_unstable();
        let lo = sorted[0];
        let cut = percentile_sorted(&sorted, pct);
        let span = (cut - lo).max(Nanos(1));
        let width = Nanos(span.as_nanos().div_ceil(bins as u64)).max(Nanos(1));
        // The samples are sorted, so each bin is a contiguous run:
        // instead of a division per sample, binary-search each bin's
        // right edge — O(bins · log n) instead of O(n) divisions, same
        // counts bit for bit. Edges are computed in u128 so a huge
        // `lo + k·width` cannot wrap and misplace tail samples.
        let n_in = sorted.partition_point(|&s| s <= cut);
        let overflow = (sorted.len() - n_in) as u64;
        let in_cut = &sorted[..n_in];
        let mut counts = vec![0u64; bins];
        let mut prev = 0usize;
        for (k, count) in counts.iter_mut().enumerate().take(bins - 1) {
            let edge = lo.as_nanos() as u128 + width.as_nanos() as u128 * (k as u128 + 1);
            let next = prev + in_cut[prev..].partition_point(|&s| (s.as_nanos() as u128) < edge);
            *count = (next - prev) as u64;
            prev = next;
        }
        counts[bins - 1] = (n_in - prev) as u64;
        Histogram {
            lo,
            width,
            counts,
            overflow,
            total: samples.len() as u64,
        }
    }

    /// Bin center positions.
    pub fn centers(&self) -> Vec<Nanos> {
        (0..self.counts.len())
            .map(|i| self.lo + self.width * i as u64 + self.width / 2)
            .collect()
    }

    /// Indices of local maxima (modes) with counts above
    /// `min_fraction` of the peak bin: used to verify bimodality
    /// (Fig 4a vs 4b).
    ///
    /// Counts are smoothed with a 3-bin moving average first, and two
    /// candidate maxima only count as separate modes when a genuine
    /// valley (below 75 % of the smaller peak) lies between them —
    /// statistical bin noise does not split a peak.
    pub fn modes(&self, min_fraction: f64) -> Vec<usize> {
        let n = self.counts.len();
        if n == 0 {
            return vec![];
        }
        // 3-bin moving average (edges use the available neighbours).
        let smooth: Vec<f64> = (0..n)
            .map(|i| {
                let lo = i.saturating_sub(1);
                let hi = (i + 1).min(n - 1);
                let sum: u64 = self.counts[lo..=hi].iter().sum();
                sum as f64 / (hi - lo + 1) as f64
            })
            .collect();
        let peak = smooth.iter().cloned().fold(0.0f64, f64::max);
        if peak <= 0.0 {
            return vec![];
        }
        let threshold = (peak * min_fraction).max(1.0);
        // Candidate local maxima on the smoothed series.
        let mut candidates = Vec::new();
        for i in 0..n {
            let c = smooth[i];
            if c < threshold {
                continue;
            }
            let left = if i > 0 { smooth[i - 1] } else { -1.0 };
            let right = if i + 1 < n { smooth[i + 1] } else { -1.0 };
            if (c >= left && c > right) || (c > left && c >= right) {
                candidates.push(i);
            }
        }
        candidates.dedup_by(|b, a| *b == *a + 1);
        // Valley test: keep a new mode only if the smoothed series dips
        // below 75 % of the smaller of the two peaks in between.
        let mut modes: Vec<usize> = Vec::new();
        for &cand in &candidates {
            match modes.last() {
                None => modes.push(cand),
                Some(&prev) => {
                    let valley = smooth[prev..=cand]
                        .iter()
                        .cloned()
                        .fold(f64::INFINITY, f64::min);
                    let smaller = smooth[prev].min(smooth[cand]);
                    if valley < smaller * 0.75 {
                        modes.push(cand);
                    } else if smooth[cand] > smooth[prev] {
                        // Same peak, better summit: replace.
                        *modes.last_mut().expect("nonempty") = cand;
                    }
                }
            }
        }
        modes
    }

    /// Fraction of samples that landed above the cut.
    pub fn tail_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.overflow as f64 / self.total as f64
        }
    }

    /// Mean of the binned samples, approximated from centers.
    pub fn binned_mean(&self) -> Nanos {
        let n: u64 = self.counts.iter().sum();
        if n == 0 {
            return Nanos::ZERO;
        }
        let centers = self.centers();
        let sum: u64 = centers
            .iter()
            .zip(&self.counts)
            .map(|(c, k)| c.as_nanos() * k)
            .sum();
        Nanos(sum / n)
    }
}

/// Percentile of an unsorted sample set (nearest-rank).
///
/// ```
/// use osn_analysis::histogram::percentile;
/// use osn_kernel::time::Nanos;
///
/// let samples: Vec<Nanos> = (1..=100).map(Nanos).collect();
/// assert_eq!(percentile(&samples, 99.0), Nanos(99));
/// ```
pub fn percentile(samples: &[Nanos], pct: f64) -> Nanos {
    if samples.is_empty() {
        return Nanos::ZERO;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    percentile_sorted(&sorted, pct)
}

fn percentile_sorted(sorted: &[Nanos], pct: f64) -> Nanos {
    debug_assert!(!sorted.is_empty());
    let pct = pct.clamp(0.0, 100.0);
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::build(&[], 10, 99.0);
        assert_eq!(h.total, 0);
        assert_eq!(h.counts.iter().sum::<u64>(), 0);
        assert_eq!(h.tail_fraction(), 0.0);
        assert_eq!(h.binned_mean(), Nanos::ZERO);
        assert!(h.modes(0.5).is_empty());
    }

    #[test]
    fn counts_and_overflow() {
        // 100 samples at 10, 1 outlier at 10_000: 99th pct cut drops
        // the outlier.
        let mut samples = vec![Nanos(10); 100];
        samples.push(Nanos(10_000));
        let h = Histogram::build(&samples, 5, 99.0);
        assert_eq!(h.total, 101);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.counts.iter().sum::<u64>(), 100);
        assert!(h.tail_fraction() > 0.009 && h.tail_fraction() < 0.011);
    }

    #[test]
    fn percentile_nearest_rank() {
        let samples: Vec<Nanos> = (1..=100).map(Nanos).collect();
        assert_eq!(percentile(&samples, 50.0), Nanos(50));
        assert_eq!(percentile(&samples, 99.0), Nanos(99));
        assert_eq!(percentile(&samples, 100.0), Nanos(100));
        assert_eq!(percentile(&samples, 0.0), Nanos(1));
        assert_eq!(percentile(&[], 50.0), Nanos::ZERO);
    }

    #[test]
    fn bimodal_detection() {
        // Two clear peaks at ~100 and ~300.
        let mut samples = Vec::new();
        for _ in 0..500 {
            samples.push(Nanos(100));
            samples.push(Nanos(102));
            samples.push(Nanos(300));
            samples.push(Nanos(298));
        }
        for i in 0..20 {
            samples.push(Nanos(150 + i)); // thin valley
        }
        let h = Histogram::build(&samples, 20, 100.0);
        let modes = h.modes(0.3);
        assert_eq!(modes.len(), 2, "modes {:?} counts {:?}", modes, h.counts);
    }

    #[test]
    fn unimodal_detection() {
        // Triangular distribution peaking at 300: one mode.
        let mut samples = Vec::new();
        for i in 0u64..100 {
            let dist_from_peak = i.abs_diff(50);
            let weight = 50 - dist_from_peak.min(49);
            for _ in 0..weight {
                samples.push(Nanos(200 + i * 2));
            }
        }
        let h = Histogram::build(&samples, 10, 100.0);
        let modes = h.modes(0.5);
        assert_eq!(modes.len(), 1, "counts {:?}", h.counts);
    }

    #[test]
    fn centers_are_mid_bin() {
        let samples: Vec<Nanos> = (0..100).map(|i| Nanos(i * 10)).collect();
        let h = Histogram::build(&samples, 10, 100.0);
        let centers = h.centers();
        assert_eq!(centers.len(), 10);
        assert!(centers[0] >= h.lo);
        assert!(centers.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn all_samples_binned_when_no_cut() {
        let samples: Vec<Nanos> = (1..=1000).map(Nanos).collect();
        let h = Histogram::build(&samples, 10, 100.0);
        assert_eq!(h.overflow, 0);
        assert_eq!(h.counts.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn binned_mean_roughly_right() {
        let samples = vec![Nanos(100); 1000];
        let h = Histogram::build(&samples, 4, 100.0);
        let mean = h.binned_mean();
        assert!(
            mean.as_nanos().abs_diff(100) <= 2,
            "mean {mean} off from 100"
        );
    }
}
