//! Event and interruption filters — the "drill down into any
//! particular area of interest by simply applying different filters"
//! capability of the paper (its Matlab module provides the same).

use osn_kernel::activity::{Activity, NoiseCategory};
use osn_kernel::ids::{CpuId, Tid};
use osn_kernel::time::Nanos;

use crate::nesting::ActivityInstance;
use crate::noise::Interruption;
use crate::stats::EventClass;

/// A composable filter over activity instances.
#[derive(Clone, Debug, Default)]
pub struct InstanceFilter {
    pub classes: Option<Vec<EventClass>>,
    pub categories: Option<Vec<NoiseCategory>>,
    pub tasks: Option<Vec<Tid>>,
    pub cpus: Option<Vec<CpuId>>,
    pub from: Option<Nanos>,
    pub to: Option<Nanos>,
    pub min_duration: Option<Nanos>,
}

impl InstanceFilter {
    pub fn new() -> Self {
        InstanceFilter::default()
    }

    pub fn class(mut self, c: EventClass) -> Self {
        self.classes.get_or_insert_with(Vec::new).push(c);
        self
    }

    pub fn category(mut self, c: NoiseCategory) -> Self {
        self.categories.get_or_insert_with(Vec::new).push(c);
        self
    }

    pub fn task(mut self, t: Tid) -> Self {
        self.tasks.get_or_insert_with(Vec::new).push(t);
        self
    }

    pub fn cpu(mut self, c: CpuId) -> Self {
        self.cpus.get_or_insert_with(Vec::new).push(c);
        self
    }

    pub fn window(mut self, from: Nanos, to: Nanos) -> Self {
        self.from = Some(from);
        self.to = Some(to);
        self
    }

    pub fn min_duration(mut self, d: Nanos) -> Self {
        self.min_duration = Some(d);
        self
    }

    /// Does an instance pass the filter?
    pub fn accepts(&self, i: &ActivityInstance) -> bool {
        if let Some(classes) = &self.classes {
            if !classes.iter().any(|c| c.matches(i.activity)) {
                return false;
            }
        }
        if let Some(cats) = &self.categories {
            if !cats.contains(&i.activity.category()) {
                return false;
            }
        }
        if let Some(tasks) = &self.tasks {
            if !tasks.contains(&i.ctx) {
                return false;
            }
        }
        if let Some(cpus) = &self.cpus {
            if !cpus.contains(&i.cpu) {
                return false;
            }
        }
        if let Some(from) = self.from {
            if i.start < from {
                return false;
            }
        }
        if let Some(to) = self.to {
            if i.start >= to {
                return false;
            }
        }
        if let Some(min) = self.min_duration {
            if i.self_time < min {
                return false;
            }
        }
        true
    }

    /// Apply to a slice of instances.
    pub fn apply<'a>(&self, instances: &'a [ActivityInstance]) -> Vec<&'a ActivityInstance> {
        instances.iter().filter(|i| self.accepts(i)).collect()
    }
}

/// Keep only the interruptions that contain a given activity (the
/// trace-view filter used for Figs 5 and 7: "We filtered out all the
/// events but the page faults").
pub fn interruptions_containing<'a>(
    interruptions: &[&'a Interruption],
    pred: impl Fn(Activity) -> bool,
) -> Vec<&'a Interruption> {
    interruptions
        .iter()
        .filter(|i| {
            i.components
                .iter()
                .any(|(c, _)| matches!(c, crate::noise::Component::Activity(a) if pred(*a)))
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_kernel::activity::FaultKind;

    fn inst(t: u64, cpu: u16, ctx: u32, a: Activity, d: u64) -> ActivityInstance {
        ActivityInstance {
            activity: a,
            cpu: CpuId(cpu),
            ctx: Tid(ctx),
            start: Nanos(t),
            end: Nanos(t + d),
            self_time: Nanos(d),
            depth: 0,
        }
    }

    fn dataset() -> Vec<ActivityInstance> {
        vec![
            inst(100, 0, 1, Activity::TimerInterrupt, 2000),
            inst(200, 0, 1, Activity::PageFault(FaultKind::AnonZero), 3000),
            inst(300, 1, 2, Activity::PageFault(FaultKind::Cow), 500),
            inst(400, 1, 2, Activity::NetworkInterrupt, 1500),
        ]
    }

    #[test]
    fn filter_by_class() {
        let data = dataset();
        let hits = InstanceFilter::new()
            .class(EventClass::PageFault)
            .apply(&data);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn filter_by_category() {
        let data = dataset();
        let hits = InstanceFilter::new()
            .category(NoiseCategory::Io)
            .apply(&data);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].activity, Activity::NetworkInterrupt);
    }

    #[test]
    fn filter_by_task_cpu_window_duration() {
        let data = dataset();
        assert_eq!(InstanceFilter::new().task(Tid(1)).apply(&data).len(), 2);
        assert_eq!(InstanceFilter::new().cpu(CpuId(1)).apply(&data).len(), 2);
        assert_eq!(
            InstanceFilter::new()
                .window(Nanos(150), Nanos(350))
                .apply(&data)
                .len(),
            2
        );
        assert_eq!(
            InstanceFilter::new()
                .min_duration(Nanos(1500))
                .apply(&data)
                .len(),
            3
        );
    }

    #[test]
    fn filters_compose_conjunctively() {
        let data = dataset();
        let hits = InstanceFilter::new()
            .class(EventClass::PageFault)
            .task(Tid(1))
            .min_duration(Nanos(1000))
            .apply(&data);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].start, Nanos(200));
    }

    #[test]
    fn empty_filter_accepts_all() {
        let data = dataset();
        assert_eq!(InstanceFilter::new().apply(&data).len(), data.len());
    }

    #[test]
    fn multiple_values_are_disjunctive_within_a_field() {
        let data = dataset();
        let hits = InstanceFilter::new()
            .class(EventClass::PageFault)
            .class(EventClass::TimerInterrupt)
            .apply(&data);
        assert_eq!(hits.len(), 3);
    }
}
