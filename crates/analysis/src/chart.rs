//! The Synthetic OS Noise Chart (paper §III, Figs 1b/1d, 9b, 10).
//!
//! "The Synthetic OS Noise Chart ... provides a view of the amount of
//! noise introduced by the OS. ... shows, for each OS interruption, the
//! kernel activities performed and their durations."
//!
//! A chart is a time series with one point per interruption, carrying
//! the full component decomposition; it can also be re-bucketed into
//! fixed quanta for direct visual comparison against FTQ output
//! (Figs 1a vs 1b).

use osn_kernel::ids::Tid;
use osn_kernel::time::Nanos;

use serde::{Deserialize, Serialize};

use crate::noise::{Component, Interruption, NoiseAnalysis};

/// One chart point: an interruption with its decomposition.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChartPoint {
    /// Interruption start time.
    pub t: Nanos,
    /// Total noise of the interruption (excludes requested service).
    pub noise: Nanos,
    /// Wall duration of the interruption.
    pub duration: Nanos,
    /// Decomposition, largest component first.
    pub components: Vec<(Component, Nanos)>,
}

/// The synthetic OS noise chart for one task.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct NoiseChart {
    pub task: Tid,
    pub points: Vec<ChartPoint>,
}

impl NoiseChart {
    /// Build the chart for a task from a completed analysis.
    pub fn build(analysis: &NoiseAnalysis, task: Tid) -> NoiseChart {
        let points = analysis
            .tasks
            .get(&task)
            .map(|tn| tn.interruptions.iter().map(point_of).collect())
            .unwrap_or_default();
        NoiseChart { task, points }
    }

    /// Total noise across the chart.
    pub fn total_noise(&self) -> Nanos {
        self.points.iter().map(|p| p.noise).sum()
    }

    /// Points inside a window (for the paper's zoomed figures).
    pub fn window(&self, from: Nanos, to: Nanos) -> NoiseChart {
        NoiseChart {
            task: self.task,
            points: self
                .points
                .iter()
                .filter(|p| p.t >= from && p.t < to)
                .cloned()
                .collect(),
        }
    }

    /// Re-bucket into fixed quanta of width `quantum` starting at
    /// `origin`: per-quantum total noise, directly comparable with the
    /// FTQ "missing work" series (Fig 1a vs 1b). Noise is attributed to
    /// the quantum containing the interruption start (as FTQ attributes
    /// missing work to the iteration in which it happened).
    pub fn bucket(&self, origin: Nanos, quantum: Nanos, nbuckets: usize) -> Vec<Nanos> {
        let mut out = vec![Nanos::ZERO; nbuckets];
        for p in &self.points {
            if p.t < origin {
                continue;
            }
            let idx = ((p.t - origin) / quantum) as usize;
            if idx < nbuckets {
                out[idx] += p.noise;
            }
        }
        out
    }

    /// The n largest interruptions (for report highlights).
    pub fn top(&self, n: usize) -> Vec<&ChartPoint> {
        let mut refs: Vec<&ChartPoint> = self.points.iter().collect();
        refs.sort_by_key(|p| std::cmp::Reverse(p.noise));
        refs.truncate(n);
        refs
    }
}

fn point_of(i: &Interruption) -> ChartPoint {
    let mut components = i.components.clone();
    components.sort_by_key(|(_, d)| std::cmp::Reverse(*d));
    ChartPoint {
        t: i.start,
        noise: i.noise(),
        duration: i.duration(),
        components,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_kernel::activity::Activity;

    fn point(t: u64, noise: u64) -> ChartPoint {
        ChartPoint {
            t: Nanos(t),
            noise: Nanos(noise),
            duration: Nanos(noise),
            components: vec![(Component::Activity(Activity::TimerInterrupt), Nanos(noise))],
        }
    }

    fn chart() -> NoiseChart {
        NoiseChart {
            task: Tid(1),
            points: vec![
                point(1_000, 50),
                point(2_500, 70),
                point(7_000, 30),
                point(12_000, 90),
            ],
        }
    }

    #[test]
    fn totals_and_top() {
        let c = chart();
        assert_eq!(c.total_noise(), Nanos(240));
        let top = c.top(2);
        assert_eq!(top[0].noise, Nanos(90));
        assert_eq!(top[1].noise, Nanos(70));
    }

    #[test]
    fn window_zoom() {
        let c = chart();
        let z = c.window(Nanos(2_000), Nanos(10_000));
        assert_eq!(z.points.len(), 2);
        assert_eq!(z.points[0].t, Nanos(2_500));
    }

    #[test]
    fn bucketing_matches_ftq_shape() {
        let c = chart();
        // Quanta of 5 µs from 0: [0,5000) -> 120, [5000,10000) -> 30,
        // [10000,15000) -> 90.
        let buckets = c.bucket(Nanos(0), Nanos(5_000), 3);
        assert_eq!(buckets, vec![Nanos(120), Nanos(30), Nanos(90)]);
    }

    #[test]
    fn bucket_ignores_out_of_range() {
        let c = chart();
        let buckets = c.bucket(Nanos(2_000), Nanos(1_000), 2);
        // Only t=2500 falls in [2000,4000).
        assert_eq!(buckets, vec![Nanos(70), Nanos::ZERO]);
    }
}
