//! Tiny scoped worker pool for the sharded analysis engine.
//!
//! Same shape as `run_campaign`'s pool (crates/core): workers pull the
//! next shard index off a shared atomic counter, so work is bounded by
//! `available_parallelism()` and never oversubscribes the host. Results
//! come back in index order regardless of completion order, which keeps
//! every parallel stage deterministic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Host threads to use for `n` independent shards.
pub fn default_workers(n: usize) -> usize {
    std::thread::available_parallelism()
        .map(|w| w.get())
        .unwrap_or(1)
        .min(n)
        .max(1)
}

/// Map `f` over `0..n` with at most `workers` host threads, returning
/// results in index order. `workers <= 1` (or `n <= 1`) runs inline —
/// no thread is spawned, so tiny inputs pay no pool overhead.
pub fn parallel_map<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.min(n).max(1);
    if workers == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                if tx.send((idx, f(idx))).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut out: Vec<Option<T>> = Vec::new();
    out.resize_with(n, || None);
    for (idx, v) in rx {
        out[idx] = Some(v);
    }
    out.into_iter()
        .map(|v| v.expect("worker panicked"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_index_order() {
        for workers in [1, 2, 5] {
            let out = parallel_map(17, workers, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_oversized_pools() {
        assert!(parallel_map(0, 4, |i| i).is_empty());
        assert_eq!(parallel_map(2, 64, |i| i), vec![0, 1]);
    }
}
