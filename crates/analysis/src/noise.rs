//! The paper's noise definition, applied per task: group every kernel
//! interruption of a *runnable* application process into
//! [`Interruption`]s and decompose each into per-activity components —
//! exactly the per-interruption detail of the Synthetic OS Noise Chart
//! (Figs 1b, 9b, 10) and of Fig 2b's event breakdown.
//!
//! Accounting rules (paper §III):
//!
//! 1. Only activities *not requested* by the application are noise
//!    (syscall service shows up as a `Requested` component, reported
//!    but excluded from noise totals).
//! 2. Kernel activity only counts while the process is runnable;
//!    everything that happens while it is blocked (communication, I/O
//!    wait, sleep) is invisible to it.
//! 3. Nested events are attributed by self time (see
//!    [`crate::nesting`]), so component durations are additive.

use std::collections::HashMap;

use osn_kernel::activity::{Activity, NoiseCategory};
use osn_kernel::ids::{CpuId, Tid};
use osn_kernel::task::TaskMeta;
use osn_kernel::time::Nanos;
use osn_trace::Trace;

use serde::{Deserialize, Serialize};

use crate::nesting::{reconstruct_reference, reconstruct_sharded, ActivityInstance, NestingReport};
use crate::timeline::{
    build_timelines_partitioned, build_timelines_reference, Phase, TaskTimeline, Timelines,
    UNKNOWN_CPU,
};

/// One piece of an interruption.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Component {
    /// A kernel activity ran in the task's context (or inside its
    /// preemption gap), for `self_time` nanoseconds.
    Activity(Activity),
    /// Another task ran while this one waited on a runqueue.
    Preemption { by: Tid },
}

impl Component {
    /// Noise category for breakdowns. `None` for requested services.
    pub fn category(&self) -> Option<NoiseCategory> {
        match self {
            Component::Activity(a) => match a.category() {
                NoiseCategory::Requested => None,
                c => Some(c),
            },
            Component::Preemption { .. } => Some(NoiseCategory::Preemption),
        }
    }
}

/// A maximal interval during which a runnable task could not execute
/// user code, decomposed into components.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interruption {
    pub task: Tid,
    pub start: Nanos,
    pub end: Nanos,
    /// `(component, duration)` pairs; durations sum to `duration()`.
    pub components: Vec<(Component, Nanos)>,
}

impl Interruption {
    #[inline]
    pub fn duration(&self) -> Nanos {
        self.end - self.start
    }

    /// Total noise (excludes `Requested` components).
    pub fn noise(&self) -> Nanos {
        self.components
            .iter()
            .filter(|(c, _)| c.category().is_some())
            .map(|(_, d)| *d)
            .sum()
    }

    /// Noise by category.
    pub fn by_category(&self) -> HashMap<NoiseCategory, Nanos> {
        let mut map = HashMap::new();
        for (c, d) in &self.components {
            if let Some(cat) = c.category() {
                *map.entry(cat).or_insert(Nanos::ZERO) += *d;
            }
        }
        map
    }

    /// Does any component match this activity?
    pub fn contains_activity(&self, activity: Activity) -> bool {
        self.components
            .iter()
            .any(|(c, _)| matches!(c, Component::Activity(a) if *a == activity))
    }
}

/// All noise experienced by one task.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TaskNoise {
    pub tid: Tid,
    pub interruptions: Vec<Interruption>,
    /// Total time the task was runnable (running + ready).
    pub runnable_time: Nanos,
    /// Total time actually on a CPU.
    pub running_time: Nanos,
    /// Wall extent (first to last span).
    pub wall: Nanos,
}

impl TaskNoise {
    /// Total noise across all interruptions.
    pub fn total_noise(&self) -> Nanos {
        self.interruptions.iter().map(|i| i.noise()).sum()
    }

    /// Noise by category.
    pub fn by_category(&self) -> HashMap<NoiseCategory, Nanos> {
        let mut map = HashMap::new();
        for i in &self.interruptions {
            for (cat, d) in i.by_category() {
                *map.entry(cat).or_insert(Nanos::ZERO) += d;
            }
        }
        map
    }

    /// All `(start, self_time)` samples of a specific activity (for
    /// per-event statistics and histograms).
    pub fn activity_samples(&self, matches: impl Fn(Activity) -> bool) -> Vec<(Nanos, Nanos)> {
        let mut out = Vec::new();
        for i in &self.interruptions {
            for (c, d) in &i.components {
                if let Component::Activity(a) = c {
                    if matches(*a) {
                        out.push((i.start, *d));
                    }
                }
            }
        }
        out
    }
}

/// The complete noise analysis of a trace.
pub struct NoiseAnalysis {
    /// Every reconstructed kernel activity instance (all contexts).
    pub instances: Vec<ActivityInstance>,
    pub nesting_report: NestingReport,
    pub timelines: Timelines,
    /// Noise per analyzed (application) task.
    pub tasks: HashMap<Tid, TaskNoise>,
    /// Trace end used to close open spans.
    pub end: Nanos,
}

/// Position indexes into a reconstructed instance list, shared by every
/// per-task analysis. Positions are `u32` offsets into the global
/// instance vector — half the footprint of wide references, and
/// trivially `Send` across the worker pool.
struct InstanceIndex {
    /// Positions per CPU, start-ordered (the global list is
    /// `(start, cpu, Reverse(end))`-sorted, so a per-CPU subsequence
    /// stays start-ordered).
    per_cpu: Vec<Vec<u32>>,
    /// Asynchronous (irq/softirq) positions per CPU — the only
    /// instances Ready-gap decomposition can select; filled in the same
    /// walk as `per_ctx` so the instance array is traversed once.
    per_cpu_async: Vec<Vec<u32>>,
    /// Positions per application context, *cpu-major* — exactly the
    /// order the reference gather visits them — keyed by tid, sorted
    /// for binary search. This is the index that turns the per-task
    /// obstruction gather from O(instances) per rank into
    /// O(own instances).
    per_ctx: Vec<(Tid, Vec<u32>)>,
}

impl InstanceIndex {
    fn build(instances: &[ActivityInstance], app_tids: &[Tid]) -> InstanceIndex {
        let per_cpu = per_cpu_positions(instances);
        let mut per_cpu_async: Vec<Vec<u32>> = vec![Vec::new(); per_cpu.len()];

        let mut tids: Vec<Tid> = app_tids.to_vec();
        tids.sort_unstable_by_key(|t| t.0);
        tids.dedup();
        let mut per_ctx: Vec<(Tid, Vec<u32>)> = tids.into_iter().map(|t| (t, Vec::new())).collect();
        // Cpu-major fill so each context's list replays the reference
        // gather order (cpu 0..n, start-ordered within each) exactly.
        // Consecutive instances usually share a context (nested frames,
        // repeated ticks in one residency), so memoize the last lookup.
        let mut last: Option<(Tid, Option<usize>)> = None;
        for (cpu, list) in per_cpu.iter().enumerate() {
            let asyncs = &mut per_cpu_async[cpu];
            for &pos in list {
                let inst = &instances[pos as usize];
                if is_async(inst.activity) {
                    asyncs.push(pos);
                }
                let ctx = inst.ctx;
                let slot = match last {
                    Some((t, s)) if t == ctx => s,
                    _ => {
                        let s = per_ctx.binary_search_by_key(&ctx.0, |(t, _)| t.0).ok();
                        last = Some((ctx, s));
                        s
                    }
                };
                if let Some(slot) = slot {
                    per_ctx[slot].1.push(pos);
                }
            }
        }
        InstanceIndex {
            per_cpu,
            per_cpu_async,
            per_ctx,
        }
    }

    fn ctx_positions(&self, tid: Tid) -> &[u32] {
        match self.per_ctx.binary_search_by_key(&tid.0, |(t, _)| t.0) {
            Ok(i) => &self.per_ctx[i].1,
            Err(_) => &[],
        }
    }

    fn ncpus(&self) -> usize {
        self.per_cpu.len()
    }
}

/// Per-CPU instance positions, grown on demand — the array length is
/// the instance-derived CPU count, which also sizes the running-segment
/// index (`decompose_gap` bounds-checks against it).
fn per_cpu_positions(instances: &[ActivityInstance]) -> Vec<Vec<u32>> {
    // Counting pass first so every per-CPU list is allocated exactly
    // once at its final size.
    let mut counts: Vec<usize> = Vec::new();
    for inst in instances {
        let c = inst.cpu.0 as usize;
        if c >= counts.len() {
            counts.resize(c + 1, 0);
        }
        counts[c] += 1;
    }
    let mut per_cpu: Vec<Vec<u32>> = counts.iter().map(|&n| Vec::with_capacity(n)).collect();
    for (pos, inst) in instances.iter().enumerate() {
        per_cpu[inst.cpu.0 as usize].push(pos as u32);
    }
    per_cpu
}

/// Is this instance asynchronous kernel work (interrupt top half or
/// softirq)? Only these can be re-categorized out of a Ready gap by
/// [`decompose_gap`].
#[inline]
fn is_async(a: Activity) -> bool {
    a.is_hardirq() || matches!(a, Activity::Softirq(_))
}

/// Positions of asynchronous instances per CPU, same shape as
/// `per_cpu`. Ready-gap decomposition only ever selects these, so the
/// gap window scan walks this (small) index instead of every instance
/// on the CPU — under heavy oversubscription every instance sits inside
/// many other tasks' Ready gaps, which made the full scan quadratic.
fn per_cpu_async_positions(instances: &[ActivityInstance], ncpus: usize) -> Vec<Vec<u32>> {
    let mut per_cpu: Vec<Vec<u32>> = vec![Vec::new(); ncpus];
    for (pos, inst) in instances.iter().enumerate() {
        if is_async(inst.activity) {
            per_cpu[inst.cpu.0 as usize].push(pos as u32);
        }
    }
    per_cpu
}

/// Per-CPU running segments of every task (for preemptor attribution).
fn running_segments(timelines: &Timelines, ncpus: usize) -> Vec<Vec<(Nanos, Nanos, Tid)>> {
    let mut running: Vec<Vec<(Nanos, Nanos, Tid)>> = vec![Vec::new(); ncpus];
    for (tid, tl) in timelines.iter() {
        for span in tl.spans.iter() {
            if let Phase::Running(cpu) = span.phase {
                if (cpu.0 as usize) < ncpus {
                    running[cpu.0 as usize].push((span.start, span.end, *tid));
                }
            }
        }
    }
    for segs in &mut running {
        // Running spans on one CPU are disjoint with positive length,
        // so starts are unique and the unstable sort is deterministic
        // despite the HashMap iteration order above; the full key keeps
        // it deterministic even on degenerate inputs.
        segs.sort_unstable_by_key(|&(s, e, t)| (s, e, t.0));
    }
    running
}

impl NoiseAnalysis {
    /// Analyze a trace. `end` should be the run's end time.
    ///
    /// This is the sharded engine: reconstruction is sharded by CPU,
    /// timelines are partitioned by task, the per-task obstruction
    /// gather goes through a per-context position index instead of
    /// scanning every instance per rank, and application tasks are
    /// analyzed in parallel across host threads. Output is bit-identical
    /// to [`NoiseAnalysis::analyze_reference`].
    pub fn analyze(trace: &Trace, tasks: &[TaskMeta], end: Nanos) -> NoiseAnalysis {
        let shards = trace.ncpus().max(tasks.len());
        Self::analyze_with_workers(trace, tasks, end, crate::par::default_workers(shards))
    }

    /// [`NoiseAnalysis::analyze`] with an explicit worker budget.
    pub fn analyze_with_workers(
        trace: &Trace,
        tasks: &[TaskMeta],
        end: Nanos,
        workers: usize,
    ) -> NoiseAnalysis {
        let (instances, nesting_report) = reconstruct_sharded(trace, workers);
        let timelines = build_timelines_partitioned(trace, tasks, end, workers);
        assemble(instances, nesting_report, timelines, tasks, end, workers)
    }

    /// Out-of-core variant: analyze per-CPU event streams (e.g.
    /// [`osn_store` chunk iterators]) without ever materializing the
    /// trace. `sched_events` is the time-merged scheduler-event subset
    /// (switch/wakeup/migrate/exit) that timelines replay — a small
    /// slice compared to the full trace. Scheduler events are a
    /// per-CPU-order-preserving filter of the streams, so building
    /// timelines from them commutes with the k-way merge: output is
    /// bit-identical to [`NoiseAnalysis::analyze_with_workers`] on the
    /// materialized trace.
    pub fn analyze_streamed<I>(
        streams: Vec<I>,
        sched_events: &[osn_trace::Event],
        tasks: &[TaskMeta],
        end: Nanos,
        workers: usize,
    ) -> NoiseAnalysis
    where
        I: Iterator<Item = osn_trace::Event> + Send,
    {
        let (instances, nesting_report) = crate::nesting::reconstruct_streams(streams, workers);
        let timelines = crate::timeline::build_timelines_events(sched_events, tasks, end, workers);
        assemble(instances, nesting_report, timelines, tasks, end, workers)
    }

    /// Assemble an analysis from already-reconstructed parts: the
    /// public seam for drivers that run the pairing state machine
    /// themselves — e.g. `osn-core`'s store path, which feeds columnar
    /// chunk cursors through [`crate::ColumnPairing`] and merges the
    /// shards with [`crate::nesting::merge_shards`]. `instances` must
    /// be in the reference global order (`(start, cpu, Reverse(end))`)
    /// and `timelines` built over the same events; given that, the
    /// result is bit-identical to [`NoiseAnalysis::analyze`].
    pub fn from_parts(
        instances: Vec<ActivityInstance>,
        nesting_report: NestingReport,
        timelines: Timelines,
        tasks: &[TaskMeta],
        end: Nanos,
        workers: usize,
    ) -> NoiseAnalysis {
        assemble(instances, nesting_report, timelines, tasks, end, workers)
    }

    /// The retained sequential reference engine (the pre-sharding seed
    /// path): global reconstruction, single-walk timelines, and the
    /// O(ranks × instances) obstruction gather. Kept as the
    /// differential-test oracle and the benchmark baseline.
    pub fn analyze_reference(trace: &Trace, tasks: &[TaskMeta], end: Nanos) -> NoiseAnalysis {
        let (instances, nesting_report) = reconstruct_reference(trace);
        let timelines = build_timelines_reference(trace, tasks, end);

        let per_cpu = per_cpu_positions(&instances);
        let running = running_segments(&timelines, per_cpu.len());
        let per_cpu_async = per_cpu_async_positions(&instances, per_cpu.len());

        let mut result: HashMap<Tid, TaskNoise> = HashMap::new();
        for meta in tasks.iter().filter(|m| m.kind == "app") {
            let Some(tl) = timelines.get(meta.tid) else {
                continue;
            };
            let noise = analyze_task_reference(
                meta.tid,
                tl,
                &instances,
                &per_cpu,
                &per_cpu_async,
                &running,
            );
            result.insert(meta.tid, noise);
        }

        NoiseAnalysis {
            instances,
            nesting_report,
            timelines,
            tasks: result,
            end,
        }
    }

    /// All interruptions of a set of tasks, merged and time-sorted
    /// (job-level view).
    pub fn interruptions_of(&self, tids: &[Tid]) -> Vec<&Interruption> {
        let total: usize = tids
            .iter()
            .filter_map(|t| self.tasks.get(t))
            .map(|tn| tn.interruptions.len())
            .sum();
        let mut out: Vec<&Interruption> = Vec::with_capacity(total);
        out.extend(
            tids.iter()
                .filter_map(|t| self.tasks.get(t))
                .flat_map(|tn| tn.interruptions.iter()),
        );
        // Unstable is fine with a full key: (start, end, task) is
        // unique per interruption, so the order is deterministic.
        out.sort_unstable_by_key(|i| (i.start, i.end, i.task.0));
        out
    }
}

/// Shared back half of the sharded engine: index the reconstructed
/// instances, analyze every application task in parallel, and bundle
/// the results. Both the in-memory and the streamed front halves feed
/// this, which is what makes them bit-identical.
fn assemble(
    instances: Vec<ActivityInstance>,
    nesting_report: NestingReport,
    timelines: Timelines,
    tasks: &[TaskMeta],
    end: Nanos,
    workers: usize,
) -> NoiseAnalysis {
    let apps: Vec<Tid> = tasks
        .iter()
        .filter(|m| m.kind == "app")
        .map(|m| m.tid)
        .collect();
    let index = InstanceIndex::build(&instances, &apps);
    let running = running_segments(&timelines, index.ncpus());

    let targets: Vec<Tid> = apps
        .into_iter()
        .filter(|t| timelines.get(*t).is_some())
        .collect();
    let noises = crate::par::parallel_map(targets.len(), workers, |i| {
        let tid = targets[i];
        let tl = timelines.get(tid).expect("filtered above");
        analyze_task(
            tid,
            tl,
            &instances,
            index.ctx_positions(tid),
            &index.per_cpu_async,
            &running,
        )
    });
    let result: HashMap<Tid, TaskNoise> = targets.into_iter().zip(noises).collect();

    NoiseAnalysis {
        instances,
        nesting_report,
        timelines,
        tasks: result,
        end,
    }
}

/// Obstruction interval: a piece of time the task could not run user
/// code, with its decomposition source.
enum Obstruction<'a> {
    /// Kernel activity in the task's own context.
    OwnContext(&'a ActivityInstance),
    /// Waiting on `cpu`'s runqueue.
    ReadyGap {
        start: Nanos,
        end: Nanos,
        cpu: CpuId,
    },
}

impl Obstruction<'_> {
    fn interval(&self) -> (Nanos, Nanos) {
        match self {
            Obstruction::OwnContext(i) => (i.start, i.end),
            Obstruction::ReadyGap { start, end, .. } => (*start, *end),
        }
    }
}

/// Indexed obstruction gather: only this task's own-context instances
/// are visited, via the per-context position index.
fn analyze_task(
    tid: Tid,
    tl: &TaskTimeline,
    instances: &[ActivityInstance],
    ctx_positions: &[u32],
    per_cpu_async: &[Vec<u32>],
    running: &[Vec<(Nanos, Nanos, Tid)>],
) -> TaskNoise {
    let mut obstructions: Vec<Obstruction<'_>> = Vec::with_capacity(ctx_positions.len());
    // The cpu-major position list is start-ordered within each CPU run,
    // so a monotonic cursor over the contiguous timeline spans replaces
    // the per-instance binary search of [`TaskTimeline::runnable_at`];
    // the cursor rewinds when a new CPU run restarts the clock.
    let spans = &tl.spans;
    let mut idx = 0usize;
    let mut prev_start = Nanos::ZERO;
    for &pos in ctx_positions {
        let inst = &instances[pos as usize];
        if inst.start < prev_start {
            idx = 0;
        }
        prev_start = inst.start;
        while idx < spans.len() && spans[idx].end <= inst.start {
            idx += 1;
        }
        let runnable = spans
            .get(idx)
            .is_some_and(|s| s.start <= inst.start && s.phase.is_runnable());
        if runnable {
            obstructions.push(Obstruction::OwnContext(inst));
        }
    }
    merge_obstructions(tid, tl, obstructions, instances, per_cpu_async, running)
}

/// Reference obstruction gather: scan every instance on every CPU —
/// O(instances) per rank, the quadratic path the index replaces.
fn analyze_task_reference(
    tid: Tid,
    tl: &TaskTimeline,
    instances: &[ActivityInstance],
    per_cpu: &[Vec<u32>],
    per_cpu_async: &[Vec<u32>],
    running: &[Vec<(Nanos, Nanos, Tid)>],
) -> TaskNoise {
    let mut obstructions: Vec<Obstruction<'_>> = Vec::new();
    for cpu_insts in per_cpu {
        for &pos in cpu_insts {
            let inst = &instances[pos as usize];
            if inst.ctx == tid && tl.runnable_at(inst.start) {
                obstructions.push(Obstruction::OwnContext(inst));
            }
        }
    }
    merge_obstructions(tid, tl, obstructions, instances, per_cpu_async, running)
}

/// Shared back half of the per-task analysis: append Ready gaps, merge
/// touching/overlapping obstructions into interruptions, decompose, and
/// total up the timeline.
fn merge_obstructions<'a>(
    tid: Tid,
    tl: &'a TaskTimeline,
    mut obstructions: Vec<Obstruction<'a>>,
    instances: &[ActivityInstance],
    per_cpu_async: &[Vec<u32>],
    running: &[Vec<(Nanos, Nanos, Tid)>],
) -> TaskNoise {
    for span in tl.ready_spans() {
        let Phase::Ready(cpu) = span.phase else {
            unreachable!()
        };
        obstructions.push(Obstruction::ReadyGap {
            start: span.start,
            end: span.end,
            cpu,
        });
    }
    // Sort `(start, end, insertion)` key tuples instead of the
    // obstructions themselves: the third component is unique, so the
    // unstable sort is deterministic and reproduces the stable
    // by-interval order the reference uses — at plain-integer
    // comparison cost, and the 24-byte tuples move instead of the
    // enums. The gather pushed several already-sorted runs (own-context
    // per CPU, then ready gaps), which the pattern-defeating sort
    // exploits.
    let mut keys: Vec<(Nanos, Nanos, u32)> = obstructions
        .iter()
        .enumerate()
        .map(|(i, o)| {
            let (s, e) = o.interval();
            (s, e, i as u32)
        })
        .collect();
    keys.sort_unstable();

    // Merge touching/overlapping obstructions into interruptions. In
    // sorted order a group is a contiguous key range: its start is the
    // first key's start and its end the running maximum — no per-group
    // rescan, no borrowed group vector.
    let mut interruptions: Vec<Interruption> = Vec::new();
    // Preemptor-overlap scratch, reused across every gap of this task.
    let mut overlap: Vec<(Tid, Nanos)> = Vec::new();

    let flush = |group: &[(Nanos, Nanos, u32)],
                 end: Nanos,
                 interruptions: &mut Vec<Interruption>,
                 overlap: &mut Vec<(Tid, Nanos)>| {
        let mut components: Vec<(Component, Nanos)> = Vec::with_capacity(group.len());
        for &(_, _, idx) in group {
            match &obstructions[idx as usize] {
                Obstruction::OwnContext(inst) => {
                    if !inst.self_time.is_zero() {
                        components.push((Component::Activity(inst.activity), inst.self_time));
                    }
                }
                Obstruction::ReadyGap { start, end, cpu } => {
                    decompose_gap(
                        tid,
                        *start,
                        *end,
                        *cpu,
                        instances,
                        per_cpu_async,
                        running,
                        overlap,
                        &mut components,
                    );
                }
            }
        }
        interruptions.push(Interruption {
            task: tid,
            start: group[0].0,
            end,
            components,
        });
    };

    let mut group_at = 0usize;
    let mut group_end = Nanos::ZERO;
    for i in 0..keys.len() {
        let (s, e, _) = keys[i];
        if i > group_at && s > group_end {
            flush(
                &keys[group_at..i],
                group_end,
                &mut interruptions,
                &mut overlap,
            );
            group_at = i;
            group_end = e;
        } else {
            group_end = group_end.max(e);
        }
    }
    if group_at < keys.len() {
        flush(
            &keys[group_at..],
            group_end,
            &mut interruptions,
            &mut overlap,
        );
    }

    let runnable_time = tl.time_where(|p| p.is_runnable());
    let running_time = tl.time_where(|p| p.is_running());
    let wall = tl.extent().map(|(s, e)| e - s).unwrap_or(Nanos::ZERO);

    TaskNoise {
        tid,
        interruptions,
        runnable_time,
        running_time,
        wall,
    }
}

/// Decompose a Ready gap on `cpu` into categorized kernel components
/// plus a preemption remainder attributed to the dominant preemptor.
/// `overlap` is caller-owned scratch (cleared here); gaps see only a
/// handful of distinct preemptors, so a linear-probed vector beats a
/// hash map and — unlike one — breaks duration ties deterministically
/// (first preemptor to reach the maximum wins).
#[allow(clippy::too_many_arguments)]
fn decompose_gap(
    tid: Tid,
    start: Nanos,
    end: Nanos,
    cpu: CpuId,
    instances: &[ActivityInstance],
    per_cpu_async: &[Vec<u32>],
    running: &[Vec<(Nanos, Nanos, Tid)>],
    overlap: &mut Vec<(Tid, Nanos)>,
    components: &mut Vec<(Component, Nanos)>,
) {
    let gap = end - start;
    if gap.is_zero() {
        return;
    }
    let mut kernel_time = Nanos::ZERO;
    if cpu != UNKNOWN_CPU && (cpu.0 as usize) < per_cpu_async.len() {
        // Only asynchronous kernel work (interrupt top halves and
        // softirqs) is re-categorized out of the gap: that work would
        // have hit this CPU regardless of who ran. The preempting
        // task's own faults, syscalls and schedule frames are part of
        // "kernel and user daemons that preempt the application's
        // processes" (§IV-A) and stay in the preemption bucket.
        // Straddling fragments also stay (partial self-times would
        // distort duration statistics). The async index pre-filters the
        // activity kinds, so only candidates are visited here.
        let insts = &per_cpu_async[cpu.0 as usize];
        // Positions are sorted by start: find the window in the gap.
        let lo = insts.partition_point(|&p| instances[p as usize].start < start);
        for &pos in &insts[lo..] {
            let inst = &instances[pos as usize];
            if inst.start >= end {
                break;
            }
            if inst.ctx == tid {
                continue; // already counted as OwnContext
            }
            if inst.end <= end && !inst.self_time.is_zero() {
                components.push((Component::Activity(inst.activity), inst.self_time));
                kernel_time += inst.self_time;
            }
        }
    }
    let remainder = gap.saturating_sub(kernel_time);
    if remainder.is_zero() {
        return;
    }
    // Dominant preemptor: the task with the largest running overlap in
    // the gap on this runqueue's CPU.
    let by = if cpu != UNKNOWN_CPU && (cpu.0 as usize) < running.len() {
        let segs = &running[cpu.0 as usize];
        let lo = segs.partition_point(|(_, e, _)| *e <= start);
        overlap.clear();
        for &(s, e, who) in &segs[lo..] {
            if s >= end {
                break;
            }
            if who == tid {
                continue;
            }
            let o = e.min(end).saturating_sub(s.max(start));
            if !o.is_zero() {
                match overlap.iter_mut().find(|(w, _)| *w == who) {
                    Some((_, d)) => *d += o,
                    None => overlap.push((who, o)),
                }
            }
        }
        let mut by = Tid::IDLE;
        let mut best = Nanos::ZERO;
        for &(who, d) in overlap.iter() {
            if d > best {
                best = d;
                by = who;
            }
        }
        by
    } else {
        Tid::IDLE
    };
    components.push((Component::Preemption { by }, remainder));
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_kernel::activity::{SchedPart, SoftirqVec};
    use osn_kernel::hooks::SwitchState;
    use osn_trace::{Event, EventKind};

    const TIMER: Activity = Activity::TimerInterrupt;
    const TSOFT: Activity = Activity::Softirq(SoftirqVec::Timer);
    const PRE: Activity = Activity::Schedule(SchedPart::Before);
    const POST: Activity = Activity::Schedule(SchedPart::After);

    fn ev(t: u64, cpu: u16, tid: u32, kind: EventKind) -> Event {
        Event {
            t: Nanos(t),
            cpu: CpuId(cpu),
            tid: Tid(tid),
            kind,
        }
    }

    fn meta(tid: u32, kind: &str) -> TaskMeta {
        TaskMeta {
            tid: Tid(tid),
            name: format!("t{tid}"),
            kind: kind.into(),
            job: None,
            rank: 0,
            user_time: Nanos::ZERO,
            faults: 0,
        }
    }

    /// The paper's Fig 2b scenario: tick + softirq + schedule +
    /// daemon preemption + schedule = ONE interruption with five
    /// components.
    #[test]
    fn fig2b_interruption_decomposition() {
        let app = 1u32;
        let daemon = 2u32;
        let events = vec![
            // App starts running at t=0.
            ev(
                0,
                0,
                0,
                EventKind::SchedSwitch {
                    prev: Tid(0),
                    prev_state: SwitchState::Preempted,
                    next: Tid(app),
                },
            ),
            // Timer irq [1000, 3178) in app ctx.
            ev(1000, 0, app, EventKind::KernelEnter(TIMER)),
            ev(3178, 0, app, EventKind::KernelExit(TIMER)),
            // run_timer_softirq [3178, 5020), wakes the daemon.
            ev(3178, 0, app, EventKind::KernelEnter(TSOFT)),
            ev(
                4000,
                0,
                daemon,
                EventKind::Wakeup {
                    tid: Tid(daemon),
                    waker: Tid(app),
                },
            ),
            ev(5020, 0, app, EventKind::KernelExit(TSOFT)),
            // schedule pre [5020, 5402) in app ctx.
            ev(5020, 0, app, EventKind::KernelEnter(PRE)),
            ev(5402, 0, app, EventKind::KernelExit(PRE)),
            // switch app -> daemon (app preempted).
            ev(
                5402,
                0,
                app,
                EventKind::SchedSwitch {
                    prev: Tid(app),
                    prev_state: SwitchState::Preempted,
                    next: Tid(daemon),
                },
            ),
            // daemon's schedule post [5402, 5581) in daemon ctx.
            ev(5402, 0, daemon, EventKind::KernelEnter(POST)),
            ev(5581, 0, daemon, EventKind::KernelExit(POST)),
            // daemon runs user work until 7617, then blocks: sched pre.
            ev(7617, 0, daemon, EventKind::KernelEnter(PRE)),
            ev(7900, 0, daemon, EventKind::KernelExit(PRE)),
            ev(
                7900,
                0,
                daemon,
                EventKind::SchedSwitch {
                    prev: Tid(daemon),
                    prev_state: SwitchState::BlockedWait,
                    next: Tid(app),
                },
            ),
            // app's schedule post [7900, 8079).
            ev(7900, 0, app, EventKind::KernelEnter(POST)),
            ev(8079, 0, app, EventKind::KernelExit(POST)),
        ];
        let trace = Trace::new(events, vec![]);
        let tasks = [meta(app, "app"), meta(daemon, "events")];
        let analysis = NoiseAnalysis::analyze(&trace, &tasks, Nanos(20_000));
        assert!(analysis.nesting_report.is_clean());

        let tn = analysis.tasks.get(&Tid(app)).unwrap();
        assert_eq!(
            tn.interruptions.len(),
            1,
            "one merged interruption, got {:?}",
            tn.interruptions
        );
        let i = &tn.interruptions[0];
        assert_eq!(i.start, Nanos(1000));
        assert_eq!(i.end, Nanos(8079));
        // Components: timer 2178 and softirq 1842 in the app's own
        // context; the app's schedule halves 382 + 179; the whole gap
        // (daemon residency including its own schedule frames) is
        // preemption — §IV-A's "kernel and user daemons that preempt
        // the application's processes".
        let get = |c: Component| -> Nanos {
            i.components
                .iter()
                .filter(|(cc, _)| *cc == c)
                .map(|(_, d)| *d)
                .sum()
        };
        assert_eq!(get(Component::Activity(TIMER)), Nanos(2178));
        assert_eq!(get(Component::Activity(TSOFT)), Nanos(1842));
        assert_eq!(get(Component::Activity(PRE)), Nanos(382));
        assert_eq!(get(Component::Activity(POST)), Nanos(179));
        let preempt = get(Component::Preemption { by: Tid(daemon) });
        assert_eq!(preempt, Nanos(7900 - 5402));
        // Components sum to the interruption duration.
        let total: Nanos = i.components.iter().map(|(_, d)| *d).sum();
        assert_eq!(total, i.duration());
        // Category view.
        let cats = i.by_category();
        assert_eq!(cats[&NoiseCategory::Periodic], Nanos(2178 + 1842));
        assert_eq!(cats[&NoiseCategory::Scheduling], Nanos(382 + 179));
        assert_eq!(cats[&NoiseCategory::Preemption], preempt);
    }

    #[test]
    fn blocked_task_sees_no_noise() {
        // Task blocks on comm at t=10; a timer interrupt at t=20 in the
        // idle ctx must NOT appear in its noise.
        let events = vec![
            ev(
                0,
                0,
                0,
                EventKind::SchedSwitch {
                    prev: Tid(0),
                    prev_state: SwitchState::Preempted,
                    next: Tid(1),
                },
            ),
            ev(
                10,
                0,
                1,
                EventKind::SchedSwitch {
                    prev: Tid(1),
                    prev_state: SwitchState::BlockedComm,
                    next: Tid(0),
                },
            ),
            ev(20, 0, 0, EventKind::KernelEnter(TIMER)),
            ev(25, 0, 0, EventKind::KernelExit(TIMER)),
        ];
        let trace = Trace::new(events, vec![]);
        let analysis = NoiseAnalysis::analyze(&trace, &[meta(1, "app")], Nanos(100));
        let tn = analysis.tasks.get(&Tid(1)).unwrap();
        assert_eq!(tn.total_noise(), Nanos::ZERO);
        assert!(tn.interruptions.is_empty());
    }

    #[test]
    fn syscall_is_requested_not_noise() {
        let read = Activity::Syscall(osn_kernel::activity::SyscallKind::Read);
        let events = vec![
            ev(
                0,
                0,
                0,
                EventKind::SchedSwitch {
                    prev: Tid(0),
                    prev_state: SwitchState::Preempted,
                    next: Tid(1),
                },
            ),
            ev(10, 0, 1, EventKind::KernelEnter(read)),
            ev(30, 0, 1, EventKind::KernelExit(read)),
        ];
        let trace = Trace::new(events, vec![]);
        let analysis = NoiseAnalysis::analyze(&trace, &[meta(1, "app")], Nanos(100));
        let tn = analysis.tasks.get(&Tid(1)).unwrap();
        // The syscall produced an interruption record...
        assert_eq!(tn.interruptions.len(), 1);
        // ...but contributes zero *noise*.
        assert_eq!(tn.total_noise(), Nanos::ZERO);
        assert_eq!(tn.interruptions[0].duration(), Nanos(20));
    }

    #[test]
    fn separate_interruptions_stay_separate() {
        let events = vec![
            ev(
                0,
                0,
                0,
                EventKind::SchedSwitch {
                    prev: Tid(0),
                    prev_state: SwitchState::Preempted,
                    next: Tid(1),
                },
            ),
            ev(100, 0, 1, EventKind::KernelEnter(TIMER)),
            ev(110, 0, 1, EventKind::KernelExit(TIMER)),
            ev(500, 0, 1, EventKind::KernelEnter(TIMER)),
            ev(512, 0, 1, EventKind::KernelExit(TIMER)),
        ];
        let trace = Trace::new(events, vec![]);
        let analysis = NoiseAnalysis::analyze(&trace, &[meta(1, "app")], Nanos(1000));
        let tn = analysis.tasks.get(&Tid(1)).unwrap();
        assert_eq!(tn.interruptions.len(), 2);
        assert_eq!(tn.interruptions[0].duration(), Nanos(10));
        assert_eq!(tn.interruptions[1].duration(), Nanos(12));
        assert_eq!(tn.total_noise(), Nanos(22));
    }

    #[test]
    fn activity_samples_extraction() {
        let events = vec![
            ev(
                0,
                0,
                0,
                EventKind::SchedSwitch {
                    prev: Tid(0),
                    prev_state: SwitchState::Preempted,
                    next: Tid(1),
                },
            ),
            ev(100, 0, 1, EventKind::KernelEnter(TIMER)),
            ev(110, 0, 1, EventKind::KernelExit(TIMER)),
            ev(500, 0, 1, EventKind::KernelEnter(TSOFT)),
            ev(507, 0, 1, EventKind::KernelExit(TSOFT)),
        ];
        let trace = Trace::new(events, vec![]);
        let analysis = NoiseAnalysis::analyze(&trace, &[meta(1, "app")], Nanos(1000));
        let tn = analysis.tasks.get(&Tid(1)).unwrap();
        let timers = tn.activity_samples(|a| a == TIMER);
        assert_eq!(timers, vec![(Nanos(100), Nanos(10))]);
        let all = tn.activity_samples(|a| a.is_noise());
        assert_eq!(all.len(), 2);
    }
}
