//! Reconstruction of kernel-activity intervals from the raw event
//! stream, with correct handling of *nested* events.
//!
//! The paper: "We took particular care of nested events, i.e., events
//! that happen while the OS is already performing other activities. For
//! example, the local timer may raise an interrupt while the kernel is
//! performing a tasklet. Handling nested events is particularly
//! important for obtaining correct statistics."
//!
//! Each `KernelEnter`/`KernelExit` pair becomes an [`ActivityInstance`]
//! whose `self_time` excludes the time spent in activities nested inside
//! it — so per-activity duration statistics are additive: the self times
//! of a nest tree sum exactly to the root's wall span.

use osn_kernel::activity::Activity;
use osn_kernel::ids::{CpuId, Tid};
use osn_kernel::time::Nanos;
use osn_trace::columns::code;
use osn_trace::{Event, EventColumns, EventKind, Trace};

use serde::{Deserialize, Serialize};

/// One executed kernel activity, reconstructed from its enter/exit pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityInstance {
    pub activity: Activity,
    pub cpu: CpuId,
    /// Task context the activity ran in (the interrupted/served task;
    /// `Tid::IDLE` for the idle loop).
    pub ctx: Tid,
    pub start: Nanos,
    pub end: Nanos,
    /// Execution time excluding nested children.
    pub self_time: Nanos,
    /// Nesting depth at which this instance ran (0 = entered from user
    /// or idle context).
    pub depth: u16,
}

impl ActivityInstance {
    /// Wall-clock span including nested children.
    #[inline]
    pub fn span(&self) -> Nanos {
        self.end - self.start
    }
}

/// Problems found while reconstructing (tolerated, but reported).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NestingReport {
    /// Exits with no matching enter (e.g. trace started mid-activity).
    pub orphan_exits: u64,
    /// Enters never closed (trace ended mid-activity).
    pub unclosed_enters: u64,
    /// Exits whose activity did not match the innermost open enter.
    pub mismatched_exits: u64,
}

impl NestingReport {
    pub fn is_clean(&self) -> bool {
        self.orphan_exits == 0 && self.unclosed_enters == 0 && self.mismatched_exits == 0
    }
}

struct OpenFrame {
    activity: Activity,
    ctx: Tid,
    start: Nanos,
    /// Accumulated self time before the last suspension.
    self_acc: Nanos,
    /// When this frame last (re)gained the CPU.
    resumed: Nanos,
    depth: u16,
}

/// Sentinel `end` of an instance slot whose frame is still open (or was
/// dropped by a mismatched exit / never closed). Far beyond any real
/// trace timestamp.
const PENDING: Nanos = Nanos(u64::MAX);

/// An open frame whose instance slot already sits in the output vector.
struct OpenSlot {
    /// Index of the placeholder in `out`.
    idx: usize,
    activity: Activity,
    /// Accumulated self time before the last suspension.
    self_acc: Nanos,
    /// When this frame last (re)gained the CPU.
    resumed: Nanos,
}

/// The enter/exit pairing state machine for one CPU's stream, as a
/// resumable value: feed it events — typed, or straight out of
/// columnar chunk blocks — in stream order, then [`finish`] it.
///
/// Instances are emitted in frame-*open* order with their `end` and
/// `self_time` filled in at close, which leaves the shard sorted by
/// `start` (event times are nondecreasing). Within an equal-`start` run
/// the reference order is descending `end` with ties in close order
/// (its stable sort over close-order emission); open order can differ
/// there — e.g. a zero-width frame opening before a longer sibling at
/// the same timestamp — so `fix_equal_start_runs` re-sorts those runs
/// at [`finish`] using the recorded close sequence. No full per-shard
/// sort is needed.
///
/// Being resumable is what lets the out-of-core path decode one chunk
/// at a time into a reused [`EventColumns`] block and keep pairing
/// across chunk boundaries without materializing the CPU's stream.
///
/// [`finish`]: ColumnPairing::finish
#[derive(Default)]
pub struct ColumnPairing {
    out: Vec<ActivityInstance>,
    /// Close sequence per emitted slot, index-aligned with `out`;
    /// unclosed/dropped slots keep `u32::MAX`.
    close_seq: Vec<u32>,
    stack: Vec<OpenSlot>,
    next_seq: u32,
    dropped: usize,
    report: NestingReport,
}

impl ColumnPairing {
    pub fn new() -> ColumnPairing {
        ColumnPairing::default()
    }

    /// Instances closed so far (monotone; cheap progress probe).
    #[inline]
    pub fn closed(&self) -> usize {
        self.next_seq as usize
    }

    #[inline]
    fn on_enter(&mut self, t: Nanos, cpu: CpuId, ctx: Tid, activity: Activity) {
        // Suspend the currently running frame, if any.
        if let Some(top) = self.stack.last_mut() {
            top.self_acc += t - top.resumed;
        }
        let depth = self.stack.len() as u16;
        self.stack.push(OpenSlot {
            idx: self.out.len(),
            activity,
            self_acc: Nanos::ZERO,
            resumed: t,
        });
        self.out.push(ActivityInstance {
            activity,
            cpu,
            ctx,
            start: t,
            end: PENDING,
            self_time: Nanos::ZERO,
            depth,
        });
        self.close_seq.push(u32::MAX);
    }

    #[inline]
    fn on_exit(&mut self, t: Nanos, activity: Activity) {
        match self.stack.last() {
            None => {
                self.report.orphan_exits += 1;
            }
            Some(top) if top.activity != activity => {
                self.report.mismatched_exits += 1;
                // Drop the unmatched frame to resynchronize; its
                // placeholder stays PENDING and is compacted out at
                // finish.
                self.stack.pop();
                self.dropped += 1;
                if let Some(parent) = self.stack.last_mut() {
                    parent.resumed = t;
                }
            }
            Some(_) => {
                let frame = self.stack.pop().expect("checked non-empty");
                let slot = &mut self.out[frame.idx];
                slot.end = t;
                slot.self_time = frame.self_acc + (t - frame.resumed);
                self.close_seq[frame.idx] = self.next_seq;
                self.next_seq += 1;
                if let Some(parent) = self.stack.last_mut() {
                    parent.resumed = t;
                }
            }
        }
    }

    /// Feed one columnar block (this CPU's next records, in stream
    /// order). The hot loop touches only the `code`, `t`, `tid` and
    /// `a` columns — no [`Event`] is materialized — and falls straight
    /// through for the scheduler/app records pairing ignores.
    pub fn feed_columns(&mut self, cols: &EventColumns) {
        let cpu = cols.cpu;
        // Lockstep zip over the four columns elides the bounds checks a
        // shared index would re-pay per column.
        for (((&c, &t), &tid), &a) in cols
            .code
            .iter()
            .zip(cols.t.iter())
            .zip(cols.tid.iter())
            .zip(cols.a.iter())
        {
            if c == code::ENTER {
                let activity = Activity::from_code(a as u16)
                    .expect("column records are validated on construction");
                self.on_enter(Nanos(t), cpu, Tid(tid), activity);
            } else if c == code::EXIT {
                let activity = Activity::from_code(a as u16)
                    .expect("column records are validated on construction");
                self.on_exit(Nanos(t), activity);
            }
        }
    }

    /// Feed typed events (the fallback for sources without columns).
    pub fn feed_events(&mut self, events: impl Iterator<Item = Event>) {
        for event in events {
            let Event { t, cpu, tid, kind } = event;
            match kind {
                EventKind::KernelEnter(activity) => self.on_enter(t, cpu, tid, activity),
                EventKind::KernelExit(activity) => self.on_exit(t, activity),
                _ => {}
            }
        }
    }

    /// Account unclosed frames, compact dropped placeholders, restore
    /// the reference order within equal-`start` runs, and return the
    /// shard.
    pub fn finish(mut self) -> (Vec<ActivityInstance>, NestingReport) {
        self.report.unclosed_enters += self.stack.len() as u64;
        self.dropped += self.stack.len();
        if self.dropped > 0 {
            // Compact out the PENDING placeholders, keeping
            // `close_seq` aligned.
            let mut w = 0;
            for r in 0..self.out.len() {
                if self.out[r].end != PENDING {
                    self.out[w] = self.out[r];
                    self.close_seq[w] = self.close_seq[r];
                    w += 1;
                }
            }
            self.out.truncate(w);
            self.close_seq.truncate(w);
        }
        fix_equal_start_runs(&mut self.out, &self.close_seq);
        (self.out, self.report)
    }
}

/// Re-sort every maximal run of instances sharing a `start` into the
/// reference order: descending `end`, ties in close order. Such runs
/// are rare and short (frames opened at the very same nanosecond), so
/// the per-run scratch allocation is negligible.
fn fix_equal_start_runs(v: &mut [ActivityInstance], close_seq: &[u32]) {
    let mut i = 0;
    while i < v.len() {
        let mut j = i + 1;
        while j < v.len() && v[j].start == v[i].start {
            j += 1;
        }
        if j - i > 1 {
            let run = &mut v[i..j];
            let seq = &close_seq[i..j];
            let mut order: Vec<usize> = (0..run.len()).collect();
            order.sort_unstable_by_key(|&k| (std::cmp::Reverse(run[k].end), seq[k]));
            let sorted: Vec<ActivityInstance> = order.iter().map(|&k| run[k]).collect();
            run.copy_from_slice(&sorted);
        }
        i = j;
    }
}

/// Reconstruct all activity instances from a trace, sharded by CPU.
///
/// Per-CPU stacks are fully independent, so each CPU's stream runs on
/// its own host thread (bounded by `available_parallelism()`); the
/// per-CPU instance lists are then k-way merged. Output is bit-identical
/// to [`reconstruct_reference`]: instances sorted by
/// `(start, cpu, Reverse(end))` — a *parent* sorts before its children —
/// plus a report of stream anomalies summed over CPUs.
pub fn reconstruct(trace: &Trace) -> (Vec<ActivityInstance>, NestingReport) {
    reconstruct_sharded(trace, crate::par::default_workers(trace.ncpus()))
}

/// [`reconstruct`] with an explicit worker budget.
pub fn reconstruct_sharded(
    trace: &Trace,
    workers: usize,
) -> (Vec<ActivityInstance>, NestingReport) {
    let ncpus = trace.ncpus();
    let shards = crate::par::parallel_map(ncpus, workers, |cpu| {
        let mut pairing = ColumnPairing::new();
        match trace.cpu_columns(CpuId(cpu as u16)) {
            Some(cols) => pairing.feed_columns(cols),
            None => pairing.feed_events(trace.cpu_events(CpuId(cpu as u16)).copied()),
        }
        pairing.finish()
    });
    merge_shards(shards)
}

/// Out-of-core variant of [`reconstruct_sharded`]: run the pairing
/// state machine over externally supplied per-CPU event streams (one
/// per CPU, in CPU order — e.g. `osn-store` chunk cursors), without a
/// materialized [`Trace`]. Memory is bounded by whatever the streams
/// buffer plus the instances themselves; the result is bit-identical
/// to the in-memory path on the same events.
pub fn reconstruct_streams<I>(
    streams: Vec<I>,
    workers: usize,
) -> (Vec<ActivityInstance>, NestingReport)
where
    I: Iterator<Item = Event> + Send,
{
    let n = streams.len();
    // parallel_map hands out indexes, not items: park each stream in a
    // Mutex slot its worker takes exactly once.
    let slots: Vec<std::sync::Mutex<Option<I>>> = streams
        .into_iter()
        .map(|s| std::sync::Mutex::new(Some(s)))
        .collect();
    let shards = crate::par::parallel_map(n, workers, |i| {
        let stream = slots[i]
            .lock()
            .expect("stream slot poisoned")
            .take()
            .expect("stream taken twice");
        let mut pairing = ColumnPairing::new();
        pairing.feed_events(stream);
        pairing.finish()
    });
    merge_shards(shards)
}

/// K-way merge of per-CPU shards by (start, cpu), summing the reports.
/// Keys never tie across shards (the cpu differs), so heap order plus
/// per-shard FIFO reproduces the reference stable sort exactly.
///
/// Public so out-of-core drivers (`osn-core`'s store path) can pair
/// per-CPU chunk cursors themselves and still get the reference global
/// order.
pub fn merge_shards(
    shards: Vec<(Vec<ActivityInstance>, NestingReport)>,
) -> (Vec<ActivityInstance>, NestingReport) {
    let mut report = NestingReport::default();
    for (_, r) in &shards {
        report.orphan_exits += r.orphan_exits;
        report.unclosed_enters += r.unclosed_enters;
        report.mismatched_exits += r.mismatched_exits;
    }

    let total: usize = shards.iter().map(|(v, _)| v.len()).sum();
    let mut out = Vec::with_capacity(total);
    // Shard count is the CPU count — single digits — so a linear scan
    // over the head keys beats a binary heap: no sift traffic, and the
    // branch on `<` is predictable. Heads are cached in a small array
    // so the scan never touches the shard vectors except to refill.
    // Exhausted shards park at a key above every real one (`cpu` breaks
    // ties among them, so the sentinel never collides with a live key).
    const DONE: (Nanos, u16) = (Nanos(u64::MAX), u16::MAX);
    let mut cursors = vec![0usize; shards.len()];
    let mut heads: Vec<(Nanos, u16)> = shards
        .iter()
        .map(|(shard, _)| shard.first().map_or(DONE, |f| (f.start, f.cpu.0)))
        .collect();
    for _ in 0..total {
        let mut best = 0usize;
        for i in 1..heads.len() {
            if heads[i] < heads[best] {
                best = i;
            }
        }
        let shard = &shards[best].0;
        let cur = cursors[best];
        out.push(shard[cur]);
        cursors[best] = cur + 1;
        heads[best] = shard.get(cur + 1).map_or(DONE, |n| (n.start, n.cpu.0));
    }
    (out, report)
}

/// The retained sequential reference path (the pre-sharding
/// implementation): one global walk over all events with per-CPU
/// stacks, then a global sort. Kept as the differential-test oracle and
/// the benchmark baseline.
pub fn reconstruct_reference(trace: &Trace) -> (Vec<ActivityInstance>, NestingReport) {
    let ncpus = trace
        .events
        .iter()
        .map(|e| e.cpu.0 as usize + 1)
        .max()
        .unwrap_or(0);
    let mut stacks: Vec<Vec<OpenFrame>> = (0..ncpus).map(|_| Vec::new()).collect();
    let mut out = Vec::new();
    let mut report = NestingReport::default();

    for event in &trace.events {
        let Event { t, cpu, tid, kind } = *event;
        let stack = &mut stacks[cpu.0 as usize];
        match kind {
            EventKind::KernelEnter(activity) => {
                if let Some(top) = stack.last_mut() {
                    top.self_acc += t - top.resumed;
                }
                let depth = stack.len() as u16;
                stack.push(OpenFrame {
                    activity,
                    ctx: tid,
                    start: t,
                    self_acc: Nanos::ZERO,
                    resumed: t,
                    depth,
                });
            }
            EventKind::KernelExit(activity) => match stack.last() {
                None => {
                    report.orphan_exits += 1;
                }
                Some(top) if top.activity != activity => {
                    report.mismatched_exits += 1;
                    stack.pop();
                    if let Some(parent) = stack.last_mut() {
                        parent.resumed = t;
                    }
                }
                Some(_) => {
                    let frame = stack.pop().expect("checked non-empty");
                    let self_time = frame.self_acc + (t - frame.resumed);
                    out.push(ActivityInstance {
                        activity: frame.activity,
                        cpu,
                        ctx: frame.ctx,
                        start: frame.start,
                        end: t,
                        self_time,
                        depth: frame.depth,
                    });
                    if let Some(parent) = stack.last_mut() {
                        parent.resumed = t;
                    }
                }
            },
            _ => {}
        }
    }

    for stack in &stacks {
        report.unclosed_enters += stack.len() as u64;
    }
    out.sort_by_key(|i| (i.start, i.cpu.0, std::cmp::Reverse(i.end)));
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_kernel::activity::SoftirqVec;

    fn enter(t: u64, cpu: u16, tid: u32, a: Activity) -> Event {
        Event {
            t: Nanos(t),
            cpu: CpuId(cpu),
            tid: Tid(tid),
            kind: EventKind::KernelEnter(a),
        }
    }
    fn exit(t: u64, cpu: u16, tid: u32, a: Activity) -> Event {
        Event {
            t: Nanos(t),
            cpu: CpuId(cpu),
            tid: Tid(tid),
            kind: EventKind::KernelExit(a),
        }
    }

    const TIMER: Activity = Activity::TimerInterrupt;
    const SOFTIRQ: Activity = Activity::Softirq(SoftirqVec::Timer);

    #[test]
    fn simple_pair() {
        let trace = Trace::new(vec![enter(10, 0, 1, TIMER), exit(15, 0, 1, TIMER)], vec![]);
        let (instances, report) = reconstruct(&trace);
        assert!(report.is_clean());
        assert_eq!(instances.len(), 1);
        let i = instances[0];
        assert_eq!(i.activity, TIMER);
        assert_eq!(i.start, Nanos(10));
        assert_eq!(i.end, Nanos(15));
        assert_eq!(i.self_time, Nanos(5));
        assert_eq!(i.span(), Nanos(5));
        assert_eq!(i.depth, 0);
        assert_eq!(i.ctx, Tid(1));
    }

    #[test]
    fn nested_self_time_excludes_children() {
        // Softirq [10, 40) interrupted by a timer irq [20, 28):
        // softirq self = 30 - 8 = 22; timer self = 8.
        let trace = Trace::new(
            vec![
                enter(10, 0, 1, SOFTIRQ),
                enter(20, 0, 1, TIMER),
                exit(28, 0, 1, TIMER),
                exit(40, 0, 1, SOFTIRQ),
            ],
            vec![],
        );
        let (instances, report) = reconstruct(&trace);
        assert!(report.is_clean());
        assert_eq!(instances.len(), 2);
        // Sorted by start: softirq (parent) first.
        assert_eq!(instances[0].activity, SOFTIRQ);
        assert_eq!(instances[0].self_time, Nanos(22));
        assert_eq!(instances[0].span(), Nanos(30));
        assert_eq!(instances[0].depth, 0);
        assert_eq!(instances[1].activity, TIMER);
        assert_eq!(instances[1].self_time, Nanos(8));
        assert_eq!(instances[1].depth, 1);
        // Additivity: self times sum to the root's span.
        let total: Nanos = instances.iter().map(|i| i.self_time).sum();
        assert_eq!(total, instances[0].span());
    }

    #[test]
    fn triple_nesting() {
        let fault = Activity::PageFault(osn_kernel::activity::FaultKind::AnonZero);
        let trace = Trace::new(
            vec![
                enter(0, 0, 1, fault),
                enter(10, 0, 1, SOFTIRQ),
                enter(12, 0, 1, TIMER),
                exit(16, 0, 1, TIMER),
                exit(20, 0, 1, SOFTIRQ),
                exit(30, 0, 1, fault),
            ],
            vec![],
        );
        let (instances, report) = reconstruct(&trace);
        assert!(report.is_clean());
        assert_eq!(instances.len(), 3);
        let by_act = |a: Activity| instances.iter().find(|i| i.activity == a).unwrap();
        assert_eq!(by_act(fault).self_time, Nanos(20));
        assert_eq!(by_act(SOFTIRQ).self_time, Nanos(6));
        assert_eq!(by_act(TIMER).self_time, Nanos(4));
        assert_eq!(by_act(fault).depth, 0);
        assert_eq!(by_act(SOFTIRQ).depth, 1);
        assert_eq!(by_act(TIMER).depth, 2);
    }

    #[test]
    fn per_cpu_streams_are_independent() {
        let trace = Trace::new(
            vec![
                enter(10, 0, 1, TIMER),
                enter(11, 1, 2, SOFTIRQ),
                exit(14, 1, 2, SOFTIRQ),
                exit(15, 0, 1, TIMER),
            ],
            vec![],
        );
        let (instances, report) = reconstruct(&trace);
        assert!(report.is_clean());
        assert_eq!(instances.len(), 2);
        // No cross-CPU nesting: both at depth 0.
        assert!(instances.iter().all(|i| i.depth == 0));
    }

    #[test]
    fn orphan_exit_reported() {
        let trace = Trace::new(vec![exit(5, 0, 1, TIMER)], vec![]);
        let (instances, report) = reconstruct(&trace);
        assert!(instances.is_empty());
        assert_eq!(report.orphan_exits, 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn unclosed_enter_reported() {
        let trace = Trace::new(vec![enter(5, 0, 1, TIMER)], vec![]);
        let (instances, report) = reconstruct(&trace);
        assert!(instances.is_empty());
        assert_eq!(report.unclosed_enters, 1);
    }

    #[test]
    fn mismatched_exit_resynchronizes() {
        let trace = Trace::new(
            vec![
                enter(0, 0, 1, TIMER),
                exit(5, 0, 1, SOFTIRQ), // wrong activity
                enter(10, 0, 1, TIMER),
                exit(15, 0, 1, TIMER),
            ],
            vec![],
        );
        let (instances, report) = reconstruct(&trace);
        assert_eq!(report.mismatched_exits, 1);
        // The later well-formed pair still reconstructs.
        assert_eq!(instances.len(), 1);
        assert_eq!(instances[0].start, Nanos(10));
    }

    #[test]
    fn zero_duration_activity() {
        let trace = Trace::new(vec![enter(7, 0, 1, TIMER), exit(7, 0, 1, TIMER)], vec![]);
        let (instances, report) = reconstruct(&trace);
        assert!(report.is_clean());
        assert_eq!(instances[0].self_time, Nanos(0));
    }

    #[test]
    fn non_kernel_events_ignored() {
        let trace = Trace::new(
            vec![
                enter(1, 0, 1, TIMER),
                Event {
                    t: Nanos(2),
                    cpu: CpuId(0),
                    tid: Tid(1),
                    kind: EventKind::AppMark { mark: 0, value: 0 },
                },
                exit(3, 0, 1, TIMER),
            ],
            vec![],
        );
        let (instances, report) = reconstruct(&trace);
        assert!(report.is_clean());
        assert_eq!(instances.len(), 1);
        assert_eq!(instances[0].self_time, Nanos(2));
    }
}
