//! Reconstruction of kernel-activity intervals from the raw event
//! stream, with correct handling of *nested* events.
//!
//! The paper: "We took particular care of nested events, i.e., events
//! that happen while the OS is already performing other activities. For
//! example, the local timer may raise an interrupt while the kernel is
//! performing a tasklet. Handling nested events is particularly
//! important for obtaining correct statistics."
//!
//! Each `KernelEnter`/`KernelExit` pair becomes an [`ActivityInstance`]
//! whose `self_time` excludes the time spent in activities nested inside
//! it — so per-activity duration statistics are additive: the self times
//! of a nest tree sum exactly to the root's wall span.

use osn_kernel::activity::Activity;
use osn_kernel::ids::{CpuId, Tid};
use osn_kernel::time::Nanos;
use osn_trace::{Event, EventKind, Trace};

use serde::{Deserialize, Serialize};

/// One executed kernel activity, reconstructed from its enter/exit pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityInstance {
    pub activity: Activity,
    pub cpu: CpuId,
    /// Task context the activity ran in (the interrupted/served task;
    /// `Tid::IDLE` for the idle loop).
    pub ctx: Tid,
    pub start: Nanos,
    pub end: Nanos,
    /// Execution time excluding nested children.
    pub self_time: Nanos,
    /// Nesting depth at which this instance ran (0 = entered from user
    /// or idle context).
    pub depth: u16,
}

impl ActivityInstance {
    /// Wall-clock span including nested children.
    #[inline]
    pub fn span(&self) -> Nanos {
        self.end - self.start
    }
}

/// Problems found while reconstructing (tolerated, but reported).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NestingReport {
    /// Exits with no matching enter (e.g. trace started mid-activity).
    pub orphan_exits: u64,
    /// Enters never closed (trace ended mid-activity).
    pub unclosed_enters: u64,
    /// Exits whose activity did not match the innermost open enter.
    pub mismatched_exits: u64,
}

impl NestingReport {
    pub fn is_clean(&self) -> bool {
        self.orphan_exits == 0 && self.unclosed_enters == 0 && self.mismatched_exits == 0
    }
}

struct OpenFrame {
    activity: Activity,
    ctx: Tid,
    start: Nanos,
    /// Accumulated self time before the last suspension.
    self_acc: Nanos,
    /// When this frame last (re)gained the CPU.
    resumed: Nanos,
    depth: u16,
}

/// Reconstruct all activity instances from a trace.
///
/// Returns instances sorted by `(start, cpu)` — note a *parent* sorts
/// before its children — plus a report of stream anomalies.
pub fn reconstruct(trace: &Trace) -> (Vec<ActivityInstance>, NestingReport) {
    let ncpus = trace
        .events
        .iter()
        .map(|e| e.cpu.0 as usize + 1)
        .max()
        .unwrap_or(0);
    let mut stacks: Vec<Vec<OpenFrame>> = (0..ncpus).map(|_| Vec::new()).collect();
    let mut out = Vec::new();
    let mut report = NestingReport::default();

    for event in &trace.events {
        let Event { t, cpu, tid, kind } = *event;
        let stack = &mut stacks[cpu.0 as usize];
        match kind {
            EventKind::KernelEnter(activity) => {
                // Suspend the currently running frame, if any.
                if let Some(top) = stack.last_mut() {
                    top.self_acc += t - top.resumed;
                }
                let depth = stack.len() as u16;
                stack.push(OpenFrame {
                    activity,
                    ctx: tid,
                    start: t,
                    self_acc: Nanos::ZERO,
                    resumed: t,
                    depth,
                });
            }
            EventKind::KernelExit(activity) => {
                match stack.last() {
                    None => {
                        report.orphan_exits += 1;
                    }
                    Some(top) if top.activity != activity => {
                        report.mismatched_exits += 1;
                        // Drop the unmatched frame to resynchronize.
                        stack.pop();
                        if let Some(parent) = stack.last_mut() {
                            parent.resumed = t;
                        }
                    }
                    Some(_) => {
                        let frame = stack.pop().expect("checked non-empty");
                        let self_time = frame.self_acc + (t - frame.resumed);
                        out.push(ActivityInstance {
                            activity: frame.activity,
                            cpu,
                            ctx: frame.ctx,
                            start: frame.start,
                            end: t,
                            self_time,
                            depth: frame.depth,
                        });
                        if let Some(parent) = stack.last_mut() {
                            parent.resumed = t;
                        }
                    }
                }
            }
            _ => {}
        }
    }

    for stack in &stacks {
        report.unclosed_enters += stack.len() as u64;
    }
    out.sort_by_key(|i| (i.start, i.cpu.0, std::cmp::Reverse(i.end)));
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_kernel::activity::SoftirqVec;

    fn enter(t: u64, cpu: u16, tid: u32, a: Activity) -> Event {
        Event {
            t: Nanos(t),
            cpu: CpuId(cpu),
            tid: Tid(tid),
            kind: EventKind::KernelEnter(a),
        }
    }
    fn exit(t: u64, cpu: u16, tid: u32, a: Activity) -> Event {
        Event {
            t: Nanos(t),
            cpu: CpuId(cpu),
            tid: Tid(tid),
            kind: EventKind::KernelExit(a),
        }
    }

    const TIMER: Activity = Activity::TimerInterrupt;
    const SOFTIRQ: Activity = Activity::Softirq(SoftirqVec::Timer);

    #[test]
    fn simple_pair() {
        let trace = Trace::new(
            vec![enter(10, 0, 1, TIMER), exit(15, 0, 1, TIMER)],
            vec![],
        );
        let (instances, report) = reconstruct(&trace);
        assert!(report.is_clean());
        assert_eq!(instances.len(), 1);
        let i = instances[0];
        assert_eq!(i.activity, TIMER);
        assert_eq!(i.start, Nanos(10));
        assert_eq!(i.end, Nanos(15));
        assert_eq!(i.self_time, Nanos(5));
        assert_eq!(i.span(), Nanos(5));
        assert_eq!(i.depth, 0);
        assert_eq!(i.ctx, Tid(1));
    }

    #[test]
    fn nested_self_time_excludes_children() {
        // Softirq [10, 40) interrupted by a timer irq [20, 28):
        // softirq self = 30 - 8 = 22; timer self = 8.
        let trace = Trace::new(
            vec![
                enter(10, 0, 1, SOFTIRQ),
                enter(20, 0, 1, TIMER),
                exit(28, 0, 1, TIMER),
                exit(40, 0, 1, SOFTIRQ),
            ],
            vec![],
        );
        let (instances, report) = reconstruct(&trace);
        assert!(report.is_clean());
        assert_eq!(instances.len(), 2);
        // Sorted by start: softirq (parent) first.
        assert_eq!(instances[0].activity, SOFTIRQ);
        assert_eq!(instances[0].self_time, Nanos(22));
        assert_eq!(instances[0].span(), Nanos(30));
        assert_eq!(instances[0].depth, 0);
        assert_eq!(instances[1].activity, TIMER);
        assert_eq!(instances[1].self_time, Nanos(8));
        assert_eq!(instances[1].depth, 1);
        // Additivity: self times sum to the root's span.
        let total: Nanos = instances.iter().map(|i| i.self_time).sum();
        assert_eq!(total, instances[0].span());
    }

    #[test]
    fn triple_nesting() {
        let fault = Activity::PageFault(osn_kernel::activity::FaultKind::AnonZero);
        let trace = Trace::new(
            vec![
                enter(0, 0, 1, fault),
                enter(10, 0, 1, SOFTIRQ),
                enter(12, 0, 1, TIMER),
                exit(16, 0, 1, TIMER),
                exit(20, 0, 1, SOFTIRQ),
                exit(30, 0, 1, fault),
            ],
            vec![],
        );
        let (instances, report) = reconstruct(&trace);
        assert!(report.is_clean());
        assert_eq!(instances.len(), 3);
        let by_act = |a: Activity| instances.iter().find(|i| i.activity == a).unwrap();
        assert_eq!(by_act(fault).self_time, Nanos(20));
        assert_eq!(by_act(SOFTIRQ).self_time, Nanos(6));
        assert_eq!(by_act(TIMER).self_time, Nanos(4));
        assert_eq!(by_act(fault).depth, 0);
        assert_eq!(by_act(SOFTIRQ).depth, 1);
        assert_eq!(by_act(TIMER).depth, 2);
    }

    #[test]
    fn per_cpu_streams_are_independent() {
        let trace = Trace::new(
            vec![
                enter(10, 0, 1, TIMER),
                enter(11, 1, 2, SOFTIRQ),
                exit(14, 1, 2, SOFTIRQ),
                exit(15, 0, 1, TIMER),
            ],
            vec![],
        );
        let (instances, report) = reconstruct(&trace);
        assert!(report.is_clean());
        assert_eq!(instances.len(), 2);
        // No cross-CPU nesting: both at depth 0.
        assert!(instances.iter().all(|i| i.depth == 0));
    }

    #[test]
    fn orphan_exit_reported() {
        let trace = Trace::new(vec![exit(5, 0, 1, TIMER)], vec![]);
        let (instances, report) = reconstruct(&trace);
        assert!(instances.is_empty());
        assert_eq!(report.orphan_exits, 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn unclosed_enter_reported() {
        let trace = Trace::new(vec![enter(5, 0, 1, TIMER)], vec![]);
        let (instances, report) = reconstruct(&trace);
        assert!(instances.is_empty());
        assert_eq!(report.unclosed_enters, 1);
    }

    #[test]
    fn mismatched_exit_resynchronizes() {
        let trace = Trace::new(
            vec![
                enter(0, 0, 1, TIMER),
                exit(5, 0, 1, SOFTIRQ), // wrong activity
                enter(10, 0, 1, TIMER),
                exit(15, 0, 1, TIMER),
            ],
            vec![],
        );
        let (instances, report) = reconstruct(&trace);
        assert_eq!(report.mismatched_exits, 1);
        // The later well-formed pair still reconstructs.
        assert_eq!(instances.len(), 1);
        assert_eq!(instances[0].start, Nanos(10));
    }

    #[test]
    fn zero_duration_activity() {
        let trace = Trace::new(
            vec![enter(7, 0, 1, TIMER), exit(7, 0, 1, TIMER)],
            vec![],
        );
        let (instances, report) = reconstruct(&trace);
        assert!(report.is_clean());
        assert_eq!(instances[0].self_time, Nanos(0));
    }

    #[test]
    fn non_kernel_events_ignored() {
        let trace = Trace::new(
            vec![
                enter(1, 0, 1, TIMER),
                Event {
                    t: Nanos(2),
                    cpu: CpuId(0),
                    tid: Tid(1),
                    kind: EventKind::AppMark { mark: 0, value: 0 },
                },
                exit(3, 0, 1, TIMER),
            ],
            vec![],
        );
        let (instances, report) = reconstruct(&trace);
        assert!(report.is_clean());
        assert_eq!(instances.len(), 1);
        assert_eq!(instances[0].self_time, Nanos(2));
    }
}
