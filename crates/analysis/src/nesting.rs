//! Reconstruction of kernel-activity intervals from the raw event
//! stream, with correct handling of *nested* events.
//!
//! The paper: "We took particular care of nested events, i.e., events
//! that happen while the OS is already performing other activities. For
//! example, the local timer may raise an interrupt while the kernel is
//! performing a tasklet. Handling nested events is particularly
//! important for obtaining correct statistics."
//!
//! Each `KernelEnter`/`KernelExit` pair becomes an [`ActivityInstance`]
//! whose `self_time` excludes the time spent in activities nested inside
//! it — so per-activity duration statistics are additive: the self times
//! of a nest tree sum exactly to the root's wall span.

use osn_kernel::activity::Activity;
use osn_kernel::ids::{CpuId, Tid};
use osn_kernel::time::Nanos;
use osn_trace::{Event, EventKind, Trace};

use serde::{Deserialize, Serialize};

/// One executed kernel activity, reconstructed from its enter/exit pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityInstance {
    pub activity: Activity,
    pub cpu: CpuId,
    /// Task context the activity ran in (the interrupted/served task;
    /// `Tid::IDLE` for the idle loop).
    pub ctx: Tid,
    pub start: Nanos,
    pub end: Nanos,
    /// Execution time excluding nested children.
    pub self_time: Nanos,
    /// Nesting depth at which this instance ran (0 = entered from user
    /// or idle context).
    pub depth: u16,
}

impl ActivityInstance {
    /// Wall-clock span including nested children.
    #[inline]
    pub fn span(&self) -> Nanos {
        self.end - self.start
    }
}

/// Problems found while reconstructing (tolerated, but reported).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NestingReport {
    /// Exits with no matching enter (e.g. trace started mid-activity).
    pub orphan_exits: u64,
    /// Enters never closed (trace ended mid-activity).
    pub unclosed_enters: u64,
    /// Exits whose activity did not match the innermost open enter.
    pub mismatched_exits: u64,
}

impl NestingReport {
    pub fn is_clean(&self) -> bool {
        self.orphan_exits == 0 && self.unclosed_enters == 0 && self.mismatched_exits == 0
    }
}

struct OpenFrame {
    activity: Activity,
    ctx: Tid,
    start: Nanos,
    /// Accumulated self time before the last suspension.
    self_acc: Nanos,
    /// When this frame last (re)gained the CPU.
    resumed: Nanos,
    depth: u16,
}

/// Sentinel `end` of an instance slot whose frame is still open (or was
/// dropped by a mismatched exit / never closed). Far beyond any real
/// trace timestamp.
const PENDING: Nanos = Nanos(u64::MAX);

/// An open frame whose instance slot already sits in the output vector.
struct OpenSlot {
    /// Index of the placeholder in `out`.
    idx: usize,
    activity: Activity,
    /// Accumulated self time before the last suspension.
    self_acc: Nanos,
    /// When this frame last (re)gained the CPU.
    resumed: Nanos,
}

/// Run the enter/exit pairing state machine over one CPU's stream.
///
/// Instances are emitted in frame-*open* order with their `end` and
/// `self_time` filled in at close, which leaves the shard sorted by
/// `start` (event times are nondecreasing). Within an equal-`start` run
/// the reference order is descending `end` with ties in close order
/// (its stable sort over close-order emission); open order can differ
/// there — e.g. a zero-width frame opening before a longer sibling at
/// the same timestamp — so [`fix_equal_start_runs`] re-sorts those runs
/// using the recorded close sequence. No full per-shard sort is needed.
fn reconstruct_stream(
    events: impl Iterator<Item = Event>,
    out: &mut Vec<ActivityInstance>,
    report: &mut NestingReport,
) {
    let base = out.len();
    let mut stack: Vec<OpenSlot> = Vec::new();
    // Close sequence per emitted slot, index-aligned with `out[base..]`;
    // unclosed/dropped slots keep `u32::MAX`.
    let mut close_seq: Vec<u32> = Vec::new();
    let mut next_seq = 0u32;
    let mut dropped = 0usize;
    for event in events {
        let Event { t, cpu, tid, kind } = event;
        match kind {
            EventKind::KernelEnter(activity) => {
                // Suspend the currently running frame, if any.
                if let Some(top) = stack.last_mut() {
                    top.self_acc += t - top.resumed;
                }
                let depth = stack.len() as u16;
                stack.push(OpenSlot {
                    idx: out.len(),
                    activity,
                    self_acc: Nanos::ZERO,
                    resumed: t,
                });
                out.push(ActivityInstance {
                    activity,
                    cpu,
                    ctx: tid,
                    start: t,
                    end: PENDING,
                    self_time: Nanos::ZERO,
                    depth,
                });
                close_seq.push(u32::MAX);
            }
            EventKind::KernelExit(activity) => {
                match stack.last() {
                    None => {
                        report.orphan_exits += 1;
                    }
                    Some(top) if top.activity != activity => {
                        report.mismatched_exits += 1;
                        // Drop the unmatched frame to resynchronize;
                        // its placeholder stays PENDING and is filtered
                        // out below.
                        stack.pop();
                        dropped += 1;
                        if let Some(parent) = stack.last_mut() {
                            parent.resumed = t;
                        }
                    }
                    Some(_) => {
                        let frame = stack.pop().expect("checked non-empty");
                        let slot = &mut out[frame.idx];
                        slot.end = t;
                        slot.self_time = frame.self_acc + (t - frame.resumed);
                        close_seq[frame.idx - base] = next_seq;
                        next_seq += 1;
                        if let Some(parent) = stack.last_mut() {
                            parent.resumed = t;
                        }
                    }
                }
            }
            _ => {}
        }
    }
    report.unclosed_enters += stack.len() as u64;
    dropped += stack.len();
    if dropped > 0 {
        // Compact out the PENDING placeholders, keeping `close_seq`
        // aligned.
        let mut w = base;
        for r in base..out.len() {
            if out[r].end != PENDING {
                out[w] = out[r];
                close_seq[w - base] = close_seq[r - base];
                w += 1;
            }
        }
        out.truncate(w);
        close_seq.truncate(w - base);
    }
    fix_equal_start_runs(&mut out[base..], &close_seq);
}

/// Re-sort every maximal run of instances sharing a `start` into the
/// reference order: descending `end`, ties in close order. Such runs
/// are rare and short (frames opened at the very same nanosecond), so
/// the per-run scratch allocation is negligible.
fn fix_equal_start_runs(v: &mut [ActivityInstance], close_seq: &[u32]) {
    let mut i = 0;
    while i < v.len() {
        let mut j = i + 1;
        while j < v.len() && v[j].start == v[i].start {
            j += 1;
        }
        if j - i > 1 {
            let run = &mut v[i..j];
            let seq = &close_seq[i..j];
            let mut order: Vec<usize> = (0..run.len()).collect();
            order.sort_unstable_by_key(|&k| (std::cmp::Reverse(run[k].end), seq[k]));
            let sorted: Vec<ActivityInstance> = order.iter().map(|&k| run[k]).collect();
            run.copy_from_slice(&sorted);
        }
        i = j;
    }
}

/// Reconstruct all activity instances from a trace, sharded by CPU.
///
/// Per-CPU stacks are fully independent, so each CPU's stream runs on
/// its own host thread (bounded by `available_parallelism()`); the
/// per-CPU instance lists are then k-way merged. Output is bit-identical
/// to [`reconstruct_reference`]: instances sorted by
/// `(start, cpu, Reverse(end))` — a *parent* sorts before its children —
/// plus a report of stream anomalies summed over CPUs.
pub fn reconstruct(trace: &Trace) -> (Vec<ActivityInstance>, NestingReport) {
    reconstruct_sharded(trace, crate::par::default_workers(trace.ncpus()))
}

/// [`reconstruct`] with an explicit worker budget.
pub fn reconstruct_sharded(
    trace: &Trace,
    workers: usize,
) -> (Vec<ActivityInstance>, NestingReport) {
    let ncpus = trace.ncpus();
    let shards = crate::par::parallel_map(ncpus, workers, |cpu| {
        let mut out = Vec::new();
        let mut report = NestingReport::default();
        reconstruct_stream(
            trace.cpu_events(CpuId(cpu as u16)).copied(),
            &mut out,
            &mut report,
        );
        (out, report)
    });
    merge_shards(shards)
}

/// Out-of-core variant of [`reconstruct_sharded`]: run the pairing
/// state machine over externally supplied per-CPU event streams (one
/// per CPU, in CPU order — e.g. `osn-store` chunk cursors), without a
/// materialized [`Trace`]. Memory is bounded by whatever the streams
/// buffer plus the instances themselves; the result is bit-identical
/// to the in-memory path on the same events.
pub fn reconstruct_streams<I>(
    streams: Vec<I>,
    workers: usize,
) -> (Vec<ActivityInstance>, NestingReport)
where
    I: Iterator<Item = Event> + Send,
{
    let n = streams.len();
    // parallel_map hands out indexes, not items: park each stream in a
    // Mutex slot its worker takes exactly once.
    let slots: Vec<std::sync::Mutex<Option<I>>> = streams
        .into_iter()
        .map(|s| std::sync::Mutex::new(Some(s)))
        .collect();
    let shards = crate::par::parallel_map(n, workers, |i| {
        let stream = slots[i]
            .lock()
            .expect("stream slot poisoned")
            .take()
            .expect("stream taken twice");
        let mut out = Vec::new();
        let mut report = NestingReport::default();
        reconstruct_stream(stream, &mut out, &mut report);
        (out, report)
    });
    merge_shards(shards)
}

/// K-way merge of per-CPU shards by (start, cpu), summing the reports.
/// Keys never tie across shards (the cpu differs), so heap order plus
/// per-shard FIFO reproduces the reference stable sort exactly.
fn merge_shards(
    shards: Vec<(Vec<ActivityInstance>, NestingReport)>,
) -> (Vec<ActivityInstance>, NestingReport) {
    let mut report = NestingReport::default();
    for (_, r) in &shards {
        report.orphan_exits += r.orphan_exits;
        report.unclosed_enters += r.unclosed_enters;
        report.mismatched_exits += r.mismatched_exits;
    }

    let total: usize = shards.iter().map(|(v, _)| v.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(Nanos, u16, usize)>> =
        std::collections::BinaryHeap::with_capacity(shards.len());
    let mut cursors = vec![0usize; shards.len()];
    for (i, (shard, _)) in shards.iter().enumerate() {
        if let Some(first) = shard.first() {
            heap.push(std::cmp::Reverse((first.start, first.cpu.0, i)));
        }
    }
    while let Some(std::cmp::Reverse((_, _, i))) = heap.pop() {
        let shard = &shards[i].0;
        let cur = cursors[i];
        out.push(shard[cur]);
        cursors[i] = cur + 1;
        if let Some(next) = shard.get(cur + 1) {
            heap.push(std::cmp::Reverse((next.start, next.cpu.0, i)));
        }
    }
    (out, report)
}

/// The retained sequential reference path (the pre-sharding
/// implementation): one global walk over all events with per-CPU
/// stacks, then a global sort. Kept as the differential-test oracle and
/// the benchmark baseline.
pub fn reconstruct_reference(trace: &Trace) -> (Vec<ActivityInstance>, NestingReport) {
    let ncpus = trace
        .events
        .iter()
        .map(|e| e.cpu.0 as usize + 1)
        .max()
        .unwrap_or(0);
    let mut stacks: Vec<Vec<OpenFrame>> = (0..ncpus).map(|_| Vec::new()).collect();
    let mut out = Vec::new();
    let mut report = NestingReport::default();

    for event in &trace.events {
        let Event { t, cpu, tid, kind } = *event;
        let stack = &mut stacks[cpu.0 as usize];
        match kind {
            EventKind::KernelEnter(activity) => {
                if let Some(top) = stack.last_mut() {
                    top.self_acc += t - top.resumed;
                }
                let depth = stack.len() as u16;
                stack.push(OpenFrame {
                    activity,
                    ctx: tid,
                    start: t,
                    self_acc: Nanos::ZERO,
                    resumed: t,
                    depth,
                });
            }
            EventKind::KernelExit(activity) => match stack.last() {
                None => {
                    report.orphan_exits += 1;
                }
                Some(top) if top.activity != activity => {
                    report.mismatched_exits += 1;
                    stack.pop();
                    if let Some(parent) = stack.last_mut() {
                        parent.resumed = t;
                    }
                }
                Some(_) => {
                    let frame = stack.pop().expect("checked non-empty");
                    let self_time = frame.self_acc + (t - frame.resumed);
                    out.push(ActivityInstance {
                        activity: frame.activity,
                        cpu,
                        ctx: frame.ctx,
                        start: frame.start,
                        end: t,
                        self_time,
                        depth: frame.depth,
                    });
                    if let Some(parent) = stack.last_mut() {
                        parent.resumed = t;
                    }
                }
            },
            _ => {}
        }
    }

    for stack in &stacks {
        report.unclosed_enters += stack.len() as u64;
    }
    out.sort_by_key(|i| (i.start, i.cpu.0, std::cmp::Reverse(i.end)));
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_kernel::activity::SoftirqVec;

    fn enter(t: u64, cpu: u16, tid: u32, a: Activity) -> Event {
        Event {
            t: Nanos(t),
            cpu: CpuId(cpu),
            tid: Tid(tid),
            kind: EventKind::KernelEnter(a),
        }
    }
    fn exit(t: u64, cpu: u16, tid: u32, a: Activity) -> Event {
        Event {
            t: Nanos(t),
            cpu: CpuId(cpu),
            tid: Tid(tid),
            kind: EventKind::KernelExit(a),
        }
    }

    const TIMER: Activity = Activity::TimerInterrupt;
    const SOFTIRQ: Activity = Activity::Softirq(SoftirqVec::Timer);

    #[test]
    fn simple_pair() {
        let trace = Trace::new(vec![enter(10, 0, 1, TIMER), exit(15, 0, 1, TIMER)], vec![]);
        let (instances, report) = reconstruct(&trace);
        assert!(report.is_clean());
        assert_eq!(instances.len(), 1);
        let i = instances[0];
        assert_eq!(i.activity, TIMER);
        assert_eq!(i.start, Nanos(10));
        assert_eq!(i.end, Nanos(15));
        assert_eq!(i.self_time, Nanos(5));
        assert_eq!(i.span(), Nanos(5));
        assert_eq!(i.depth, 0);
        assert_eq!(i.ctx, Tid(1));
    }

    #[test]
    fn nested_self_time_excludes_children() {
        // Softirq [10, 40) interrupted by a timer irq [20, 28):
        // softirq self = 30 - 8 = 22; timer self = 8.
        let trace = Trace::new(
            vec![
                enter(10, 0, 1, SOFTIRQ),
                enter(20, 0, 1, TIMER),
                exit(28, 0, 1, TIMER),
                exit(40, 0, 1, SOFTIRQ),
            ],
            vec![],
        );
        let (instances, report) = reconstruct(&trace);
        assert!(report.is_clean());
        assert_eq!(instances.len(), 2);
        // Sorted by start: softirq (parent) first.
        assert_eq!(instances[0].activity, SOFTIRQ);
        assert_eq!(instances[0].self_time, Nanos(22));
        assert_eq!(instances[0].span(), Nanos(30));
        assert_eq!(instances[0].depth, 0);
        assert_eq!(instances[1].activity, TIMER);
        assert_eq!(instances[1].self_time, Nanos(8));
        assert_eq!(instances[1].depth, 1);
        // Additivity: self times sum to the root's span.
        let total: Nanos = instances.iter().map(|i| i.self_time).sum();
        assert_eq!(total, instances[0].span());
    }

    #[test]
    fn triple_nesting() {
        let fault = Activity::PageFault(osn_kernel::activity::FaultKind::AnonZero);
        let trace = Trace::new(
            vec![
                enter(0, 0, 1, fault),
                enter(10, 0, 1, SOFTIRQ),
                enter(12, 0, 1, TIMER),
                exit(16, 0, 1, TIMER),
                exit(20, 0, 1, SOFTIRQ),
                exit(30, 0, 1, fault),
            ],
            vec![],
        );
        let (instances, report) = reconstruct(&trace);
        assert!(report.is_clean());
        assert_eq!(instances.len(), 3);
        let by_act = |a: Activity| instances.iter().find(|i| i.activity == a).unwrap();
        assert_eq!(by_act(fault).self_time, Nanos(20));
        assert_eq!(by_act(SOFTIRQ).self_time, Nanos(6));
        assert_eq!(by_act(TIMER).self_time, Nanos(4));
        assert_eq!(by_act(fault).depth, 0);
        assert_eq!(by_act(SOFTIRQ).depth, 1);
        assert_eq!(by_act(TIMER).depth, 2);
    }

    #[test]
    fn per_cpu_streams_are_independent() {
        let trace = Trace::new(
            vec![
                enter(10, 0, 1, TIMER),
                enter(11, 1, 2, SOFTIRQ),
                exit(14, 1, 2, SOFTIRQ),
                exit(15, 0, 1, TIMER),
            ],
            vec![],
        );
        let (instances, report) = reconstruct(&trace);
        assert!(report.is_clean());
        assert_eq!(instances.len(), 2);
        // No cross-CPU nesting: both at depth 0.
        assert!(instances.iter().all(|i| i.depth == 0));
    }

    #[test]
    fn orphan_exit_reported() {
        let trace = Trace::new(vec![exit(5, 0, 1, TIMER)], vec![]);
        let (instances, report) = reconstruct(&trace);
        assert!(instances.is_empty());
        assert_eq!(report.orphan_exits, 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn unclosed_enter_reported() {
        let trace = Trace::new(vec![enter(5, 0, 1, TIMER)], vec![]);
        let (instances, report) = reconstruct(&trace);
        assert!(instances.is_empty());
        assert_eq!(report.unclosed_enters, 1);
    }

    #[test]
    fn mismatched_exit_resynchronizes() {
        let trace = Trace::new(
            vec![
                enter(0, 0, 1, TIMER),
                exit(5, 0, 1, SOFTIRQ), // wrong activity
                enter(10, 0, 1, TIMER),
                exit(15, 0, 1, TIMER),
            ],
            vec![],
        );
        let (instances, report) = reconstruct(&trace);
        assert_eq!(report.mismatched_exits, 1);
        // The later well-formed pair still reconstructs.
        assert_eq!(instances.len(), 1);
        assert_eq!(instances[0].start, Nanos(10));
    }

    #[test]
    fn zero_duration_activity() {
        let trace = Trace::new(vec![enter(7, 0, 1, TIMER), exit(7, 0, 1, TIMER)], vec![]);
        let (instances, report) = reconstruct(&trace);
        assert!(report.is_clean());
        assert_eq!(instances[0].self_time, Nanos(0));
    }

    #[test]
    fn non_kernel_events_ignored() {
        let trace = Trace::new(
            vec![
                enter(1, 0, 1, TIMER),
                Event {
                    t: Nanos(2),
                    cpu: CpuId(0),
                    tid: Tid(1),
                    kind: EventKind::AppMark { mark: 0, value: 0 },
                },
                exit(3, 0, 1, TIMER),
            ],
            vec![],
        );
        let (instances, report) = reconstruct(&trace);
        assert!(report.is_clean());
        assert_eq!(instances.len(), 1);
        assert_eq!(instances[0].self_time, Nanos(2));
    }
}
