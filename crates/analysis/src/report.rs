//! Textual per-task noise reports: the human-readable summary the CLI
//! and examples print, built entirely from analysis products.

use std::fmt::Write as _;

use osn_kernel::activity::NoiseCategory;
use osn_kernel::ids::Tid;
use osn_kernel::task::TaskMeta;
use osn_kernel::time::Nanos;

use crate::chart::NoiseChart;
use crate::noise::NoiseAnalysis;
use crate::stats::{class_stats, EventClass};

/// Render a full report for one task.
pub fn task_report(analysis: &NoiseAnalysis, meta: &TaskMeta) -> String {
    let mut out = String::new();
    let Some(tn) = analysis.tasks.get(&meta.tid) else {
        let _ = writeln!(
            out,
            "{} ({}): not analyzed (not an application task)",
            meta.name, meta.tid
        );
        return out;
    };
    let _ = writeln!(
        out,
        "{} ({}): {} interruptions, {} total noise over {} runnable ({:.4}%)",
        meta.name,
        meta.tid,
        tn.interruptions.len(),
        tn.total_noise(),
        tn.runnable_time,
        100.0 * tn.total_noise().as_nanos() as f64 / tn.runnable_time.as_nanos().max(1) as f64,
    );

    let _ = writeln!(out, "  by category:");
    let cats = tn.by_category();
    for cat in NoiseCategory::NOISE {
        let d = cats.get(&cat).copied().unwrap_or(Nanos::ZERO);
        if d.is_zero() {
            continue;
        }
        let _ = writeln!(
            out,
            "    {:<12} {:>12}  ({:>5.1}%)",
            cat.name(),
            d.to_string(),
            100.0 * d.as_nanos() as f64 / tn.total_noise().as_nanos().max(1) as f64
        );
    }

    let _ = writeln!(out, "  by event class (freq over own wall time):");
    for class in EventClass::ALL {
        let s = class_stats(analysis, &[meta.tid], class);
        if s.count == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "    {:<24} {:>8.0}/s avg {:>10} max {:>12}",
            class.name(),
            s.freq_per_sec,
            s.avg.to_string(),
            s.max.to_string()
        );
    }

    let chart = NoiseChart::build(analysis, meta.tid);
    let _ = writeln!(out, "  largest interruptions:");
    for p in chart.top(3) {
        let _ = writeln!(out, "    t={} noise={} :", p.t, p.noise);
        for (c, d) in p.components.iter().take(4) {
            let _ = writeln!(out, "      {c:?} = {d}");
        }
    }
    out
}

/// Render reports for a set of tasks (e.g. a job's ranks).
pub fn job_report(analysis: &NoiseAnalysis, tasks: &[TaskMeta], tids: &[Tid]) -> String {
    let mut out = String::new();
    for tid in tids {
        if let Some(meta) = tasks.iter().find(|m| m.tid == *tid) {
            out.push_str(&task_report(analysis, meta));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_kernel::activity::Activity;
    use osn_kernel::hooks::SwitchState;
    use osn_kernel::ids::CpuId;
    use osn_trace::{Event, EventKind, Trace};

    fn fixture() -> (NoiseAnalysis, Vec<TaskMeta>) {
        let ev = |t: u64, kind: EventKind| Event {
            t: Nanos(t),
            cpu: CpuId(0),
            tid: Tid(1),
            kind,
        };
        let events = vec![
            ev(
                0,
                EventKind::SchedSwitch {
                    prev: Tid(0),
                    prev_state: SwitchState::Preempted,
                    next: Tid(1),
                },
            ),
            ev(100, EventKind::KernelEnter(Activity::TimerInterrupt)),
            ev(2_278, EventKind::KernelExit(Activity::TimerInterrupt)),
        ];
        let tasks = vec![
            TaskMeta {
                tid: Tid(1),
                name: "app.0".into(),
                kind: "app".into(),
                job: None,
                rank: 0,
                user_time: Nanos::ZERO,
                faults: 0,
            },
            TaskMeta {
                tid: Tid(2),
                name: "rpciod".into(),
                kind: "rpciod".into(),
                job: None,
                rank: 0,
                user_time: Nanos::ZERO,
                faults: 0,
            },
        ];
        let trace = Trace::new(events, vec![]);
        let analysis = NoiseAnalysis::analyze(&trace, &tasks, Nanos::SEC);
        (analysis, tasks)
    }

    #[test]
    fn task_report_contains_the_essentials() {
        let (analysis, tasks) = fixture();
        let text = task_report(&analysis, &tasks[0]);
        assert!(text.contains("app.0"));
        assert!(text.contains("periodic"));
        assert!(text.contains("timer_interrupt"));
        assert!(text.contains("largest interruptions"));
        assert!(text.contains("2.178us"), "{text}");
    }

    #[test]
    fn non_app_task_reports_gracefully() {
        let (analysis, tasks) = fixture();
        let text = task_report(&analysis, &tasks[1]);
        assert!(text.contains("not analyzed"));
    }

    #[test]
    fn job_report_concatenates() {
        let (analysis, tasks) = fixture();
        let text = job_report(&analysis, &tasks, &[Tid(1), Tid(2)]);
        assert!(text.contains("app.0"));
        assert!(text.contains("rpciod"));
    }
}
