//! OS-noise breakdown by category (the paper's Fig 3): for each
//! application, the share of total noise attributable to *periodic*,
//! *page fault*, *scheduling*, *preemption*, and *I/O* activity.

use osn_kernel::activity::NoiseCategory;
use osn_kernel::ids::Tid;
use osn_kernel::time::Nanos;

use serde::{Deserialize, Serialize};

use crate::noise::NoiseAnalysis;

/// Noise totals and fractions for one application (job).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Breakdown {
    /// `(category, total)` in the canonical category order.
    pub totals: Vec<(NoiseCategory, Nanos)>,
    pub total_noise: Nanos,
    /// Total runnable time of the tasks analyzed (for noise ratio).
    pub runnable_time: Nanos,
}

impl Breakdown {
    /// Compute over a set of tasks (the ranks of one job).
    pub fn compute(analysis: &NoiseAnalysis, tids: &[Tid]) -> Breakdown {
        let mut totals: Vec<(NoiseCategory, Nanos)> = NoiseCategory::NOISE
            .iter()
            .map(|c| (*c, Nanos::ZERO))
            .collect();
        let mut runnable_time = Nanos::ZERO;
        for tid in tids {
            let Some(tn) = analysis.tasks.get(tid) else {
                continue;
            };
            runnable_time += tn.runnable_time;
            for (cat, d) in tn.by_category() {
                if let Some(slot) = totals.iter_mut().find(|(c, _)| *c == cat) {
                    slot.1 += d;
                }
            }
        }
        let total_noise = totals.iter().map(|(_, d)| *d).sum();
        Breakdown {
            totals,
            total_noise,
            runnable_time,
        }
    }

    /// Fraction of total noise in the given category (0 when no noise).
    pub fn fraction(&self, cat: NoiseCategory) -> f64 {
        if self.total_noise.is_zero() {
            return 0.0;
        }
        let t = self
            .totals
            .iter()
            .find(|(c, _)| *c == cat)
            .map(|(_, d)| *d)
            .unwrap_or(Nanos::ZERO);
        t.as_nanos() as f64 / self.total_noise.as_nanos() as f64
    }

    /// Noise as a fraction of runnable time (overall jitter level).
    pub fn noise_ratio(&self) -> f64 {
        if self.runnable_time.is_zero() {
            return 0.0;
        }
        self.total_noise.as_nanos() as f64 / self.runnable_time.as_nanos() as f64
    }

    /// The dominant category.
    pub fn dominant(&self) -> Option<NoiseCategory> {
        self.totals
            .iter()
            .max_by_key(|(_, d)| *d)
            .filter(|(_, d)| !d.is_zero())
            .map(|(c, _)| *c)
    }

    /// Fractions must sum to 1 (within float error) when any noise
    /// exists; exposed for property tests.
    pub fn fractions(&self) -> Vec<(NoiseCategory, f64)> {
        NoiseCategory::NOISE
            .iter()
            .map(|c| (*c, self.fraction(*c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_kernel::activity::Activity;
    use osn_kernel::hooks::SwitchState;
    use osn_kernel::ids::CpuId;
    use osn_kernel::task::TaskMeta;
    use osn_trace::{Event, EventKind, Trace};

    fn meta(tid: u32) -> TaskMeta {
        TaskMeta {
            tid: Tid(tid),
            name: format!("t{tid}"),
            kind: "app".into(),
            job: None,
            rank: 0,
            user_time: Nanos::ZERO,
            faults: 0,
        }
    }

    fn ev(t: u64, tid: u32, kind: EventKind) -> Event {
        Event {
            t: Nanos(t),
            cpu: CpuId(0),
            tid: Tid(tid),
            kind,
        }
    }

    fn mini_trace() -> (Trace, Vec<TaskMeta>) {
        let fault = Activity::PageFault(osn_kernel::activity::FaultKind::AnonZero);
        let events = vec![
            ev(
                0,
                0,
                EventKind::SchedSwitch {
                    prev: Tid(0),
                    prev_state: SwitchState::Preempted,
                    next: Tid(1),
                },
            ),
            // 30 ns of timer, 70 ns of fault.
            ev(100, 1, EventKind::KernelEnter(Activity::TimerInterrupt)),
            ev(130, 1, EventKind::KernelExit(Activity::TimerInterrupt)),
            ev(500, 1, EventKind::KernelEnter(fault)),
            ev(570, 1, EventKind::KernelExit(fault)),
        ];
        (Trace::new(events, vec![]), vec![meta(1)])
    }

    #[test]
    fn breakdown_fractions() {
        let (trace, tasks) = mini_trace();
        let analysis = NoiseAnalysis::analyze(&trace, &tasks, Nanos(1000));
        let b = Breakdown::compute(&analysis, &[Tid(1)]);
        assert_eq!(b.total_noise, Nanos(100));
        assert!((b.fraction(NoiseCategory::PageFault) - 0.7).abs() < 1e-9);
        assert!((b.fraction(NoiseCategory::Periodic) - 0.3).abs() < 1e-9);
        assert_eq!(b.fraction(NoiseCategory::Io), 0.0);
        assert_eq!(b.dominant(), Some(NoiseCategory::PageFault));
        let sum: f64 = b.fractions().iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn noise_ratio() {
        let (trace, tasks) = mini_trace();
        let analysis = NoiseAnalysis::analyze(&trace, &tasks, Nanos(1000));
        let b = Breakdown::compute(&analysis, &[Tid(1)]);
        // Runnable the whole 1000 ns, 100 ns noise.
        assert!((b.noise_ratio() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn empty_task_set() {
        let (trace, tasks) = mini_trace();
        let analysis = NoiseAnalysis::analyze(&trace, &tasks, Nanos(1000));
        let b = Breakdown::compute(&analysis, &[]);
        assert_eq!(b.total_noise, Nanos::ZERO);
        assert_eq!(b.dominant(), None);
        assert_eq!(b.noise_ratio(), 0.0);
        assert_eq!(b.fraction(NoiseCategory::PageFault), 0.0);
    }
}
