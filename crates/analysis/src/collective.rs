//! Mechanistic bulk-synchronous collective coupling.
//!
//! The paper's scale argument (and the amplification model of
//! Ferreira, Bridges & Brightwell, SC'08) is that a collective
//! operation runs at the pace of its *slowest* member: per-node noise
//! that is small in isolation is paid by every rank once any rank
//! absorbs it inside a compute window. [`ScaleModel`] in `osn-core`
//! estimates that effect analytically by resampling an empirical
//! window distribution; this module instead *runs* the bulk-synchronous
//! program against the measured noise charts of N independent nodes:
//!
//! * each phase, every rank needs `granularity` of compute;
//! * the rank's elapsed time is the fixed point `e = g + W(t, t+e)`,
//!   where `W` is the noise its own node's chart drops into the
//!   *elongated* window (noise landing in the overrun delays the rank
//!   further — a second-order effect the analytic model ignores);
//! * the barrier releases at the max arrival over ranks, and the next
//!   phase starts there for everyone — so skew is carried across
//!   phases: window positions are history-dependent, not a fixed
//!   `g`-aligned grid;
//! * noise landing while a rank *waits* at the barrier is absorbed for
//!   free (the rank has no work to lose), exactly the slack-absorption
//!   property of real barriers.
//!
//! The per-phase record keeps the critical rank and the noise-category
//! decomposition of what it paid, so a campaign can report *which noise
//! class paid for the barrier* at every scale.
//!
//! [`ScaleModel`]: https://docs.rs/osn-core

use std::sync::Arc;

use osn_kernel::activity::NoiseCategory;
use osn_kernel::rng::{derive_indexed_seed, derive_seed};
use osn_kernel::time::Nanos;

use serde::{Deserialize, Serialize};

use crate::chart::NoiseChart;

/// Number of canonical noise classes ([`NoiseCategory::NOISE`]).
const NCLASS: usize = NoiseCategory::NOISE.len();

/// Position of a category in the canonical class order.
fn class_index(cat: NoiseCategory) -> usize {
    NoiseCategory::NOISE
        .iter()
        .position(|c| *c == cat)
        .expect("canonical noise category")
}

/// Cluster-tier injected fault classes — the attribution rows the
/// barrier decomposition reports alongside the kernel noise categories.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectedClass {
    /// Node crash + restart: the rank freezes for an outage window.
    Crash,
    /// Persistent straggler: the rank's compute demand is scaled up.
    Straggler,
    /// Network partition: barrier arrivals inside a window are delayed.
    Partition,
    /// Network jitter: per-phase random delay on barrier arrival.
    Jitter,
}

impl InjectedClass {
    /// Canonical order, the shape of every injected-attribution vector.
    pub const ALL: [InjectedClass; 4] = [
        InjectedClass::Crash,
        InjectedClass::Straggler,
        InjectedClass::Partition,
        InjectedClass::Jitter,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            InjectedClass::Crash => "crash",
            InjectedClass::Straggler => "straggler",
            InjectedClass::Partition => "partition",
            InjectedClass::Jitter => "jitter",
        }
    }
}

/// A network-partition delay window: barrier arrivals landing inside
/// `[start, end)` of the collective wall clock are held back by
/// `delay`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DelayWindow {
    pub start: Nanos,
    pub end: Nanos,
    pub delay: Nanos,
}

/// Deterministic injected faults on one rank. Everything here is a
/// pure function of the value itself plus the phase index — no stream
/// state — so the coupled run stays byte-identical across host worker
/// counts, and an empty value changes nothing at all.
#[derive(Clone, Debug, PartialEq)]
pub struct RankFaults {
    /// Compute-demand multiplier (persistent straggler); 1.0 = none.
    pub slow_factor: f64,
    /// Crash/restart outages `[start, end)` on the collective wall
    /// clock: the rank makes no progress inside them.
    pub outages: Vec<(Nanos, Nanos)>,
    /// Partition windows delaying barrier arrival.
    pub delays: Vec<DelayWindow>,
    /// Mean of the per-phase exponential arrival jitter (zero = off).
    pub jitter_mean: Nanos,
    /// Seed of the jitter hash (derive per rank so ranks decorrelate).
    pub jitter_seed: u64,
}

impl Default for RankFaults {
    fn default() -> Self {
        RankFaults {
            slow_factor: 1.0,
            outages: Vec::new(),
            delays: Vec::new(),
            jitter_mean: Nanos::ZERO,
            jitter_seed: 0,
        }
    }
}

impl RankFaults {
    pub fn is_empty(&self) -> bool {
        self.slow_factor == 1.0
            && self.outages.is_empty()
            && self.delays.is_empty()
            && self.jitter_mean.is_zero()
    }
}

/// One pooled noise observation: total noise plus its category split
/// (canonical [`NoiseCategory::NOISE`] order). Keeping the split with
/// the total preserves the cross-class correlation of real
/// interruption clusters through synthesis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NoiseSample {
    pub total: Nanos,
    pub by_class: [Nanos; NCLASS],
    /// Number of interruption clusters aggregated into this sample.
    /// Synthesis spreads the total over this many sub-events inside
    /// the bin: a mechanistic rank's per-bin noise arrives as several
    /// separated trains, and re-emitting it as one point mass would
    /// both empty out more windows (lighter mid-tail) and pile
    /// whole-bin mass into single windows (heavier extreme tail).
    pub events: u64,
}

impl NoiseSample {
    pub const ZERO: NoiseSample = NoiseSample {
        total: Nanos::ZERO,
        by_class: [Nanos::ZERO; NCLASS],
        events: 0,
    };

    fn add(&mut self, other: &NoiseSample) {
        self.total += other.total;
        for (slot, d) in self.by_class.iter_mut().zip(other.by_class) {
            *slot += d;
        }
        self.events += other.events;
    }

    /// `self` rescaled down to a smaller `total`, class split preserved
    /// proportionally (the total is re-derived from the floored class
    /// parts so the invariant `total == Σ by_class` holds).
    fn scaled_to(&self, total: Nanos) -> NoiseSample {
        if self.total.is_zero() || total >= self.total {
            return *self;
        }
        let mut by_class = [Nanos::ZERO; NCLASS];
        for (slot, c) in by_class.iter_mut().zip(self.by_class) {
            *slot = Nanos(
                (c.as_nanos() as u128 * total.as_nanos() as u128 / self.total.as_nanos() as u128)
                    as u64,
            );
        }
        NoiseSample {
            total: by_class.iter().copied().sum(),
            by_class,
            events: self.events,
        }
    }
}

/// The tick-synchronized component of a fitted noise surrogate: events
/// at `phase + k * period` of the *trace* clock, shared by every rank
/// of the cluster (nodes run the same kernel configuration, so their
/// tick combs are congruent — that congruence is what makes the
/// co-scheduled ablation suppress amplification, and synthesis must
/// preserve it).
#[derive(Clone, Debug)]
pub struct PeriodicComb {
    /// Extracted period (the kernel tick period, in a faithful fit).
    pub period: Nanos,
    /// Extracted phase: comb slots sit at `phase + k * period`.
    pub phase: Nanos,
    /// Probability that a comb slot actually fires on a given rank.
    pub occupancy: f64,
    /// Pooled per-event amplitude samples, sorted by total.
    pub table: Vec<NoiseSample>,
}

/// Per-class empirical noise surrogate fitted from a mechanistic
/// sample of ranks. The model splits a rank's noise process into:
///
/// * a **periodic comb** — interruption clusters carrying `Periodic`
///   noise recur at a fixed phase/period (the kernel tick plus
///   whatever rides on it); positions are common to all ranks,
///   amplitudes are drawn per (rank, slot) from the pooled table; and
/// * a **binned residual** — everything else, modeled per `bin` of
///   trace time as a shared **floor** (the minimum aggregate over the
///   sampled ranks, synthesized at one bin-keyed position common to
///   every rank) plus one per-rank **extras** draw from that bin's
///   table of rank-minus-floor deviations, placed uniformly inside
///   the bin. Zero deviations enter the table too, so the draw
///   reproduces each bin's empirical distribution including its mass
///   at zero.
///
///   The bin-local, floor-split structure is what makes `E[max over
///   N ranks]` honest. Mechanistic ranks run the same application, so
///   their aperiodic noise is trace-time-locked and strongly
///   cross-rank correlated: in the per-phase max, co-located noise
///   *shadows* itself. The shared floor reproduces that shadowing
///   exactly (it is identical across ranks, like the common app-driven
///   component it estimates), while only the genuine cross-rank
///   deviation is drawn iid. A time-pooled stationary residual — or
///   fully iid per-rank totals — spreads the same mass over
///   independent instants and overstates amplification, increasingly
///   so at scale.
///
/// Synthesis is a pure hash of `(rank seed, slot index)` — no stream
/// state — so synthetic ranks are deterministic, order-independent,
/// and cheap enough to query lazily during the barrier solve.
#[derive(Clone, Debug)]
pub struct NoiseSurrogate {
    /// Residual bin width (the fit granularity).
    pub bin: Nanos,
    /// Trace horizon the surrogate is valid to (min over fitted
    /// ranks); no events are synthesized at or past it.
    pub horizon: Nanos,
    /// Tick-synchronized component, when the fit found one.
    pub comb: Option<PeriodicComb>,
    /// Per-bin residual models indexed by `t / bin`.
    pub residual: Vec<ResidualBin>,
}

/// One bin of the residual model: the cross-rank common floor plus the
/// per-rank deviation table.
#[derive(Clone, Debug)]
pub struct ResidualBin {
    /// Minimum aggregate over the sampled ranks — noise every rank of
    /// the machine pays in this bin. Synthesized at one shared
    /// bin-keyed trace position so cross-rank shadowing in the
    /// per-phase max matches the mechanistic population.
    pub floor: NoiseSample,
    /// Per-rank aggregates minus the floor (class split scaled down
    /// proportionally), sorted by total — the empirical inverse CDF of
    /// the iid-across-ranks part of the bin.
    pub extras: Vec<NoiseSample>,
}

/// Cap on the cluster-merge gap (ns): see [`NoiseSurrogate::fit`].
const CLUSTER_MERGE_CAP: u64 = 10_000;
/// Cap on the pooled comb amplitude table.
const COMB_CAP: usize = 512;
/// Cap on each bin's residual table (entries per bin of trace time).
const RESIDUAL_BIN_CAP: usize = 64;

/// One merged interruption cluster of a chart.
#[derive(Clone, Copy)]
struct Cluster {
    t: Nanos,
    sample: NoiseSample,
}

/// Merge chart points into clusters: a point within `merge` of the
/// previous point joins its cluster (a tick interrupt and the softirq
/// it raises arrive back-to-back and fire as one interruption train).
/// A cluster's span is capped at `span_cap`: synthesis re-emits a
/// cluster's whole amplitude at a single instant, so an unbounded
/// train (a preemption storm chaining for milliseconds) must split
/// into window-scale pieces or its collapsed total would synthesize
/// per-window noise far above anything a mechanistic rank ever pays.
fn clusters_of(chart: &NoiseChart, merge: Nanos, span_cap: Nanos) -> Vec<Cluster> {
    let mut out: Vec<Cluster> = Vec::new();
    let mut last_t = Nanos::ZERO;
    for p in &chart.points {
        let mut by_class = [Nanos::ZERO; NCLASS];
        for (component, d) in &p.components {
            if let Some(cat) = component.category() {
                by_class[class_index(cat)] += *d;
            }
        }
        let total: Nanos = by_class.iter().copied().sum();
        match out.last_mut() {
            Some(last)
                if p.t.saturating_sub(last_t) <= merge
                    && p.t.saturating_sub(last.t) <= span_cap =>
            {
                // Merged points extend the train, not the train count.
                last.sample.add(&NoiseSample {
                    total,
                    by_class,
                    events: 0,
                });
            }
            _ => out.push(Cluster {
                t: p.t,
                sample: NoiseSample {
                    total,
                    by_class,
                    events: 1,
                },
            }),
        }
        last_t = p.t;
    }
    out
}

/// Median inter-arrival of periodic-bearing clusters, accepted as a
/// period only if the gaps are actually regular (at least half within
/// 10% of the median).
fn fit_period(diffs: &mut [u64]) -> Option<u64> {
    if diffs.len() < 8 {
        return None;
    }
    diffs.sort_unstable();
    let p = diffs[diffs.len() / 2];
    if p == 0 {
        return None;
    }
    let near = diffs.iter().filter(|d| d.abs_diff(p) <= p / 10).count();
    (near * 2 >= diffs.len()).then_some(p)
}

/// Deterministic subsample of a pooled table: sort, then take evenly
/// spaced order statistics (keeping min and max) so the empirical CDF
/// survives the cap.
fn subsample(mut pool: Vec<NoiseSample>, cap: usize) -> Vec<NoiseSample> {
    pool.sort_unstable_by_key(|s| (s.total, s.by_class));
    if pool.len() <= cap {
        return pool;
    }
    (0..cap)
        .map(|i| pool[i * (pool.len() - 1) / (cap - 1)])
        .collect()
}

impl NoiseSurrogate {
    /// Fit the surrogate from a mechanistic sample of rank series.
    /// Everything is measured on the *trace* clock (start offsets play
    /// no role in the fit; they are applied when the synthetic rank is
    /// coupled, exactly as for mechanistic ranks).
    pub fn fit(sample: &[RankSeries], bin: Nanos) -> NoiseSurrogate {
        assert!(!bin.is_zero(), "zero surrogate bin");
        let horizon = sample
            .iter()
            .map(|s| s.horizon)
            .min()
            .unwrap_or(Nanos::ZERO);
        // Interruption trains (a tick and the softirqs it raises) are
        // microsecond-scale back-to-back events; the merge gap must
        // stay well below the tick period or dense aperiodic traffic
        // chain-merges into mega-clusters whose start times fall off
        // the comb — tick noise would then be double-counted (once in
        // the residual, once by the comb's occupancy).
        let merge = Nanos((bin.as_nanos() / 2).clamp(1, CLUSTER_MERGE_CAP));
        let span_cap = Nanos((bin.as_nanos() / 2).max(1));
        let per_rank: Vec<Vec<Cluster>> = sample
            .iter()
            .map(|s| clusters_of(&s.chart, merge, span_cap))
            .collect();
        let pidx = class_index(NoiseCategory::Periodic);

        // Frequency extraction: only clusters carrying Periodic noise
        // are tick candidates (aperiodic classes never produce the
        // Periodic category), so their inter-arrival gaps expose the
        // tick period even under heavy aperiodic traffic.
        let mut diffs: Vec<u64> = Vec::new();
        for clusters in &per_rank {
            let mut prev: Option<u64> = None;
            for c in clusters
                .iter()
                .filter(|c| !c.sample.by_class[pidx].is_zero())
            {
                if let Some(p) = prev {
                    let d = c.t.as_nanos() - p;
                    if d > 0 {
                        diffs.push(d);
                    }
                }
                prev = Some(c.t.as_nanos());
            }
        }
        let period = fit_period(&mut diffs);

        // Phase extraction: circular mean of periodic-cluster starts
        // modulo the period, pooled across the sample.
        let mut phase = 0u64;
        if let Some(p) = period {
            let tau = std::f64::consts::TAU;
            let (mut sx, mut sy) = (0.0f64, 0.0f64);
            for clusters in &per_rank {
                for c in clusters
                    .iter()
                    .filter(|c| !c.sample.by_class[pidx].is_zero())
                {
                    let th = (c.t.as_nanos() % p) as f64 / p as f64 * tau;
                    sx += th.cos();
                    sy += th.sin();
                }
            }
            let mut frac = sy.atan2(sx) / tau;
            if frac < 0.0 {
                frac += 1.0;
            }
            phase = ((frac * p as f64).round() as u64) % p;
        }

        // Classify clusters on/off the comb and aggregate the residual
        // per (rank, bin). Each rank contributes exactly one aggregate
        // to each bin's table — zero when the rank was quiet there — so
        // a bin's table is the empirical cross-rank distribution of
        // noise in that window of trace time, storms and silences in
        // their measured places.
        let tol = period.map(|p| p / 8).unwrap_or(0);
        let bw = bin.as_nanos().max(1);
        let nbins = (horizon.as_nanos().div_ceil(bw)) as usize;
        let mut comb_samples: Vec<NoiseSample> = Vec::new();
        let mut per_bin: Vec<Vec<NoiseSample>> = vec![Vec::new(); nbins];
        let mut slots = 0u64;
        for (r, clusters) in per_rank.iter().enumerate() {
            let h_r = sample[r].horizon.as_nanos();
            let mut bins: Vec<NoiseSample> = vec![NoiseSample::ZERO; nbins];
            for c in clusters {
                let on_comb = period.is_some_and(|p| {
                    if c.sample.by_class[pidx].is_zero() {
                        return false;
                    }
                    let d = (c.t.as_nanos() % p + p - phase) % p;
                    d.min(p - d) <= tol
                });
                if on_comb {
                    comb_samples.push(c.sample);
                } else {
                    let j = (c.t.as_nanos() / bw) as usize;
                    if j < nbins {
                        bins[j].add(&c.sample);
                    }
                }
            }
            for (j, s) in bins.into_iter().enumerate() {
                per_bin[j].push(s);
            }
            if let Some(p) = period {
                if h_r > phase {
                    slots += (h_r - phase - 1) / p + 1;
                }
            }
        }
        let comb = period
            .filter(|_| !comb_samples.is_empty() && slots > 0)
            .map(|p| PeriodicComb {
                period: Nanos(p),
                phase: Nanos(phase),
                occupancy: (comb_samples.len() as f64 / slots as f64).min(1.0),
                table: subsample(comb_samples, COMB_CAP),
            });
        NoiseSurrogate {
            bin,
            horizon,
            comb,
            residual: per_bin
                .into_iter()
                .map(|pool| {
                    let floor = pool
                        .iter()
                        .copied()
                        .min_by_key(|s| (s.total, s.by_class))
                        .unwrap_or(NoiseSample::ZERO);
                    let extras = pool
                        .into_iter()
                        .map(|x| x.scaled_to(x.total.saturating_sub(floor.total)))
                        .collect();
                    ResidualBin {
                        floor,
                        extras: subsample(extras, RESIDUAL_BIN_CAP),
                    }
                })
                .collect(),
        }
    }
}

/// splitmix64 finalizer — the per-index mixer of the synthesis hashes.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a full-width hash into `[0, span)` without modulo bias.
#[inline]
fn hash_bounded(h: u64, span: u64) -> u64 {
    ((u128::from(h) * u128::from(span)) >> 64) as u64
}

/// A surrogate-synthesized rank: its noise over any trace interval is
/// a *stateless closed-form query* against the shared surrogate — per
/// (rank, slot) inverse-CDF draws via pure hashing, the same machinery
/// as [`RankFaults`]' exponential jitter. No chart is materialized.
#[derive(Clone, Debug)]
pub struct SyntheticRank {
    surrogate: Arc<NoiseSurrogate>,
    /// Per-rank draw seed (derive per rank so ranks decorrelate).
    pub seed: u64,
    comb_seed: u64,
    residual_seed: u64,
}

impl SyntheticRank {
    pub fn new(surrogate: Arc<NoiseSurrogate>, seed: u64) -> SyntheticRank {
        SyntheticRank {
            comb_seed: derive_seed(seed, "synth-comb"),
            residual_seed: derive_seed(seed, "synth-residual"),
            surrogate,
            seed,
        }
    }

    pub fn horizon(&self) -> Nanos {
        self.surrogate.horizon
    }

    /// Visit every synthesized event with position in `[from, to)` of
    /// the trace clock. Events are pure functions of `(seed, slot)`:
    /// the same event is produced no matter how the interval is split,
    /// which is what makes cursor-style monotone sweeps exact.
    fn for_each_event(&self, from: Nanos, to: Nanos, mut f: impl FnMut(&NoiseSample)) {
        let sur = &*self.surrogate;
        let to = to.min(sur.horizon);
        if from >= to {
            return;
        }
        let (a, b) = (from.as_nanos(), to.as_nanos());
        if let Some(comb) = &sur.comb {
            if !comb.table.is_empty() {
                let p = comb.period.as_nanos().max(1);
                let phase = comb.phase.as_nanos() % p;
                let mut k = if a <= phase {
                    0
                } else {
                    (a - phase).div_ceil(p)
                };
                loop {
                    let t = phase + k * p;
                    if t >= b {
                        break;
                    }
                    let h = mix64(self.comb_seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    let u = (((h >> 11) | 1) as f64) * (1.0 / (1u64 << 53) as f64);
                    if u < comb.occupancy {
                        let idx =
                            hash_bounded(mix64(h ^ 0xD6E8_FEB8_6659_FD93), comb.table.len() as u64)
                                as usize;
                        f(&comb.table[idx]);
                    }
                    k += 1;
                }
            }
        }
        if !sur.residual.is_empty() {
            let bw = sur.bin.as_nanos().max(1);
            // Spread `sample` over its empirical train count: sub-event
            // `i` sits at `off + i·bw/e` (mod bw) inside bin `j` and
            // carries an even share of the total. Positions and shares
            // are pure functions of `(j, h)`, so any interval split
            // sees each sub-event exactly once.
            let emit = |j: u64, h: u64, sample: &NoiseSample, f: &mut dyn FnMut(&NoiseSample)| {
                let e = sample.events.max(1);
                let t = sample.total.as_nanos();
                let off = hash_bounded(h, bw);
                for i in 0..e {
                    let pos = j * bw + (off + i * bw / e) % bw;
                    if pos < a || pos >= b {
                        continue;
                    }
                    let share = Nanos(t * (i + 1) / e - t * i / e);
                    if share.is_zero() {
                        continue;
                    }
                    f(&sample.scaled_to(share));
                }
            };
            for j in (a / bw)..b.div_ceil(bw) {
                let Some(rb) = sur.residual.get(j as usize) else {
                    continue;
                };
                // The shared floor: rank-seed-free positions, so every
                // synthetic rank pays it at the same trace instants.
                if !rb.floor.total.is_zero() {
                    let hf = mix64(0x8CB9_2BA7_2F3D_8DD7 ^ j.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    emit(j, hf, &rb.floor, &mut f);
                }
                if rb.extras.is_empty() {
                    continue;
                }
                let h = mix64(self.residual_seed ^ j.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let idx =
                    hash_bounded(mix64(h ^ 0xD6E8_FEB8_6659_FD93), rb.extras.len() as u64) as usize;
                let s = &rb.extras[idx];
                if !s.total.is_zero() {
                    emit(j, h, s, &mut f);
                }
            }
        }
    }

    /// Total synthesized noise with position in `[from, to)`.
    pub fn noise_in(&self, from: Nanos, to: Nanos) -> Nanos {
        let mut w = Nanos::ZERO;
        self.for_each_event(from, to, |s| w += s.total);
        w
    }

    /// Per-`granularity` window noise from `origin`, the synthetic
    /// counterpart of [`NoiseChart::bucket`].
    pub fn windows(&self, origin: Nanos, quantum: Nanos, nbuckets: usize) -> Vec<Nanos> {
        (0..nbuckets)
            .map(|j| {
                self.noise_in(
                    origin + quantum * j as u64,
                    origin + quantum * (j as u64 + 1),
                )
            })
            .collect()
    }
}

/// One rank's noise input to the coupled run: its node's synthetic
/// noise chart and the time up to which that chart is valid.
#[derive(Clone, Debug)]
pub struct RankSeries {
    pub chart: NoiseChart,
    /// Trace horizon: phases are only simulated while every rank's
    /// window fits inside its own horizon.
    pub horizon: Nanos,
    /// Where in this rank's trace the BSP program starts. Nodes of a
    /// real cluster boot at arbitrary points of their periodic-noise
    /// cycles; staggering start offsets decorrelates tick phases
    /// across ranks (offset 0 on every rank reproduces the perfectly
    /// co-scheduled cluster, where periodic noise does not amplify).
    pub start: Nanos,
    /// Injected cluster-tier faults (default: none).
    pub faults: RankFaults,
    /// Surrogate synthesis backing (None = the chart is the input).
    /// Synthetic ranks keep an empty chart; their noise is queried
    /// lazily from the shared surrogate instead.
    pub synth: Option<SyntheticRank>,
}

impl RankSeries {
    pub fn new(chart: NoiseChart, horizon: Nanos) -> RankSeries {
        RankSeries {
            chart,
            horizon,
            start: Nanos::ZERO,
            faults: RankFaults::default(),
            synth: None,
        }
    }

    /// A surrogate-synthesized rank (horizon = the surrogate's).
    pub fn synthetic(synth: SyntheticRank) -> RankSeries {
        RankSeries {
            chart: NoiseChart {
                task: osn_kernel::ids::Tid(0),
                points: Vec::new(),
            },
            horizon: synth.horizon(),
            start: Nanos::ZERO,
            faults: RankFaults::default(),
            synth: Some(synth),
        }
    }

    pub fn is_synthetic(&self) -> bool {
        self.synth.is_some()
    }

    pub fn with_start(mut self, start: Nanos) -> RankSeries {
        self.start = start;
        self
    }

    pub fn with_faults(mut self, mut faults: RankFaults) -> RankSeries {
        // Outage walks assume start order.
        faults.outages.sort_unstable();
        self.faults = faults;
        self
    }

    /// Per-`granularity` window noise over `[start, horizon)`, the
    /// input of the analytic `ScaleModel` (chart-bucketed for
    /// mechanistic ranks, closed-form queried for synthetic ones).
    pub fn windows(&self, granularity: Nanos) -> Vec<Nanos> {
        let n = (self.horizon.saturating_sub(self.start) / granularity) as usize;
        match &self.synth {
            None => self.chart.bucket(self.start, granularity, n),
            Some(s) => s.windows(self.start, granularity, n),
        }
    }
}

/// Parameters of the bulk-synchronous program.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BspParams {
    /// Compute granularity between barriers.
    pub granularity: Nanos,
    /// Cap on simulated phases (0 = as many as the traces allow).
    pub max_phases: usize,
    /// Full barrier dynamics (the default): skew carried across
    /// phases, overrun elongation, and slack absorption of noise that
    /// lands while a rank waits. When `false`, every rank's windows
    /// sit on the fixed `granularity`-aligned grid with none of those
    /// effects — exactly the sampling assumptions of the analytic
    /// `ScaleModel`, which makes the grid mode the differential
    /// counterpart of `expected_max_noise` on the same windows.
    pub mechanistic: bool,
}

impl BspParams {
    pub fn new(granularity: Nanos) -> BspParams {
        BspParams {
            granularity,
            max_phases: 0,
            mechanistic: true,
        }
    }

    /// The analytic-equivalent fixed-grid variant of these params.
    pub fn fixed_grid(mut self) -> BspParams {
        self.mechanistic = false;
        self
    }
}

/// One barrier-to-barrier phase of the coupled run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseOutcome {
    /// Barrier-release time the phase started at (common to all ranks).
    pub start: Nanos,
    /// Per-rank elapsed time `g + self noise` (index = rank).
    pub durations: Vec<Nanos>,
    /// The slowest rank — the one the barrier waited for (lowest index
    /// on ties).
    pub critical: usize,
    /// Noise-category decomposition of the critical rank's window
    /// noise, canonical category order, zero entries kept.
    pub critical_by_category: Vec<(NoiseCategory, Nanos)>,
    /// Injected-fault decomposition of the critical rank's duration,
    /// canonical [`InjectedClass::ALL`] order, zero entries kept (all
    /// zero when no faults are configured).
    pub critical_injected: Vec<(InjectedClass, Nanos)>,
}

impl PhaseOutcome {
    /// The noise the whole collective paid this phase.
    pub fn critical_noise(&self, granularity: Nanos) -> Nanos {
        self.durations[self.critical].saturating_sub(granularity)
    }
}

/// The complete coupled run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CollectiveRun {
    pub granularity: Nanos,
    pub nranks: usize,
    pub phases: Vec<PhaseOutcome>,
    /// Final barrier time.
    pub end: Nanos,
}

/// Sweep position over one rank's noise input: an index into the chart
/// points for mechanistic ranks, a consumed-up-to trace time for
/// synthetic ranks. Both advance monotonically; noise strictly before
/// the cursor has been consumed (paid or absorbed) and is never
/// counted again.
#[derive(Clone, Copy, Debug)]
enum Cur {
    Chart(usize),
    Synth(Nanos),
}

impl Cur {
    /// Initial cursor: the first noise at or past the rank's start.
    fn init(series: &RankSeries) -> Cur {
        match &series.synth {
            Some(_) => Cur::Synth(series.start),
            None => Cur::Chart(series.chart.points.partition_point(|p| p.t < series.start)),
        }
    }
}

/// Sum one rank's noise with position in `[cursor, end)`, returning
/// the summed noise and the advanced cursor. Noise is attributed to
/// the window containing the interruption start — the same attribution
/// [`NoiseChart::bucket`] uses, so the mechanistic and analytic models
/// agree on what a window contains.
fn window_noise(series: &RankSeries, cursor: Cur, end: Nanos) -> (Nanos, Cur) {
    match cursor {
        Cur::Chart(mut i) => {
            let mut w = Nanos::ZERO;
            while i < series.chart.points.len() && series.chart.points[i].t < end {
                w += series.chart.points[i].noise;
                i += 1;
            }
            (w, Cur::Chart(i))
        }
        Cur::Synth(from) => {
            if end <= from {
                return (Nanos::ZERO, cursor);
            }
            let synth = series
                .synth
                .as_ref()
                .expect("synthetic cursor on chart rank");
            (synth.noise_in(from, end), Cur::Synth(end))
        }
    }
}

/// Solve the fixed point `e = g + W(t, t+e)` for one rank: noise
/// landing inside the overrun extends the window until no further
/// points fall in. Converges because `W` is a finite step function.
fn solve_phase(series: &RankSeries, cursor: Cur, t: Nanos, g: Nanos) -> (Nanos, Cur) {
    let (mut w, mut i) = window_noise(series, cursor, t + g);
    let mut e = g + w;
    loop {
        let (extra, j) = window_noise(series, i, t + e);
        if extra.is_zero() {
            return (e, j);
        }
        w += extra;
        i = j;
        e = g + w;
    }
}

/// Earliest wall time at which a rank that starts `busy` nanoseconds
/// of work at `t` finishes, given that it is frozen inside `outages`
/// (sorted by start). Work done before an outage carries over; the
/// rank resumes where it left off after each outage — the
/// crash-and-restart-from-checkpoint semantics.
fn arrival_through_outages(outages: &[(Nanos, Nanos)], t: Nanos, busy: Nanos) -> Nanos {
    let mut cur = t;
    let mut left = busy;
    for (s, e) in outages {
        if *e <= cur {
            continue;
        }
        if *s > cur {
            let slice = *s - cur;
            if slice >= left {
                return cur + left;
            }
            left -= slice;
            cur = *s;
        }
        cur = (*e).max(cur);
    }
    cur + left
}

/// The per-phase injected delays of one rank: `(total extra,
/// per-class decomposition)` for a phase starting at wall time `t`
/// whose fault-free duration is `e`.
fn injected_extras(faults: &RankFaults, t: Nanos, e: Nanos, phase: usize) -> (Nanos, [Nanos; 4]) {
    if faults.is_empty() {
        return (Nanos::ZERO, [Nanos::ZERO; 4]);
    }
    // Straggler: extra compute demand is already folded into `e` by
    // the caller (via the scaled granularity); it reports the class
    // share separately, so here we only handle the wall-clock faults.
    let crash = arrival_through_outages(&faults.outages, t, e).saturating_sub(t + e);
    let mut partition = Nanos::ZERO;
    let arrival = t + e + crash;
    for w in &faults.delays {
        if arrival >= w.start && arrival < w.end {
            partition += w.delay;
        }
    }
    let jitter = if faults.jitter_mean.is_zero() {
        Nanos::ZERO
    } else {
        // Pure hash → inverse-CDF exponential: deterministic for a
        // (seed, phase) pair, no stream state to order across ranks.
        let bits = derive_indexed_seed(faults.jitter_seed, "inject-jitter", phase as u64);
        let u = (((bits >> 11) | 1) as f64) * (1.0 / (1u64 << 53) as f64);
        Nanos::from_nanos_f64(-(faults.jitter_mean.as_nanos() as f64) * u.ln())
    };
    (
        crash + partition + jitter,
        [crash, Nanos::ZERO, partition, jitter],
    )
}

/// Decompose the noise of `[cursor, t+e)` by category (critical-rank
/// attribution). Canonical category order; zero entries kept so the
/// output shape is scale-independent.
fn window_categories(
    series: &RankSeries,
    cursor: Cur,
    t: Nanos,
    e: Nanos,
) -> Vec<(NoiseCategory, Nanos)> {
    let mut totals: Vec<(NoiseCategory, Nanos)> = NoiseCategory::NOISE
        .iter()
        .map(|c| (*c, Nanos::ZERO))
        .collect();
    let end = t + e;
    match cursor {
        Cur::Chart(cursor) => {
            for p in &series.chart.points[cursor..] {
                if p.t >= end {
                    break;
                }
                for (component, d) in &p.components {
                    if let Some(cat) = component.category() {
                        if let Some(slot) = totals.iter_mut().find(|(c, _)| *c == cat) {
                            slot.1 += *d;
                        }
                    }
                }
            }
        }
        Cur::Synth(from) => {
            if let Some(synth) = &series.synth {
                synth.for_each_event(from, end, |s| {
                    for (slot, d) in totals.iter_mut().zip(s.by_class) {
                        slot.1 += d;
                    }
                });
            }
        }
    }
    totals
}

/// Borrowed view of one coupled phase, valid only inside the
/// [`couple_stream`] visit callback (the backing buffers are reused
/// across phases — the streamed coupling allocates O(ranks), never
/// O(ranks × phases)).
pub struct PhaseView<'a> {
    pub index: usize,
    /// Barrier-release time the phase started at (common to all ranks).
    pub start: Nanos,
    /// Per-rank elapsed time `g + self noise` (index = rank).
    pub durations: &'a [Nanos],
    /// The slowest rank — the one the barrier waited for.
    pub critical: usize,
    /// Category decomposition of the critical rank's window noise.
    pub critical_by_category: &'a [(NoiseCategory, Nanos)],
    /// Injected decomposition of the critical rank's duration.
    pub critical_injected: &'a [(InjectedClass, Nanos)],
}

/// Run the bulk-synchronous collective against the ranks' noise
/// inputs, streaming one [`PhaseView`] per phase to `visit` instead of
/// materializing per-phase vectors. All ranks share one wall clock;
/// each phase ends at the max arrival; noise overtaken while a rank
/// waits at the barrier is skipped (absorbed in slack). Returns
/// `(phases, end)`.
pub fn couple_stream(
    ranks: &[RankSeries],
    params: &BspParams,
    mut visit: impl FnMut(&PhaseView<'_>),
) -> (usize, Nanos) {
    let g = params.granularity;
    assert!(!g.is_zero(), "zero granularity");
    // Start each cursor at the first noise past the rank's offset.
    let mut cursors: Vec<Cur> = ranks.iter().map(Cur::init).collect();
    let mut nphases = 0usize;
    // Phase-start position in each rank's trace (mechanistic: the
    // shared barrier-release time; grid: `p * g`).
    let mut t = Nanos::ZERO;
    // Accumulated collective runtime (== `t` in mechanistic mode).
    let mut end = Nanos::ZERO;
    // Reused per-phase buffers.
    let mut durations: Vec<Nanos> = Vec::with_capacity(ranks.len());
    // Trace extent of each rank's window, excluding injected
    // wall-clock delays (the chart decomposition covers only this
    // span — injected time has its own attribution rows).
    let mut trace_spans: Vec<Nanos> = Vec::with_capacity(ranks.len());
    let mut injected: Vec<[Nanos; 4]> = Vec::with_capacity(ranks.len());
    let mut next_cursors: Vec<Cur> = Vec::with_capacity(ranks.len());
    let mut critical_injected: Vec<(InjectedClass, Nanos)> = Vec::new();
    if !ranks.is_empty() {
        loop {
            if params.max_phases > 0 && nphases >= params.max_phases {
                break;
            }
            durations.clear();
            trace_spans.clear();
            injected.clear();
            next_cursors.clear();
            let mut fits = true;
            for (r, series) in ranks.iter().enumerate() {
                let pos = series.start + t;
                // Persistent straggler: scaled compute demand.
                let f = &series.faults;
                let g_r = if f.slow_factor != 1.0 {
                    Nanos((g.as_nanos() as f64 * f.slow_factor).round() as u64)
                } else {
                    g
                };
                let (e, cursor) = if params.mechanistic {
                    solve_phase(series, cursors[r], pos, g_r)
                } else {
                    let (w, cursor) = window_noise(series, cursors[r], pos + g_r);
                    (g_r + w, cursor)
                };
                // Mechanistic windows must fit below the horizon as
                // elongated; grid windows as sampled.
                let need = if params.mechanistic { e } else { g_r };
                if pos + need > series.horizon {
                    fits = false;
                    break;
                }
                let (extra, mut by_class) = injected_extras(f, t, e, nphases);
                by_class[1] = g_r - g; // straggler share
                durations.push(e + extra);
                trace_spans.push(e);
                injected.push(by_class);
                next_cursors.push(cursor);
            }
            if !fits {
                break;
            }
            // Slowest rank; first index wins ties (deterministic).
            let critical = durations
                .iter()
                .enumerate()
                .max_by_key(|(i, d)| (**d, std::cmp::Reverse(*i)))
                .map(|(i, _)| i)
                .expect("non-empty ranks");
            let critical_by_category = window_categories(
                &ranks[critical],
                cursors[critical],
                ranks[critical].start + t,
                trace_spans[critical],
            );
            critical_injected.clear();
            critical_injected.extend(
                InjectedClass::ALL
                    .iter()
                    .zip(injected[critical])
                    .map(|(c, d)| (*c, d)),
            );
            end += durations[critical];
            let start = t;
            if params.mechanistic {
                let barrier = t + durations[critical];
                // Advance every cursor past the barrier: noise in a
                // rank's wait window [arrival, barrier) is absorbed.
                for (r, series) in ranks.iter().enumerate() {
                    let (_, cursor) = window_noise(series, next_cursors[r], series.start + barrier);
                    cursors[r] = cursor;
                }
                t = barrier;
            } else {
                cursors.copy_from_slice(&next_cursors);
                t += g;
            }
            visit(&PhaseView {
                index: nphases,
                start,
                durations: &durations,
                critical,
                critical_by_category: &critical_by_category,
                critical_injected: &critical_injected,
            });
            nphases += 1;
        }
    }
    (nphases, end)
}

/// Run the collective and materialize every phase — the collector form
/// of [`couple_stream`] (identical semantics, O(ranks × phases)
/// memory; prefer [`CollectiveBreakdown::from_ranks`] at scale).
pub fn couple(ranks: &[RankSeries], params: &BspParams) -> CollectiveRun {
    let mut phases = Vec::new();
    let (_, end) = couple_stream(ranks, params, |p| {
        phases.push(PhaseOutcome {
            start: p.start,
            durations: p.durations.to_vec(),
            critical: p.critical,
            critical_by_category: p.critical_by_category.to_vec(),
            critical_injected: p.critical_injected.to_vec(),
        })
    });
    CollectiveRun {
        granularity: params.granularity,
        nranks: ranks.len(),
        phases,
        end,
    }
}

/// Per-rank accounting over the whole coupled run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RankStats {
    pub rank: usize,
    /// Useful compute: `phases * granularity`.
    pub compute: Nanos,
    /// Noise this rank absorbed inside its own compute windows.
    pub self_noise: Nanos,
    /// Time spent waiting at barriers for slower ranks.
    pub wait: Nanos,
    /// Phases where this rank was the one the barrier waited for.
    pub critical_phases: usize,
}

/// Aggregated view of a [`CollectiveRun`]: the per-rank/per-phase
/// slowdown breakdown and which noise class paid for the barrier.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CollectiveBreakdown {
    pub granularity: Nanos,
    pub nranks: usize,
    pub nphases: usize,
    /// `nphases * granularity`: the noise-free runtime.
    pub ideal: Nanos,
    /// Actual final barrier time.
    pub elapsed: Nanos,
    /// `elapsed / ideal`.
    pub slowdown: f64,
    /// `ideal / elapsed`.
    pub efficiency: f64,
    /// Mean over phases of the critical rank's window noise — the
    /// mechanistic counterpart of the analytic `E[max_N W]`.
    pub mean_max_noise: Nanos,
    pub ranks: Vec<RankStats>,
    /// Total barrier-paid noise by category (critical-path
    /// attribution), canonical order.
    pub barrier_paid: Vec<(NoiseCategory, Nanos)>,
    /// Total barrier-paid time by injected fault class (critical-path
    /// attribution), canonical [`InjectedClass::ALL`] order. All zero
    /// when nothing was injected.
    pub barrier_injected: Vec<(InjectedClass, Nanos)>,
}

/// Streaming accumulator behind [`CollectiveBreakdown`]: folds phases
/// one at a time so `build` (from a materialized run) and `from_ranks`
/// (from the streamed coupling) produce bit-identical output.
struct BreakdownAcc {
    g: Nanos,
    nphases: usize,
    total_max_noise: Nanos,
    ranks: Vec<RankStats>,
    barrier_paid: Vec<(NoiseCategory, Nanos)>,
    barrier_injected: Vec<(InjectedClass, Nanos)>,
}

impl BreakdownAcc {
    fn new(g: Nanos, nranks: usize) -> BreakdownAcc {
        BreakdownAcc {
            g,
            nphases: 0,
            total_max_noise: Nanos::ZERO,
            ranks: (0..nranks)
                .map(|rank| RankStats {
                    rank,
                    compute: Nanos::ZERO,
                    self_noise: Nanos::ZERO,
                    wait: Nanos::ZERO,
                    critical_phases: 0,
                })
                .collect(),
            barrier_paid: NoiseCategory::NOISE
                .iter()
                .map(|c| (*c, Nanos::ZERO))
                .collect(),
            barrier_injected: InjectedClass::ALL
                .iter()
                .map(|c| (*c, Nanos::ZERO))
                .collect(),
        }
    }

    fn phase(
        &mut self,
        durations: &[Nanos],
        critical: usize,
        by_category: &[(NoiseCategory, Nanos)],
        by_injected: &[(InjectedClass, Nanos)],
    ) {
        let g = self.g;
        let barrier = durations[critical];
        self.total_max_noise += barrier - g;
        self.nphases += 1;
        self.ranks[critical].critical_phases += 1;
        for (r, d) in durations.iter().enumerate() {
            self.ranks[r].self_noise += *d - g;
            self.ranks[r].wait += barrier - *d;
        }
        for (cat, d) in by_category {
            if let Some(slot) = self.barrier_paid.iter_mut().find(|(c, _)| c == cat) {
                slot.1 += *d;
            }
        }
        for (class, d) in by_injected {
            if let Some(slot) = self.barrier_injected.iter_mut().find(|(c, _)| c == class) {
                slot.1 += *d;
            }
        }
    }

    fn finish(mut self, elapsed: Nanos) -> CollectiveBreakdown {
        let nphases = self.nphases;
        let ideal = self.g * nphases as u64;
        for r in &mut self.ranks {
            r.compute = ideal;
        }
        let (slowdown, efficiency) = if ideal.is_zero() {
            (1.0, 1.0)
        } else {
            (
                elapsed.as_nanos() as f64 / ideal.as_nanos() as f64,
                ideal.as_nanos() as f64 / elapsed.as_nanos() as f64,
            )
        };
        CollectiveBreakdown {
            granularity: self.g,
            nranks: self.ranks.len(),
            nphases,
            ideal,
            elapsed,
            slowdown,
            efficiency,
            mean_max_noise: if nphases == 0 {
                Nanos::ZERO
            } else {
                self.total_max_noise / nphases as u64
            },
            ranks: self.ranks,
            barrier_paid: self.barrier_paid,
            barrier_injected: self.barrier_injected,
        }
    }
}

impl CollectiveBreakdown {
    pub fn build(run: &CollectiveRun) -> CollectiveBreakdown {
        let mut acc = BreakdownAcc::new(run.granularity, run.nranks);
        for phase in &run.phases {
            acc.phase(
                &phase.durations,
                phase.critical,
                &phase.critical_by_category,
                &phase.critical_injected,
            );
        }
        acc.finish(run.end)
    }

    /// Couple and fold in one streamed pass, without materializing the
    /// per-phase vectors — the O(ranks) path the tiered cluster engine
    /// uses at 10k+ ranks. Identical output to
    /// `CollectiveBreakdown::build(&couple(ranks, params))`.
    pub fn from_ranks(ranks: &[RankSeries], params: &BspParams) -> CollectiveBreakdown {
        let mut acc = BreakdownAcc::new(params.granularity, ranks.len());
        let (_, end) = couple_stream(ranks, params, |p| {
            acc.phase(
                p.durations,
                p.critical,
                p.critical_by_category,
                p.critical_injected,
            )
        });
        acc.finish(end)
    }

    /// The category that paid the most barrier time, if any noise was
    /// paid at all.
    pub fn dominant(&self) -> Option<NoiseCategory> {
        self.barrier_paid
            .iter()
            .max_by_key(|(_, d)| *d)
            .filter(|(_, d)| !d.is_zero())
            .map(|(c, _)| *c)
    }

    /// The injected fault class that paid the most barrier time, if
    /// any injected time was paid at all.
    pub fn dominant_injected(&self) -> Option<InjectedClass> {
        self.barrier_injected
            .iter()
            .max_by_key(|(_, d)| *d)
            .filter(|(_, d)| !d.is_zero())
            .map(|(c, _)| *c)
    }

    /// Total injected time the barrier paid.
    pub fn total_injected(&self) -> Nanos {
        self.barrier_injected.iter().map(|(_, d)| *d).sum()
    }

    /// Total noise the barrier paid (critical-path attribution). This
    /// can differ slightly from `mean_max_noise * nphases` only by
    /// integer division in the mean.
    pub fn total_barrier_noise(&self) -> Nanos {
        self.barrier_paid.iter().map(|(_, d)| *d).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chart::ChartPoint;
    use crate::noise::Component;
    use osn_kernel::activity::{Activity, FaultKind, SoftirqVec};
    use osn_kernel::ids::Tid;

    fn point(t: u64, noise: u64, activity: Activity) -> ChartPoint {
        ChartPoint {
            t: Nanos(t),
            noise: Nanos(noise),
            duration: Nanos(noise),
            components: vec![(Component::Activity(activity), Nanos(noise))],
        }
    }

    fn series(points: Vec<ChartPoint>, horizon: u64) -> RankSeries {
        RankSeries::new(
            NoiseChart {
                task: Tid(1),
                points,
            },
            Nanos(horizon),
        )
    }

    fn params(g: u64) -> BspParams {
        BspParams::new(Nanos(g))
    }

    #[test]
    fn noise_free_ranks_run_at_ideal_speed() {
        let ranks = vec![series(vec![], 10_000), series(vec![], 10_000)];
        let run = couple(&ranks, &params(1_000));
        assert_eq!(run.phases.len(), 10);
        assert_eq!(run.end, Nanos(10_000));
        let b = CollectiveBreakdown::build(&run);
        assert_eq!(b.slowdown, 1.0);
        assert_eq!(b.mean_max_noise, Nanos::ZERO);
        assert!(b.dominant().is_none());
    }

    #[test]
    fn barrier_pays_the_slowest_rank() {
        // Rank 1 takes a 300 ns hit in phase 0; rank 0 is clean.
        let ranks = vec![
            series(vec![], 10_000),
            series(vec![point(500, 300, Activity::TimerInterrupt)], 10_000),
        ];
        let run = couple(&ranks, &params(1_000));
        let p0 = &run.phases[0];
        assert_eq!(p0.durations, vec![Nanos(1_000), Nanos(1_300)]);
        assert_eq!(p0.critical, 1);
        // Phase 1 starts at the barrier, not at rank 0's arrival.
        assert_eq!(run.phases[1].start, Nanos(1_300));
        let b = CollectiveBreakdown::build(&run);
        assert_eq!(b.ranks[0].wait, Nanos(300));
        assert_eq!(b.ranks[1].self_noise, Nanos(300));
        assert_eq!(b.dominant(), Some(NoiseCategory::Periodic));
        assert_eq!(b.total_barrier_noise(), Nanos(300));
    }

    #[test]
    fn noise_in_the_overrun_extends_the_window() {
        // A hit at t=900 pushes arrival past 1000; a second hit at
        // t=1100 lands inside the overrun and must also be paid.
        let ranks = vec![series(
            vec![
                point(900, 200, Activity::TimerInterrupt),
                point(1_100, 400, Activity::PageFault(FaultKind::AnonZero)),
            ],
            10_000,
        )];
        let run = couple(&ranks, &params(1_000));
        assert_eq!(run.phases[0].durations[0], Nanos(1_600));
    }

    #[test]
    fn noise_during_barrier_wait_is_absorbed() {
        // Rank 0 waits 500 ns at the first barrier; a hit landing in
        // its wait window must not charge phase 1.
        let ranks = vec![
            series(vec![point(1_200, 100, Activity::TimerInterrupt)], 10_000),
            series(vec![point(100, 500, Activity::TimerInterrupt)], 10_000),
        ];
        let run = couple(&ranks, &params(1_000));
        // Rank 0 arrives at 1000, barrier at 1500; its t=1200 hit is in
        // the wait window — absorbed.
        assert_eq!(run.phases[0].durations[0], Nanos(1_000));
        assert_eq!(run.phases[1].durations[0], Nanos(1_000));
    }

    #[test]
    fn accounting_identity_per_rank() {
        // compute + self_noise + wait == elapsed, for every rank.
        let ranks = vec![
            series(
                vec![
                    point(500, 70, Activity::TimerInterrupt),
                    point(2_700, 900, Activity::PageFault(FaultKind::AnonZero)),
                ],
                20_000,
            ),
            series(
                vec![point(1_400, 650, Activity::Softirq(SoftirqVec::NetRx))],
                20_000,
            ),
        ];
        let run = couple(&ranks, &params(1_000));
        let b = CollectiveBreakdown::build(&run);
        for r in &b.ranks {
            assert_eq!(
                r.compute + r.self_noise + r.wait,
                b.elapsed,
                "rank {}",
                r.rank
            );
        }
        let criticals: usize = b.ranks.iter().map(|r| r.critical_phases).sum();
        assert_eq!(criticals, b.nphases);
    }

    #[test]
    fn phases_stop_at_the_shortest_horizon() {
        let ranks = vec![series(vec![], 10_000), series(vec![], 3_500)];
        let run = couple(&ranks, &params(1_000));
        assert_eq!(run.phases.len(), 3);
    }

    #[test]
    fn max_phases_caps_the_run() {
        let ranks = vec![series(vec![], 100_000)];
        let run = couple(
            &ranks,
            &BspParams {
                max_phases: 7,
                ..BspParams::new(Nanos(1_000))
            },
        );
        assert_eq!(run.phases.len(), 7);
    }

    #[test]
    fn fixed_grid_mode_matches_bucketed_windows() {
        // Grid mode: windows at [0,1000), [1000,2000), ... with no
        // skew, no elongation, no absorption.
        let ranks = vec![
            series(
                vec![
                    point(200, 500, Activity::TimerInterrupt),
                    point(2_100, 80, Activity::TimerInterrupt),
                ],
                10_000,
            ),
            series(
                vec![point(1_400, 650, Activity::Softirq(SoftirqVec::NetRx))],
                10_000,
            ),
        ];
        let run = couple(&ranks, &params(1_000).fixed_grid());
        assert_eq!(run.phases.len(), 10);
        // Phase 0: rank 0 pays 500, rank 1 clean -> max 500.
        assert_eq!(run.phases[0].durations, vec![Nanos(1_500), Nanos(1_000)]);
        // Phase 1: rank 1 pays 650 (its t=1400 point).
        assert_eq!(run.phases[1].durations, vec![Nanos(1_000), Nanos(1_650)]);
        // Phase 2: rank 0's t=2100 point lands on the fixed grid here
        // (the mechanistic run catches it in phase 1 — that shift IS
        // the skew).
        assert_eq!(run.phases[2].durations[0], Nanos(1_080));
        // end == sum of per-phase maxima.
        let total: Nanos = run.phases.iter().map(|p| p.durations[p.critical]).sum();
        assert_eq!(run.end, total);
    }

    #[test]
    fn start_offset_shifts_the_trace_window() {
        // With start = 2000 the program begins deep in the trace: the
        // early points are skipped entirely and the horizon budget
        // shrinks by the offset.
        let ranks = vec![series(
            vec![
                point(500, 999, Activity::TimerInterrupt),
                point(2_300, 120, Activity::TimerInterrupt),
            ],
            6_000,
        )
        .with_start(Nanos(2_000))];
        let run = couple(&ranks, &params(1_000));
        // Phase 0 covers trace [2000, 3120): pays the t=2300 point
        // only; the t=500 point predates the start.
        assert_eq!(run.phases[0].durations[0], Nanos(1_120));
        // Horizon 6000 minus the 2000 offset leaves room for windows
        // at trace positions 2000..3120, 3120..4120, 4120..5120; a
        // fourth (5120..6120) would cross the horizon.
        assert_eq!(run.phases.len(), 3);
        // Offset zero on the same series pays the big early point.
        let aligned = vec![series(
            vec![
                point(500, 999, Activity::TimerInterrupt),
                point(2_300, 120, Activity::TimerInterrupt),
            ],
            6_000,
        )];
        let run0 = couple(&aligned, &params(1_000));
        assert_eq!(run0.phases[0].durations[0], Nanos(1_999));
    }

    #[test]
    fn skew_is_carried_across_phases() {
        // One early hit shifts every later window: a hit at t=2100
        // would be in phase 2 on the ideal grid, but the phase-0 delay
        // of 500 ns shifts phase 1 to [1500, 2500) and catches it.
        let ranks = vec![series(
            vec![
                point(200, 500, Activity::TimerInterrupt),
                point(2_100, 80, Activity::TimerInterrupt),
            ],
            10_000,
        )];
        let run = couple(&ranks, &params(1_000));
        assert_eq!(run.phases[0].durations[0], Nanos(1_500));
        assert_eq!(run.phases[1].start, Nanos(1_500));
        assert_eq!(run.phases[1].durations[0], Nanos(1_080));
    }

    fn injected_total(b: &CollectiveBreakdown, class: InjectedClass) -> Nanos {
        b.barrier_injected
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, d)| *d)
            .unwrap()
    }

    #[test]
    fn default_faults_change_nothing() {
        let plain = vec![
            series(vec![point(500, 300, Activity::TimerInterrupt)], 10_000),
            series(vec![], 10_000),
        ];
        let faulted: Vec<RankSeries> = plain
            .iter()
            .map(|s| s.clone().with_faults(RankFaults::default()))
            .collect();
        let a = couple(&plain, &params(1_000));
        let b = couple(&faulted, &params(1_000));
        assert_eq!(a, b, "empty fault config must be a strict no-op");
        let bd = CollectiveBreakdown::build(&a);
        assert!(bd.dominant_injected().is_none());
        assert!(bd.total_injected().is_zero());
    }

    #[test]
    fn straggler_is_critical_and_attributed() {
        let ranks = vec![
            series(vec![], 10_000),
            series(vec![], 10_000).with_faults(RankFaults {
                slow_factor: 1.5,
                ..RankFaults::default()
            }),
        ];
        let run = couple(&ranks, &params(1_000));
        assert!(!run.phases.is_empty());
        for p in &run.phases {
            assert_eq!(p.critical, 1, "straggler must pace the barrier");
            assert_eq!(p.durations[1], Nanos(1_500));
        }
        let b = CollectiveBreakdown::build(&run);
        assert_eq!(b.dominant_injected(), Some(InjectedClass::Straggler));
        assert_eq!(
            injected_total(&b, InjectedClass::Straggler),
            Nanos(500) * run.phases.len() as u64
        );
        assert!(injected_total(&b, InjectedClass::Crash).is_zero());
    }

    #[test]
    fn crash_outage_freezes_the_rank() {
        // Rank 1 is down over [500, 1500): phase 0 does 500 ns of
        // work, freezes 1000 ns, then finishes the remaining 500 ns —
        // the 1000 ns outage is paid once and attributed to Crash.
        let ranks = vec![
            series(vec![], 10_000),
            series(vec![], 10_000).with_faults(RankFaults {
                outages: vec![(Nanos(500), Nanos(1_500))],
                ..RankFaults::default()
            }),
        ];
        let run = couple(&ranks, &params(1_000));
        assert_eq!(run.phases[0].durations[1], Nanos(2_000));
        assert_eq!(run.phases[0].critical, 1);
        assert_eq!(
            run.phases[0].critical_injected,
            vec![
                (InjectedClass::Crash, Nanos(1_000)),
                (InjectedClass::Straggler, Nanos::ZERO),
                (InjectedClass::Partition, Nanos::ZERO),
                (InjectedClass::Jitter, Nanos::ZERO),
            ]
        );
        // Later phases run past the outage unharmed.
        assert_eq!(run.phases[1].durations[1], Nanos(1_000));
        let b = CollectiveBreakdown::build(&run);
        assert_eq!(injected_total(&b, InjectedClass::Crash), Nanos(1_000));
        assert_eq!(b.dominant_injected(), Some(InjectedClass::Crash));
    }

    #[test]
    fn partition_delays_arrivals_inside_its_window() {
        let ranks = vec![
            series(vec![], 10_000),
            series(vec![], 10_000).with_faults(RankFaults {
                delays: vec![DelayWindow {
                    start: Nanos(0),
                    end: Nanos(1_500),
                    delay: Nanos(300),
                }],
                ..RankFaults::default()
            }),
        ];
        let run = couple(&ranks, &params(1_000));
        // Phase 0 arrival (t=1000) is inside the partition window.
        assert_eq!(run.phases[0].durations[1], Nanos(1_300));
        assert_eq!(run.phases[0].critical, 1);
        // Phase 1 arrival (t=2300) is past it.
        assert_eq!(run.phases[1].durations[1], Nanos(1_000));
        let b = CollectiveBreakdown::build(&run);
        assert_eq!(injected_total(&b, InjectedClass::Partition), Nanos(300));
    }

    #[test]
    fn jitter_is_deterministic_and_positive() {
        let faults = RankFaults {
            jitter_mean: Nanos(200),
            jitter_seed: 42,
            ..RankFaults::default()
        };
        let ranks = vec![series(vec![], 20_000).with_faults(faults)];
        let a = couple(&ranks, &params(1_000));
        let b = couple(&ranks, &params(1_000));
        assert_eq!(a, b, "jitter must be a pure function of (seed, phase)");
        let bd = CollectiveBreakdown::build(&a);
        assert!(
            !injected_total(&bd, InjectedClass::Jitter).is_zero(),
            "exponential jitter over many phases must pay some delay"
        );
        // Different seeds give different schedules.
        let other = vec![series(vec![], 20_000).with_faults(RankFaults {
            jitter_seed: 43,
            jitter_mean: Nanos(200),
            ..RankFaults::default()
        })];
        assert_ne!(couple(&other, &params(1_000)), a);
    }

    #[test]
    fn from_ranks_matches_materialized_breakdown() {
        let ranks = vec![
            series(
                vec![
                    point(500, 70, Activity::TimerInterrupt),
                    point(2_700, 900, Activity::PageFault(FaultKind::AnonZero)),
                ],
                20_000,
            ),
            series(
                vec![point(1_400, 650, Activity::Softirq(SoftirqVec::NetRx))],
                20_000,
            )
            .with_faults(RankFaults {
                slow_factor: 1.2,
                jitter_mean: Nanos(150),
                jitter_seed: 7,
                outages: vec![(Nanos(4_000), Nanos(5_000))],
                ..RankFaults::default()
            }),
            series(vec![], 20_000).with_start(Nanos(1_000)),
        ];
        for p in [params(1_000), params(1_000).fixed_grid()] {
            let via_run = CollectiveBreakdown::build(&couple(&ranks, &p));
            let streamed = CollectiveBreakdown::from_ranks(&ranks, &p);
            assert_eq!(via_run, streamed);
        }
    }

    /// A periodic trace (tick-style) for surrogate fitting: events at
    /// `phase + k*period` plus aperiodic clutter that must not derail
    /// the period fit.
    fn ticked(phase: u64, period: u64, noise: u64, horizon: u64, clutter: u64) -> RankSeries {
        let mut pts = Vec::new();
        let mut t = phase;
        while t < horizon {
            pts.push(point(t, noise, Activity::TimerInterrupt));
            t += period;
        }
        let mut c = clutter;
        while c < horizon {
            pts.push(point(c, 40, Activity::PageFault(FaultKind::AnonZero)));
            c += 3 * period + 137;
        }
        pts.sort_by_key(|p| p.t);
        series(pts, horizon)
    }

    #[test]
    fn surrogate_fit_recovers_the_tick_comb() {
        let sample: Vec<RankSeries> = (0..4)
            .map(|i| ticked(2_500, 10_000, 300 + 10 * i, 200_000, 1_000 + 97 * i))
            .collect();
        let s = NoiseSurrogate::fit(&sample, Nanos(1_000));
        let comb = s.comb.as_ref().expect("tick comb must be detected");
        assert_eq!(comb.period, Nanos(10_000));
        // A clutter point occasionally merges into a tick cluster and
        // drags its start time; the circular mean tolerates that, so
        // allow a small contamination error (comb matching tolerance
        // is period/8 = 1250 ns, far looser than this bound).
        assert!(
            comb.phase.as_nanos().abs_diff(2_500) <= 100,
            "phase {:?} should be ~2500",
            comb.phase
        );
        assert!(comb.occupancy > 0.9, "occupancy {}", comb.occupancy);
        assert!(!comb.table.is_empty());
        // The aperiodic clutter lands in the residual, not the comb.
        assert!(s
            .residual
            .iter()
            .any(|b| !b.floor.total.is_zero() || b.extras.iter().any(|r| !r.total.is_zero())));
    }

    #[test]
    fn synthetic_ranks_are_deterministic_pure_hash_draws() {
        let sample: Vec<RankSeries> = (0..4)
            .map(|i| ticked(2_500, 10_000, 300, 200_000, 1_000 + 97 * i))
            .collect();
        let s = Arc::new(NoiseSurrogate::fit(&sample, Nanos(1_000)));
        let a = RankSeries::synthetic(SyntheticRank::new(s.clone(), 11));
        let b = RankSeries::synthetic(SyntheticRank::new(s.clone(), 11));
        let c = RankSeries::synthetic(SyntheticRank::new(s.clone(), 12));
        assert_eq!(a.windows(Nanos(1_000)), b.windows(Nanos(1_000)));
        assert_ne!(a.windows(Nanos(1_000)), c.windows(Nanos(1_000)));
        let total: Nanos = a.windows(Nanos(1_000)).into_iter().sum();
        assert!(!total.is_zero(), "synthetic rank must carry noise");
        // Re-querying the same interval is stateless and repeatable.
        assert_eq!(
            a.synth.as_ref().unwrap().noise_in(Nanos(0), Nanos(50_000)),
            b.synth.as_ref().unwrap().noise_in(Nanos(0), Nanos(50_000)),
        );
        // Coupling synthetic ranks is itself deterministic.
        let ranks = vec![a, c];
        assert_eq!(
            couple(&ranks, &params(1_000)),
            couple(&ranks, &params(1_000))
        );
    }

    #[test]
    fn synthetic_comb_events_share_global_tick_times() {
        // Alignment survives synthesis: every rank's comb events sit at
        // the same machine-global `phase + k*period` instants, so two
        // synthetic ranks pay their periodic noise in the same windows.
        let sample: Vec<RankSeries> = (0..4)
            .map(|_| ticked(2_500, 10_000, 300, 200_000, 0))
            .collect();
        let s = Arc::new(NoiseSurrogate::fit(&sample, Nanos(1_000)));
        let comb = s.comb.as_ref().expect("comb");
        let (p, ph) = (comb.period.as_nanos(), comb.phase.as_nanos());
        for seed in [3u64, 4, 5] {
            let r = SyntheticRank::new(s.clone(), seed);
            let mut hits = 0usize;
            let mut slots = 0usize;
            let mut k = 0;
            while ph + k * p + 1 < s.horizon.as_nanos() {
                let t = ph + k * p;
                slots += 1;
                if !r.noise_in(Nanos(t), Nanos(t + 1)).is_zero() {
                    hits += 1;
                }
                // Off-tick instants never carry comb noise.
                k += 1;
            }
            assert!(
                hits * 10 >= slots * 8,
                "seed {seed}: {hits}/{slots} tick slots occupied"
            );
        }
    }
}
