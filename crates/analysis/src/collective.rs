//! Mechanistic bulk-synchronous collective coupling.
//!
//! The paper's scale argument (and the amplification model of
//! Ferreira, Bridges & Brightwell, SC'08) is that a collective
//! operation runs at the pace of its *slowest* member: per-node noise
//! that is small in isolation is paid by every rank once any rank
//! absorbs it inside a compute window. [`ScaleModel`] in `osn-core`
//! estimates that effect analytically by resampling an empirical
//! window distribution; this module instead *runs* the bulk-synchronous
//! program against the measured noise charts of N independent nodes:
//!
//! * each phase, every rank needs `granularity` of compute;
//! * the rank's elapsed time is the fixed point `e = g + W(t, t+e)`,
//!   where `W` is the noise its own node's chart drops into the
//!   *elongated* window (noise landing in the overrun delays the rank
//!   further — a second-order effect the analytic model ignores);
//! * the barrier releases at the max arrival over ranks, and the next
//!   phase starts there for everyone — so skew is carried across
//!   phases: window positions are history-dependent, not a fixed
//!   `g`-aligned grid;
//! * noise landing while a rank *waits* at the barrier is absorbed for
//!   free (the rank has no work to lose), exactly the slack-absorption
//!   property of real barriers.
//!
//! The per-phase record keeps the critical rank and the noise-category
//! decomposition of what it paid, so a campaign can report *which noise
//! class paid for the barrier* at every scale.
//!
//! [`ScaleModel`]: https://docs.rs/osn-core

use osn_kernel::activity::NoiseCategory;
use osn_kernel::rng::derive_indexed_seed;
use osn_kernel::time::Nanos;

use serde::{Deserialize, Serialize};

use crate::chart::NoiseChart;

/// Cluster-tier injected fault classes — the attribution rows the
/// barrier decomposition reports alongside the kernel noise categories.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectedClass {
    /// Node crash + restart: the rank freezes for an outage window.
    Crash,
    /// Persistent straggler: the rank's compute demand is scaled up.
    Straggler,
    /// Network partition: barrier arrivals inside a window are delayed.
    Partition,
    /// Network jitter: per-phase random delay on barrier arrival.
    Jitter,
}

impl InjectedClass {
    /// Canonical order, the shape of every injected-attribution vector.
    pub const ALL: [InjectedClass; 4] = [
        InjectedClass::Crash,
        InjectedClass::Straggler,
        InjectedClass::Partition,
        InjectedClass::Jitter,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            InjectedClass::Crash => "crash",
            InjectedClass::Straggler => "straggler",
            InjectedClass::Partition => "partition",
            InjectedClass::Jitter => "jitter",
        }
    }
}

/// A network-partition delay window: barrier arrivals landing inside
/// `[start, end)` of the collective wall clock are held back by
/// `delay`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DelayWindow {
    pub start: Nanos,
    pub end: Nanos,
    pub delay: Nanos,
}

/// Deterministic injected faults on one rank. Everything here is a
/// pure function of the value itself plus the phase index — no stream
/// state — so the coupled run stays byte-identical across host worker
/// counts, and an empty value changes nothing at all.
#[derive(Clone, Debug, PartialEq)]
pub struct RankFaults {
    /// Compute-demand multiplier (persistent straggler); 1.0 = none.
    pub slow_factor: f64,
    /// Crash/restart outages `[start, end)` on the collective wall
    /// clock: the rank makes no progress inside them.
    pub outages: Vec<(Nanos, Nanos)>,
    /// Partition windows delaying barrier arrival.
    pub delays: Vec<DelayWindow>,
    /// Mean of the per-phase exponential arrival jitter (zero = off).
    pub jitter_mean: Nanos,
    /// Seed of the jitter hash (derive per rank so ranks decorrelate).
    pub jitter_seed: u64,
}

impl Default for RankFaults {
    fn default() -> Self {
        RankFaults {
            slow_factor: 1.0,
            outages: Vec::new(),
            delays: Vec::new(),
            jitter_mean: Nanos::ZERO,
            jitter_seed: 0,
        }
    }
}

impl RankFaults {
    pub fn is_empty(&self) -> bool {
        self.slow_factor == 1.0
            && self.outages.is_empty()
            && self.delays.is_empty()
            && self.jitter_mean.is_zero()
    }
}

/// One rank's noise input to the coupled run: its node's synthetic
/// noise chart and the time up to which that chart is valid.
#[derive(Clone, Debug)]
pub struct RankSeries {
    pub chart: NoiseChart,
    /// Trace horizon: phases are only simulated while every rank's
    /// window fits inside its own horizon.
    pub horizon: Nanos,
    /// Where in this rank's trace the BSP program starts. Nodes of a
    /// real cluster boot at arbitrary points of their periodic-noise
    /// cycles; staggering start offsets decorrelates tick phases
    /// across ranks (offset 0 on every rank reproduces the perfectly
    /// co-scheduled cluster, where periodic noise does not amplify).
    pub start: Nanos,
    /// Injected cluster-tier faults (default: none).
    pub faults: RankFaults,
}

impl RankSeries {
    pub fn new(chart: NoiseChart, horizon: Nanos) -> RankSeries {
        RankSeries {
            chart,
            horizon,
            start: Nanos::ZERO,
            faults: RankFaults::default(),
        }
    }

    pub fn with_start(mut self, start: Nanos) -> RankSeries {
        self.start = start;
        self
    }

    pub fn with_faults(mut self, mut faults: RankFaults) -> RankSeries {
        // Outage walks assume start order.
        faults.outages.sort_unstable();
        self.faults = faults;
        self
    }
}

/// Parameters of the bulk-synchronous program.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BspParams {
    /// Compute granularity between barriers.
    pub granularity: Nanos,
    /// Cap on simulated phases (0 = as many as the traces allow).
    pub max_phases: usize,
    /// Full barrier dynamics (the default): skew carried across
    /// phases, overrun elongation, and slack absorption of noise that
    /// lands while a rank waits. When `false`, every rank's windows
    /// sit on the fixed `granularity`-aligned grid with none of those
    /// effects — exactly the sampling assumptions of the analytic
    /// `ScaleModel`, which makes the grid mode the differential
    /// counterpart of `expected_max_noise` on the same windows.
    pub mechanistic: bool,
}

impl BspParams {
    pub fn new(granularity: Nanos) -> BspParams {
        BspParams {
            granularity,
            max_phases: 0,
            mechanistic: true,
        }
    }

    /// The analytic-equivalent fixed-grid variant of these params.
    pub fn fixed_grid(mut self) -> BspParams {
        self.mechanistic = false;
        self
    }
}

/// One barrier-to-barrier phase of the coupled run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseOutcome {
    /// Barrier-release time the phase started at (common to all ranks).
    pub start: Nanos,
    /// Per-rank elapsed time `g + self noise` (index = rank).
    pub durations: Vec<Nanos>,
    /// The slowest rank — the one the barrier waited for (lowest index
    /// on ties).
    pub critical: usize,
    /// Noise-category decomposition of the critical rank's window
    /// noise, canonical category order, zero entries kept.
    pub critical_by_category: Vec<(NoiseCategory, Nanos)>,
    /// Injected-fault decomposition of the critical rank's duration,
    /// canonical [`InjectedClass::ALL`] order, zero entries kept (all
    /// zero when no faults are configured).
    pub critical_injected: Vec<(InjectedClass, Nanos)>,
}

impl PhaseOutcome {
    /// The noise the whole collective paid this phase.
    pub fn critical_noise(&self, granularity: Nanos) -> Nanos {
        self.durations[self.critical].saturating_sub(granularity)
    }
}

/// The complete coupled run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CollectiveRun {
    pub granularity: Nanos,
    pub nranks: usize,
    pub phases: Vec<PhaseOutcome>,
    /// Final barrier time.
    pub end: Nanos,
}

/// Walk one rank's chart points inside `[t, t+e)` starting from
/// `cursor`, returning the summed noise and the new cursor. Noise is
/// attributed to the window containing the interruption start — the
/// same attribution [`NoiseChart::bucket`] uses, so the mechanistic
/// and analytic models agree on what a window contains.
fn window_noise(series: &RankSeries, cursor: usize, t: Nanos, e: Nanos) -> (Nanos, usize) {
    let mut w = Nanos::ZERO;
    let mut i = cursor;
    let end = t + e;
    while i < series.chart.points.len() && series.chart.points[i].t < end {
        w += series.chart.points[i].noise;
        i += 1;
    }
    (w, i)
}

/// Solve the fixed point `e = g + W(t, t+e)` for one rank: noise
/// landing inside the overrun extends the window until no further
/// points fall in. Converges because `W` is a finite step function.
fn solve_phase(series: &RankSeries, cursor: usize, t: Nanos, g: Nanos) -> (Nanos, usize) {
    let (mut w, mut i) = window_noise(series, cursor, t, g);
    let mut e = g + w;
    loop {
        let (extra, j) = window_noise(series, i, t, e);
        if extra.is_zero() {
            return (e, j);
        }
        w += extra;
        i = j;
        e = g + w;
    }
}

/// Earliest wall time at which a rank that starts `busy` nanoseconds
/// of work at `t` finishes, given that it is frozen inside `outages`
/// (sorted by start). Work done before an outage carries over; the
/// rank resumes where it left off after each outage — the
/// crash-and-restart-from-checkpoint semantics.
fn arrival_through_outages(outages: &[(Nanos, Nanos)], t: Nanos, busy: Nanos) -> Nanos {
    let mut cur = t;
    let mut left = busy;
    for (s, e) in outages {
        if *e <= cur {
            continue;
        }
        if *s > cur {
            let slice = *s - cur;
            if slice >= left {
                return cur + left;
            }
            left -= slice;
            cur = *s;
        }
        cur = (*e).max(cur);
    }
    cur + left
}

/// The per-phase injected delays of one rank: `(total extra,
/// per-class decomposition)` for a phase starting at wall time `t`
/// whose fault-free duration is `e`.
fn injected_extras(faults: &RankFaults, t: Nanos, e: Nanos, phase: usize) -> (Nanos, [Nanos; 4]) {
    if faults.is_empty() {
        return (Nanos::ZERO, [Nanos::ZERO; 4]);
    }
    // Straggler: extra compute demand is already folded into `e` by
    // the caller (via the scaled granularity); it reports the class
    // share separately, so here we only handle the wall-clock faults.
    let crash = arrival_through_outages(&faults.outages, t, e).saturating_sub(t + e);
    let mut partition = Nanos::ZERO;
    let arrival = t + e + crash;
    for w in &faults.delays {
        if arrival >= w.start && arrival < w.end {
            partition += w.delay;
        }
    }
    let jitter = if faults.jitter_mean.is_zero() {
        Nanos::ZERO
    } else {
        // Pure hash → inverse-CDF exponential: deterministic for a
        // (seed, phase) pair, no stream state to order across ranks.
        let bits = derive_indexed_seed(faults.jitter_seed, "inject-jitter", phase as u64);
        let u = (((bits >> 11) | 1) as f64) * (1.0 / (1u64 << 53) as f64);
        Nanos::from_nanos_f64(-(faults.jitter_mean.as_nanos() as f64) * u.ln())
    };
    (
        crash + partition + jitter,
        [crash, Nanos::ZERO, partition, jitter],
    )
}

/// Decompose the noise of `[t, t+e)` by category (critical-rank
/// attribution). Canonical category order; zero entries kept so the
/// output shape is scale-independent.
fn window_categories(
    series: &RankSeries,
    cursor: usize,
    t: Nanos,
    e: Nanos,
) -> Vec<(NoiseCategory, Nanos)> {
    let mut totals: Vec<(NoiseCategory, Nanos)> = NoiseCategory::NOISE
        .iter()
        .map(|c| (*c, Nanos::ZERO))
        .collect();
    let end = t + e;
    for p in &series.chart.points[cursor..] {
        if p.t >= end {
            break;
        }
        for (component, d) in &p.components {
            if let Some(cat) = component.category() {
                if let Some(slot) = totals.iter_mut().find(|(c, _)| *c == cat) {
                    slot.1 += *d;
                }
            }
        }
    }
    totals
}

/// Run the bulk-synchronous collective against the ranks' measured
/// noise charts. All ranks share one wall clock; each phase ends at the
/// max arrival; chart points overtaken while a rank waits at the
/// barrier are skipped (absorbed in slack).
pub fn couple(ranks: &[RankSeries], params: &BspParams) -> CollectiveRun {
    let g = params.granularity;
    assert!(!g.is_zero(), "zero granularity");
    // Start each cursor at the first point past the rank's offset.
    let mut cursors: Vec<usize> = ranks
        .iter()
        .map(|s| s.chart.points.partition_point(|p| p.t < s.start))
        .collect();
    let mut phases = Vec::new();
    // Phase-start position in each rank's trace (mechanistic: the
    // shared barrier-release time; grid: `p * g`).
    let mut t = Nanos::ZERO;
    // Accumulated collective runtime (== `t` in mechanistic mode).
    let mut end = Nanos::ZERO;
    if !ranks.is_empty() {
        loop {
            if params.max_phases > 0 && phases.len() >= params.max_phases {
                break;
            }
            let mut durations = Vec::with_capacity(ranks.len());
            // Trace extent of each rank's window, excluding injected
            // wall-clock delays (the chart decomposition covers only
            // this span — injected time has its own attribution rows).
            let mut trace_spans = Vec::with_capacity(ranks.len());
            let mut injected = Vec::with_capacity(ranks.len());
            let mut next_cursors = Vec::with_capacity(ranks.len());
            let mut fits = true;
            for (r, series) in ranks.iter().enumerate() {
                let pos = series.start + t;
                // Persistent straggler: scaled compute demand.
                let f = &series.faults;
                let g_r = if f.slow_factor != 1.0 {
                    Nanos((g.as_nanos() as f64 * f.slow_factor).round() as u64)
                } else {
                    g
                };
                let (e, cursor) = if params.mechanistic {
                    solve_phase(series, cursors[r], pos, g_r)
                } else {
                    let (w, cursor) = window_noise(series, cursors[r], pos, g_r);
                    (g_r + w, cursor)
                };
                // Mechanistic windows must fit below the horizon as
                // elongated; grid windows as sampled.
                let need = if params.mechanistic { e } else { g_r };
                if pos + need > series.horizon {
                    fits = false;
                    break;
                }
                let (extra, mut by_class) = injected_extras(f, t, e, phases.len());
                by_class[1] = g_r - g; // straggler share
                durations.push(e + extra);
                trace_spans.push(e);
                injected.push(by_class);
                next_cursors.push(cursor);
            }
            if !fits {
                break;
            }
            // Slowest rank; first index wins ties (deterministic).
            let critical = durations
                .iter()
                .enumerate()
                .max_by_key(|(i, d)| (**d, std::cmp::Reverse(*i)))
                .map(|(i, _)| i)
                .expect("non-empty ranks");
            let critical_by_category = window_categories(
                &ranks[critical],
                cursors[critical],
                ranks[critical].start + t,
                trace_spans[critical],
            );
            let critical_injected: Vec<(InjectedClass, Nanos)> = InjectedClass::ALL
                .iter()
                .zip(injected[critical])
                .map(|(c, d)| (*c, d))
                .collect();
            end += durations[critical];
            if params.mechanistic {
                let barrier = t + durations[critical];
                // Advance every cursor past the barrier: points in a
                // rank's wait window [arrival, barrier) are absorbed.
                for (r, series) in ranks.iter().enumerate() {
                    let (_, cursor) =
                        window_noise(series, next_cursors[r], series.start + t, barrier - t);
                    cursors[r] = cursor;
                }
                phases.push(PhaseOutcome {
                    start: t,
                    durations,
                    critical,
                    critical_by_category,
                    critical_injected,
                });
                t = barrier;
            } else {
                cursors.copy_from_slice(&next_cursors);
                phases.push(PhaseOutcome {
                    start: t,
                    durations,
                    critical,
                    critical_by_category,
                    critical_injected,
                });
                t += g;
            }
        }
    }
    CollectiveRun {
        granularity: g,
        nranks: ranks.len(),
        phases,
        end,
    }
}

/// Per-rank accounting over the whole coupled run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RankStats {
    pub rank: usize,
    /// Useful compute: `phases * granularity`.
    pub compute: Nanos,
    /// Noise this rank absorbed inside its own compute windows.
    pub self_noise: Nanos,
    /// Time spent waiting at barriers for slower ranks.
    pub wait: Nanos,
    /// Phases where this rank was the one the barrier waited for.
    pub critical_phases: usize,
}

/// Aggregated view of a [`CollectiveRun`]: the per-rank/per-phase
/// slowdown breakdown and which noise class paid for the barrier.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CollectiveBreakdown {
    pub granularity: Nanos,
    pub nranks: usize,
    pub nphases: usize,
    /// `nphases * granularity`: the noise-free runtime.
    pub ideal: Nanos,
    /// Actual final barrier time.
    pub elapsed: Nanos,
    /// `elapsed / ideal`.
    pub slowdown: f64,
    /// `ideal / elapsed`.
    pub efficiency: f64,
    /// Mean over phases of the critical rank's window noise — the
    /// mechanistic counterpart of the analytic `E[max_N W]`.
    pub mean_max_noise: Nanos,
    pub ranks: Vec<RankStats>,
    /// Total barrier-paid noise by category (critical-path
    /// attribution), canonical order.
    pub barrier_paid: Vec<(NoiseCategory, Nanos)>,
    /// Total barrier-paid time by injected fault class (critical-path
    /// attribution), canonical [`InjectedClass::ALL`] order. All zero
    /// when nothing was injected.
    pub barrier_injected: Vec<(InjectedClass, Nanos)>,
}

impl CollectiveBreakdown {
    pub fn build(run: &CollectiveRun) -> CollectiveBreakdown {
        let g = run.granularity;
        let nphases = run.phases.len();
        let ideal = g * nphases as u64;
        let elapsed = run.end;
        let mut ranks: Vec<RankStats> = (0..run.nranks)
            .map(|rank| RankStats {
                rank,
                compute: ideal,
                self_noise: Nanos::ZERO,
                wait: Nanos::ZERO,
                critical_phases: 0,
            })
            .collect();
        let mut barrier_paid: Vec<(NoiseCategory, Nanos)> = NoiseCategory::NOISE
            .iter()
            .map(|c| (*c, Nanos::ZERO))
            .collect();
        let mut barrier_injected: Vec<(InjectedClass, Nanos)> = InjectedClass::ALL
            .iter()
            .map(|c| (*c, Nanos::ZERO))
            .collect();
        let mut total_max_noise = Nanos::ZERO;
        for phase in &run.phases {
            let barrier = phase.durations[phase.critical];
            total_max_noise += barrier - g;
            ranks[phase.critical].critical_phases += 1;
            for (r, d) in phase.durations.iter().enumerate() {
                ranks[r].self_noise += *d - g;
                ranks[r].wait += barrier - *d;
            }
            for (cat, d) in &phase.critical_by_category {
                if let Some(slot) = barrier_paid.iter_mut().find(|(c, _)| c == cat) {
                    slot.1 += *d;
                }
            }
            for (class, d) in &phase.critical_injected {
                if let Some(slot) = barrier_injected.iter_mut().find(|(c, _)| c == class) {
                    slot.1 += *d;
                }
            }
        }
        let (slowdown, efficiency) = if ideal.is_zero() {
            (1.0, 1.0)
        } else {
            (
                elapsed.as_nanos() as f64 / ideal.as_nanos() as f64,
                ideal.as_nanos() as f64 / elapsed.as_nanos() as f64,
            )
        };
        CollectiveBreakdown {
            granularity: g,
            nranks: run.nranks,
            nphases,
            ideal,
            elapsed,
            slowdown,
            efficiency,
            mean_max_noise: if nphases == 0 {
                Nanos::ZERO
            } else {
                total_max_noise / nphases as u64
            },
            ranks,
            barrier_paid,
            barrier_injected,
        }
    }

    /// The category that paid the most barrier time, if any noise was
    /// paid at all.
    pub fn dominant(&self) -> Option<NoiseCategory> {
        self.barrier_paid
            .iter()
            .max_by_key(|(_, d)| *d)
            .filter(|(_, d)| !d.is_zero())
            .map(|(c, _)| *c)
    }

    /// The injected fault class that paid the most barrier time, if
    /// any injected time was paid at all.
    pub fn dominant_injected(&self) -> Option<InjectedClass> {
        self.barrier_injected
            .iter()
            .max_by_key(|(_, d)| *d)
            .filter(|(_, d)| !d.is_zero())
            .map(|(c, _)| *c)
    }

    /// Total injected time the barrier paid.
    pub fn total_injected(&self) -> Nanos {
        self.barrier_injected.iter().map(|(_, d)| *d).sum()
    }

    /// Total noise the barrier paid (critical-path attribution). This
    /// can differ slightly from `mean_max_noise * nphases` only by
    /// integer division in the mean.
    pub fn total_barrier_noise(&self) -> Nanos {
        self.barrier_paid.iter().map(|(_, d)| *d).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chart::ChartPoint;
    use crate::noise::Component;
    use osn_kernel::activity::{Activity, FaultKind, SoftirqVec};
    use osn_kernel::ids::Tid;

    fn point(t: u64, noise: u64, activity: Activity) -> ChartPoint {
        ChartPoint {
            t: Nanos(t),
            noise: Nanos(noise),
            duration: Nanos(noise),
            components: vec![(Component::Activity(activity), Nanos(noise))],
        }
    }

    fn series(points: Vec<ChartPoint>, horizon: u64) -> RankSeries {
        RankSeries::new(
            NoiseChart {
                task: Tid(1),
                points,
            },
            Nanos(horizon),
        )
    }

    fn params(g: u64) -> BspParams {
        BspParams::new(Nanos(g))
    }

    #[test]
    fn noise_free_ranks_run_at_ideal_speed() {
        let ranks = vec![series(vec![], 10_000), series(vec![], 10_000)];
        let run = couple(&ranks, &params(1_000));
        assert_eq!(run.phases.len(), 10);
        assert_eq!(run.end, Nanos(10_000));
        let b = CollectiveBreakdown::build(&run);
        assert_eq!(b.slowdown, 1.0);
        assert_eq!(b.mean_max_noise, Nanos::ZERO);
        assert!(b.dominant().is_none());
    }

    #[test]
    fn barrier_pays_the_slowest_rank() {
        // Rank 1 takes a 300 ns hit in phase 0; rank 0 is clean.
        let ranks = vec![
            series(vec![], 10_000),
            series(vec![point(500, 300, Activity::TimerInterrupt)], 10_000),
        ];
        let run = couple(&ranks, &params(1_000));
        let p0 = &run.phases[0];
        assert_eq!(p0.durations, vec![Nanos(1_000), Nanos(1_300)]);
        assert_eq!(p0.critical, 1);
        // Phase 1 starts at the barrier, not at rank 0's arrival.
        assert_eq!(run.phases[1].start, Nanos(1_300));
        let b = CollectiveBreakdown::build(&run);
        assert_eq!(b.ranks[0].wait, Nanos(300));
        assert_eq!(b.ranks[1].self_noise, Nanos(300));
        assert_eq!(b.dominant(), Some(NoiseCategory::Periodic));
        assert_eq!(b.total_barrier_noise(), Nanos(300));
    }

    #[test]
    fn noise_in_the_overrun_extends_the_window() {
        // A hit at t=900 pushes arrival past 1000; a second hit at
        // t=1100 lands inside the overrun and must also be paid.
        let ranks = vec![series(
            vec![
                point(900, 200, Activity::TimerInterrupt),
                point(1_100, 400, Activity::PageFault(FaultKind::AnonZero)),
            ],
            10_000,
        )];
        let run = couple(&ranks, &params(1_000));
        assert_eq!(run.phases[0].durations[0], Nanos(1_600));
    }

    #[test]
    fn noise_during_barrier_wait_is_absorbed() {
        // Rank 0 waits 500 ns at the first barrier; a hit landing in
        // its wait window must not charge phase 1.
        let ranks = vec![
            series(vec![point(1_200, 100, Activity::TimerInterrupt)], 10_000),
            series(vec![point(100, 500, Activity::TimerInterrupt)], 10_000),
        ];
        let run = couple(&ranks, &params(1_000));
        // Rank 0 arrives at 1000, barrier at 1500; its t=1200 hit is in
        // the wait window — absorbed.
        assert_eq!(run.phases[0].durations[0], Nanos(1_000));
        assert_eq!(run.phases[1].durations[0], Nanos(1_000));
    }

    #[test]
    fn accounting_identity_per_rank() {
        // compute + self_noise + wait == elapsed, for every rank.
        let ranks = vec![
            series(
                vec![
                    point(500, 70, Activity::TimerInterrupt),
                    point(2_700, 900, Activity::PageFault(FaultKind::AnonZero)),
                ],
                20_000,
            ),
            series(
                vec![point(1_400, 650, Activity::Softirq(SoftirqVec::NetRx))],
                20_000,
            ),
        ];
        let run = couple(&ranks, &params(1_000));
        let b = CollectiveBreakdown::build(&run);
        for r in &b.ranks {
            assert_eq!(
                r.compute + r.self_noise + r.wait,
                b.elapsed,
                "rank {}",
                r.rank
            );
        }
        let criticals: usize = b.ranks.iter().map(|r| r.critical_phases).sum();
        assert_eq!(criticals, b.nphases);
    }

    #[test]
    fn phases_stop_at_the_shortest_horizon() {
        let ranks = vec![series(vec![], 10_000), series(vec![], 3_500)];
        let run = couple(&ranks, &params(1_000));
        assert_eq!(run.phases.len(), 3);
    }

    #[test]
    fn max_phases_caps_the_run() {
        let ranks = vec![series(vec![], 100_000)];
        let run = couple(
            &ranks,
            &BspParams {
                max_phases: 7,
                ..BspParams::new(Nanos(1_000))
            },
        );
        assert_eq!(run.phases.len(), 7);
    }

    #[test]
    fn fixed_grid_mode_matches_bucketed_windows() {
        // Grid mode: windows at [0,1000), [1000,2000), ... with no
        // skew, no elongation, no absorption.
        let ranks = vec![
            series(
                vec![
                    point(200, 500, Activity::TimerInterrupt),
                    point(2_100, 80, Activity::TimerInterrupt),
                ],
                10_000,
            ),
            series(
                vec![point(1_400, 650, Activity::Softirq(SoftirqVec::NetRx))],
                10_000,
            ),
        ];
        let run = couple(&ranks, &params(1_000).fixed_grid());
        assert_eq!(run.phases.len(), 10);
        // Phase 0: rank 0 pays 500, rank 1 clean -> max 500.
        assert_eq!(run.phases[0].durations, vec![Nanos(1_500), Nanos(1_000)]);
        // Phase 1: rank 1 pays 650 (its t=1400 point).
        assert_eq!(run.phases[1].durations, vec![Nanos(1_000), Nanos(1_650)]);
        // Phase 2: rank 0's t=2100 point lands on the fixed grid here
        // (the mechanistic run catches it in phase 1 — that shift IS
        // the skew).
        assert_eq!(run.phases[2].durations[0], Nanos(1_080));
        // end == sum of per-phase maxima.
        let total: Nanos = run.phases.iter().map(|p| p.durations[p.critical]).sum();
        assert_eq!(run.end, total);
    }

    #[test]
    fn start_offset_shifts_the_trace_window() {
        // With start = 2000 the program begins deep in the trace: the
        // early points are skipped entirely and the horizon budget
        // shrinks by the offset.
        let ranks = vec![series(
            vec![
                point(500, 999, Activity::TimerInterrupt),
                point(2_300, 120, Activity::TimerInterrupt),
            ],
            6_000,
        )
        .with_start(Nanos(2_000))];
        let run = couple(&ranks, &params(1_000));
        // Phase 0 covers trace [2000, 3120): pays the t=2300 point
        // only; the t=500 point predates the start.
        assert_eq!(run.phases[0].durations[0], Nanos(1_120));
        // Horizon 6000 minus the 2000 offset leaves room for windows
        // at trace positions 2000..3120, 3120..4120, 4120..5120; a
        // fourth (5120..6120) would cross the horizon.
        assert_eq!(run.phases.len(), 3);
        // Offset zero on the same series pays the big early point.
        let aligned = vec![series(
            vec![
                point(500, 999, Activity::TimerInterrupt),
                point(2_300, 120, Activity::TimerInterrupt),
            ],
            6_000,
        )];
        let run0 = couple(&aligned, &params(1_000));
        assert_eq!(run0.phases[0].durations[0], Nanos(1_999));
    }

    #[test]
    fn skew_is_carried_across_phases() {
        // One early hit shifts every later window: a hit at t=2100
        // would be in phase 2 on the ideal grid, but the phase-0 delay
        // of 500 ns shifts phase 1 to [1500, 2500) and catches it.
        let ranks = vec![series(
            vec![
                point(200, 500, Activity::TimerInterrupt),
                point(2_100, 80, Activity::TimerInterrupt),
            ],
            10_000,
        )];
        let run = couple(&ranks, &params(1_000));
        assert_eq!(run.phases[0].durations[0], Nanos(1_500));
        assert_eq!(run.phases[1].start, Nanos(1_500));
        assert_eq!(run.phases[1].durations[0], Nanos(1_080));
    }

    fn injected_total(b: &CollectiveBreakdown, class: InjectedClass) -> Nanos {
        b.barrier_injected
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, d)| *d)
            .unwrap()
    }

    #[test]
    fn default_faults_change_nothing() {
        let plain = vec![
            series(vec![point(500, 300, Activity::TimerInterrupt)], 10_000),
            series(vec![], 10_000),
        ];
        let faulted: Vec<RankSeries> = plain
            .iter()
            .map(|s| s.clone().with_faults(RankFaults::default()))
            .collect();
        let a = couple(&plain, &params(1_000));
        let b = couple(&faulted, &params(1_000));
        assert_eq!(a, b, "empty fault config must be a strict no-op");
        let bd = CollectiveBreakdown::build(&a);
        assert!(bd.dominant_injected().is_none());
        assert!(bd.total_injected().is_zero());
    }

    #[test]
    fn straggler_is_critical_and_attributed() {
        let ranks = vec![
            series(vec![], 10_000),
            series(vec![], 10_000).with_faults(RankFaults {
                slow_factor: 1.5,
                ..RankFaults::default()
            }),
        ];
        let run = couple(&ranks, &params(1_000));
        assert!(!run.phases.is_empty());
        for p in &run.phases {
            assert_eq!(p.critical, 1, "straggler must pace the barrier");
            assert_eq!(p.durations[1], Nanos(1_500));
        }
        let b = CollectiveBreakdown::build(&run);
        assert_eq!(b.dominant_injected(), Some(InjectedClass::Straggler));
        assert_eq!(
            injected_total(&b, InjectedClass::Straggler),
            Nanos(500) * run.phases.len() as u64
        );
        assert!(injected_total(&b, InjectedClass::Crash).is_zero());
    }

    #[test]
    fn crash_outage_freezes_the_rank() {
        // Rank 1 is down over [500, 1500): phase 0 does 500 ns of
        // work, freezes 1000 ns, then finishes the remaining 500 ns —
        // the 1000 ns outage is paid once and attributed to Crash.
        let ranks = vec![
            series(vec![], 10_000),
            series(vec![], 10_000).with_faults(RankFaults {
                outages: vec![(Nanos(500), Nanos(1_500))],
                ..RankFaults::default()
            }),
        ];
        let run = couple(&ranks, &params(1_000));
        assert_eq!(run.phases[0].durations[1], Nanos(2_000));
        assert_eq!(run.phases[0].critical, 1);
        assert_eq!(
            run.phases[0].critical_injected,
            vec![
                (InjectedClass::Crash, Nanos(1_000)),
                (InjectedClass::Straggler, Nanos::ZERO),
                (InjectedClass::Partition, Nanos::ZERO),
                (InjectedClass::Jitter, Nanos::ZERO),
            ]
        );
        // Later phases run past the outage unharmed.
        assert_eq!(run.phases[1].durations[1], Nanos(1_000));
        let b = CollectiveBreakdown::build(&run);
        assert_eq!(injected_total(&b, InjectedClass::Crash), Nanos(1_000));
        assert_eq!(b.dominant_injected(), Some(InjectedClass::Crash));
    }

    #[test]
    fn partition_delays_arrivals_inside_its_window() {
        let ranks = vec![
            series(vec![], 10_000),
            series(vec![], 10_000).with_faults(RankFaults {
                delays: vec![DelayWindow {
                    start: Nanos(0),
                    end: Nanos(1_500),
                    delay: Nanos(300),
                }],
                ..RankFaults::default()
            }),
        ];
        let run = couple(&ranks, &params(1_000));
        // Phase 0 arrival (t=1000) is inside the partition window.
        assert_eq!(run.phases[0].durations[1], Nanos(1_300));
        assert_eq!(run.phases[0].critical, 1);
        // Phase 1 arrival (t=2300) is past it.
        assert_eq!(run.phases[1].durations[1], Nanos(1_000));
        let b = CollectiveBreakdown::build(&run);
        assert_eq!(injected_total(&b, InjectedClass::Partition), Nanos(300));
    }

    #[test]
    fn jitter_is_deterministic_and_positive() {
        let faults = RankFaults {
            jitter_mean: Nanos(200),
            jitter_seed: 42,
            ..RankFaults::default()
        };
        let ranks = vec![series(vec![], 20_000).with_faults(faults)];
        let a = couple(&ranks, &params(1_000));
        let b = couple(&ranks, &params(1_000));
        assert_eq!(a, b, "jitter must be a pure function of (seed, phase)");
        let bd = CollectiveBreakdown::build(&a);
        assert!(
            !injected_total(&bd, InjectedClass::Jitter).is_zero(),
            "exponential jitter over many phases must pay some delay"
        );
        // Different seeds give different schedules.
        let other = vec![series(vec![], 20_000).with_faults(RankFaults {
            jitter_seed: 43,
            jitter_mean: Nanos(200),
            ..RankFaults::default()
        })];
        assert_ne!(couple(&other, &params(1_000)), a);
    }
}
