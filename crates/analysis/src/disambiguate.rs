//! Noise disambiguation (paper §V).
//!
//! Two demonstrations:
//!
//! * **§V-A** — two interruptions of nearly identical duration can have
//!   entirely different causes (a page fault vs. a timer interrupt +
//!   softirq). Indirect tools cannot tell them apart; the per-event
//!   decomposition can. [`confusable_pairs`] finds such pairs.
//! * **§V-B** — a microbenchmark folds all events inside one iteration
//!   into a single spike; two unrelated events (a page fault right
//!   before a timer tick) appear as one. [`composite_interruptions`]
//!   finds interruptions whose decomposition spans multiple noise
//!   categories or event classes.

use osn_kernel::activity::Activity;
use osn_kernel::time::Nanos;

use serde::{Deserialize, Serialize};

use crate::noise::{Component, Interruption};
use crate::stats::EventClass;

/// The dominant event class of an interruption (by self time), if any
/// kernel component exists.
pub fn dominant_class(i: &Interruption) -> Option<EventClass> {
    let mut sums: Vec<(EventClass, Nanos)> = Vec::new();
    for (c, d) in &i.components {
        if let Component::Activity(a) = c {
            if let Some(class) = classify(*a) {
                match sums.iter_mut().find(|(k, _)| *k == class) {
                    Some(slot) => slot.1 += *d,
                    None => sums.push((class, *d)),
                }
            }
        }
    }
    sums.into_iter().max_by_key(|(_, d)| *d).map(|(c, _)| c)
}

fn classify(a: Activity) -> Option<EventClass> {
    EventClass::ALL.iter().copied().find(|c| c.matches(a))
}

/// A §V-A pair: two interruptions whose totals differ by at most
/// `tolerance` but whose dominant causes differ.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConfusablePair {
    pub a_start: Nanos,
    pub a_noise: Nanos,
    pub a_class: EventClass,
    pub b_start: Nanos,
    pub b_noise: Nanos,
    pub b_class: EventClass,
}

/// Find pairs of interruptions with near-identical durations but
/// different dominant event classes. `tolerance` is the maximum
/// absolute difference. Returns at most `limit` pairs (closest first).
pub fn confusable_pairs(
    interruptions: &[&Interruption],
    tolerance: Nanos,
    limit: usize,
) -> Vec<ConfusablePair> {
    // Sort by noise; scan a sliding window of near-equal durations.
    let mut by_noise: Vec<(&Interruption, EventClass)> = interruptions
        .iter()
        .filter_map(|i| dominant_class(i).map(|c| (*i, c)))
        .collect();
    by_noise.sort_by_key(|(i, _)| i.noise());
    let mut pairs = Vec::new();
    for w in 0..by_noise.len() {
        for v in (w + 1)..by_noise.len() {
            let (a, ca) = by_noise[w];
            let (b, cb) = by_noise[v];
            let diff = b.noise() - a.noise();
            if diff > tolerance {
                break;
            }
            if ca != cb {
                pairs.push((diff, a, ca, b, cb));
            }
        }
    }
    pairs.sort_by_key(|(diff, a, _, _, _)| (*diff, a.start));
    pairs
        .into_iter()
        .take(limit)
        .map(|(_, a, ca, b, cb)| ConfusablePair {
            a_start: a.start,
            a_noise: a.noise(),
            a_class: ca,
            b_start: b.start,
            b_noise: b.noise(),
            b_class: cb,
        })
        .collect()
}

/// A §V-B composite: one interruption (or one microbenchmark
/// iteration) containing events of multiple distinct classes, which an
/// indirect tool would report as a single cause.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Composite {
    pub start: Nanos,
    pub noise: Nanos,
    /// Distinct event classes with their contributions.
    pub classes: Vec<(EventClass, Nanos)>,
}

/// Find interruptions whose kernel components span at least
/// `min_classes` distinct event classes.
pub fn composite_interruptions(
    interruptions: &[&Interruption],
    min_classes: usize,
) -> Vec<Composite> {
    let mut out = Vec::new();
    for i in interruptions {
        let mut classes: Vec<(EventClass, Nanos)> = Vec::new();
        for (c, d) in &i.components {
            if let Component::Activity(a) = c {
                if let Some(class) = classify(*a) {
                    match classes.iter_mut().find(|(k, _)| *k == class) {
                        Some(slot) => slot.1 += *d,
                        None => classes.push((class, *d)),
                    }
                }
            }
        }
        if classes.len() >= min_classes {
            classes.sort_by_key(|(_, d)| std::cmp::Reverse(*d));
            out.push(Composite {
                start: i.start,
                noise: i.noise(),
                classes,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_kernel::activity::{FaultKind, SoftirqVec};
    use osn_kernel::ids::Tid;

    fn interruption(start: u64, comps: Vec<(Component, u64)>) -> Interruption {
        let total: u64 = comps.iter().map(|(_, d)| d).sum();
        Interruption {
            task: Tid(1),
            start: Nanos(start),
            end: Nanos(start + total),
            components: comps.into_iter().map(|(c, d)| (c, Nanos(d))).collect(),
        }
    }

    const FAULT: Component = Component::Activity(Activity::PageFault(FaultKind::AnonZero));
    const TIMER: Component = Component::Activity(Activity::TimerInterrupt);
    const TSOFT: Component = Component::Activity(Activity::Softirq(SoftirqVec::Timer));

    /// The paper's Fig 10 example: a 2913 ns page fault vs a
    /// 2648+254 ns timer+softirq — same total, different causes.
    #[test]
    fn fig10_pair_found() {
        let a = interruption(1_000, vec![(FAULT, 2913)]);
        let b = interruption(9_000, vec![(TIMER, 2648), (TSOFT, 254)]);
        let list = [&a, &b];
        let pairs = confusable_pairs(&list, Nanos(50), 10);
        assert_eq!(pairs.len(), 1);
        let p = &pairs[0];
        // Pairs are reported in ascending-noise order within the pair.
        let noises = [p.a_noise, p.b_noise];
        assert!(noises.contains(&Nanos(2913)));
        assert!(noises.contains(&Nanos(2902)));
        assert_ne!(p.a_class, p.b_class);
        let classes = [p.a_class, p.b_class];
        assert!(classes.contains(&EventClass::PageFault));
        assert!(classes.contains(&EventClass::TimerInterrupt));
    }

    #[test]
    fn same_cause_pairs_excluded() {
        let a = interruption(0, vec![(TIMER, 1000)]);
        let b = interruption(100, vec![(TIMER, 1005)]);
        let list = [&a, &b];
        assert!(confusable_pairs(&list, Nanos(50), 10).is_empty());
    }

    #[test]
    fn tolerance_respected() {
        let a = interruption(0, vec![(FAULT, 1000)]);
        let b = interruption(100, vec![(TIMER, 2000)]);
        let list = [&a, &b];
        assert!(confusable_pairs(&list, Nanos(50), 10).is_empty());
        assert_eq!(confusable_pairs(&list, Nanos(1001), 10).len(), 1);
    }

    /// The §V-B example: a page fault immediately before a timer
    /// interrupt shows as one spike in FTQ but two classes here.
    #[test]
    fn composite_detection() {
        let merged = interruption(5_000, vec![(FAULT, 2500), (TIMER, 2100), (TSOFT, 1800)]);
        let plain = interruption(15_000, vec![(TIMER, 2100)]);
        let list = [&merged, &plain];
        let composites = composite_interruptions(&list, 2);
        assert_eq!(composites.len(), 1);
        let c = &composites[0];
        assert_eq!(c.start, Nanos(5_000));
        assert_eq!(c.classes.len(), 3);
        // Largest first.
        assert_eq!(c.classes[0].0, EventClass::PageFault);
    }

    #[test]
    fn dominant_class_sums_within_class() {
        // Two schedule halves sum; fault bigger than either half but
        // smaller than the sum → schedule dominates... here fault is
        // biggest single, but class sums decide.
        let i = interruption(
            0,
            vec![
                (
                    Component::Activity(Activity::Schedule(
                        osn_kernel::activity::SchedPart::Before,
                    )),
                    300,
                ),
                (
                    Component::Activity(Activity::Schedule(osn_kernel::activity::SchedPart::After)),
                    300,
                ),
                (FAULT, 400),
            ],
        );
        // Current implementation keeps the running max by accumulated
        // time: schedule accumulates 600 > 400.
        assert_eq!(dominant_class(&i), Some(EventClass::Schedule));
    }

    #[test]
    fn preemption_only_interruption_has_no_class() {
        let i = interruption(0, vec![(Component::Preemption { by: Tid(2) }, 5000)]);
        assert_eq!(dominant_class(&i), None);
        let list = [&i];
        assert!(composite_interruptions(&list, 1).is_empty());
    }
}
