//! Per-event quantitative statistics: the frequency and duration
//! analysis of the paper's Tables I–VI.

use osn_kernel::activity::{Activity, NoiseCategory, SoftirqVec};
use osn_kernel::ids::Tid;
use osn_kernel::time::Nanos;

use serde::{Deserialize, Serialize};

use crate::breakdown::Breakdown;
use crate::noise::NoiseAnalysis;

/// The event classes the paper reports statistics for (each table row
/// aggregates over the class, e.g. all page-fault kinds together).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum EventClass {
    PageFault,
    TimerInterrupt,
    RunTimerSoftirq,
    NetworkInterrupt,
    NetRxAction,
    NetTxAction,
    RebalanceDomains,
    RcuCallbacks,
    Schedule,
    HrTimer,
    /// Hypervisor steal-time windows (injected perturbation).
    Steal,
}

impl EventClass {
    pub const ALL: [EventClass; 11] = [
        EventClass::PageFault,
        EventClass::TimerInterrupt,
        EventClass::RunTimerSoftirq,
        EventClass::NetworkInterrupt,
        EventClass::NetRxAction,
        EventClass::NetTxAction,
        EventClass::RebalanceDomains,
        EventClass::RcuCallbacks,
        EventClass::Schedule,
        EventClass::HrTimer,
        EventClass::Steal,
    ];

    /// The class of an activity, if any — the inverse of
    /// [`EventClass::matches`] as one direct match instead of ten
    /// probes (the fused statistics pass classifies every component
    /// exactly once). Consistency with `matches` is test-enforced.
    pub fn of(a: Activity) -> Option<EventClass> {
        match a {
            Activity::PageFault(_) => Some(EventClass::PageFault),
            Activity::TimerInterrupt => Some(EventClass::TimerInterrupt),
            Activity::HrTimerInterrupt => Some(EventClass::HrTimer),
            Activity::NetworkInterrupt => Some(EventClass::NetworkInterrupt),
            Activity::Softirq(SoftirqVec::Timer) => Some(EventClass::RunTimerSoftirq),
            Activity::Softirq(SoftirqVec::NetRx) => Some(EventClass::NetRxAction),
            Activity::Softirq(SoftirqVec::NetTx) => Some(EventClass::NetTxAction),
            Activity::Softirq(SoftirqVec::Rebalance) => Some(EventClass::RebalanceDomains),
            Activity::Softirq(SoftirqVec::Rcu) => Some(EventClass::RcuCallbacks),
            Activity::Schedule(_) => Some(EventClass::Schedule),
            Activity::Steal => Some(EventClass::Steal),
            _ => None,
        }
    }

    pub fn matches(self, a: Activity) -> bool {
        match self {
            EventClass::PageFault => matches!(a, Activity::PageFault(_)),
            EventClass::TimerInterrupt => a == Activity::TimerInterrupt,
            EventClass::RunTimerSoftirq => a == Activity::Softirq(SoftirqVec::Timer),
            EventClass::NetworkInterrupt => a == Activity::NetworkInterrupt,
            EventClass::NetRxAction => a == Activity::Softirq(SoftirqVec::NetRx),
            EventClass::NetTxAction => a == Activity::Softirq(SoftirqVec::NetTx),
            EventClass::RebalanceDomains => a == Activity::Softirq(SoftirqVec::Rebalance),
            EventClass::RcuCallbacks => a == Activity::Softirq(SoftirqVec::Rcu),
            EventClass::Schedule => matches!(a, Activity::Schedule(_)),
            EventClass::HrTimer => a == Activity::HrTimerInterrupt,
            EventClass::Steal => a == Activity::Steal,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            EventClass::PageFault => "page_fault",
            EventClass::TimerInterrupt => "timer_interrupt",
            EventClass::RunTimerSoftirq => "run_timer_softirq",
            EventClass::NetworkInterrupt => "network_interrupt",
            EventClass::NetRxAction => "net_rx_action",
            EventClass::NetTxAction => "net_tx_action",
            EventClass::RebalanceDomains => "run_rebalance_domains",
            EventClass::RcuCallbacks => "rcu_process_callbacks",
            EventClass::Schedule => "schedule",
            EventClass::HrTimer => "hrtimer",
            EventClass::Steal => "steal",
        }
    }
}

/// One row of a paper statistics table: frequency and duration of one
/// event class over a set of tasks.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EventStats {
    pub count: u64,
    /// Events per second of application wall time.
    pub freq_per_sec: f64,
    pub avg: Nanos,
    pub max: Nanos,
    pub min: Nanos,
    pub total: Nanos,
}

impl EventStats {
    pub fn empty() -> Self {
        EventStats {
            count: 0,
            freq_per_sec: 0.0,
            avg: Nanos::ZERO,
            max: Nanos::ZERO,
            min: Nanos::ZERO,
            total: Nanos::ZERO,
        }
    }

    /// Compute from raw duration samples and a wall-time basis.
    pub fn from_samples(durations: &[Nanos], wall: Nanos) -> Self {
        if durations.is_empty() {
            return EventStats::empty();
        }
        let count = durations.len() as u64;
        let (total, min, max) = moments(durations);
        let avg = Nanos(total.as_nanos() / count);
        let freq_per_sec = if wall.is_zero() {
            0.0
        } else {
            count as f64 / wall.as_secs_f64()
        };
        EventStats {
            count,
            freq_per_sec,
            avg,
            max,
            min,
            total,
        }
    }
}

/// The `(total, min, max)` moments of a non-empty duration sample set.
///
/// Scalar fold by default; with the `simd` feature the loop runs eight
/// independent accumulator lanes (explicit unrolling — stable rustc has
/// no `std::simd`), which the autovectorizer lowers to vector adds and
/// mins. Results are bit-identical either way: u64 addition is
/// associative and min/max are order-independent, so lane order does
/// not matter.
#[cfg(not(feature = "simd"))]
fn moments(durations: &[Nanos]) -> (Nanos, Nanos, Nanos) {
    let mut total = 0u64;
    let mut min = u64::MAX;
    let mut max = 0u64;
    for d in durations {
        let d = d.as_nanos();
        total += d;
        min = min.min(d);
        max = max.max(d);
    }
    (Nanos(total), Nanos(min), Nanos(max))
}

/// 8-lane variant of [`moments`] (see the scalar doc for the
/// bit-identity argument).
#[cfg(feature = "simd")]
fn moments(durations: &[Nanos]) -> (Nanos, Nanos, Nanos) {
    const LANES: usize = 8;
    let mut sum = [0u64; LANES];
    let mut min = [u64::MAX; LANES];
    let mut max = [0u64; LANES];
    let chunks = durations.chunks_exact(LANES);
    let tail = chunks.remainder();
    for chunk in chunks {
        for l in 0..LANES {
            let d = chunk[l].as_nanos();
            sum[l] += d;
            min[l] = min[l].min(d);
            max[l] = max[l].max(d);
        }
    }
    let mut total = sum.iter().sum::<u64>();
    let mut lo = min.into_iter().min().expect("LANES > 0");
    let mut hi = max.into_iter().max().expect("LANES > 0");
    for d in tail {
        let d = d.as_nanos();
        total += d;
        lo = lo.min(d);
        hi = hi.max(d);
    }
    (Nanos(total), Nanos(lo), Nanos(hi))
}

/// Collect the duration samples of an event class across a set of
/// tasks' noise records.
pub fn class_samples(analysis: &NoiseAnalysis, tids: &[Tid], class: EventClass) -> Vec<Nanos> {
    let mut out = Vec::new();
    for tid in tids {
        if let Some(tn) = analysis.tasks.get(tid) {
            out.extend(
                tn.activity_samples(|a| class.matches(a))
                    .into_iter()
                    .map(|(_, d)| d),
            );
        }
    }
    out
}

/// Timestamped duration samples of an event class (for placement
/// traces like Fig 5).
pub fn class_samples_timed(
    analysis: &NoiseAnalysis,
    tids: &[Tid],
    class: EventClass,
) -> Vec<(Nanos, Nanos)> {
    let mut out = Vec::new();
    for tid in tids {
        if let Some(tn) = analysis.tasks.get(tid) {
            out.extend(tn.activity_samples(|a| class.matches(a)));
        }
    }
    out.sort_by_key(|(t, _)| *t);
    out
}

/// The paper-table statistic for one event class over one job: the
/// wall basis is the longest rank extent (the application's runtime).
pub fn class_stats(analysis: &NoiseAnalysis, tids: &[Tid], class: EventClass) -> EventStats {
    let samples = class_samples(analysis, tids, class);
    let wall = tids
        .iter()
        .filter_map(|t| analysis.tasks.get(t))
        .map(|tn| tn.wall)
        .max()
        .unwrap_or(Nanos::ZERO);
    EventStats::from_samples(&samples, wall)
}

/// Query-shaped entry point: one class's table row *and* its
/// percentile-cut duration histogram from a single sample collection
/// pass — what a catalog service answering `histogram?class=` needs
/// from a cached analysis without re-running the full report assembly.
/// Bit-identical to [`class_stats`] +
/// [`Histogram::build`](crate::histogram::Histogram::build) over
/// [`class_samples`] run separately.
pub fn class_histogram(
    analysis: &NoiseAnalysis,
    tids: &[Tid],
    class: EventClass,
    bins: usize,
    pct: f64,
) -> (EventStats, crate::histogram::Histogram) {
    let samples = class_samples(analysis, tids, class);
    let wall = tids
        .iter()
        .filter_map(|t| analysis.tasks.get(t))
        .map(|tn| tn.wall)
        .max()
        .unwrap_or(Nanos::ZERO);
    let stats = EventStats::from_samples(&samples, wall);
    let histogram = crate::histogram::Histogram::build(&samples, bins, pct);
    (stats, histogram)
}

/// Streaming equivalent of [`EventStats::from_samples`]: count, total,
/// min and max are order-independent and avg/freq derive from them, so
/// accumulating per component is bit-identical to collecting the sample
/// vector first.
#[derive(Clone, Copy)]
struct ClassAccum {
    count: u64,
    total: Nanos,
    min: Nanos,
    max: Nanos,
}

impl ClassAccum {
    const EMPTY: ClassAccum = ClassAccum {
        count: 0,
        total: Nanos::ZERO,
        min: Nanos(u64::MAX),
        max: Nanos::ZERO,
    };

    #[inline]
    fn push(&mut self, d: Nanos) {
        self.count += 1;
        self.total += d;
        self.min = self.min.min(d);
        self.max = self.max.max(d);
    }

    fn finish(self, wall: Nanos) -> EventStats {
        if self.count == 0 {
            return EventStats::empty();
        }
        let avg = Nanos(self.total.as_nanos() / self.count);
        let freq_per_sec = if wall.is_zero() {
            0.0
        } else {
            self.count as f64 / wall.as_secs_f64()
        };
        EventStats {
            count: self.count,
            freq_per_sec,
            avg,
            max: self.max,
            min: self.min,
            total: self.total,
        }
    }
}

/// Everything the paper report derives from one job's interruption
/// records, computed in a single fused pass.
pub struct JobStats {
    /// Fig 3 noise breakdown over all ranks.
    pub breakdown: Breakdown,
    /// Tables I–VI rows for the observed tasks, in [`EventClass::ALL`]
    /// order.
    pub classes: Vec<(EventClass, EventStats)>,
    /// Duration samples over all ranks for the three histogram classes
    /// (Figs 4, 6, 8).
    pub fault_samples: Vec<Nanos>,
    pub rebalance_samples: Vec<Nanos>,
    pub timer_softirq_samples: Vec<Nanos>,
}

/// One fused pass over the job's interruption components, replacing the
/// `Breakdown::compute` + 10 × [`class_stats`] + 3 × [`class_samples`]
/// passes the report assembly used to make. `ranks` drives the
/// breakdown and histograms; `observed` (normally one rank) drives the
/// per-class statistics. Bit-identical to the separate passes: every
/// accumulator is order-independent, and the histogram sample vectors
/// are filled in the same rank-major component order.
pub fn job_stats(analysis: &NoiseAnalysis, ranks: &[Tid], observed: &[Tid]) -> JobStats {
    use crate::noise::Component;

    let mut accs = [ClassAccum::EMPTY; EventClass::ALL.len()];
    let mut totals: Vec<(NoiseCategory, Nanos)> = NoiseCategory::NOISE
        .iter()
        .map(|c| (*c, Nanos::ZERO))
        .collect();
    let mut runnable_time = Nanos::ZERO;
    let mut fault_samples = Vec::new();
    let mut rebalance_samples = Vec::new();
    let mut timer_softirq_samples = Vec::new();

    let mut scan = |tid: &Tid, in_ranks: bool, in_observed: bool| {
        let Some(tn) = analysis.tasks.get(tid) else {
            return;
        };
        if in_ranks {
            runnable_time += tn.runnable_time;
        }
        for i in &tn.interruptions {
            for (c, d) in &i.components {
                if in_ranks {
                    if let Some(cat) = c.category() {
                        if let Some(slot) = totals.iter_mut().find(|(tc, _)| *tc == cat) {
                            slot.1 += *d;
                        }
                    }
                }
                if let Component::Activity(a) = c {
                    if let Some(class) = EventClass::of(*a) {
                        if in_observed {
                            accs[class as usize].push(*d);
                        }
                        if in_ranks {
                            match class {
                                EventClass::PageFault => fault_samples.push(*d),
                                EventClass::RebalanceDomains => rebalance_samples.push(*d),
                                EventClass::RunTimerSoftirq => timer_softirq_samples.push(*d),
                                _ => {}
                            }
                        }
                    }
                }
            }
        }
    };

    for tid in ranks {
        scan(tid, true, observed.contains(tid));
    }
    for tid in observed.iter().filter(|t| !ranks.contains(t)) {
        scan(tid, false, true);
    }

    let wall = observed
        .iter()
        .filter_map(|t| analysis.tasks.get(t))
        .map(|tn| tn.wall)
        .max()
        .unwrap_or(Nanos::ZERO);
    let classes = EventClass::ALL
        .iter()
        .map(|c| (*c, accs[*c as usize].finish(wall)))
        .collect();
    let total_noise = totals.iter().map(|(_, d)| *d).sum();

    JobStats {
        breakdown: Breakdown {
            totals,
            total_noise,
            runnable_time,
        },
        classes,
        fault_samples,
        rebalance_samples,
        timer_softirq_samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_kernel::activity::{FaultKind, SchedPart};

    #[test]
    fn class_matching() {
        assert!(EventClass::PageFault.matches(Activity::PageFault(FaultKind::Cow)));
        assert!(EventClass::PageFault.matches(Activity::PageFault(FaultKind::AnonZero)));
        assert!(!EventClass::PageFault.matches(Activity::TimerInterrupt));
        assert!(EventClass::Schedule.matches(Activity::Schedule(SchedPart::Before)));
        assert!(EventClass::Schedule.matches(Activity::Schedule(SchedPart::After)));
        assert!(EventClass::NetRxAction.matches(Activity::Softirq(SoftirqVec::NetRx)));
        assert!(!EventClass::NetRxAction.matches(Activity::Softirq(SoftirqVec::NetTx)));
    }

    #[test]
    fn every_noise_activity_has_at_most_one_class() {
        for a in Activity::all() {
            let classes = EventClass::ALL.iter().filter(|c| c.matches(a)).count();
            assert!(classes <= 1, "{a} matched {classes} classes");
            if a.is_noise() {
                assert_eq!(classes, 1, "noise activity {a} unclassified");
            }
        }
    }

    #[test]
    fn of_agrees_with_matches() {
        for a in Activity::all() {
            let by_of = EventClass::of(a);
            let by_match = EventClass::ALL.iter().copied().find(|c| c.matches(a));
            assert_eq!(by_of, by_match, "class mismatch for {a}");
        }
    }

    #[test]
    fn moments_match_naive_fold_at_every_length() {
        // Lengths straddling the 8-lane boundary, pseudorandom values.
        let mut x = 0x0511_2011_u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % 1_000_000
        };
        for n in [1usize, 7, 8, 9, 15, 16, 17, 64, 100] {
            let samples: Vec<Nanos> = (0..n).map(|_| Nanos(next())).collect();
            let (total, min, max) = moments(&samples);
            assert_eq!(total, samples.iter().copied().sum::<Nanos>(), "n={n}");
            assert_eq!(min, samples.iter().copied().min().unwrap(), "n={n}");
            assert_eq!(max, samples.iter().copied().max().unwrap(), "n={n}");
        }
    }

    #[test]
    fn stats_from_samples() {
        let samples = vec![Nanos(100), Nanos(300), Nanos(200)];
        let s = EventStats::from_samples(&samples, Nanos::from_secs(2));
        assert_eq!(s.count, 3);
        assert_eq!(s.min, Nanos(100));
        assert_eq!(s.max, Nanos(300));
        assert_eq!(s.avg, Nanos(200));
        assert_eq!(s.total, Nanos(600));
        assert!((s.freq_per_sec - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_stats() {
        let s = EventStats::from_samples(&[], Nanos::from_secs(1));
        assert_eq!(s.count, 0);
        assert_eq!(s.freq_per_sec, 0.0);
        assert_eq!(s, EventStats::empty());
    }

    #[test]
    fn zero_wall_basis() {
        let s = EventStats::from_samples(&[Nanos(5)], Nanos::ZERO);
        assert_eq!(s.freq_per_sec, 0.0);
        assert_eq!(s.count, 1);
    }
}
