//! Per-event quantitative statistics: the frequency and duration
//! analysis of the paper's Tables I–VI.

use osn_kernel::activity::{Activity, SoftirqVec};
use osn_kernel::ids::Tid;
use osn_kernel::time::Nanos;

use serde::{Deserialize, Serialize};

use crate::noise::NoiseAnalysis;

/// The event classes the paper reports statistics for (each table row
/// aggregates over the class, e.g. all page-fault kinds together).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum EventClass {
    PageFault,
    TimerInterrupt,
    RunTimerSoftirq,
    NetworkInterrupt,
    NetRxAction,
    NetTxAction,
    RebalanceDomains,
    RcuCallbacks,
    Schedule,
    HrTimer,
}

impl EventClass {
    pub const ALL: [EventClass; 10] = [
        EventClass::PageFault,
        EventClass::TimerInterrupt,
        EventClass::RunTimerSoftirq,
        EventClass::NetworkInterrupt,
        EventClass::NetRxAction,
        EventClass::NetTxAction,
        EventClass::RebalanceDomains,
        EventClass::RcuCallbacks,
        EventClass::Schedule,
        EventClass::HrTimer,
    ];

    pub fn matches(self, a: Activity) -> bool {
        match self {
            EventClass::PageFault => matches!(a, Activity::PageFault(_)),
            EventClass::TimerInterrupt => a == Activity::TimerInterrupt,
            EventClass::RunTimerSoftirq => a == Activity::Softirq(SoftirqVec::Timer),
            EventClass::NetworkInterrupt => a == Activity::NetworkInterrupt,
            EventClass::NetRxAction => a == Activity::Softirq(SoftirqVec::NetRx),
            EventClass::NetTxAction => a == Activity::Softirq(SoftirqVec::NetTx),
            EventClass::RebalanceDomains => a == Activity::Softirq(SoftirqVec::Rebalance),
            EventClass::RcuCallbacks => a == Activity::Softirq(SoftirqVec::Rcu),
            EventClass::Schedule => matches!(a, Activity::Schedule(_)),
            EventClass::HrTimer => a == Activity::HrTimerInterrupt,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            EventClass::PageFault => "page_fault",
            EventClass::TimerInterrupt => "timer_interrupt",
            EventClass::RunTimerSoftirq => "run_timer_softirq",
            EventClass::NetworkInterrupt => "network_interrupt",
            EventClass::NetRxAction => "net_rx_action",
            EventClass::NetTxAction => "net_tx_action",
            EventClass::RebalanceDomains => "run_rebalance_domains",
            EventClass::RcuCallbacks => "rcu_process_callbacks",
            EventClass::Schedule => "schedule",
            EventClass::HrTimer => "hrtimer",
        }
    }
}

/// One row of a paper statistics table: frequency and duration of one
/// event class over a set of tasks.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EventStats {
    pub count: u64,
    /// Events per second of application wall time.
    pub freq_per_sec: f64,
    pub avg: Nanos,
    pub max: Nanos,
    pub min: Nanos,
    pub total: Nanos,
}

impl EventStats {
    pub fn empty() -> Self {
        EventStats {
            count: 0,
            freq_per_sec: 0.0,
            avg: Nanos::ZERO,
            max: Nanos::ZERO,
            min: Nanos::ZERO,
            total: Nanos::ZERO,
        }
    }

    /// Compute from raw duration samples and a wall-time basis.
    pub fn from_samples(durations: &[Nanos], wall: Nanos) -> Self {
        if durations.is_empty() {
            return EventStats::empty();
        }
        let count = durations.len() as u64;
        let total: Nanos = durations.iter().copied().sum();
        let min = durations.iter().copied().min().unwrap();
        let max = durations.iter().copied().max().unwrap();
        let avg = Nanos(total.as_nanos() / count);
        let freq_per_sec = if wall.is_zero() {
            0.0
        } else {
            count as f64 / wall.as_secs_f64()
        };
        EventStats {
            count,
            freq_per_sec,
            avg,
            max,
            min,
            total,
        }
    }
}

/// Collect the duration samples of an event class across a set of
/// tasks' noise records.
pub fn class_samples(analysis: &NoiseAnalysis, tids: &[Tid], class: EventClass) -> Vec<Nanos> {
    let mut out = Vec::new();
    for tid in tids {
        if let Some(tn) = analysis.tasks.get(tid) {
            out.extend(
                tn.activity_samples(|a| class.matches(a))
                    .into_iter()
                    .map(|(_, d)| d),
            );
        }
    }
    out
}

/// Timestamped duration samples of an event class (for placement
/// traces like Fig 5).
pub fn class_samples_timed(
    analysis: &NoiseAnalysis,
    tids: &[Tid],
    class: EventClass,
) -> Vec<(Nanos, Nanos)> {
    let mut out = Vec::new();
    for tid in tids {
        if let Some(tn) = analysis.tasks.get(tid) {
            out.extend(
                tn.activity_samples(|a| class.matches(a)),
            );
        }
    }
    out.sort_by_key(|(t, _)| *t);
    out
}

/// The paper-table statistic for one event class over one job: the
/// wall basis is the longest rank extent (the application's runtime).
pub fn class_stats(analysis: &NoiseAnalysis, tids: &[Tid], class: EventClass) -> EventStats {
    let samples = class_samples(analysis, tids, class);
    let wall = tids
        .iter()
        .filter_map(|t| analysis.tasks.get(t))
        .map(|tn| tn.wall)
        .max()
        .unwrap_or(Nanos::ZERO);
    EventStats::from_samples(&samples, wall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_kernel::activity::{FaultKind, SchedPart};

    #[test]
    fn class_matching() {
        assert!(EventClass::PageFault.matches(Activity::PageFault(FaultKind::Cow)));
        assert!(EventClass::PageFault.matches(Activity::PageFault(FaultKind::AnonZero)));
        assert!(!EventClass::PageFault.matches(Activity::TimerInterrupt));
        assert!(EventClass::Schedule.matches(Activity::Schedule(SchedPart::Before)));
        assert!(EventClass::Schedule.matches(Activity::Schedule(SchedPart::After)));
        assert!(EventClass::NetRxAction.matches(Activity::Softirq(SoftirqVec::NetRx)));
        assert!(!EventClass::NetRxAction.matches(Activity::Softirq(SoftirqVec::NetTx)));
    }

    #[test]
    fn every_noise_activity_has_at_most_one_class() {
        for a in Activity::all() {
            let classes = EventClass::ALL
                .iter()
                .filter(|c| c.matches(a))
                .count();
            assert!(classes <= 1, "{a} matched {classes} classes");
            if a.is_noise() {
                assert_eq!(classes, 1, "noise activity {a} unclassified");
            }
        }
    }

    #[test]
    fn stats_from_samples() {
        let samples = vec![Nanos(100), Nanos(300), Nanos(200)];
        let s = EventStats::from_samples(&samples, Nanos::from_secs(2));
        assert_eq!(s.count, 3);
        assert_eq!(s.min, Nanos(100));
        assert_eq!(s.max, Nanos(300));
        assert_eq!(s.avg, Nanos(200));
        assert_eq!(s.total, Nanos(600));
        assert!((s.freq_per_sec - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_stats() {
        let s = EventStats::from_samples(&[], Nanos::from_secs(1));
        assert_eq!(s.count, 0);
        assert_eq!(s.freq_per_sec, 0.0);
        assert_eq!(s, EventStats::empty());
    }

    #[test]
    fn zero_wall_basis() {
        let s = EventStats::from_samples(&[Nanos(5)], Nanos::ZERO);
        assert_eq!(s.freq_per_sec, 0.0);
        assert_eq!(s.count, 1);
    }
}
